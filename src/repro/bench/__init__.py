"""Benchmark harness: per-figure experiment drivers + reporting."""

from repro.bench.harness import make_ctx, run_builder
from repro.bench import experiments

__all__ = ["experiments", "make_ctx", "run_builder"]
