"""Shared benchmark plumbing.

Every measurement boots a *fresh* simulated node (pipe watermarks, signal
banks and traces never leak between runs), builds one workload on it in
timing mode, and drains the event loop; the returned simulated seconds are
what the paper's tables/figures report (relative numbers).
"""

from __future__ import annotations

import os
from typing import Callable

from repro.config import H800, HardwareSpec, SimConfig
from repro.runtime.context import DistContext

#: paper testbed size
DEFAULT_WORLD = 8


def env_flag(name: str, default: str = "0") -> bool:
    """Boolean environment flag, case-insensitively.

    ``"0"``, the empty string, ``"false"``, ``"no"`` and ``"off"`` (any
    capitalization, surrounding whitespace ignored) are false; anything
    else is true.  The case fold matters: a naive exact-match parse
    reads ``REPRO_FAST=False`` as *enabling* fast mode.
    """
    return os.environ.get(name, default).strip().lower() \
        not in ("0", "", "false", "no", "off")


#: ``REPRO_FAST=1`` trims sweeps (subset of shapes) for quick iteration.
FAST = env_flag("REPRO_FAST")


def make_ctx(world: int = DEFAULT_WORLD, numerics: bool = False,
             trace: bool = False, spec: HardwareSpec = H800,
             n_nodes: int = 1, seed: int = 0) -> DistContext:
    cfg = SimConfig(world_size=world, execute_numerics=numerics, trace=trace,
                    spec=spec, n_nodes=n_nodes, seed=seed)
    return DistContext.create(cfg)


def run_builder(builder: Callable[[DistContext], None],
                world: int = DEFAULT_WORLD, trace: bool = False,
                spec: HardwareSpec = H800, seed: int = 0) -> float:
    """Build one workload on a fresh node; return simulated seconds."""
    ctx = make_ctx(world=world, trace=trace, spec=spec, seed=seed)
    builder(ctx)
    return ctx.run()


def run_builder_traced(builder: Callable[[DistContext], None],
                       world: int = DEFAULT_WORLD,
                       spec: HardwareSpec = H800,
                       seed: int = 0) -> tuple[float, DistContext]:
    """Like :func:`run_builder` but returns the context (for its trace)."""
    ctx = make_ctx(world=world, trace=True, spec=spec, seed=seed)
    builder(ctx)
    total = ctx.run()
    return total, ctx
