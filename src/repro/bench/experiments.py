"""Experiment drivers: one function per paper table/figure.

Each driver returns plain dicts of simulated times so the benchmark files
(benchmarks/) and EXPERIMENTS.md generation share one source of truth.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines import decompose, flux, nonoverlap, vllm_moe
from repro.bench.harness import DEFAULT_WORLD, run_builder
from repro.config import H800, HardwareSpec
from repro.errors import RegistryError
from repro.kernels.ag_gemm import (
    AgGemmConfig,
    ag_gemm_overlapped,
    ag_gemm_tune_task,
)
from repro.kernels.ag_moe import (
    AgMoeConfig,
    ag_moe_overlapped,
    ag_moe_tune_task,
)
from repro.kernels.attention import (
    AgAttentionConfig,
    ag_attention_overlapped,
    ag_attention_tune_task,
)
from repro.kernels.gemm_rs import (
    GemmRsConfig,
    gemm_rs_overlapped,
    gemm_rs_tune_task,
)
from repro.kernels.mlp import MlpConfig, mlp_layer_tilelink
from repro.kernels.moe_common import build_moe_routing, random_router_logits
from repro.kernels.moe_layer import MoeConfig, moe_layer_tilelink
from repro.kernels.moe_rs import MoeRsConfig, moe_rs_overlapped, moe_rs_tune_task
from repro.kernels.ring_attention import ring_attention
from repro.models.configs import AttnShape, MlpShape, MoeShape
from repro.ops.attention import flash_attention_op
from repro.registry import get_family
from repro.runtime.context import DistContext
from repro.tuner.cache import TuneCache
from repro.tuner.search import TuneTask, task_cache_key
from repro.tuner.warm import (  # noqa: F401  (re-exported API)
    ENV_WARM_CACHE,
    resolve_warm_cache,
    warm_cache_path,
    warm_tuned_config,
)


# ---------------------------------------------------------------------------
# Shipped warm cache: makes the tuned columns the default, for free
# ---------------------------------------------------------------------------
# ``benchmarks/refresh_warm_cache.py`` sweeps the Figure-8 MLP, Table-4
# MoE and Figure-10 attention shape tables offline and checks the
# resulting cache file into the repo.  When that file resolves, the
# ``*_builders`` below default to ``tuned=True`` — the TileLink-tuned
# column appears in the Figure-8/9/10 tables with *zero* simulation at
# bench time, because every lookup is a warm hit.  A builder whose task
# key is missing (changed space, foreign spec, deleted file) silently
# keeps the untuned column set.
#
# The file location and the hit-or-None resolution step live in
# :mod:`repro.tuner.warm` (the end-to-end runner's
# ``method="tilelink-tuned"`` shares them); they are re-exported here
# because this module is where bench-side consumers historically found
# them.


def _resolve_tuned(tuned: bool | None, tune_cache: TuneCache | None,
                   make_task: Callable[[int, HardwareSpec], TuneTask],
                   world: int, max_trials: int | None = None,
                   ) -> tuple[bool, TuneCache | None, bool]:
    """Resolve a builder's ``tuned=None`` default.

    Auto mode turns the TileLink-tuned column on exactly when a cache (an
    explicit ``tune_cache``, else the shipped warm cache) already holds
    this task's entry — enabling it costs one key lookup, never a
    simulation.  ``make_task(world, spec)`` builds the probe task.
    Returns the resolved flag, the cache the tuned closure should
    consult, and whether auto mode made the call (an auto-enabled column
    must re-check the key at launch time — see :func:`_warm_at_runtime`).
    """
    if tuned is not None:
        return bool(tuned), tune_cache, False
    cache = tune_cache if tune_cache is not None else resolve_warm_cache()
    if cache is None:
        return False, tune_cache, False
    key = task_cache_key(make_task(world, H800), world=world, spec=H800,
                         max_trials=max_trials)
    if key in cache:
        return True, cache, True
    return False, tune_cache, False


def _warm_tuned_config(cache: TuneCache | None,
                       make_task: Callable[[int, HardwareSpec], TuneTask],
                       ctx: DistContext, max_trials: int | None = None):
    """Resolve an *auto-enabled* tuned column straight from the cache.

    The build-time probe keys on the builder's ``world`` and the default
    H800 spec, but the closure launches against the *runtime*
    ``ctx.world_size``/``ctx.machine.config.spec`` — if those diverged,
    the warm key misses and ``autotune`` would silently run a full
    search inside the timed bench.  Auto mode never simulates: this
    returns the finalized config on a hit and ``None`` on a runtime
    miss (callers fall back to the paper config).  Explicitly requested
    ``tuned=True`` bypasses this and keeps autotune's tune-on-miss
    behaviour.
    """
    if cache is None:
        return None
    spec = ctx.machine.config.spec
    return warm_tuned_config(cache, make_task(ctx.world_size, spec),
                             world=ctx.world_size, spec=spec,
                             max_trials=max_trials)


# ---------------------------------------------------------------------------
# MLP parts (Table 2, Figure 8)
# ---------------------------------------------------------------------------

def _alloc_ag(ctx: DistContext, m: int, n: int, k: int) -> None:
    world = ctx.world_size
    ctx.alloc("x", (m // world, k), "float16", fill=None)
    ctx.alloc("w", (k, n), "float16", fill=None)
    ctx.alloc("y", (m, n), "float16", fill=None)


def _alloc_rs(ctx: DistContext, m: int, n: int, k: int) -> None:
    world = ctx.world_size
    ctx.alloc("x", (m, k), "float16", fill=None)
    ctx.alloc("w", (k, n), "float16", fill=None)
    ctx.alloc("y", (m // world, n), "float32", fill=None)


def ag_gemm_builders(shape: MlpShape, world: int = DEFAULT_WORLD, *,
                     tuned: bool | None = None,
                     tune_cache: TuneCache | None = None,
                     tune_preset: str = "small",
                     tune_max_trials: int | None = None,
                     ) -> dict[str, Callable[[DistContext], None]]:
    m, k = shape.s, shape.h
    n = shape.i // world

    def make_task(w: int, spec: HardwareSpec) -> TuneTask:
        return ag_gemm_tune_task(m, n, k, world=w, spec=spec,
                                 preset=tune_preset)

    tuned, tune_cache, auto = _resolve_tuned(
        tuned, tune_cache, make_task, world, max_trials=tune_max_trials)

    def non(ctx: DistContext) -> None:
        _alloc_ag(ctx, m, n, k)
        nonoverlap.ag_gemm_nonoverlap(ctx, m, n, k, "x", "w", "y")

    def dec(ctx: DistContext) -> None:
        _alloc_ag(ctx, m, n, k)
        decompose.ag_gemm_decomposed(ctx, m, n, k, "x", "w", "y")

    def flx(ctx: DistContext) -> None:
        _alloc_ag(ctx, m, n, k)
        flux.ag_gemm_flux(ctx, m, n, k, "x", "w", "y")

    def tl(ctx: DistContext) -> None:
        _alloc_ag(ctx, m, n, k)
        cfg = AgGemmConfig(m=m, n=n, k=k, mode="dma")
        ag_gemm_overlapped(ctx, cfg, "x", "w", "y")

    out = {"cuBLAS+NCCL": non, "Async-TP": dec, "FLUX": flx, "TileLink": tl}
    if tuned:
        def tl_tuned(ctx: DistContext) -> None:
            _alloc_ag(ctx, m, n, k)
            if auto:
                cfg = _warm_tuned_config(tune_cache, make_task, ctx,
                                         max_trials=tune_max_trials) \
                    or AgGemmConfig(m=m, n=n, k=k, mode="dma")
            else:
                cfg = AgGemmConfig.autotune(
                    m, n, k, world=ctx.world_size,
                    spec=ctx.machine.config.spec,
                    cache=(tune_cache if tune_cache is not None
                           else TuneCache()),
                    preset=tune_preset, max_trials=tune_max_trials)
            ag_gemm_overlapped(ctx, cfg, "x", "w", "y")

        out["TileLink-tuned"] = tl_tuned
    return out


def gemm_rs_builders(shape: MlpShape, world: int = DEFAULT_WORLD, *,
                     tuned: bool | None = None,
                     tune_cache: TuneCache | None = None,
                     tune_preset: str = "small",
                     tune_max_trials: int | None = None,
                     ) -> dict[str, Callable[[DistContext], None]]:
    m, n = shape.s, shape.h
    k = shape.i // world

    def make_task(w: int, spec: HardwareSpec) -> TuneTask:
        return gemm_rs_tune_task(m, n, k, world=w, spec=spec,
                                 preset=tune_preset)

    tuned, tune_cache, auto = _resolve_tuned(
        tuned, tune_cache, make_task, world, max_trials=tune_max_trials)

    def non(ctx: DistContext) -> None:
        _alloc_rs(ctx, m, n, k)
        nonoverlap.gemm_rs_nonoverlap(ctx, m, n, k, "x", "w", "y")

    def dec(ctx: DistContext) -> None:
        _alloc_rs(ctx, m, n, k)
        decompose.gemm_rs_decomposed(ctx, m, n, k, "x", "w", "y")

    def flx(ctx: DistContext) -> None:
        _alloc_rs(ctx, m, n, k)
        flux.gemm_rs_flux(ctx, m, n, k, "x", "w", "y")

    def tl(ctx: DistContext) -> None:
        _alloc_rs(ctx, m, n, k)
        cfg = GemmRsConfig(m=m, n=n, k=k, mode="hybrid")
        gemm_rs_overlapped(ctx, cfg, "x", "w", "y")

    out = {"cuBLAS+NCCL": non, "Async-TP": dec, "FLUX": flx, "TileLink": tl}
    if tuned:
        def tl_tuned(ctx: DistContext) -> None:
            _alloc_rs(ctx, m, n, k)
            if auto:
                cfg = _warm_tuned_config(tune_cache, make_task, ctx,
                                         max_trials=tune_max_trials) \
                    or GemmRsConfig(m=m, n=n, k=k, mode="hybrid")
            else:
                cfg = GemmRsConfig.autotune(
                    m, n, k, world=ctx.world_size,
                    spec=ctx.machine.config.spec,
                    cache=(tune_cache if tune_cache is not None
                           else TuneCache()),
                    preset=tune_preset, max_trials=tune_max_trials)
            gemm_rs_overlapped(ctx, cfg, "x", "w", "y")

        out["TileLink-tuned"] = tl_tuned
    return out


def mlp_builders(shape: MlpShape, world: int = DEFAULT_WORLD
                 ) -> dict[str, Callable[[DistContext], None]]:
    cfg = MlpConfig(m=shape.s, h=shape.h, i=shape.i)

    def _alloc(ctx: DistContext) -> None:
        ishard = cfg.i_shard(ctx.world_size)
        ctx.alloc("x", (cfg.m // ctx.world_size, cfg.h), "float16", fill=None)
        ctx.alloc("w1", (cfg.h, ishard), "float16", fill=None)
        ctx.alloc("w2", (ishard, cfg.h), "float16", fill=None)
        ctx.alloc("y", (cfg.m // ctx.world_size, cfg.h), "float32", fill=None)

    def non(ctx: DistContext) -> None:
        _alloc(ctx)
        nonoverlap.mlp_nonoverlap(ctx, cfg, "x", "w1", "w2", "y")

    def dec(ctx: DistContext) -> None:
        _alloc(ctx)
        decompose.mlp_decomposed(ctx, cfg, "x", "w1", "w2", "y")

    def flx(ctx: DistContext) -> None:
        _alloc(ctx)
        flux.mlp_flux(ctx, cfg, "x", "w1", "w2", "y")

    def tl(ctx: DistContext) -> None:
        _alloc(ctx)
        mlp_layer_tilelink(ctx, cfg, "x", "w1", "w2", "y")

    return {"cuBLAS+NCCL": non, "Async-TP": dec, "FLUX": flx, "TileLink": tl}


def run_method_times(builders: dict[str, Callable[[DistContext], None]],
                     world: int = DEFAULT_WORLD) -> dict[str, float]:
    return {name: run_builder(b, world=world) for name, b in builders.items()}


# ---------------------------------------------------------------------------
# Autotuning: tuned config vs the paper's hand-picked config
# ---------------------------------------------------------------------------

def tuned_vs_paper(shape: MlpShape | MoeShape, kernel: str = "ag_gemm",
                   world: int = DEFAULT_WORLD, *,
                   strategy: str = "exhaustive",
                   max_trials: int | None = None, cache=None,
                   preset: str = "small") -> dict[str, object]:
    """Autotune one MLP/MoE kernel on ``shape``; report both columns.

    ``shape`` is an :class:`MlpShape` for the dense kernels and a
    :class:`MoeShape` for the MoE pair.  Returns ``paper_time`` (the
    shipped default config, which seeds the tuner's incumbent),
    ``tuned_time`` and ``speedup`` alongside the winning candidate and the
    full :class:`repro.tuner.TuneResult` (prune statistics, trial log,
    cache provenance).

    Dispatch is registry-driven: any family registered with a
    ``shape_autotune`` hook is tunable here.
    """
    try:
        fam = get_family(kernel)
    except RegistryError:
        fam = None
    if fam is None or fam.shape_autotune is None:
        raise ValueError(f"unknown tunable kernel {kernel!r}")
    res = fam.shape_autotune(shape, world, strategy=strategy,
                             max_trials=max_trials, cache=cache,
                             preset=preset)
    return {
        "paper_time": res.default_time, "tuned_time": res.best_time,
        "speedup": (res.default_time / res.best_time
                    if res.default_time else float("nan")),
        "config": res.best, "result": res,
    }


# ---------------------------------------------------------------------------
# Sweep task tables: whole paper tables as TuneTask lists
# ---------------------------------------------------------------------------
# Feed these to ``repro.tuner.sweep`` — one shared cache warms the whole
# table, so the tuned columns of Figures 8/9 cost one offline sweep instead
# of a tuning run per bench invocation.
#
# Task construction is registry-driven: each family's ``sweep_entries``
# hook builds its own (name, task) pairs, and the per-table functions
# below only gate on the family's ``sweep_category``.

def _sweep_family(kernel: str, category: str, label: str):
    """Resolve a sweep kernel name, enforcing its table membership."""
    try:
        fam = get_family(kernel)
    except RegistryError:
        fam = None
    if fam is None or fam.sweep_category != category \
            or fam.sweep_entries is None:
        raise ValueError(f"unknown {label} sweep kernel {kernel!r}")
    return fam


def mlp_sweep_tasks(shapes: Sequence[MlpShape],
                    kernels: Sequence[str] = ("ag_gemm", "gemm_rs"),
                    world: int = DEFAULT_WORLD, *, spec: HardwareSpec = H800,
                    preset: str = "small") -> list[tuple[str, TuneTask]]:
    """(name, task) pairs covering the Figure-8 MLP shape table."""
    tasks: list[tuple[str, TuneTask]] = []
    for shape in shapes:
        for kernel in kernels:
            fam = _sweep_family(kernel, "mlp", "MLP")
            tasks.extend(fam.sweep_entries(shape, world=world, spec=spec,
                                           preset=preset))
    return tasks


def moe_sweep_tasks(shapes: Sequence[MoeShape],
                    kernels: Sequence[str] = ("ag_moe", "moe_rs"),
                    world: int = DEFAULT_WORLD, *, spec: HardwareSpec = H800,
                    preset: str = "small",
                    router_seed: int = 17) -> list[tuple[str, TuneTask]]:
    """(name, task) pairs covering the Table-4 MoE shape table."""
    tasks: list[tuple[str, TuneTask]] = []
    for shape in shapes:
        for kernel in kernels:
            fam = _sweep_family(kernel, "moe", "MoE")
            tasks.extend(fam.sweep_entries(shape, world=world, spec=spec,
                                           preset=preset,
                                           router_seed=router_seed))
    return tasks


def attention_sweep_tasks(shapes: Sequence[AttnShape],
                          kernels: Sequence[str] = ("ag_attention",),
                          world: int = DEFAULT_WORLD, *,
                          spec: HardwareSpec = H800, preset: str = "small",
                          causal: bool = True) -> list[tuple[str, TuneTask]]:
    """(name, task) pairs covering the Figure-10 attention sweep."""
    tasks: list[tuple[str, TuneTask]] = []
    for shape in shapes:
        for kernel in kernels:
            fam = _sweep_family(kernel, "attention", "attention")
            tasks.extend(fam.sweep_entries(shape, world=world, spec=spec,
                                           preset=preset, causal=causal))
    return tasks


def family_builders(kernel: str, *args, **kwargs):
    """Resolve ``kernel``'s registered bench builders and build the grid."""
    return get_family(kernel).bench_builders()(*args, **kwargs)


def registry_sweep_tasks(world: int = DEFAULT_WORLD, *,
                         spec: HardwareSpec = H800,
                         ) -> list[tuple[str, TuneTask]]:
    """Every warm-cached family's shipped sweep tasks, registry-driven.

    This is the warm-cache refresh script's expected task set: exactly
    the families registered with a ``warm_tasks`` hook contribute.
    """
    from repro.registry import families

    tasks: list[tuple[str, TuneTask]] = []
    for fam in families().values():
        if fam.warm_tasks is None:
            continue
        tasks.extend(fam.warm_tasks(world, spec) or [])
    return tasks


# ---------------------------------------------------------------------------
# MoE parts (Figure 9)
# ---------------------------------------------------------------------------

def _moe_setup(ctx: DistContext, shape: MoeShape, block_m: int = 128):
    world = ctx.world_size
    cfg = MoeConfig(m=shape.s, h=shape.h, i=shape.i, n_experts=shape.e,
                    topk=shape.topk, block_m=block_m)
    logits = random_router_logits(shape.s, shape.e, seed=17)
    routing = build_moe_routing(logits, shape.s // world, world, shape.topk,
                                block_m=block_m)
    return cfg, routing


def moe_part1_builders(shape: MoeShape, world: int = DEFAULT_WORLD, *,
                       tuned: bool | None = None,
                       tune_cache: TuneCache | None = None,
                       tune_preset: str = "small",
                       tune_max_trials: int | None = None,
                       ) -> dict[str, Callable[[DistContext], None]]:
    def make_task(w: int, spec: HardwareSpec) -> TuneTask:
        return ag_moe_tune_task(shape.s, shape.h, shape.i // w, shape.e,
                                shape.topk, world=w, spec=spec,
                                preset=tune_preset)

    tuned, tune_cache, auto = _resolve_tuned(
        tuned, tune_cache, make_task, world, max_trials=tune_max_trials)

    def make(impl: str) -> Callable[[DistContext], None]:
        def build(ctx: DistContext) -> None:
            p1 = None
            block_m = 128
            if impl == "tilelink-tuned":
                # resolve the tuned config first: the routing granularity
                # must follow the tuned row tile
                if auto:
                    p1 = _warm_tuned_config(tune_cache, make_task, ctx,
                                            max_trials=tune_max_trials)
                else:
                    p1 = AgMoeConfig.autotune(
                        shape.s, shape.h, shape.i // ctx.world_size,
                        shape.e, shape.topk, world=ctx.world_size,
                        spec=ctx.machine.config.spec,
                        cache=(tune_cache if tune_cache is not None
                               else TuneCache()),
                        preset=tune_preset, max_trials=tune_max_trials)
                if p1 is not None:
                    block_m = p1.block_m
            cfg, routing = _moe_setup(ctx, shape, block_m=block_m)
            ishard = cfg.i_shard(ctx.world_size)
            ctx.alloc("x", (cfg.m // ctx.world_size, cfg.h), "float16",
                      fill=None)
            if impl in ("tilelink", "tilelink-tuned"):
                ctx.alloc("w1", (cfg.n_experts * cfg.h, ishard), "float16",
                          fill=None)
                ctx.alloc("g", (routing.padded_rows, ishard), "float16",
                          fill=None)
                if p1 is None:
                    p1 = AgMoeConfig(m=cfg.m, h=cfg.h, d=ishard,
                                     n_experts=cfg.n_experts, topk=cfg.topk,
                                     block_m=cfg.block_m)
                ag_moe_overlapped(ctx, p1, routing, "x", "w1", "g")
            else:
                ctx.alloc("w1", (cfg.n_experts, cfg.h, ishard), "float16",
                          fill=None)
                ctx.alloc("g", (len(routing.sorted_token_ids), ishard),
                          "float16", fill=None)
                vllm_moe.moe_part1_baseline(ctx, cfg, routing, impl, "x",
                                            "w1", "g")
        return build

    out = {"cuBLAS+NCCL": make("cublas"), "CUTLASS+NCCL": make("cutlass"),
           "vLLM-Op": make("vllm"), "TileLink": make("tilelink")}
    if tuned:
        out["TileLink-tuned"] = make("tilelink-tuned")
    return out


def moe_part2_builders(shape: MoeShape, world: int = DEFAULT_WORLD, *,
                       tuned: bool | None = None,
                       tune_cache: TuneCache | None = None,
                       tune_preset: str = "small",
                       tune_max_trials: int | None = None,
                       ) -> dict[str, Callable[[DistContext], None]]:
    def make_task(w: int, spec: HardwareSpec) -> TuneTask:
        return moe_rs_tune_task(shape.s, shape.h, shape.i // w, shape.e,
                                shape.topk, world=w, spec=spec,
                                preset=tune_preset)

    tuned, tune_cache, auto = _resolve_tuned(
        tuned, tune_cache, make_task, world, max_trials=tune_max_trials)

    def make(impl: str) -> Callable[[DistContext], None]:
        def build(ctx: DistContext) -> None:
            p2 = None
            block_m = 128
            if impl == "tilelink-tuned":
                if auto:
                    p2 = _warm_tuned_config(tune_cache, make_task, ctx,
                                            max_trials=tune_max_trials)
                else:
                    p2 = MoeRsConfig.autotune(
                        shape.s, shape.h, shape.i // ctx.world_size,
                        shape.e, shape.topk, world=ctx.world_size,
                        spec=ctx.machine.config.spec,
                        cache=(tune_cache if tune_cache is not None
                               else TuneCache()),
                        preset=tune_preset, max_trials=tune_max_trials)
                if p2 is not None:
                    block_m = p2.block_m
            cfg, routing = _moe_setup(ctx, shape, block_m=block_m)
            ishard = cfg.i_shard(ctx.world_size)
            ctx.alloc("y", (cfg.m // ctx.world_size, cfg.h), "float32",
                      fill=None)
            if impl in ("tilelink", "tilelink-tuned"):
                ctx.alloc("g", (routing.padded_rows, ishard), "float16",
                          fill=None)
                ctx.alloc("w2", (cfg.n_experts * ishard, cfg.h), "float16",
                          fill=None)
                if p2 is None:
                    p2 = MoeRsConfig(m=cfg.m, h=cfg.h, d=ishard,
                                     block_m=cfg.block_m)
                moe_rs_overlapped(ctx, p2, routing, "g", "w2", "y")
            else:
                ctx.alloc("g", (len(routing.sorted_token_ids), ishard),
                          "float16", fill=None)
                ctx.alloc("w2", (cfg.n_experts, ishard, cfg.h), "float16",
                          fill=None)
                vllm_moe.moe_part2_baseline(ctx, cfg, routing, impl, "g",
                                            "w2", "y")
        return build

    out = {"cuBLAS+NCCL": make("cublas"), "CUTLASS+NCCL": make("cutlass"),
           "vLLM-Op": make("vllm"), "TileLink": make("tilelink")}
    if tuned:
        out["TileLink-tuned"] = make("tilelink-tuned")
    return out


def moe_layer_builders(shape: MoeShape, world: int = DEFAULT_WORLD
                       ) -> dict[str, Callable[[DistContext], None]]:
    def make(impl: str) -> Callable[[DistContext], None]:
        def build(ctx: DistContext) -> None:
            cfg, routing = _moe_setup(ctx, shape)
            ishard = cfg.i_shard(ctx.world_size)
            ctx.alloc("x", (cfg.m // ctx.world_size, cfg.h), "float16",
                      fill=None)
            ctx.alloc("y", (cfg.m // ctx.world_size, cfg.h), "float32",
                      fill=None)
            if impl == "tilelink":
                ctx.alloc("w1", (cfg.n_experts * cfg.h, ishard), "float16",
                          fill=None)
                ctx.alloc("w2", (cfg.n_experts * ishard, cfg.h), "float16",
                          fill=None)
                moe_layer_tilelink(ctx, cfg, routing, "x", "w1", "w2", "y")
            else:
                ctx.alloc("w1", (cfg.n_experts, cfg.h, ishard), "float16",
                          fill=None)
                ctx.alloc("w2", (cfg.n_experts, ishard, cfg.h), "float16",
                          fill=None)
                vllm_moe.moe_layer_baseline(ctx, cfg, routing, impl, "x",
                                            "w1", "w2", "y")
        return build

    return {"cuBLAS+NCCL": make("cublas"), "CUTLASS+NCCL": make("cutlass"),
            "vLLM-Op": make("vllm"), "TileLink": make("tilelink")}


# ---------------------------------------------------------------------------
# Attention (Figure 10)
# ---------------------------------------------------------------------------

def attention_builders(shape: AttnShape, seq_len: int,
                       world: int = DEFAULT_WORLD, *,
                       tuned: bool | None = None,
                       tune_cache: TuneCache | None = None,
                       tune_preset: str = "small",
                       tune_max_trials: int | None = None,
                       ) -> dict[str, Callable[[DistContext], None]]:
    cfg = AgAttentionConfig(heads=shape.heads, head_dim=shape.head_dim,
                            seq_len=seq_len, causal=True)

    def make_task(w: int, spec: HardwareSpec) -> TuneTask:
        return ag_attention_tune_task(shape.heads, shape.head_dim, seq_len,
                                      causal=True, world=w, spec=spec,
                                      preset=tune_preset)

    tuned, tune_cache, auto = _resolve_tuned(
        tuned, tune_cache, make_task, world, max_trials=tune_max_trials)

    def _alloc(ctx: DistContext) -> None:
        s_per = cfg.seq_len // ctx.world_size
        for name in ("q", "k", "v"):
            ctx.alloc(name, (s_per, cfg.width), "float16", fill=None)
        ctx.alloc("o", (s_per, cfg.width), "float32", fill=None)

    def torch_build(ctx: DistContext) -> None:
        _alloc(ctx)
        nonoverlap.attention_nonoverlap(ctx, cfg, "q", "k", "v", "o")

    def ring_build(ctx: DistContext) -> None:
        _alloc(ctx)
        ring_attention(ctx, cfg, "q", "k", "v", "o")

    def tl_build(ctx: DistContext) -> None:
        _alloc(ctx)
        ag_attention_overlapped(ctx, cfg, "q", "k", "v", "o")

    out = {"Torch": torch_build, "RingAttn": ring_build,
           "TileLink": tl_build}
    if tuned:
        def tl_tuned(ctx: DistContext) -> None:
            _alloc(ctx)
            if auto:
                tcfg = _warm_tuned_config(tune_cache, make_task, ctx,
                                          max_trials=tune_max_trials) or cfg
            else:
                tcfg = AgAttentionConfig.autotune(
                    shape.heads, shape.head_dim, seq_len, causal=True,
                    world=ctx.world_size, spec=ctx.machine.config.spec,
                    cache=(tune_cache if tune_cache is not None
                           else TuneCache()),
                    preset=tune_preset, max_trials=tune_max_trials)
            ag_attention_overlapped(ctx, tcfg, "q", "k", "v", "o")

        out["TileLink-tuned"] = tl_tuned
    return out


def attention_overlap_ratio(shape: AttnShape, seq_len: int,
                            world: int = DEFAULT_WORLD) -> float:
    """ratio = (comp_only + comm_only - overlap) / comm_only (Figure 10)."""
    cfg = AgAttentionConfig(heads=shape.heads, head_dim=shape.head_dim,
                            seq_len=seq_len, causal=True)
    s_per = cfg.seq_len // world

    def comm_only(ctx: DistContext) -> None:
        from repro.collectives.copy_engine import dma_all_gather
        for name in ("k", "v"):
            ctx.alloc(name, (s_per, cfg.width), "float16", fill=None)
            ctx.alloc(f"{name}.full", (cfg.seq_len, cfg.width), "float16",
                      fill=None)
            dma_all_gather(ctx, name, f"{name}.full", None,
                           stream_name="comm")

    def comp_only(ctx: DistContext) -> None:
        ctx.alloc("q", (s_per, cfg.width), "float16", fill=None)
        ctx.alloc("k", (cfg.seq_len, cfg.width), "float16", fill=None)
        ctx.alloc("o", (s_per, cfg.width), "float32", fill=None)
        for rank in range(ctx.world_size):
            flash_attention_op(
                ctx, rank, ctx.heap.tensor("q", rank),
                ctx.heap.tensor("k", rank), ctx.heap.tensor("k", rank),
                ctx.heap.tensor("o", rank), cfg.heads, cfg.head_dim,
                causal=True, q_offset=rank * s_per)

    def overlapped(ctx: DistContext) -> None:
        for name in ("q", "k", "v"):
            ctx.alloc(name, (s_per, cfg.width), "float16", fill=None)
        ctx.alloc("o", (s_per, cfg.width), "float32", fill=None)
        ag_attention_overlapped(ctx, cfg, "q", "k", "v", "o")

    t_comm = run_builder(comm_only, world=world)
    t_comp = run_builder(comp_only, world=world)
    t_over = run_builder(overlapped, world=world)
    return (t_comp + t_comm - t_over) / t_comm
