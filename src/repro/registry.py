"""Declarative kernel-family registry (the single registration point).

Adding an overlapped kernel family used to mean hand-edits in six layers:
``kernels/``, the tuner task lists, ``analyze/registry.py``'s plan table,
``bench/experiments.py``'s per-family builders, the warm-cache refresh
script and the serving ``method`` strings.  This module collapses all of
that into one declarative :class:`KernelFamily` record and a single
:func:`register_family` call made from the family's own module:

* the static analyzer (``repro.analyze``) enumerates ``analyze_plans``,
* the tuner sweep drivers enumerate ``sweep_entries`` / ``warm_tasks``,
* the bench harness resolves ``bench_builders``,
* the serving stack resolves extra ``method`` names via ``serve_method``.

Discovery is import-driven: :func:`discover` imports every module under
``repro.kernels`` once, and each module registers itself at import time.
A family that lives elsewhere (e.g. an example script) can call
:func:`register_family` directly — consumers only ever see the registry.

Module-scope imports here are restricted to the stdlib plus
``repro.errors`` so any layer can import the registry without cycles.

CLI::

    python -m repro.registry --list [--json]
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import json
import pkgutil
import sys
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RegistryError

__all__ = [
    "BASE_SERVE_METHODS",
    "KernelFamily",
    "ServeMethod",
    "discover",
    "families",
    "get_family",
    "main",
    "register_family",
    "resolve_serve_method",
    "serve_method_names",
]

#: Serving methods every model variant supports without any registration
#: (the historical ``models.transformer.METHODS`` tuple).
BASE_SERVE_METHODS = ("torch", "tilelink", "tilelink-tuned")


@dataclass(frozen=True)
class ServeMethod:
    """An extra entry on the serving ``method`` axis.

    ``base`` names the built-in method whose layer construction is reused;
    ``op_overrides`` swaps individual op slots (``"ag_gemm"``/``"gemm_rs"``)
    for the family's own launcher, with signature
    ``fn(ctx, m, n, k, x, w, out, *, tag, warm=None)``.  ``shipped`` marks
    methods baked into the shipped latency table (the refresh scripts only
    expect shipped methods).
    """

    name: str
    base: str = "tilelink"
    op_overrides: dict[str, Callable[..., Any]] = field(default_factory=dict)
    shipped: bool = False


@dataclass(frozen=True)
class KernelFamily:
    """Everything the stack needs to know about one overlapped-kernel family."""

    #: registry key; also the tuner kernel name and analyzer family name
    name: str
    #: the launch config dataclass (``XxxConfig``)
    config_cls: type
    #: launcher: ``launch(ctx, cfg, *tensor_names, ...)``
    launch: Callable[..., Any]
    #: zero-arg factory -> ``SearchSpace`` for a representative small shape
    search_space: Callable[[], Any]
    #: zero-arg factory -> ``TuneTask`` for a representative small shape
    tune_task: Callable[[], Any]
    #: zero-arg factory -> list of zero-arg analyzer plan thunks
    analyze_plans: Callable[[], list]
    #: zero-arg factory -> the family's bench builders function
    bench_builders: Callable[[], Callable[..., dict]]
    #: world sizes the analyzer plans cover
    worlds: tuple[int, ...]
    #: mapping modes the family exposes (empty when there is only one)
    modes: tuple[str, ...] = ()
    #: ``@kernel`` entry points (empty only for native, non-tile-IR families)
    kernels: tuple = ()
    #: False for natively-simulated families with no tile IR to analyze
    tile_ir: bool = True
    #: which sweep table the family belongs to ("mlp" / "moe" / "attention")
    sweep_category: str | None = None
    #: ``fn(shape, *, world, spec, preset, **kw) -> [(task_name, TuneTask)]``
    sweep_entries: Callable[..., list] | None = None
    #: ``fn(world, spec) -> [(task_name, TuneTask)]`` for the warm cache,
    #: or None when the family ships no warm-cache entries
    warm_tasks: Callable[..., list | None] | None = None
    #: ``fn(shape, world, **tune_kw) -> TuneResult`` (``tuned_vs_paper`` hook)
    shape_autotune: Callable[..., Any] | None = None
    #: extra serving method contributed by this family
    serve_method: ServeMethod | None = None
    #: one-line description
    doc: str = ""
    #: ``module:lineno`` of the register_family() call (filled automatically)
    provenance: str = ""


_REGISTRY: dict[str, KernelFamily] = {}
_SERVE_METHODS: dict[str, ServeMethod] = {}
_discovered = False

#: (field, human-readable requirement) — validated before insertion so a
#: partial registration fails loudly, naming the missing piece.
_REQUIRED_CALLABLES = (
    ("launch", "launch builder"),
    ("search_space", "search_space factory"),
    ("tune_task", "tune_task factory"),
    ("analyze_plans", "analyze_plans factory"),
    ("bench_builders", "bench_builders factory"),
)


def register_family(
    *,
    name: str,
    config_cls: type | None = None,
    launch: Callable | None = None,
    search_space: Callable | None = None,
    tune_task: Callable | None = None,
    analyze_plans: Callable | None = None,
    bench_builders: Callable | None = None,
    worlds: tuple[int, ...] = (),
    modes: tuple[str, ...] = (),
    kernels: tuple = (),
    tile_ir: bool = True,
    sweep_category: str | None = None,
    sweep_entries: Callable | None = None,
    warm_tasks: Callable | None = None,
    shape_autotune: Callable | None = None,
    serve_method: ServeMethod | None = None,
    doc: str = "",
) -> KernelFamily:
    """Validate and insert one :class:`KernelFamily`.

    Raises :class:`~repro.errors.RegistryError` naming the missing piece
    when the record is incomplete; nothing is inserted on failure.
    """
    if not name or not isinstance(name, str):
        raise RegistryError("kernel family needs a non-empty string name")

    def bad(piece: str) -> RegistryError:
        return RegistryError(
            f"kernel family {name!r} is missing its {piece}; "
            f"register_family() needs every consumer hook (tuner, analyzer, "
            f"bench, launch) to be provided"
        )

    if name in _REGISTRY:
        raise RegistryError(
            f"kernel family {name!r} is already registered "
            f"(from {_REGISTRY[name].provenance})"
        )
    if config_cls is None or not dataclasses.is_dataclass(config_cls):
        raise bad("config dataclass (config_cls)")
    for fname, piece in _REQUIRED_CALLABLES:
        if not callable(locals()[fname]):
            raise bad(f"{piece} ({fname})")
    if not worlds:
        raise bad("supported world sizes (worlds)")
    if tile_ir:
        if not kernels:
            raise bad("@kernel entry points (kernels)")
        for kdef in kernels:
            meta = getattr(kdef, "meta", None) or {}
            if "role" not in meta or "outputs" not in meta:
                kname = getattr(kdef, "name", repr(kdef))
                raise RegistryError(
                    f"kernel family {name!r}: kernel {kname!r} has no "
                    f"'role'/'outputs' meta annotations "
                    f"(set them via <kernel>.meta.update(...))"
                )
    if serve_method is not None:
        if not isinstance(serve_method, ServeMethod):
            raise bad("serve_method (expected a ServeMethod)")
        if serve_method.name in BASE_SERVE_METHODS:
            raise RegistryError(
                f"kernel family {name!r}: serving method "
                f"{serve_method.name!r} collides with a base method"
            )
        if serve_method.name in _SERVE_METHODS:
            raise RegistryError(
                f"kernel family {name!r}: serving method "
                f"{serve_method.name!r} is already registered"
            )
        if serve_method.base not in BASE_SERVE_METHODS:
            raise RegistryError(
                f"kernel family {name!r}: serving method base "
                f"{serve_method.base!r} is not one of {BASE_SERVE_METHODS}"
            )

    caller = sys._getframe(1)
    provenance = f"{caller.f_globals.get('__name__', '?')}:{caller.f_lineno}"
    family = KernelFamily(
        name=name, config_cls=config_cls, launch=launch,
        search_space=search_space, tune_task=tune_task,
        analyze_plans=analyze_plans, bench_builders=bench_builders,
        worlds=tuple(worlds), modes=tuple(modes), kernels=tuple(kernels),
        tile_ir=tile_ir, sweep_category=sweep_category,
        sweep_entries=sweep_entries, warm_tasks=warm_tasks,
        shape_autotune=shape_autotune, serve_method=serve_method,
        doc=doc, provenance=provenance,
    )
    _REGISTRY[name] = family
    if serve_method is not None:
        _SERVE_METHODS[serve_method.name] = serve_method
    return family


def discover() -> None:
    """Import every ``repro.kernels`` module once so families self-register."""
    global _discovered
    if _discovered:
        return
    _discovered = True
    pkg = importlib.import_module("repro.kernels")
    for info in pkgutil.iter_modules(pkg.__path__):
        importlib.import_module(f"repro.kernels.{info.name}")


def families() -> dict[str, KernelFamily]:
    """All registered families, keyed by name (triggers discovery)."""
    discover()
    return dict(_REGISTRY)


def get_family(name: str) -> KernelFamily:
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown kernel family {name!r}; registered: "
            f"{', '.join(_REGISTRY) or '(none)'}"
        ) from None


def serve_method_names(*, shipped_only: bool = False) -> tuple[str, ...]:
    """The serving ``method`` axis: base methods + registered extras."""
    discover()
    extras = [
        m.name for m in _SERVE_METHODS.values()
        if m.shipped or not shipped_only
    ]
    return tuple(BASE_SERVE_METHODS) + tuple(extras)


def resolve_serve_method(name: str) -> tuple[str, dict[str, Callable]]:
    """Resolve a method name to ``(base_method, op_overrides)``."""
    if name in BASE_SERVE_METHODS:
        return name, {}
    discover()
    method = _SERVE_METHODS.get(name)
    if method is None:
        raise RegistryError(
            f"unknown serving method {name!r}; available: "
            f"{', '.join(serve_method_names())}"
        )
    return method.base, dict(method.op_overrides)


# ---------------------------------------------------------------------------
# CLI: python -m repro.registry --list [--json]
# ---------------------------------------------------------------------------

def _manifest() -> dict:
    fams = []
    for fam in families().values():
        fams.append({
            "name": fam.name,
            "doc": fam.doc,
            "config": fam.config_cls.__name__,
            "worlds": list(fam.worlds),
            "modes": list(fam.modes),
            "tile_ir": fam.tile_ir,
            "kernels": [k.name for k in fam.kernels],
            "plans": len(fam.analyze_plans()),
            "sweep_category": fam.sweep_category,
            "warm_cached": fam.warm_tasks is not None,
            "serve_method": (fam.serve_method.name
                             if fam.serve_method else None),
            "provenance": fam.provenance,
        })
    return {
        "families": fams,
        "serve_methods": list(serve_method_names()),
        "shipped_serve_methods": list(serve_method_names(shipped_only=True)),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.registry",
        description="inspect the declarative kernel-family registry",
    )
    parser.add_argument("--list", action="store_true",
                        help="list registered families (default action)")
    parser.add_argument("--json", action="store_true",
                        help="emit the manifest as JSON")
    args = parser.parse_args(argv)

    manifest = _manifest()
    if args.json:
        print(json.dumps(manifest, indent=2))
        return 0
    for fam in manifest["families"]:
        modes = ",".join(fam["modes"]) or "-"
        print(f"{fam['name']}: worlds={fam['worlds']} modes={modes} "
              f"plans={fam['plans']} kernels={len(fam['kernels'])} "
              f"[{fam['provenance']}]")
    print(f"serving methods: {', '.join(manifest['serve_methods'])}")
    return 0


if __name__ == "__main__":
    # ``python -m repro.registry`` executes this file as ``__main__`` while
    # the kernel modules register into the canonically-imported
    # ``repro.registry`` — delegate so both see the same registry.
    from repro.registry import main as _canonical_main

    sys.exit(_canonical_main())
