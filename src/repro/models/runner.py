"""End-to-end model timing — one simulation entry point, two consumers.

:func:`layer_time` simulates one steady-state transformer layer per
(model, method) pair; it is shared by the Figure-11 end-to-end tables
(:func:`e2e_model_time` scales it by the layer count — layer times are
homogeneous in these architectures, so per-layer x n_layers matches
simulating the whole stack while keeping the event count tractable) and
by the serving simulator's step-latency table
(:mod:`repro.serve.latency`, which memoises it over token-count buckets
so the request loop never touches the discrete-event engine).

``method`` is one of :data:`repro.models.transformer.METHODS`:
``"torch"`` (cuBLAS+NCCL baselines), ``"tilelink"`` (overlapped kernels,
paper configs) or ``"tilelink-tuned"`` (overlapped kernels with each
op's config resolved through the shipped warm tuner cache — a pure
lookup that falls back to the paper config on a miss and never runs a
tuning search inside the timed build) — or any extra serving method a
kernel family contributes through the registry
(:func:`repro.registry.serve_method_names` lists the full axis).

Multi-node (16 GPU) runs model the paper's DP-across-nodes / TP-in-node
deployment: each node runs the same TP-8 layer, plus a per-layer
inter-node synchronization term (parameter-server style bookkeeping over
the NIC) that both systems pay equally — which is why the paper's 16-GPU
speedup (1.29x) lands slightly below the 8-GPU one (1.32x).
"""

from __future__ import annotations

from repro.config import HardwareSpec, SimConfig
from repro.models.configs import ModelConfig
from repro.models.transformer import METHODS, build_layer
from repro.runtime.context import DistContext

__all__ = ["METHODS", "layer_time", "inter_node_overhead", "e2e_model_time"]


def layer_time(model: ModelConfig, method: str, world: int = 8,
               seed: int = 0, spec: HardwareSpec | None = None) -> float:
    """Simulated seconds for one transformer layer."""
    kwargs = {} if spec is None else {"spec": spec}
    cfg = SimConfig(world_size=world, execute_numerics=False, seed=seed,
                    **kwargs)
    ctx = DistContext.create(cfg)
    build_layer(ctx, model, method)
    return ctx.run()


def inter_node_overhead(model: ModelConfig, world: int = 8) -> float:
    """Per-layer cross-node synchronization cost (both systems pay it)."""
    cfg = SimConfig(world_size=world)
    nic_bw = cfg.spec.inter_node_bandwidth
    # exchange one activation-row block of metadata + sync round trips
    sync_bytes = model.hidden * model.batch * 2.0 * 64
    return 4 * cfg.spec.inter_node_latency + sync_bytes / nic_bw


def e2e_model_time(model: ModelConfig, method: str, world: int = 8,
                   n_nodes: int = 1, seed: int = 0,
                   spec: HardwareSpec | None = None) -> float:
    """Simulated seconds for a full forward pass of the model."""
    per_layer = layer_time(model, method, world=world, seed=seed, spec=spec)
    if n_nodes > 1:
        per_layer += inter_node_overhead(model, world)
    return per_layer * model.n_layers
