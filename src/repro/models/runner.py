"""End-to-end model timing (Figure 11).

The runner simulates one steady-state transformer layer per (model,
method) pair and scales by the layer count — layer times are homogeneous
in these architectures, so per-layer x n_layers matches simulating the
whole stack while keeping the event count tractable.

Multi-node (16 GPU) runs model the paper's DP-across-nodes / TP-in-node
deployment: each node runs the same TP-8 layer, plus a per-layer
inter-node synchronization term (parameter-server style bookkeeping over
the NIC) that both systems pay equally — which is why the paper's 16-GPU
speedup (1.29x) lands slightly below the 8-GPU one (1.32x).
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.models.configs import ModelConfig
from repro.models.transformer import build_layer
from repro.runtime.context import DistContext


def layer_time(model: ModelConfig, method: str, world: int = 8,
               seed: int = 0) -> float:
    """Simulated seconds for one transformer layer."""
    cfg = SimConfig(world_size=world, execute_numerics=False, seed=seed)
    ctx = DistContext.create(cfg)
    build_layer(ctx, model, method)
    return ctx.run()


def inter_node_overhead(model: ModelConfig, world: int = 8) -> float:
    """Per-layer cross-node synchronization cost (both systems pay it)."""
    cfg = SimConfig(world_size=world)
    nic_bw = cfg.spec.inter_node_bandwidth
    # exchange one activation-row block of metadata + sync round trips
    sync_bytes = model.hidden * model.batch * 2.0 * 64
    return 4 * cfg.spec.inter_node_latency + sync_bytes / nic_bw


def e2e_model_time(model: ModelConfig, method: str, world: int = 8,
                   n_nodes: int = 1, seed: int = 0) -> float:
    """Simulated seconds for a full forward pass of the model."""
    per_layer = layer_time(model, method, world=world, seed=seed)
    if n_nodes > 1:
        per_layer += inter_node_overhead(model, world)
    return per_layer * model.n_layers
