"""Workload configurations: Table 4 benchmark shapes + Figure 11 models.

The single-layer benchmark shapes are copied from the paper's Table 4
verbatim; the end-to-end models use the published architectures of the
eight LLMs the paper evaluates (batch 4, sequence 8192 — §7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


# --------------------------------------------------------------------------
# Table 4 — single-layer benchmark shapes
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class MlpShape:
    name: str
    s: int
    h: int
    i: int
    source: str


MLP_BENCHES: list[MlpShape] = [
    MlpShape("MLP-1", 8192, 4096, 11008, "LLaMA-7B"),
    MlpShape("MLP-2", 8192, 4096, 14336, "LLaMA-3.1-8B"),
    MlpShape("MLP-3", 8192, 3584, 14336, "Gemma-2-9B"),
    MlpShape("MLP-4", 8192, 4608, 36864, "Gemma-2-27B"),
    MlpShape("MLP-5", 8192, 8192, 28672, "LLaMA-3.1-70B"),
    MlpShape("MLP-6", 8192, 8192, 29568, "Qwen-2-72B"),
]


@dataclass(frozen=True)
class MoeShape:
    name: str
    s: int
    h: int
    i: int
    e: int
    topk: int


MOE_BENCHES: list[MoeShape] = [
    MoeShape("MoE-1", 8192, 2048, 1536, 8, 2),
    MoeShape("MoE-2", 8192, 2048, 1536, 32, 2),
    MoeShape("MoE-3", 8192, 2048, 1536, 32, 5),
    MoeShape("MoE-4", 8192, 4096, 2048, 8, 2),
    MoeShape("MoE-5", 8192, 4096, 2048, 32, 2),
    MoeShape("MoE-6", 8192, 4096, 2048, 32, 5),
]


@dataclass(frozen=True)
class AttnShape:
    name: str
    heads: int
    head_dim: int
    seq_lens: tuple[int, ...]


ATTENTION_BENCHES: list[AttnShape] = [
    AttnShape("Attn-1", 32, 128, (16384, 32768, 65536, 131072)),
    AttnShape("Attn-2", 64, 128, (16384, 32768, 65536, 131072)),
]


# --------------------------------------------------------------------------
# Figure 11 — end-to-end models (batch 4, sequence 8192)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ModelConfig:
    """One LLM of the end-to-end evaluation.

    ``moe`` models replace the dense MLP with an expert layer;
    ``shared_intermediate`` > 0 adds a dense (shared-expert) MLP beside the
    MoE layer (Qwen1.5's architecture — §7.3).

    ``kv_len`` > 0 switches the attention core into decode mode: the
    step's tokens are queries attending over ``kv_len`` resident
    KV-cache tokens (non-causal, the cache is all past context) instead
    of causally over themselves.  The serving latency table probes the
    same architecture over a (step-tokens, kv_len) grid this way.
    """

    name: str
    n_layers: int
    hidden: int
    heads: int
    head_dim: int
    intermediate: int
    moe: bool = False
    n_experts: int = 0
    topk: int = 0
    shared_intermediate: int = 0
    batch: int = 4
    seq_len: int = 8192
    kv_len: int = 0

    @property
    def tokens(self) -> int:
        return self.batch * self.seq_len

    def with_tokens(self, tokens: int) -> "ModelConfig":
        """This architecture at a different step size (batch 1 x
        ``tokens``) — the serving simulator's step-latency table probes
        each model over a ladder of these variants."""
        return replace(self, batch=1, seq_len=tokens)

    def with_context(self, kv_tokens: int) -> "ModelConfig":
        """This variant attending over ``kv_tokens`` resident KV-cache
        tokens (the latency table's context-bucket axis)."""
        return replace(self, kv_len=kv_tokens)

    def kv_bytes_per_token(self, dtype_bytes: int = 2) -> int:
        """Whole-model KV-cache footprint of one token, in bytes
        (K and V per layer, every head, summed over the node's shards)."""
        return 2 * self.n_layers * self.heads * self.head_dim * dtype_bytes


E2E_MODELS: list[ModelConfig] = [
    ModelConfig("GPT3-6.7B", 32, 4096, 32, 128, 16384),
    ModelConfig("LLaMA2-7B", 32, 4096, 32, 128, 11008),
    ModelConfig("LLaMA2-13B", 40, 5120, 40, 128, 13824),
    ModelConfig("LLaMA2-70B", 80, 8192, 64, 128, 28672),
    ModelConfig("GPT3-175B", 96, 12288, 96, 128, 49152),
    ModelConfig("Mixtral-8x7B", 32, 4096, 32, 128, 14336,
                moe=True, n_experts=8, topk=2),
    ModelConfig("Mixtral-8x22B", 56, 6144, 48, 128, 16384,
                moe=True, n_experts=8, topk=2),
    ModelConfig("Qwen1.5-2.7B", 24, 2048, 16, 128, 1408,
                moe=True, n_experts=16, topk=4, shared_intermediate=5632),
]
