"""Model zoo + end-to-end runner for Figure 11."""

from repro.models.configs import (
    ATTENTION_BENCHES,
    E2E_MODELS,
    MLP_BENCHES,
    MOE_BENCHES,
    ModelConfig,
)
from repro.models.runner import e2e_model_time

__all__ = [
    "ATTENTION_BENCHES",
    "E2E_MODELS",
    "MLP_BENCHES",
    "MOE_BENCHES",
    "ModelConfig",
    "e2e_model_time",
]
