"""Transformer-layer builders for the end-to-end evaluation (Figure 11).

One layer = attention block + FFN block under Megatron-style tensor
parallelism with sequence-sharded activations:

* QKV projection   — AllGather + GEMM        (overlappable)
* core attention   — flash attention, local heads (identical in both
  systems; TileLink does not change the core in the e2e setting)
* output projection — GEMM + ReduceScatter   (overlappable)
* MLP / MoE        — AG+GEMM, activation, GEMM+RS (overlappable)

``method`` selects how the overlappable ops run: ``"torch"`` uses the
cuBLAS+NCCL non-overlap baselines, ``"tilelink"`` the overlapped kernels.
Coarser 256-tiles keep the event count tractable at batch 4 x seq 8192.
"""

from __future__ import annotations

from repro.baselines import nonoverlap, vllm_moe
from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped
from repro.kernels.gemm_rs import GemmRsConfig, gemm_rs_overlapped
from repro.kernels.moe_common import MoeRouting, build_moe_routing, \
    random_router_logits
from repro.kernels.moe_layer import MoeConfig, moe_layer_tilelink
from repro.kernels.mlp import MlpConfig, mlp_layer_tilelink
from repro.models.configs import ModelConfig
from repro.ops.activation import silu_op
from repro.ops.attention import flash_attention_op
from repro.runtime.context import DistContext

#: e2e tile sizes (coarser than the single-layer benches, for speed)
BM, BN, BK, BMR, BNR = 256, 256, 64, 256, 512
MOE_BLOCK_M = 256


def _ag_gemm(ctx: DistContext, method: str, m: int, n: int, k: int,
             x: str, w: str, out: str, tag: str) -> None:
    if method == "tilelink":
        cfg = AgGemmConfig(m=m, n=n, k=k, block_m=BM, block_n=BN, block_k=BK,
                           block_mp=BM, mode="dma")
        ag_gemm_overlapped(ctx, cfg, x, w, out, tag=tag)
    else:
        nonoverlap.ag_gemm_nonoverlap(ctx, m, n, k, x, w, out, tag=tag)


def _gemm_rs(ctx: DistContext, method: str, m: int, n: int, k: int,
             x: str, w: str, out: str, tag: str) -> None:
    if method == "tilelink":
        cfg = GemmRsConfig(m=m, n=n, k=k, block_m=BM, block_n=BN, block_k=BK,
                           block_mr=BMR, block_nr=BNR, mode="hybrid")
        gemm_rs_overlapped(ctx, cfg, x, w, out, tag=tag)
    else:
        nonoverlap.gemm_rs_nonoverlap(ctx, m, n, k, x, w, out, tag=tag)


def build_attention_block(ctx: DistContext, model: ModelConfig, method: str,
                          tag: str = "attn") -> None:
    """QKV projection + core flash attention + output projection."""
    world = ctx.world_size
    tokens = model.tokens
    h = model.hidden
    qkv_width = 3 * model.heads * model.head_dim // world
    heads_local = max(1, model.heads // world)

    ctx.alloc(f"{tag}.x", (tokens // world, h), "float16", fill=None)
    ctx.alloc(f"{tag}.w_qkv", (h, qkv_width), "float16", fill=None)
    ctx.alloc(f"{tag}.qkv", (tokens, qkv_width), "float16", fill=None)
    _ag_gemm(ctx, method, tokens, qkv_width, h,
             f"{tag}.x", f"{tag}.w_qkv", f"{tag}.qkv", tag=f"{tag}.qkv_proj")

    # core attention: per (batch x local head) over the full sequence
    attn_w = model.heads * model.head_dim // world
    q = ctx.alloc(f"{tag}.q", (model.seq_len, model.batch * attn_w),
                  "float16", fill=None)
    o = ctx.alloc(f"{tag}.o", (model.seq_len, model.batch * attn_w),
                  "float16", fill=None)
    for rank in range(world):
        flash_attention_op(
            ctx, rank, q[rank], q[rank], q[rank], o[rank],
            heads=model.batch * heads_local, dim=model.head_dim, causal=True)

    ctx.alloc(f"{tag}.ctx", (tokens, attn_w), "float16", fill=None)
    ctx.alloc(f"{tag}.w_o", (attn_w, h), "float16", fill=None)
    ctx.alloc(f"{tag}.out", (tokens // world, h), "float32", fill=None)
    _gemm_rs(ctx, method, tokens, h, attn_w,
             f"{tag}.ctx", f"{tag}.w_o", f"{tag}.out", tag=f"{tag}.o_proj")


def build_ffn_block(ctx: DistContext, model: ModelConfig, method: str,
                    routing: MoeRouting | None = None,
                    tag: str = "ffn") -> None:
    """Dense MLP, MoE layer, or (Qwen) shared-expert MLP + MoE."""
    world = ctx.world_size
    tokens = model.tokens
    h = model.hidden

    def dense(i: int, sub: str) -> None:
        ctx.alloc(f"{sub}.x", (tokens // world, h), "float16", fill=None)
        ctx.alloc(f"{sub}.w1", (h, i // world), "float16", fill=None)
        ctx.alloc(f"{sub}.w2", (i // world, h), "float16", fill=None)
        ctx.alloc(f"{sub}.out", (tokens // world, h), "float32", fill=None)
        if method == "tilelink":
            cfg = MlpConfig(m=tokens, h=h, i=i, block_m=BM, block_n=BN,
                            block_k=BK, block_mr=BMR, block_nr=BNR)
            mlp_layer_tilelink(ctx, cfg, f"{sub}.x", f"{sub}.w1",
                               f"{sub}.w2", f"{sub}.out", tag=sub)
        else:
            cfg = MlpConfig(m=tokens, h=h, i=i)
            nonoverlap.mlp_nonoverlap(ctx, cfg, f"{sub}.x", f"{sub}.w1",
                                      f"{sub}.w2", f"{sub}.out", tag=sub)

    if not model.moe:
        dense(model.intermediate, f"{tag}.mlp")
        return

    if model.shared_intermediate > 0:
        dense(model.shared_intermediate, f"{tag}.shared")

    if routing is None:
        logits = random_router_logits(tokens, model.n_experts,
                                      seed=ctx.machine.config.seed)
        routing = build_moe_routing(logits, tokens // world, world,
                                    model.topk, block_m=MOE_BLOCK_M)
    cfg = MoeConfig(m=tokens, h=h, i=model.intermediate,
                    n_experts=model.n_experts, topk=model.topk,
                    block_m=MOE_BLOCK_M, block_n=BN, block_k=BK,
                    block_mr=BMR, block_nr=BNR)
    ishard = cfg.i_shard(world)
    ctx.alloc(f"{tag}.x", (tokens // world, h), "float16", fill=None)
    ctx.alloc(f"{tag}.out", (tokens // world, h), "float32", fill=None)
    if method == "tilelink":
        ctx.alloc(f"{tag}.w1", (model.n_experts * h, ishard), "float16",
                  fill=None)
        ctx.alloc(f"{tag}.w2", (model.n_experts * ishard, h), "float16",
                  fill=None)
        moe_layer_tilelink(ctx, cfg, routing, f"{tag}.x", f"{tag}.w1",
                           f"{tag}.w2", f"{tag}.out", tag=f"{tag}.moe")
    else:
        ctx.alloc(f"{tag}.w1", (model.n_experts, h, ishard), "float16",
                  fill=None)
        ctx.alloc(f"{tag}.w2", (model.n_experts, ishard, h), "float16",
                  fill=None)
        # eager-PyTorch MoE: per-expert index_select / GEMM / index_add
        # loops with host coordination (the "cublas" tier) — the paper's
        # Torch baseline runs eager MoE, not vLLM's fused op
        vllm_moe.moe_layer_baseline(ctx, cfg, routing, "cublas", f"{tag}.x",
                                    f"{tag}.w1", f"{tag}.w2", f"{tag}.out",
                                    tag=f"{tag}.moe")


def build_layer(ctx: DistContext, model: ModelConfig, method: str) -> None:
    """One full transformer layer (attention block + FFN block)."""
    build_attention_block(ctx, model, method)
    build_ffn_block(ctx, model, method)
