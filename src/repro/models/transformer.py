"""Transformer-layer builders for the end-to-end evaluation (Figure 11).

One layer = attention block + FFN block under Megatron-style tensor
parallelism with sequence-sharded activations:

* QKV projection   — AllGather + GEMM        (overlappable)
* core attention   — flash attention, local heads (identical in both
  systems; TileLink does not change the core in the e2e setting)
* output projection — GEMM + ReduceScatter   (overlappable)
* MLP / MoE        — AG+GEMM, activation, GEMM+RS (overlappable)

``method`` selects how the overlappable ops run: ``"torch"`` uses the
cuBLAS+NCCL non-overlap baselines, ``"tilelink"`` the overlapped kernels
with the paper's e2e configs, and ``"tilelink-tuned"`` additionally
resolves each overlappable op through the shipped warm tuner cache
(:mod:`repro.tuner.warm`) — a key hit swaps in the exhaustive-search
winner for that op's exact shape, a miss falls back to the paper config,
and no path ever simulates a tuning search inside a timed build.  The
MoE expert layer keeps the paper config under ``tilelink-tuned``: its
tuned ``block_m`` doubles as the routing granularity, and the shipped
sweep does not cover the e2e routing seeds.

Beyond the three base methods, kernel families registered with a
``serve_method`` (:mod:`repro.registry`) extend the axis: such a method
reuses a base method's layer construction but swaps individual op slots
(``"ag_gemm"``/``"gemm_rs"``) for the family's own launcher —
:func:`build_layer` resolves the name and threads the overrides through
both blocks.

Coarser 256-tiles keep the event count tractable at batch 4 x seq 8192;
row tiles shrink with the token count so short-sequence variants (the
serving simulator's step-latency buckets) stay tile-aligned.
"""

from __future__ import annotations

from repro.baselines import nonoverlap, vllm_moe
from repro.config import HardwareSpec
from repro.errors import RegistryError
from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped, \
    ag_gemm_tune_task
from repro.kernels.gemm_rs import GemmRsConfig, gemm_rs_overlapped, \
    gemm_rs_tune_task
from repro.kernels.moe_common import MoeRouting, build_moe_routing, \
    random_router_logits
from repro.kernels.moe_layer import MoeConfig, moe_layer_tilelink
from repro.kernels.mlp import MlpConfig, mlp_layer_tilelink
from repro.models.configs import ModelConfig
from repro.ops.activation import silu_op
from repro.ops.attention import flash_attention_op
from repro.registry import BASE_SERVE_METHODS, resolve_serve_method, \
    serve_method_names
from repro.runtime.context import DistContext
from repro.tuner.cache import TuneCache
from repro.tuner.space import TunerError
from repro.tuner.warm import resolve_warm_cache, warm_tuned_config

#: the base methods every layer builder accepts; registered families can
#: extend the axis (see :func:`repro.registry.serve_method_names`)
METHODS = BASE_SERVE_METHODS

#: e2e tile sizes (coarser than the single-layer benches, for speed)
BM, BN, BK, BMR, BNR = 256, 256, 64, 256, 512
MOE_BLOCK_M = 256


def _row_tile(base: int, tokens: int, world: int) -> int:
    """Row-tile size fitting ``tokens`` — the kernels require per-rank
    rows to be a multiple of every row tile, so token counts below
    ``world * base`` (short serving steps) clamp the tile to the
    per-rank row count.  Power-of-two buckets keep the result exact."""
    return max(1, min(base, tokens // world))


def _spec(ctx: DistContext) -> HardwareSpec:
    return ctx.machine.config.spec


def _warm_cfg(warm: TuneCache | None, make_task, ctx: DistContext):
    """Tuned config for ``make_task()``'s shape from the warm cache.

    ``None`` on a key miss — or when the shape falls outside the
    tuner's design space entirely (short serving steps whose per-rank
    rows fit no searchable tile): such a shape can never have a cache
    entry, so it is a miss by construction, not an error.
    """
    if warm is None:
        return None
    try:
        task = make_task()
    except TunerError:
        return None
    return warm_tuned_config(warm, task, world=ctx.world_size,
                             spec=_spec(ctx))


def _ag_gemm(ctx: DistContext, method: str, m: int, n: int, k: int,
             x: str, w: str, out: str, tag: str,
             warm: TuneCache | None = None,
             override=None) -> None:
    if override is not None:
        override(ctx, m, n, k, x, w, out, tag=tag, warm=warm)
        return
    if method == "torch":
        nonoverlap.ag_gemm_nonoverlap(ctx, m, n, k, x, w, out, tag=tag)
        return
    cfg = _warm_cfg(
        warm, lambda: ag_gemm_tune_task(m, n, k, world=ctx.world_size,
                                        spec=_spec(ctx)), ctx)
    if cfg is None:
        bm = _row_tile(BM, m, ctx.world_size)
        cfg = AgGemmConfig(m=m, n=n, k=k, block_m=bm, block_n=BN, block_k=BK,
                           block_mp=bm, mode="dma")
    ag_gemm_overlapped(ctx, cfg, x, w, out, tag=tag)


def _gemm_rs(ctx: DistContext, method: str, m: int, n: int, k: int,
             x: str, w: str, out: str, tag: str,
             warm: TuneCache | None = None,
             override=None) -> None:
    if override is not None:
        override(ctx, m, n, k, x, w, out, tag=tag, warm=warm)
        return
    if method == "torch":
        nonoverlap.gemm_rs_nonoverlap(ctx, m, n, k, x, w, out, tag=tag)
        return
    cfg = _warm_cfg(
        warm, lambda: gemm_rs_tune_task(m, n, k, world=ctx.world_size,
                                        spec=_spec(ctx)), ctx)
    if cfg is None:
        bm = _row_tile(BM, m, ctx.world_size)
        bmr = _row_tile(BMR, m, ctx.world_size)
        cfg = GemmRsConfig(m=m, n=n, k=k, block_m=bm, block_n=BN, block_k=BK,
                           block_mr=bmr, block_nr=BNR, mode="hybrid")
    gemm_rs_overlapped(ctx, cfg, x, w, out, tag=tag)


def build_attention_block(ctx: DistContext, model: ModelConfig, method: str,
                          tag: str = "attn",
                          warm: TuneCache | None = None,
                          overrides: dict | None = None) -> None:
    """QKV projection + core flash attention + output projection."""
    ov = overrides or {}
    world = ctx.world_size
    tokens = model.tokens
    h = model.hidden
    qkv_width = 3 * model.heads * model.head_dim // world
    heads_local = max(1, model.heads // world)

    ctx.alloc(f"{tag}.x", (tokens // world, h), "float16", fill=None)
    ctx.alloc(f"{tag}.w_qkv", (h, qkv_width), "float16", fill=None)
    ctx.alloc(f"{tag}.qkv", (tokens, qkv_width), "float16", fill=None)
    _ag_gemm(ctx, method, tokens, qkv_width, h,
             f"{tag}.x", f"{tag}.w_qkv", f"{tag}.qkv", tag=f"{tag}.qkv_proj",
             warm=warm, override=ov.get("ag_gemm"))

    # core attention: per (batch x local head).  kv_len == 0 is the
    # prefill form (queries attend causally over themselves); kv_len > 0
    # is the decode form — the step's tokens are queries reading a
    # kv_len-token resident cache (non-causal: the cache is all past
    # context), which is what makes long-context decode steps pay for
    # their KV in both flash inner steps and HBM traffic.
    attn_w = model.heads * model.head_dim // world
    q = ctx.alloc(f"{tag}.q", (model.seq_len, model.batch * attn_w),
                  "float16", fill=None)
    o = ctx.alloc(f"{tag}.o", (model.seq_len, model.batch * attn_w),
                  "float16", fill=None)
    if model.kv_len > 0:
        kv = ctx.alloc(f"{tag}.kv", (model.kv_len, model.batch * attn_w),
                       "float16", fill=None)
        for rank in range(world):
            flash_attention_op(
                ctx, rank, q[rank], kv[rank], kv[rank], o[rank],
                heads=model.batch * heads_local, dim=model.head_dim,
                causal=False)
    else:
        for rank in range(world):
            flash_attention_op(
                ctx, rank, q[rank], q[rank], q[rank], o[rank],
                heads=model.batch * heads_local, dim=model.head_dim,
                causal=True)

    ctx.alloc(f"{tag}.ctx", (tokens, attn_w), "float16", fill=None)
    ctx.alloc(f"{tag}.w_o", (attn_w, h), "float16", fill=None)
    ctx.alloc(f"{tag}.out", (tokens // world, h), "float32", fill=None)
    _gemm_rs(ctx, method, tokens, h, attn_w,
             f"{tag}.ctx", f"{tag}.w_o", f"{tag}.out", tag=f"{tag}.o_proj",
             warm=warm, override=ov.get("gemm_rs"))


def build_ffn_block(ctx: DistContext, model: ModelConfig, method: str,
                    routing: MoeRouting | None = None,
                    tag: str = "ffn",
                    warm: TuneCache | None = None,
                    overrides: dict | None = None) -> None:
    """Dense MLP, MoE layer, or (Qwen) shared-expert MLP + MoE."""
    ov = overrides or {}
    world = ctx.world_size
    tokens = model.tokens
    h = model.hidden

    def dense(i: int, sub: str) -> None:
        ctx.alloc(f"{sub}.x", (tokens // world, h), "float16", fill=None)
        ctx.alloc(f"{sub}.w1", (h, i // world), "float16", fill=None)
        ctx.alloc(f"{sub}.w2", (i // world, h), "float16", fill=None)
        ctx.alloc(f"{sub}.out", (tokens // world, h), "float32", fill=None)
        if method == "torch":
            cfg = MlpConfig(m=tokens, h=h, i=i)
            nonoverlap.mlp_nonoverlap(ctx, cfg, f"{sub}.x", f"{sub}.w1",
                                      f"{sub}.w2", f"{sub}.out", tag=sub)
            return
        if ov:
            # an op slot is overridden — assemble AG+GEMM -> SiLU ->
            # GEMM+RS through the dispatchers so the override lands on
            # its slot while the other half keeps the base-method path
            ishard = i // world
            inter = ctx.alloc(f"{sub}.inter", (tokens, ishard), "float16",
                              fill=None)
            act = ctx.alloc(f"{sub}.act", (tokens, ishard), "float16",
                            fill=None)
            _ag_gemm(ctx, method, tokens, ishard, h,
                     f"{sub}.x", f"{sub}.w1", f"{sub}.inter",
                     tag=f"{sub}.p1", warm=warm, override=ov.get("ag_gemm"))
            for rank in range(world):
                silu_op(ctx, rank, inter[rank], act[rank])
            _gemm_rs(ctx, method, tokens, h, ishard,
                     f"{sub}.act", f"{sub}.w2", f"{sub}.out",
                     tag=f"{sub}.p2", warm=warm, override=ov.get("gemm_rs"))
            return
        bm = _row_tile(BM, tokens, world)
        bmr = _row_tile(BMR, tokens, world)
        cfg = MlpConfig(m=tokens, h=h, i=i, block_m=bm, block_n=BN,
                        block_k=BK, block_mr=bmr, block_nr=BNR)
        # the two halves tune independently — inject whichever winners
        # the warm cache holds for these exact shapes
        ag_cfg = _warm_cfg(
            warm, lambda: ag_gemm_tune_task(tokens, i // world, h,
                                            world=world, spec=_spec(ctx)),
            ctx)
        rs_cfg = _warm_cfg(
            warm, lambda: gemm_rs_tune_task(tokens, h, i // world,
                                            world=world, spec=_spec(ctx)),
            ctx)
        mlp_layer_tilelink(ctx, cfg, f"{sub}.x", f"{sub}.w1",
                           f"{sub}.w2", f"{sub}.out", tag=sub,
                           ag_cfg=ag_cfg, rs_cfg=rs_cfg)

    if not model.moe:
        dense(model.intermediate, f"{tag}.mlp")
        return

    if model.shared_intermediate > 0:
        dense(model.shared_intermediate, f"{tag}.shared")

    moe_block_m = _row_tile(MOE_BLOCK_M, tokens, world)
    if routing is None:
        logits = random_router_logits(tokens, model.n_experts,
                                      seed=ctx.machine.config.seed)
        routing = build_moe_routing(logits, tokens // world, world,
                                    model.topk, block_m=moe_block_m)
    cfg = MoeConfig(m=tokens, h=h, i=model.intermediate,
                    n_experts=model.n_experts, topk=model.topk,
                    block_m=moe_block_m, block_n=BN, block_k=BK,
                    block_mr=_row_tile(BMR, tokens, world), block_nr=BNR)
    ishard = cfg.i_shard(world)
    ctx.alloc(f"{tag}.x", (tokens // world, h), "float16", fill=None)
    ctx.alloc(f"{tag}.out", (tokens // world, h), "float32", fill=None)
    if method in ("tilelink", "tilelink-tuned"):
        # tilelink-tuned: the expert layer keeps the paper config (tuned
        # block_m would change the routing granularity, and the shipped
        # sweep's router seeds do not cover the e2e layers)
        ctx.alloc(f"{tag}.w1", (model.n_experts * h, ishard), "float16",
                  fill=None)
        ctx.alloc(f"{tag}.w2", (model.n_experts * ishard, h), "float16",
                  fill=None)
        moe_layer_tilelink(ctx, cfg, routing, f"{tag}.x", f"{tag}.w1",
                           f"{tag}.w2", f"{tag}.out", tag=f"{tag}.moe")
    else:
        ctx.alloc(f"{tag}.w1", (model.n_experts, h, ishard), "float16",
                  fill=None)
        ctx.alloc(f"{tag}.w2", (model.n_experts, ishard, h), "float16",
                  fill=None)
        # eager-PyTorch MoE: per-expert index_select / GEMM / index_add
        # loops with host coordination (the "cublas" tier) — the paper's
        # Torch baseline runs eager MoE, not vLLM's fused op
        vllm_moe.moe_layer_baseline(ctx, cfg, routing, "cublas", f"{tag}.x",
                                    f"{tag}.w1", f"{tag}.w2", f"{tag}.out",
                                    tag=f"{tag}.moe")


def build_layer(ctx: DistContext, model: ModelConfig, method: str) -> None:
    """One full transformer layer (attention block + FFN block).

    ``method`` may be a base method or any registry-contributed serving
    method; the latter reuses its base method's construction with the
    family's op overrides swapped into the matching slots.
    """
    try:
        base, overrides = resolve_serve_method(method)
    except RegistryError:
        raise ValueError(f"unknown method {method!r}; expected one of "
                         f"{serve_method_names()}") from None
    # resolve the warm cache once per layer; every op below shares it
    warm = resolve_warm_cache() if base == "tilelink-tuned" else None
    build_attention_block(ctx, model, base, warm=warm, overrides=overrides)
    build_ffn_block(ctx, model, base, warm=warm, overrides=overrides)
