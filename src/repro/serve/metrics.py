"""Serving metrics: the numbers a deployment is judged by.

Collapses one :class:`~repro.serve.scheduler.ServeResult` into a
:class:`ServingReport` — request/token throughput, p50/p99 TTFT
(time-to-first-token: queueing + prefill) and TPOT (time-per-output-token
over the decode phase), queue-depth statistics, and SLO attainment (the
fraction of requests meeting both a TTFT and a TPOT target — the "equal
SLO" axis the TileLink-vs-baseline serving comparison is made at).

KV-aware runs add the memory story: per-request queue-wait and
preemption-stall percentiles, eviction and recompute-token totals, and
pool-occupancy statistics (``None`` on both occupancy fields exactly
when the run had no pool — the same null-together discipline as TPOT).

Per-step series (queue depth, batch size, pool occupancy) arrive as
:class:`~repro.serve.samples.StepStats` streaming accumulators rather
than per-step lists; their ``percentile``/``max`` reproduce the list
forms bit-for-bit, so every JSON summary field is unchanged.

All percentiles use deterministic linear interpolation (no numpy, no
randomness), and :meth:`ServingReport.row` emits strict-JSON-safe rows
(``None``, never ``NaN``) for ``validate_bench_json.py --schema
serving``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ServeError
from repro.serve.scheduler import ServeResult
from repro.util.tables import format_table

__all__ = ["SloSpec", "ServingReport", "percentile", "summarize",
           "format_reports"]


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100) with linear interpolation, deterministic."""
    if not values:
        raise ServeError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ServeError(f"percentile q must be in [0, 100], got {q}")
    s = sorted(values)
    if len(s) == 1:
        return float(s[0])
    pos = (len(s) - 1) * q / 100.0
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(s):
        return float(s[-1])
    return float(s[lo] + frac * (s[lo + 1] - s[lo]))


@dataclass(frozen=True)
class SloSpec:
    """Per-request service-level objective.

    Defaults sized for the simulated H800 node: an interactive user
    notices TTFT above ~half a second and a stream slower than ~40
    tokens/s."""

    ttft_s: float = 0.5
    tpot_s: float = 0.025

    def met_by(self, ttft_s: float, tpot_s: float | None) -> bool:
        if ttft_s > self.ttft_s:
            return False
        # single-token requests have no decode phase: TTFT alone decides
        return tpot_s is None or tpot_s <= self.tpot_s


@dataclass(frozen=True)
class ServingReport:
    """One (scenario, method, policy) serving run, summarized."""

    scenario: str
    method: str
    policy: str
    n_requests: int
    makespan_s: float
    throughput_rps: float
    output_tok_per_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    tpot_p50_s: float | None        # None when no request ever decoded
    tpot_p99_s: float | None
    queue_depth_p50: float
    queue_depth_max: int
    slo_attainment: float           # fraction of requests meeting the SLO
    queue_wait_p50_s: float = 0.0   # arrival -> first admission
    queue_wait_p99_s: float = 0.0
    preempt_stall_p99_s: float = 0.0    # eviction -> back in the batch
    n_preemptions: int = 0
    recompute_tokens: int = 0
    #: pool stats; None on both exactly when the run had no KV pool
    pool_occupancy_p50: float | None = None
    pool_occupancy_max: float | None = None

    def row(self) -> dict:
        """Strict-JSON row (``validate_bench_json.py --schema serving``)."""
        return {
            "scenario": self.scenario, "method": self.method,
            "policy": self.policy, "n_requests": self.n_requests,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "output_tok_per_s": self.output_tok_per_s,
            "ttft_p50_s": self.ttft_p50_s, "ttft_p99_s": self.ttft_p99_s,
            "tpot_p50_s": self.tpot_p50_s, "tpot_p99_s": self.tpot_p99_s,
            "queue_depth_p50": self.queue_depth_p50,
            "queue_depth_max": self.queue_depth_max,
            "slo_attainment": self.slo_attainment,
            "queue_wait_p50_s": self.queue_wait_p50_s,
            "queue_wait_p99_s": self.queue_wait_p99_s,
            "preempt_stall_p99_s": self.preempt_stall_p99_s,
            "n_preemptions": self.n_preemptions,
            "recompute_tokens": self.recompute_tokens,
            "pool_occupancy_p50": self.pool_occupancy_p50,
            "pool_occupancy_max": self.pool_occupancy_max,
        }


def summarize(result: ServeResult, scenario: str, method: str,
              policy: str = "fcfs", slo: SloSpec | None = None
              ) -> ServingReport:
    """Collapse a :class:`ServeResult` into a :class:`ServingReport`."""
    slo = slo or SloSpec()
    logs = result.logs
    unfinished = [log.request.rid for log in logs if log.finish_s is None]
    if unfinished:
        raise ServeError(f"serve() left {len(unfinished)} requests "
                         f"unfinished (first: {unfinished[:3]})")
    ttfts = [log.ttft_s for log in logs]
    tpots = [log.tpot_s for log in logs if log.tpot_s is not None]
    waits = [log.queue_wait_s for log in logs]
    stalls = [log.preempt_stall_s for log in logs]
    makespan = result.makespan_s
    total_out = sum(log.request.output_tokens for log in logs)
    met = sum(slo.met_by(log.ttft_s, log.tpot_s) for log in logs)
    occ = result.pool_occupancy if result.pool_blocks > 0 else None
    return ServingReport(
        scenario=scenario, method=method, policy=policy,
        n_requests=len(logs), makespan_s=makespan,
        throughput_rps=len(logs) / makespan,
        output_tok_per_s=total_out / makespan,
        ttft_p50_s=percentile(ttfts, 50), ttft_p99_s=percentile(ttfts, 99),
        tpot_p50_s=percentile(tpots, 50) if tpots else None,
        tpot_p99_s=percentile(tpots, 99) if tpots else None,
        queue_depth_p50=(result.queue_depth.percentile(50)
                         if result.queue_depth else 0.0),
        queue_depth_max=(result.queue_depth.max
                         if result.queue_depth else 0),
        slo_attainment=met / len(logs),
        queue_wait_p50_s=percentile(waits, 50),
        queue_wait_p99_s=percentile(waits, 99),
        preempt_stall_p99_s=percentile(stalls, 99),
        n_preemptions=result.n_preemptions,
        recompute_tokens=result.recompute_tokens,
        pool_occupancy_p50=(occ.percentile(50) if occ else None),
        pool_occupancy_max=(occ.max if occ else None),
    )


def format_reports(reports: Sequence[ServingReport], title: str) -> str:
    """Paper-style table: one row per (scenario, method, policy)."""
    headers = ["scenario", "method", "policy", "req/s", "tok/s",
               "TTFT p50 (ms)", "TTFT p99 (ms)", "TPOT p50 (ms)",
               "TPOT p99 (ms)", "wait p99 (s)", "preempt", "pool max",
               "SLO %"]
    rows = []
    for r in reports:
        rows.append([
            r.scenario, r.method, r.policy, f"{r.throughput_rps:.2f}",
            f"{r.output_tok_per_s:.0f}",
            f"{r.ttft_p50_s * 1e3:.1f}", f"{r.ttft_p99_s * 1e3:.1f}",
            "-" if r.tpot_p50_s is None else f"{r.tpot_p50_s * 1e3:.2f}",
            "-" if r.tpot_p99_s is None else f"{r.tpot_p99_s * 1e3:.2f}",
            f"{r.queue_wait_p99_s:.2f}", r.n_preemptions,
            ("-" if r.pool_occupancy_max is None
             else f"{r.pool_occupancy_max * 100:.0f}%"),
            f"{r.slo_attainment * 100:.1f}",
        ])
    return format_table(headers, rows, title=title)
