"""KV-cache memory model for the serving simulator.

The PR-5 step law had two big lies versus a real deployment: decode
ignored context length, and memory was infinite.  This module fixes the
second (the latency table's context axis fixes the first): a
per-request KV footprint derived from :class:`ModelConfig` (K and V per
layer x heads x head_dim x dtype bytes per resident token), a paged
:class:`~repro.serve.blockpool.BlockPool` sized in tokens or bytes, and
the admission/eviction policy surface the scheduler drives:

* **admission** — ``"kv-aware"`` only admits a request when the pool
  can hold its resident context and still keep a ``watermark`` fraction
  free for decode growth; ``"naive"`` pretends memory is free — a
  fresh prompt evicts running requests until its context fits, and the
  victims' contexts must later re-prefill (evicted requests themselves
  re-admit only into genuinely free blocks, which bounds the thrash);
* **preemption** — eviction-and-recompute: a victim's blocks are freed,
  the request re-enters the waiting queue, and on re-admission its
  whole resident context (prompt + tokens generated so far) re-prefills.
  Victim selection is pluggable via :data:`VICTIM_POLICIES`
  (``"last-admitted"``, vLLM's default, vs ``"longest-context"``, evict
  the biggest memory hog).

:class:`KVCacheManager` binds one config to one model and owns the
pool; :func:`repro.serve.scheduler.serve` takes it as the optional
``kv`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ServeError
from repro.models.configs import ModelConfig
from repro.serve.blockpool import BlockPool

__all__ = ["ADMISSIONS", "KVCacheConfig", "KVCacheManager", "KVFootprint",
           "VICTIM_POLICIES"]

#: admission policies the scheduler understands (gate logic lives there)
ADMISSIONS = ("kv-aware", "naive")

#: victim selection: the running entry with the *max* key is evicted.
#: Entries expose ``admit_seq`` (monotone admission counter) and
#: ``resident`` (resident KV tokens); ties break on admit_seq so
#: eviction order is always deterministic.
VICTIM_POLICIES: dict[str, Callable[[object], tuple]] = {
    "last-admitted": lambda e: (e.admit_seq,),
    "longest-context": lambda e: (e.resident, e.admit_seq),
}


@dataclass(frozen=True)
class KVFootprint:
    """Whole-model KV bytes per resident token."""

    bytes_per_token: int

    @classmethod
    def from_model(cls, model: ModelConfig,
                   dtype_bytes: int = 2) -> "KVFootprint":
        """K + V per layer x heads x head_dim at ``dtype_bytes`` per
        element, summed over the node (the pool models the whole
        TP group's HBM, so shards are aggregated)."""
        return cls(model.kv_bytes_per_token(dtype_bytes))

    def tokens_for_bytes(self, nbytes: float) -> int:
        """How many resident tokens fit in ``nbytes``."""
        return int(nbytes // self.bytes_per_token)

    def bytes_for_tokens(self, tokens: int) -> int:
        return tokens * self.bytes_per_token


@dataclass(frozen=True)
class KVCacheConfig:
    """KV pool knobs: block grain, capacity, admission and eviction.

    Capacity is given either directly in blocks (``pool_blocks``) or as
    a byte budget (``pool_bytes``, converted through the model's
    footprint).  ``watermark`` is the fraction of the pool kv-aware
    admission keeps free for decode growth of the already-running batch
    — it is ignored when the batch is empty, so a request that fits the
    pool at all is always eventually servable.
    """

    block_tokens: int = 64
    pool_blocks: int | None = None
    pool_bytes: float | None = None
    admission: str = "kv-aware"     # kv-aware | naive
    victim: str = "last-admitted"   # last-admitted | longest-context
    watermark: float = 0.1

    def validate(self) -> None:
        if self.block_tokens < 1:
            raise ServeError(f"block_tokens must be >= 1, got "
                             f"{self.block_tokens}")
        if (self.pool_blocks is None) == (self.pool_bytes is None):
            raise ServeError("set exactly one of pool_blocks / pool_bytes")
        if self.pool_blocks is not None and self.pool_blocks < 1:
            raise ServeError(f"pool_blocks must be >= 1, got "
                             f"{self.pool_blocks}")
        if self.pool_bytes is not None and not self.pool_bytes > 0:
            raise ServeError(f"pool_bytes must be positive, got "
                             f"{self.pool_bytes}")
        if self.admission not in ADMISSIONS:
            raise ServeError(f"unknown admission {self.admission!r}; "
                             f"expected one of {ADMISSIONS}")
        if self.victim not in VICTIM_POLICIES:
            raise ServeError(f"unknown victim policy {self.victim!r}; "
                             f"expected one of {sorted(VICTIM_POLICIES)}")
        if not 0.0 <= self.watermark < 1.0:
            raise ServeError(f"watermark must be in [0, 1), got "
                             f"{self.watermark}")

    def resolve_blocks(self, footprint: KVFootprint) -> int:
        """Pool capacity in blocks for this config + model footprint."""
        if self.pool_blocks is not None:
            return self.pool_blocks
        tokens = footprint.tokens_for_bytes(self.pool_bytes)
        blocks = tokens // self.block_tokens
        if blocks < 1:
            raise ServeError(
                f"pool_bytes={self.pool_bytes:.3g} holds {tokens} tokens — "
                f"not even one {self.block_tokens}-token block at "
                f"{footprint.bytes_per_token} B/token")
        return blocks


class KVCacheManager:
    """One model's KV pool: token-grain admission/growth over the
    block-grain :class:`BlockPool`."""

    def __init__(self, config: KVCacheConfig, model: ModelConfig):
        config.validate()
        self.config = config
        self.footprint = KVFootprint.from_model(model)
        self.pool = BlockPool(config.resolve_blocks(self.footprint),
                              config.block_tokens)
        #: blocks kv-aware admission keeps free for decode growth
        self.watermark_blocks = int(config.watermark * self.pool.capacity)

    # -- capacity queries ----------------------------------------------------

    @property
    def capacity_blocks(self) -> int:
        return self.pool.capacity

    @property
    def capacity_tokens(self) -> int:
        return self.pool.capacity * self.pool.block_tokens

    @property
    def free_blocks(self) -> int:
        return self.pool.free_blocks

    def occupancy(self) -> float:
        return self.pool.occupancy()

    def blocks_for(self, tokens: int) -> int:
        return self.pool.blocks_for(tokens)

    def can_ever_fit(self, tokens: int) -> bool:
        """Whether ``tokens`` resident tokens fit an *empty* pool."""
        return self.blocks_for(tokens) <= self.pool.capacity

    def can_admit(self, tokens: int, batch_empty: bool = False) -> bool:
        """kv-aware admission gate for a ``tokens``-token resident
        context.  With a non-empty batch the pool must stay above the
        watermark after admission; with an empty batch plain fit is
        enough (progress guarantee)."""
        need = self.blocks_for(tokens)
        if batch_empty:
            return need <= self.pool.free_blocks
        return need <= self.pool.free_blocks - self.watermark_blocks

    # -- lifecycle -----------------------------------------------------------

    def admit(self, rid: int, tokens: int) -> None:
        """Allocate the blocks for a request entering the batch with
        ``tokens`` resident tokens (prompt, plus any recomputed
        generation after a preemption)."""
        self.pool.alloc(rid, self.blocks_for(tokens))

    def grow_to(self, rid: int, tokens: int) -> int:
        """Grow ``rid``'s allocation to ``tokens`` resident tokens."""
        return self.pool.grow_to(rid, tokens)

    def blocks_to_grow(self, rid: int, tokens: int) -> int:
        return self.pool.blocks_to_grow(rid, tokens)

    def release(self, rid: int) -> int:
        """Free every block of a finished or preempted request."""
        return self.pool.free(rid)
