"""Paged KV-cache block pool (vLLM-style PagedAttention accounting).

A real serving engine never allocates KV cache contiguously per request:
HBM is carved into fixed-size *blocks* of ``block_tokens`` tokens each,
and every request owns however many blocks its resident context needs —
allocated at admission, grown one boundary at a time during decode,
returned wholesale on finish or preemption.  :class:`BlockPool` is that
ledger: explicit block ids, a LIFO free list, per-owner ownership lists,
and hard invariants (allocation beyond capacity raises, double-free
raises, a block is never owned twice) so the serving scheduler's memory
story can be checked to the block.

The pool is pure bookkeeping — no simulated time passes here.  Sizing
(bytes per token, blocks from a byte budget) lives one layer up in
:mod:`repro.serve.kv`.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ServeError

__all__ = ["BlockPool"]


class BlockPool:
    """Fixed-capacity pool of identical KV-cache blocks.

    Owners are opaque hashables (the scheduler uses request ids).  The
    free list is LIFO over explicit block ids, so allocation order — and
    therefore every downstream metric — is deterministic.
    """

    def __init__(self, n_blocks: int, block_tokens: int):
        if n_blocks < 1:
            raise ServeError(f"BlockPool needs >= 1 block, got {n_blocks}")
        if block_tokens < 1:
            raise ServeError(f"block_tokens must be >= 1, got {block_tokens}")
        self.capacity = int(n_blocks)
        self.block_tokens = int(block_tokens)
        # ids pop in ascending order (LIFO list built high-to-low)
        self._free: list[int] = list(range(self.capacity - 1, -1, -1))
        self._owned: dict[Hashable, list[int]] = {}

    # -- sizing --------------------------------------------------------------

    def blocks_for(self, tokens: int) -> int:
        """Blocks covering ``tokens`` tokens (ceil to the block grain)."""
        if tokens < 0:
            raise ServeError(f"token count must be >= 0, got {tokens}")
        return -(-tokens // self.block_tokens)

    # -- allocation ----------------------------------------------------------

    def alloc(self, owner: Hashable, n_blocks: int) -> list[int]:
        """Give ``owner`` ``n_blocks`` more blocks; returns their ids.

        Raises :class:`ServeError` when the pool cannot satisfy the
        request — the caller must free or preempt first, occupancy can
        never exceed capacity.
        """
        if n_blocks < 0:
            raise ServeError(f"cannot alloc {n_blocks} blocks")
        if n_blocks > len(self._free):
            raise ServeError(
                f"pool exhausted: {owner!r} wants {n_blocks} blocks, "
                f"{len(self._free)}/{self.capacity} free")
        got = [self._free.pop() for _ in range(n_blocks)]
        self._owned.setdefault(owner, []).extend(got)
        return got

    def grow_to(self, owner: Hashable, tokens: int) -> int:
        """Grow ``owner`` to cover ``tokens`` tokens; returns how many
        new blocks that took (0 when the current blocks already cover
        it).  The owner must already hold an allocation."""
        held = self._owned.get(owner)
        if held is None:
            raise ServeError(f"grow_to: {owner!r} owns no blocks")
        need = self.blocks_for(tokens) - len(held)
        if need <= 0:
            return 0
        self.alloc(owner, need)
        return need

    def blocks_to_grow(self, owner: Hashable, tokens: int) -> int:
        """How many new blocks :meth:`grow_to` *would* allocate."""
        held = self._owned.get(owner)
        if held is None:
            raise ServeError(f"blocks_to_grow: {owner!r} owns no blocks")
        return max(0, self.blocks_for(tokens) - len(held))

    def free(self, owner: Hashable) -> int:
        """Return every block ``owner`` holds; returns the count.

        Freeing an unknown owner raises — that is the double-free /
        leak tripwire the accounting tests rely on.
        """
        held = self._owned.pop(owner, None)
        if held is None:
            raise ServeError(f"free: {owner!r} owns no blocks "
                             f"(double free or never allocated)")
        self._free.extend(reversed(held))
        return len(held)

    # -- introspection -------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.capacity - len(self._free)

    def occupancy(self) -> float:
        """Used fraction of the pool, in [0, 1]."""
        return self.used_blocks / self.capacity

    def owners(self) -> tuple[Hashable, ...]:
        return tuple(self._owned)

    def owned(self, owner: Hashable) -> tuple[int, ...]:
        """Block ids ``owner`` currently holds (empty when none)."""
        return tuple(self._owned.get(owner, ()))

    def check_invariants(self) -> None:
        """Raise :class:`ServeError` on any ledger corruption: every
        block accounted for exactly once across free list + owners."""
        seen = list(self._free)
        for owner, held in self._owned.items():
            if not held:
                raise ServeError(f"invariant: {owner!r} owns an empty list")
            seen.extend(held)
        if sorted(seen) != list(range(self.capacity)):
            raise ServeError(
                f"invariant: ledger covers {len(seen)} block slots, "
                f"expected each of {self.capacity} exactly once")
