"""``repro.serve`` — request-level serving simulator.

The paper evaluates TileLink one forward pass at a time; this subsystem
expresses the overlapped kernels' wins as the numbers a *deployment*
cares about — throughput, TTFT/TPOT tails and SLO attainment under heavy
traffic.  Four stages, one module each:

* :mod:`repro.serve.workload` — seeded request generators
  (Poisson / bursty / wave arrivals, log-normal prompt/output lengths,
  named scenario presets ``chat`` / ``rag`` / ``batch-summarize``, and
  trace replay);
* :mod:`repro.serve.latency` — :class:`StepLatencyTable`, a memoised
  ladder of :func:`repro.models.runner.layer_time` simulations per
  (model, method, token-bucket) that the serving loop interpolates, so
  millions of requests simulate in seconds on one CPU;
* :mod:`repro.serve.scheduler` — deterministic continuous batching with
  separate prefill/decode phases, ``max_batch`` / ``max_prefill_tokens``
  admission and pluggable queue policies (FCFS, shortest-prompt-first);
* :mod:`repro.serve.metrics` — throughput, p50/p99 TTFT and TPOT,
  queue depth and SLO attainment, with strict-JSON report rows.

One-call flow::

    from repro.serve import (StepLatencyTable, ServerConfig,
                             generate_requests, serve, summarize)
    reqs = generate_requests("chat", 1000, seed=0)
    table = StepLatencyTable(path)          # or resolve_latency_table()
    table.ensure(model, "tilelink")         # warm hit when shipped
    res = serve(reqs, model, "tilelink", table, ServerConfig())
    report = summarize(res, "chat", "tilelink")

The ``method`` axis (``torch`` / ``tilelink`` / ``tilelink-tuned``)
turns the serving curves into the repo's traffic-level
TileLink-vs-baseline comparison — see ``benchmarks/bench_serving.py``.
"""

from repro.serve.latency import (
    DEFAULT_BUCKETS,
    ENV_LATENCY_TABLE,
    StepLatencyTable,
    entry_key,
    latency_table_path,
    model_key,
    resolve_latency_table,
)
from repro.serve.metrics import (
    ServingReport,
    SloSpec,
    format_reports,
    percentile,
    summarize,
)
from repro.serve.scheduler import (
    POLICIES,
    RequestLog,
    ServeResult,
    ServerConfig,
    serve,
)
from repro.serve.workload import (
    SCENARIOS,
    Request,
    Scenario,
    generate_requests,
    replay_trace,
)

__all__ = [
    "DEFAULT_BUCKETS", "ENV_LATENCY_TABLE", "POLICIES", "Request",
    "RequestLog", "SCENARIOS", "Scenario", "ServeResult", "ServerConfig",
    "ServingReport", "SloSpec", "StepLatencyTable", "entry_key",
    "format_reports", "generate_requests", "latency_table_path",
    "model_key", "percentile", "replay_trace", "resolve_latency_table",
    "serve", "summarize",
]
