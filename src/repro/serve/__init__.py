"""``repro.serve`` — request-level serving simulator.

The paper evaluates TileLink one forward pass at a time; this subsystem
expresses the overlapped kernels' wins as the numbers a *deployment*
cares about — throughput, TTFT/TPOT tails and SLO attainment under heavy
traffic.  Four stages, one module each:

* :mod:`repro.serve.workload` — seeded request generators
  (Poisson / bursty / wave arrivals, log-normal prompt/output lengths,
  named scenario presets ``chat`` / ``rag`` / ``batch-summarize`` /
  ``long-context``, and trace replay);
* :mod:`repro.serve.latency` — :class:`StepLatencyTable`, a memoised
  grid of :func:`repro.models.runner.layer_time` simulations per
  (model, method, token-bucket, context-bucket) that the serving loop
  interpolates bilinearly, so millions of requests simulate in seconds
  on one CPU and decode is priced by resident KV context;
* :mod:`repro.serve.blockpool` / :mod:`repro.serve.kv` — the paged
  KV-cache block pool and the per-model :class:`KVCacheManager` wrapping
  it (footprint sizing, watermark admission, pluggable victim policies);
* :mod:`repro.serve.scheduler` — deterministic continuous batching with
  separate prefill/decode phases, ``max_batch`` / ``max_prefill_tokens``
  admission, pluggable queue policies (FCFS, shortest-prompt-first) and,
  given a :class:`KVCacheConfig`, memory-aware admission with
  preemption-by-recompute under pool pressure;
* :mod:`repro.serve.engine` — the event-driven core ``serve()`` actually
  runs: struct-of-arrays batch state and decode macro-stepping between
  batch-composition events, bit-identical to the reference loop
  (:func:`serve_reference`) at ~10x the throughput, with per-step
  samples folded into :class:`StepStats` streaming accumulators;
* :mod:`repro.serve.metrics` — throughput, p50/p99 TTFT and TPOT,
  queue depth/wait, preemption and pool-occupancy statistics and SLO
  attainment, with strict-JSON report rows.

One-call flow::

    from repro.serve import (StepLatencyTable, ServerConfig,
                             generate_requests, serve, summarize)
    reqs = generate_requests("chat", 1000, seed=0)
    table = StepLatencyTable(path)          # or resolve_latency_table()
    table.ensure(model, "tilelink")         # warm hit when shipped
    res = serve(reqs, model, "tilelink", table, ServerConfig())
    report = summarize(res, "chat", "tilelink")

The ``method`` axis (``torch`` / ``tilelink`` / ``tilelink-tuned``)
turns the serving curves into the repo's traffic-level
TileLink-vs-baseline comparison — see ``benchmarks/bench_serving.py``.
"""

from repro.serve.blockpool import BlockPool
from repro.serve.kv import (
    ADMISSIONS,
    KVCacheConfig,
    KVCacheManager,
    KVFootprint,
    VICTIM_POLICIES,
)
from repro.serve.latency import (
    DEFAULT_BUCKETS,
    DEFAULT_CTX_BUCKETS,
    ENV_LATENCY_TABLE,
    StepLatencyTable,
    StepPricer,
    entry_key,
    latency_table_path,
    model_key,
    resolve_latency_table,
)
from repro.serve.metrics import (
    ServingReport,
    SloSpec,
    format_reports,
    percentile,
    summarize,
)
from repro.serve.samples import StepStats
from repro.serve.scheduler import (
    POLICIES,
    RequestLog,
    ServeResult,
    ServerConfig,
    serve,
    serve_reference,
)
from repro.serve.workload import (
    SCENARIOS,
    Request,
    Scenario,
    generate_requests,
    replay_trace,
)

__all__ = [
    "ADMISSIONS", "BlockPool", "DEFAULT_BUCKETS", "DEFAULT_CTX_BUCKETS",
    "ENV_LATENCY_TABLE", "KVCacheConfig", "KVCacheManager", "KVFootprint",
    "POLICIES", "Request", "RequestLog", "SCENARIOS", "Scenario",
    "ServeResult", "ServerConfig", "ServingReport", "SloSpec",
    "StepLatencyTable", "StepPricer", "StepStats", "VICTIM_POLICIES",
    "entry_key", "format_reports", "generate_requests",
    "latency_table_path", "model_key", "percentile", "replay_trace",
    "resolve_latency_table", "serve", "serve_reference", "summarize",
]
