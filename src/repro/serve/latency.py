"""Step-latency table: the bridge between requests and the simulator.

The 1-CPU discrete-event simulator prices one transformer layer in
hundreds of milliseconds of wall time — far too slow to call once per
serving step when a traffic sweep runs millions of steps.  This module
memoises a small ladder of :func:`repro.models.runner.layer_time`
simulations per (model, method) into a JSON file and answers every
serving-step query by interpolating on it:

* each entry holds **per-layer** simulated seconds at a handful of
  token-count *buckets* (powers of two, 64..8192 by default — at most a
  few dozen ``build_layer`` simulations per entry);
* :meth:`StepLatencyTable.step_time` maps an arbitrary step size to
  seconds — flat below the smallest bucket (fixed launch/collective
  overheads dominate there), piecewise-linear between buckets, and
  linearly extrapolated above the largest — then scales by the model's
  layer count.

A *step* is one engine iteration of the continuous-batching scheduler: a
prefill step processes the admitted prompts' tokens, a decode step one
token per running request.  Both phases are priced as a tensor-parallel
layer at the step's total token count — the causal-attention term makes
long-prompt prefill superlinear (as it should be), while short decode
steps sit on the fixed-overhead floor.

Since the KV-aware serving layer landed, each entry also carries a
**context-bucket axis**: the grid ``layer_s[ctx][tok]`` prices a step of
``tok`` tokens attending over ``ctx`` resident KV-cache tokens
(simulated through ``ModelConfig.with_context`` — non-causal decode
attention reading the cache), and the interpolator is bilinear over
(tokens, context).  Context 0 is the prefill form and reproduces the
old one-axis table exactly; decode steps pass the running batch's total
resident KV so long-context decode pays for its cache in both flash
steps and HBM traffic.  The model is shared by every ``method``, so the
TileLink-vs-baseline comparisons the table exists for stay apples to
apples.

The checked-in table (``benchmarks/latency_table.json``, beside
``warm_cache.json``) covers the serving bench's models; regenerate or
staleness-check it with ``benchmarks/refresh_latency_table.py``.  Keys
fold in everything that changes the answer — the architecture fields of
the model, the method, the world size, the seed and
``HardwareSpec.fingerprint()`` — so a table built for different hardware
misses cleanly instead of serving stale numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
from bisect import bisect_left
from pathlib import Path
from typing import Callable, Iterable

from repro.config import H800, HardwareSpec
from repro.errors import ServeError
from repro.models.configs import ModelConfig
from repro.util.jsonstore import VersionedJsonStore

_VERSION = 2        # v2: entries grew the context-bucket axis

#: Environment override for the shipped latency-table location.
ENV_LATENCY_TABLE = "REPRO_LATENCY_TABLE"

#: Default token-count ladder: power-of-two buckets keep every variant
#: tile-aligned (see ``transformer._row_tile``); 64 covers decode steps,
#: 8192 the largest admissible prefill chunk.
DEFAULT_BUCKETS = (64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Default resident-KV ladder.  0 is the prefill form (and the exact
#: old one-axis behaviour); the non-zero rungs cover a long-context
#: decode batch up to ~128k total resident tokens, beyond which the
#: interpolator extrapolates on the last segment.
DEFAULT_CTX_BUCKETS = (0, 8192, 32768, 131072)


def latency_table_path() -> Path:
    env = os.environ.get(ENV_LATENCY_TABLE)
    if env:
        return Path(env)
    return (Path(__file__).resolve().parents[3] / "benchmarks"
            / "latency_table.json")


def model_key(model: ModelConfig) -> str:
    """Architecture fingerprint: every field that changes one layer's
    simulated time (``n_layers`` scales outside the table; batch/seq are
    replaced per bucket)."""
    key = (f"h{model.hidden}-a{model.heads}x{model.head_dim}"
           f"-i{model.intermediate}")
    if model.moe:
        key += f"-moe{model.n_experts}k{model.topk}"
        if model.shared_intermediate:
            key += f"-si{model.shared_intermediate}"
    return key


def _warm_cache_fingerprint() -> str:
    """Content digest of the shipped warm tuner cache (or ``none``).

    ``tilelink-tuned`` step latencies depend on which winners the warm
    cache resolves — retuning ``warm_cache.json`` changes the simulated
    layer without touching this module, so tuned entry keys fold the
    cache *content* in and ``refresh_latency_table.py --check`` goes
    stale exactly when it should."""
    from repro.tuner.warm import resolve_warm_cache

    cache = resolve_warm_cache()
    if cache is None:
        return "none"
    payload = json.dumps({k: cache.get(k) for k in sorted(cache.keys())},
                         sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def entry_key(model: ModelConfig, method: str, world: int,
              spec: HardwareSpec, seed: int = 0) -> str:
    key = "|".join([model_key(model), method, f"w{world}", f"s{seed}",
                    spec.fingerprint()])
    if method == "tilelink-tuned":
        key += f"|wc{_warm_cache_fingerprint()}"
    return key


def resolve_latency_table(path: str | os.PathLike | None = None
                          ) -> "StepLatencyTable | None":
    """The shipped latency table, read-only, or ``None`` when missing."""
    p = Path(path) if path is not None else latency_table_path()
    if not p.is_file():
        return None
    return StepLatencyTable(p, readonly=True)


class StepPricer:
    """Pre-flattened bilinear ``(tokens, ctx) -> step seconds`` pricer
    for one table entry.

    Calling it reproduces the original interpolation arithmetic
    operation-for-operation (bit-identical floats), with an O(1) memo on
    every (row, tokens) lookup.  On top of the per-call form it exposes
    the cell structure: :meth:`decode_segment` resolves the affine
    context segment a ``(tokens, ctx)`` query falls in *once*, so the
    event-driven engine (:mod:`repro.serve.engine`) prices a whole
    macro-step of decode iterations through one cached closure instead
    of re-bisecting both axes every step.
    """

    __slots__ = ("buckets", "ctx_buckets", "grid", "n_layers",
                 "_rows", "_segments", "_coeffs")

    def __init__(self, buckets: list[int], ctx_buckets: list[int],
                 grid: list[list[float]], n_layers: int):
        self.buckets = buckets
        self.ctx_buckets = ctx_buckets
        self.grid = grid
        self.n_layers = n_layers
        self._rows: dict = {}       # (ctx-row index, tokens) -> per-layer s
        self._segments: dict = {}   # (tokens, segment index) -> (fn, end)
        self._coeffs: dict = {}     # (tokens, segment index) -> coeff tuple

    def _row_at(self, row: int, tokens: int) -> float:
        """Per-layer seconds on one context row, memoised per tokens."""
        key = (row, tokens)
        cached = self._rows.get(key)
        if cached is not None:
            return cached
        buckets = self.buckets
        layer_s = self.grid[row]
        if tokens <= buckets[0]:
            # fixed launch/collective overheads dominate below the
            # smallest bucket — charge its floor
            value = layer_s[0]
        elif tokens >= buckets[-1]:
            # extrapolate on the last segment's per-token slope
            slope = ((layer_s[-1] - layer_s[-2])
                     / (buckets[-1] - buckets[-2]))
            value = layer_s[-1] + slope * (tokens - buckets[-1])
        else:
            i = bisect_left(buckets, tokens)
            lo_b, hi_b = buckets[i - 1], buckets[i]
            lo_t, hi_t = layer_s[i - 1], layer_s[i]
            frac = (tokens - lo_b) / (hi_b - lo_b)
            value = lo_t + frac * (hi_t - lo_t)
        self._rows[key] = value
        return value

    def __call__(self, tokens: int, ctx: int = 0) -> float:
        cb = self.ctx_buckets
        if ctx <= cb[0]:
            per_layer = self._row_at(0, tokens)
        elif ctx >= cb[-1]:
            hi = self._row_at(len(cb) - 1, tokens)
            lo = self._row_at(len(cb) - 2, tokens)
            slope = (hi - lo) / (cb[-1] - cb[-2])
            per_layer = hi + slope * (ctx - cb[-1])
        else:
            i = bisect_left(cb, ctx)
            lo_c, hi_c = cb[i - 1], cb[i]
            lo_t = self._row_at(i - 1, tokens)
            hi_t = self._row_at(i, tokens)
            frac = (ctx - lo_c) / (hi_c - lo_c)
            per_layer = lo_t + frac * (hi_t - lo_t)
        return per_layer * self.n_layers

    def decode_segment(self, tokens: int, ctx: int
                       ) -> tuple[Callable[[int], float], float]:
        """The context cell containing ``ctx`` at this step size.

        Returns ``(price, end)``: ``price(c)`` equals ``self(tokens, c)``
        bit-for-bit for every ``c`` in the cell, and ``end`` is the
        largest context the cell covers — past it the caller re-resolves.
        Cells are cached per ``(tokens, segment)``, so a long decode run
        prices each step through one closure call.

        Segment ends are conservative about the branch boundaries of
        ``__call__``: the last interior cell stops one token short of
        the top context bucket (where the extrapolation branch takes
        over), and the extrapolation cell keeps its own
        ``hi + slope * (ctx - top)`` form — the interior affine
        rearrangement would match only to rounding.
        """
        cb = self.ctx_buckets
        if ctx <= cb[0]:
            seg = 0
        elif ctx >= cb[-1]:
            seg = len(cb)
        else:
            seg = bisect_left(cb, ctx)
        key = (tokens, seg)
        cached = self._segments.get(key)
        if cached is not None:
            return cached
        nl = self.n_layers
        if seg == 0:
            flat = self._row_at(0, tokens) * nl
            cached = ((lambda c, _t=flat: _t), float(cb[0]))
        elif seg == len(cb):
            hi = self._row_at(len(cb) - 1, tokens)
            lo = self._row_at(len(cb) - 2, tokens)
            slope = (hi - lo) / (cb[-1] - cb[-2])
            cached = ((lambda c, _h=hi, _s=slope, _c=cb[-1], _n=nl:
                       (_h + _s * (c - _c)) * _n), float("inf"))
        else:
            lo_c, hi_c = cb[seg - 1], cb[seg]
            lo_t = self._row_at(seg - 1, tokens)
            hi_t = self._row_at(seg, tokens)
            den = hi_c - lo_c
            diff = hi_t - lo_t
            end = float(hi_c if hi_c < cb[-1] else hi_c - 1)
            cached = ((lambda c, _lt=lo_t, _lc=lo_c, _d=den, _df=diff,
                       _n=nl: (_lt + ((c - _lc) / _d) * _df) * _n), end)
        self._segments[key] = cached
        return cached

    def decode_coeffs(self, tokens: int, ctx: int) -> tuple:
        """:meth:`decode_segment`'s cell as raw coefficients, so the
        engine's tight loop can inline the pricing expression instead of
        paying a closure call per decode step.  Returns one of

        * ``(0, total, end)`` — flat cell: the price is ``total``;
        * ``(1, lo_t, lo_c, den, diff, nl, end)`` — interior cell:
          the price at context ``c`` is
          ``(lo_t + ((c - lo_c) / den) * diff) * nl``;
        * ``(2, hi, slope, top_c, nl, inf)`` — extrapolation cell:
          ``(hi + slope * (c - top_c)) * nl``.

        The expressions (and their operation order) are exactly the
        closures :meth:`decode_segment` builds — inlining them yields
        bit-identical floats.
        """
        cb = self.ctx_buckets
        if ctx <= cb[0]:
            seg = 0
        elif ctx >= cb[-1]:
            seg = len(cb)
        else:
            seg = bisect_left(cb, ctx)
        key = (tokens, seg)
        cached = self._coeffs.get(key)
        if cached is not None:
            return cached
        nl = self.n_layers
        if seg == 0:
            cached = (0, self._row_at(0, tokens) * nl, float(cb[0]))
        elif seg == len(cb):
            hi = self._row_at(len(cb) - 1, tokens)
            lo = self._row_at(len(cb) - 2, tokens)
            slope = (hi - lo) / (cb[-1] - cb[-2])
            cached = (2, hi, slope, cb[-1], nl, float("inf"))
        else:
            lo_c, hi_c = cb[seg - 1], cb[seg]
            lo_t = self._row_at(seg - 1, tokens)
            hi_t = self._row_at(seg, tokens)
            end = float(hi_c if hi_c < cb[-1] else hi_c - 1)
            cached = (1, lo_t, lo_c, hi_c - lo_c, hi_t - lo_t, nl, end)
        self._coeffs[key] = cached
        return cached


class StepLatencyTable(VersionedJsonStore):
    """Persistent (model, method) -> bucketed per-layer-seconds store.

    The storage discipline (lazy first read, atomic
    write-temp-then-rename flush, corrupt-as-empty, ``readonly`` handles
    that update the in-memory view but never touch disk) is shared with
    :class:`repro.tuner.cache.TuneCache` via
    :class:`~repro.util.jsonstore.VersionedJsonStore`.
    """

    _version = _VERSION

    def __init__(self, path: str | os.PathLike | None = None, *,
                 readonly: bool = False):
        super().__init__(path if path is not None else latency_table_path(),
                         readonly=readonly)

    # -- building -----------------------------------------------------------

    def has(self, model: ModelConfig, method: str, world: int = 8,
            spec: HardwareSpec = H800, seed: int = 0) -> bool:
        return entry_key(model, method, world, spec, seed) in self._load()

    def entry(self, key: str) -> dict | None:
        """The raw stored entry for ``key`` (a copy), or ``None``."""
        e = self._load().get(key)
        return dict(e) if e is not None else None

    def ensure(self, model: ModelConfig, method: str, world: int = 8,
               spec: HardwareSpec = H800,
               buckets: Iterable[int] = DEFAULT_BUCKETS, seed: int = 0,
               ctx_buckets: Iterable[int] = DEFAULT_CTX_BUCKETS,
               progress: Callable[[str], None] | None = None,
               simulate: Callable[..., float] | None = None) -> dict:
        """Simulate (or reuse) this entry's bucket grid; returns it.

        An existing entry with the same token *and* context ladders is
        returned as-is (zero simulation); a differing ladder on either
        axis is resimulated whole so an entry is always internally
        consistent.  On a ``readonly`` table the fresh entry lives only
        in memory.

        ``simulate`` substitutes for :func:`repro.models.runner.layer_time`
        (same call shape) — ``refresh_latency_table.py --workers N`` feeds
        cell values precomputed by forked workers through it, so the
        parent still builds the entry (and the JSON file) in exactly the
        serial insertion order.
        """
        from repro.models.runner import layer_time

        if simulate is None:
            simulate = layer_time

        buckets = sorted(set(int(b) for b in buckets))
        if len(buckets) < 2 or buckets[0] < 8:
            # >= 2 points: the interpolator needs a segment to
            # extrapolate from above the largest bucket
            raise ServeError(f"invalid bucket ladder {buckets}")
        ctx_buckets = sorted(set(int(c) for c in ctx_buckets))
        if len(ctx_buckets) < 2 or ctx_buckets[0] != 0:
            # the 0 rung is the prefill form; >= 2 rungs give the
            # context axis a segment to extrapolate from
            raise ServeError(f"invalid context-bucket ladder {ctx_buckets}")
        key = entry_key(model, method, world, spec, seed)
        entry = self._load().get(key)
        if entry is not None and \
                list(entry.get("buckets", ())) == buckets and \
                list(entry.get("ctx_buckets", ())) == ctx_buckets:
            return entry
        grid = []
        for c in ctx_buckets:
            row = []
            for b in buckets:
                if progress is not None:
                    progress(f"  simulate {model.name}/{method} @ {b} "
                             f"tokens, {c} resident KV")
                variant = model.with_tokens(b)
                if c > 0:
                    variant = variant.with_context(c)
                row.append(simulate(variant, method, world=world,
                                    seed=seed, spec=spec))
            grid.append(row)
        entry = {"buckets": buckets, "ctx_buckets": ctx_buckets,
                 "layer_s": grid,
                 "meta": {"model": model.name, "method": method,
                          "world": world, "seed": seed}}
        self._load()[key] = entry
        self._flush()
        return entry

    # -- querying -----------------------------------------------------------

    def interpolator(self, model: ModelConfig, method: str, world: int = 8,
                     spec: HardwareSpec = H800,
                     seed: int = 0) -> StepPricer:
        """A fast ``(tokens, ctx) -> step seconds`` pricer for one entry.

        ``ctx`` is the batch's total resident KV tokens and defaults to
        0 (the prefill form).  The serving loop calls this millions of
        times; resolving the entry once into a :class:`StepPricer` over
        plain lists keeps the per-step cost to two memoised bisects and
        a handful of multiplies — and gives the event-driven engine the
        per-cell :meth:`StepPricer.decode_segment` closures it macro-
        steps through.
        """
        key = entry_key(model, method, world, spec, seed)
        entry = self._load().get(key)
        if entry is None:
            raise ServeError(
                f"no latency-table entry for {model.name}/{method} "
                f"(world={world}, seed={seed}) in {self.path}; build one "
                f"with StepLatencyTable.ensure() or refresh the shipped "
                f"table via benchmarks/refresh_latency_table.py")
        return StepPricer(
            buckets=[int(b) for b in entry["buckets"]],
            ctx_buckets=[int(c) for c in entry["ctx_buckets"]],
            grid=[[float(t) for t in row] for row in entry["layer_s"]],
            n_layers=model.n_layers)

    def step_time(self, model: ModelConfig, method: str, tokens: int,
                  world: int = 8, spec: HardwareSpec = H800,
                  seed: int = 0, ctx: int = 0) -> float:
        """Seconds for one serving step of ``tokens`` total tokens
        attending over ``ctx`` resident KV tokens."""
        return self.interpolator(model, method, world, spec, seed)(tokens,
                                                                   ctx)
