"""Step-latency table: the bridge between requests and the simulator.

The 1-CPU discrete-event simulator prices one transformer layer in
hundreds of milliseconds of wall time — far too slow to call once per
serving step when a traffic sweep runs millions of steps.  This module
memoises a small ladder of :func:`repro.models.runner.layer_time`
simulations per (model, method) into a JSON file and answers every
serving-step query by interpolating on it:

* each entry holds **per-layer** simulated seconds at a handful of
  token-count *buckets* (powers of two, 64..8192 by default — at most a
  few dozen ``build_layer`` simulations per entry);
* :meth:`StepLatencyTable.step_time` maps an arbitrary step size to
  seconds — flat below the smallest bucket (fixed launch/collective
  overheads dominate there), piecewise-linear between buckets, and
  linearly extrapolated above the largest — then scales by the model's
  layer count.

A *step* is one engine iteration of the continuous-batching scheduler: a
prefill step processes the admitted prompts' tokens, a decode step one
token per running request.  Both phases are priced as a tensor-parallel
layer at the step's total token count — the causal-attention term makes
long-prompt prefill superlinear (as it should be), while short decode
steps sit on the fixed-overhead floor.

Since the KV-aware serving layer landed, each entry also carries a
**context-bucket axis**: the grid ``layer_s[ctx][tok]`` prices a step of
``tok`` tokens attending over ``ctx`` resident KV-cache tokens
(simulated through ``ModelConfig.with_context`` — non-causal decode
attention reading the cache), and the interpolator is bilinear over
(tokens, context).  Context 0 is the prefill form and reproduces the
old one-axis table exactly; decode steps pass the running batch's total
resident KV so long-context decode pays for its cache in both flash
steps and HBM traffic.  The model is shared by every ``method``, so the
TileLink-vs-baseline comparisons the table exists for stay apples to
apples.

The checked-in table (``benchmarks/latency_table.json``, beside
``warm_cache.json``) covers the serving bench's models; regenerate or
staleness-check it with ``benchmarks/refresh_latency_table.py``.  Keys
fold in everything that changes the answer — the architecture fields of
the model, the method, the world size, the seed and
``HardwareSpec.fingerprint()`` — so a table built for different hardware
misses cleanly instead of serving stale numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Iterable

from repro.config import H800, HardwareSpec
from repro.errors import ServeError
from repro.models.configs import ModelConfig
from repro.util.jsonstore import VersionedJsonStore

_VERSION = 2        # v2: entries grew the context-bucket axis

#: Environment override for the shipped latency-table location.
ENV_LATENCY_TABLE = "REPRO_LATENCY_TABLE"

#: Default token-count ladder: power-of-two buckets keep every variant
#: tile-aligned (see ``transformer._row_tile``); 64 covers decode steps,
#: 8192 the largest admissible prefill chunk.
DEFAULT_BUCKETS = (64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Default resident-KV ladder.  0 is the prefill form (and the exact
#: old one-axis behaviour); the non-zero rungs cover a long-context
#: decode batch up to ~128k total resident tokens, beyond which the
#: interpolator extrapolates on the last segment.
DEFAULT_CTX_BUCKETS = (0, 8192, 32768, 131072)


def latency_table_path() -> Path:
    env = os.environ.get(ENV_LATENCY_TABLE)
    if env:
        return Path(env)
    return (Path(__file__).resolve().parents[3] / "benchmarks"
            / "latency_table.json")


def model_key(model: ModelConfig) -> str:
    """Architecture fingerprint: every field that changes one layer's
    simulated time (``n_layers`` scales outside the table; batch/seq are
    replaced per bucket)."""
    key = (f"h{model.hidden}-a{model.heads}x{model.head_dim}"
           f"-i{model.intermediate}")
    if model.moe:
        key += f"-moe{model.n_experts}k{model.topk}"
        if model.shared_intermediate:
            key += f"-si{model.shared_intermediate}"
    return key


def _warm_cache_fingerprint() -> str:
    """Content digest of the shipped warm tuner cache (or ``none``).

    ``tilelink-tuned`` step latencies depend on which winners the warm
    cache resolves — retuning ``warm_cache.json`` changes the simulated
    layer without touching this module, so tuned entry keys fold the
    cache *content* in and ``refresh_latency_table.py --check`` goes
    stale exactly when it should."""
    from repro.tuner.warm import resolve_warm_cache

    cache = resolve_warm_cache()
    if cache is None:
        return "none"
    payload = json.dumps({k: cache.get(k) for k in sorted(cache.keys())},
                         sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def entry_key(model: ModelConfig, method: str, world: int,
              spec: HardwareSpec, seed: int = 0) -> str:
    key = "|".join([model_key(model), method, f"w{world}", f"s{seed}",
                    spec.fingerprint()])
    if method == "tilelink-tuned":
        key += f"|wc{_warm_cache_fingerprint()}"
    return key


def resolve_latency_table(path: str | os.PathLike | None = None
                          ) -> "StepLatencyTable | None":
    """The shipped latency table, read-only, or ``None`` when missing."""
    p = Path(path) if path is not None else latency_table_path()
    if not p.is_file():
        return None
    return StepLatencyTable(p, readonly=True)


class StepLatencyTable(VersionedJsonStore):
    """Persistent (model, method) -> bucketed per-layer-seconds store.

    The storage discipline (lazy first read, atomic
    write-temp-then-rename flush, corrupt-as-empty, ``readonly`` handles
    that update the in-memory view but never touch disk) is shared with
    :class:`repro.tuner.cache.TuneCache` via
    :class:`~repro.util.jsonstore.VersionedJsonStore`.
    """

    _version = _VERSION

    def __init__(self, path: str | os.PathLike | None = None, *,
                 readonly: bool = False):
        super().__init__(path if path is not None else latency_table_path(),
                         readonly=readonly)

    # -- building -----------------------------------------------------------

    def has(self, model: ModelConfig, method: str, world: int = 8,
            spec: HardwareSpec = H800, seed: int = 0) -> bool:
        return entry_key(model, method, world, spec, seed) in self._load()

    def entry(self, key: str) -> dict | None:
        """The raw stored entry for ``key`` (a copy), or ``None``."""
        e = self._load().get(key)
        return dict(e) if e is not None else None

    def ensure(self, model: ModelConfig, method: str, world: int = 8,
               spec: HardwareSpec = H800,
               buckets: Iterable[int] = DEFAULT_BUCKETS, seed: int = 0,
               ctx_buckets: Iterable[int] = DEFAULT_CTX_BUCKETS,
               progress: Callable[[str], None] | None = None) -> dict:
        """Simulate (or reuse) this entry's bucket grid; returns it.

        An existing entry with the same token *and* context ladders is
        returned as-is (zero simulation); a differing ladder on either
        axis is resimulated whole so an entry is always internally
        consistent.  On a ``readonly`` table the fresh entry lives only
        in memory.
        """
        from repro.models.runner import layer_time

        buckets = sorted(set(int(b) for b in buckets))
        if len(buckets) < 2 or buckets[0] < 8:
            # >= 2 points: the interpolator needs a segment to
            # extrapolate from above the largest bucket
            raise ServeError(f"invalid bucket ladder {buckets}")
        ctx_buckets = sorted(set(int(c) for c in ctx_buckets))
        if len(ctx_buckets) < 2 or ctx_buckets[0] != 0:
            # the 0 rung is the prefill form; >= 2 rungs give the
            # context axis a segment to extrapolate from
            raise ServeError(f"invalid context-bucket ladder {ctx_buckets}")
        key = entry_key(model, method, world, spec, seed)
        entry = self._load().get(key)
        if entry is not None and \
                list(entry.get("buckets", ())) == buckets and \
                list(entry.get("ctx_buckets", ())) == ctx_buckets:
            return entry
        grid = []
        for c in ctx_buckets:
            row = []
            for b in buckets:
                if progress is not None:
                    progress(f"  simulate {model.name}/{method} @ {b} "
                             f"tokens, {c} resident KV")
                variant = model.with_tokens(b)
                if c > 0:
                    variant = variant.with_context(c)
                row.append(layer_time(variant, method, world=world,
                                      seed=seed, spec=spec))
            grid.append(row)
        entry = {"buckets": buckets, "ctx_buckets": ctx_buckets,
                 "layer_s": grid,
                 "meta": {"model": model.name, "method": method,
                          "world": world, "seed": seed}}
        self._load()[key] = entry
        self._flush()
        return entry

    # -- querying -----------------------------------------------------------

    def interpolator(self, model: ModelConfig, method: str, world: int = 8,
                     spec: HardwareSpec = H800,
                     seed: int = 0) -> Callable[..., float]:
        """A fast ``(tokens, ctx) -> step seconds`` closure for one entry.

        ``ctx`` is the batch's total resident KV tokens and defaults to
        0 (the prefill form).  The serving loop calls this millions of
        times; resolving the entry once and closing over plain lists
        keeps the per-step cost to two bisects and a handful of
        multiplies.
        """
        key = entry_key(model, method, world, spec, seed)
        entry = self._load().get(key)
        if entry is None:
            raise ServeError(
                f"no latency-table entry for {model.name}/{method} "
                f"(world={world}, seed={seed}) in {self.path}; build one "
                f"with StepLatencyTable.ensure() or refresh the shipped "
                f"table via benchmarks/refresh_latency_table.py")
        buckets = [int(b) for b in entry["buckets"]]
        ctx_buckets = [int(c) for c in entry["ctx_buckets"]]
        grid = [[float(t) for t in row] for row in entry["layer_s"]]
        n_layers = model.n_layers
        from bisect import bisect_left

        def row_at(layer_s: list[float], tokens: int) -> float:
            if tokens <= buckets[0]:
                # fixed launch/collective overheads dominate below the
                # smallest bucket — charge its floor
                return layer_s[0]
            if tokens >= buckets[-1]:
                # extrapolate on the last segment's per-token slope
                slope = ((layer_s[-1] - layer_s[-2])
                         / (buckets[-1] - buckets[-2]))
                return layer_s[-1] + slope * (tokens - buckets[-1])
            i = bisect_left(buckets, tokens)
            lo_b, hi_b = buckets[i - 1], buckets[i]
            lo_t, hi_t = layer_s[i - 1], layer_s[i]
            frac = (tokens - lo_b) / (hi_b - lo_b)
            return lo_t + frac * (hi_t - lo_t)

        def step_seconds(tokens: int, ctx: int = 0) -> float:
            if ctx <= ctx_buckets[0]:
                per_layer = row_at(grid[0], tokens)
            elif ctx >= ctx_buckets[-1]:
                hi = row_at(grid[-1], tokens)
                lo = row_at(grid[-2], tokens)
                slope = (hi - lo) / (ctx_buckets[-1] - ctx_buckets[-2])
                per_layer = hi + slope * (ctx - ctx_buckets[-1])
            else:
                i = bisect_left(ctx_buckets, ctx)
                lo_c, hi_c = ctx_buckets[i - 1], ctx_buckets[i]
                lo_t = row_at(grid[i - 1], tokens)
                hi_t = row_at(grid[i], tokens)
                frac = (ctx - lo_c) / (hi_c - lo_c)
                per_layer = lo_t + frac * (hi_t - lo_t)
            return per_layer * n_layers

        return step_seconds

    def step_time(self, model: ModelConfig, method: str, tokens: int,
                  world: int = 8, spec: HardwareSpec = H800,
                  seed: int = 0, ctx: int = 0) -> float:
        """Seconds for one serving step of ``tokens`` total tokens
        attending over ``ctx`` resident KV tokens."""
        return self.interpolator(model, method, world, spec, seed)(tokens,
                                                                   ctx)
