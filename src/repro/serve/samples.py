"""Streaming per-step sample accumulators for the serving engine.

The scheduler samples three series once per engine step — waiting-queue
depth, running-batch size, pool occupancy — and a 1M-request run takes
millions of steps, so the seed's plain lists grew to tens of MB per
:class:`~repro.serve.scheduler.ServeResult`.  Every consumer only ever
asks for order statistics (``max``, percentiles) and the last sample,
and the series take few distinct values (queue depths are small ints,
batch sizes are bounded by ``max_batch``, occupancies by the block
count), so :class:`StepStats` stores a ``{value: count}`` multiset
instead: O(distinct values) memory, O(1) appends, and percentiles that
reproduce :func:`repro.serve.metrics.percentile` bit-for-bit.

``add_repeat`` is the macro-stepping hook: the event-driven engine
(:mod:`repro.serve.engine`) records a whole run of identical steps in
one call.  ``append`` keeps the reference loop's call sites unchanged,
and iteration replays the samples in insertion order of first
occurrence (grouped by value) — enough for the ``max()`` / ``all()`` /
``[-1]`` idioms the tests and benches use, though not the original
interleaving.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ServeError

__all__ = ["StepStats"]


class StepStats:
    """Order-statistics multiset over one per-step sample series."""

    __slots__ = ("_counts", "_n", "_last")

    def __init__(self) -> None:
        self._counts: dict = {}     # value -> occurrences
        self._n = 0
        self._last = None

    @classmethod
    def of(cls, values: Iterable) -> "StepStats":
        stats = cls()
        for v in values:
            stats.append(v)
        return stats

    # -- recording ----------------------------------------------------------

    def append(self, value) -> None:
        """Record one sample (list-compatible call shape)."""
        self._counts[value] = self._counts.get(value, 0) + 1
        self._n += 1
        self._last = value

    def add_repeat(self, value, count: int) -> None:
        """Record ``count`` consecutive samples of ``value`` at once."""
        if count <= 0:
            return
        self._counts[value] = self._counts.get(value, 0) + count
        self._n += count
        self._last = value

    @classmethod
    def _from_counts(cls, counts: dict, last) -> "StepStats":
        """Adopt a prebuilt ``value -> count`` mapping (engine hook: the
        hot loops count inline and hand the dict over once)."""
        stats = cls()
        stats._counts = counts
        stats._n = sum(counts.values())
        stats._last = last
        return stats

    # -- querying -----------------------------------------------------------

    def counts(self) -> dict:
        """A copy of the ``value -> occurrences`` multiset.

        Public adoption point for consumers that fold a finished series
        into their own accumulator (e.g. ``repro.obs`` histograms merge
        a :class:`~repro.serve.scheduler.ServeResult`'s per-step series
        without replaying millions of samples)."""
        return dict(self._counts)

    @property
    def distinct(self) -> int:
        """Number of distinct values held — the memory footprint."""
        return len(self._counts)

    @property
    def last(self):
        """The most recent sample (``None`` when empty)."""
        return self._last

    @property
    def max(self):
        if not self._n:
            raise ServeError("max of an empty sample series")
        return max(self._counts)

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100), bit-identical to
        :func:`repro.serve.metrics.percentile` on the same samples."""
        if not self._n:
            # a *named* ServeError, never a bare IndexError/KeyError from
            # the rank walk below: obs histograms snapshot empty series
            # routinely and must be able to catch this precisely
            raise ServeError("percentile of an empty sample series")
        if not 0.0 <= q <= 100.0:
            raise ServeError(f"percentile q must be in [0, 100], got {q}")
        values = sorted(self._counts)
        if self._n == 1:
            return float(values[0])
        pos = (self._n - 1) * q / 100.0
        lo = int(pos)
        frac = pos - lo
        if lo + 1 >= self._n:
            return float(self._at_rank(values, self._n - 1))
        v_lo = self._at_rank(values, lo)
        v_hi = self._at_rank(values, lo + 1)
        return float(v_lo + frac * (v_hi - v_lo))

    def _at_rank(self, sorted_values: list, rank: int):
        """The ``rank``-th (0-based) sample of the sorted multiset."""
        cum = 0
        for v in sorted_values:
            cum += self._counts[v]
            if rank < cum:
                return v
        raise ServeError(f"rank {rank} out of range for {self._n} samples")

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator:
        """Samples grouped by first-occurrence order (not the original
        interleaving — the multiset does not keep it)."""
        for v, c in self._counts.items():
            for _ in range(c):
                yield v

    def __getitem__(self, index: int):
        if index == -1:
            if not self._n:
                raise IndexError("StepStats is empty")
            return self._last
        raise IndexError(
            "StepStats keeps value counts, not the sample sequence; only "
            "[-1] (the most recent sample) is indexable — use .max / "
            ".percentile(q) for order statistics")

    def __eq__(self, other) -> bool:
        if not isinstance(other, StepStats):
            return NotImplemented
        return (self._n == other._n and self._last == other._last
                and self._counts == other._counts)

    def __repr__(self) -> str:
        return (f"StepStats(n={self._n}, distinct={self.distinct}, "
                f"last={self._last!r})")
