"""Seeded request workloads for the serving simulator.

A workload is a list of :class:`Request` objects — arrival time plus
per-request prompt/output token counts — produced by a named
:class:`Scenario`.  Three arrival processes are supported:

* ``"poisson"`` — memoryless arrivals at ``rate_rps`` (steady
  interactive traffic);
* ``"bursty"`` — an on/off modulated Poisson process: each
  ``burst_cycle_s`` cycle spends ``burst_duty`` of its length at
  ``burst_factor`` times the base rate and the remainder at a
  compensating low rate, so the *average* rate stays ``rate_rps`` while
  the queue sees waves (retrieval frontends, cron-fed traffic);
* ``"waves"`` — deterministic batch drops: requests arrive
  ``wave_size`` at a time every ``wave_gap_s`` seconds (offline/batch
  jobs submitted in chunks).

Recorded production traces replay through :func:`replay_trace`, which
bypasses generation entirely.

Token counts draw from clamped log-normals (heavy right tail, like real
prompt/response length distributions).  Everything is driven by one
``random.Random(seed)`` — the same (scenario, n, seed) triple always
yields byte-identical workloads, which is what makes the serving
benchmarks reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Sequence

from repro.errors import ServeError

__all__ = ["Request", "Scenario", "SCENARIOS", "generate_requests",
           "replay_trace"]


@dataclass(frozen=True)
class Request:
    """One inference request: arrive, prefill the prompt, decode tokens."""

    rid: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int


@dataclass(frozen=True)
class Scenario:
    """A named traffic shape (arrival process + length distributions)."""

    name: str
    arrival: str = "poisson"        # poisson | bursty | waves
    rate_rps: float = 8.0           # average arrival rate
    #: prompt/output length log-normals: ``mean`` is the distribution
    #: mean, ``sigma`` the log-space spread, ``max`` the clamp.
    prompt_mean: int = 256
    prompt_sigma: float = 0.6
    prompt_max: int = 4096
    output_mean: int = 128
    output_sigma: float = 0.5
    output_max: int = 1024
    # bursty-arrival knobs; the cycle average stays ``rate_rps`` as long
    # as ``burst_factor * burst_duty <= 1`` (beyond that the off phase
    # cannot compensate and the floor lifts the average)
    burst_factor: float = 3.0
    burst_cycle_s: float = 20.0
    burst_duty: float = 0.25
    # wave-arrival knobs
    wave_size: int = 64
    wave_gap_s: float = 30.0


#: Named presets: interactive chat, retrieval-augmented generation (long
#: bursty prompts, short answers), offline batch summarization (very
#: long prompts submitted in waves) and long-context analysis (steady
#: arrivals of very heavy prompts with modest outputs — the KV-pressure
#: workload the KV-aware scheduler is benchmarked under).
SCENARIOS: dict[str, Scenario] = {
    "chat": Scenario("chat", arrival="poisson", rate_rps=8.0,
                     prompt_mean=256, prompt_sigma=0.6, prompt_max=2048,
                     output_mean=128, output_sigma=0.5, output_max=512),
    "rag": Scenario("rag", arrival="bursty", rate_rps=4.0, burst_factor=3.0,
                    prompt_mean=2048, prompt_sigma=0.4, prompt_max=6144,
                    output_mean=96, output_sigma=0.5, output_max=384),
    "batch-summarize": Scenario("batch-summarize", arrival="waves",
                                rate_rps=4.0, wave_size=64, wave_gap_s=30.0,
                                prompt_mean=4096, prompt_sigma=0.3,
                                prompt_max=7680, output_mean=64,
                                output_sigma=0.4, output_max=256),
    "long-context": Scenario("long-context", arrival="poisson",
                             rate_rps=2.0, prompt_mean=6144,
                             prompt_sigma=0.5, prompt_max=16384,
                             output_mean=192, output_sigma=0.4,
                             output_max=512),
}


def _lognormal_tokens(rng: random.Random, mean: int, sigma: float,
                      max_tokens: int) -> int:
    """Integer token count from a log-normal with the given *mean*."""
    mu = math.log(mean) - sigma * sigma / 2.0
    return max(1, min(max_tokens, int(round(rng.lognormvariate(mu, sigma)))))


def _poisson_arrivals(rng: random.Random, n: int, rate: float) -> list[float]:
    t, out = 0.0, []
    for _ in range(n):
        t += rng.expovariate(rate)
        out.append(t)
    return out


def _bursty_arrivals(rng: random.Random, n: int, sc: Scenario,
                     rate: float) -> list[float]:
    """On/off modulated Poisson with cycle-average rate ``rate``."""
    on_rate = rate * sc.burst_factor
    # the off-phase rate that keeps the cycle average at ``rate`` (floored
    # so extreme duty/factor combinations stay a valid process)
    off_rate = max(rate * 0.02,
                   rate * (1.0 - sc.burst_factor * sc.burst_duty)
                   / max(1e-9, 1.0 - sc.burst_duty))
    on_len = sc.burst_cycle_s * sc.burst_duty
    t, out = 0.0, []
    while len(out) < n:
        phase = t % sc.burst_cycle_s
        in_burst = phase < on_len
        r = on_rate if in_burst else off_rate
        gap = rng.expovariate(r)
        # a gap that crosses the phase boundary is resampled from the
        # boundary at the new rate (thinning keeps the process honest)
        boundary = (on_len - phase) if in_burst else \
            (sc.burst_cycle_s - phase)
        if gap > boundary:
            t += boundary
            continue
        t += gap
        out.append(t)
    return out


def _wave_arrivals(n: int, sc: Scenario) -> list[float]:
    return [(i // sc.wave_size) * sc.wave_gap_s for i in range(n)]


def generate_requests(scenario: str | Scenario, n_requests: int,
                      seed: int = 0,
                      rate_rps: float | None = None) -> list[Request]:
    """``n_requests`` seeded requests following ``scenario``.

    ``scenario`` is a preset name from :data:`SCENARIOS` or a custom
    :class:`Scenario`; ``rate_rps`` overrides the preset's average rate
    (the knob a saturation sweep turns).
    """
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise ServeError(
                f"unknown scenario {scenario!r}; presets: "
                f"{sorted(SCENARIOS)}") from None
    if rate_rps is not None:
        scenario = replace(scenario, rate_rps=float(rate_rps))
    if n_requests <= 0:
        raise ServeError(f"n_requests must be positive, got {n_requests}")
    if scenario.arrival in ("poisson", "bursty") and \
            not scenario.rate_rps > 0:
        raise ServeError(f"rate_rps must be positive, got "
                         f"{scenario.rate_rps}")
    rng = random.Random(seed)
    if scenario.arrival == "poisson":
        arrivals = _poisson_arrivals(rng, n_requests, scenario.rate_rps)
    elif scenario.arrival == "bursty":
        arrivals = _bursty_arrivals(rng, n_requests, scenario,
                                    scenario.rate_rps)
    elif scenario.arrival == "waves":
        arrivals = _wave_arrivals(n_requests, scenario)
    else:
        raise ServeError(f"unknown arrival process {scenario.arrival!r}")
    return [Request(rid=i, arrival_s=arrivals[i],
                    prompt_tokens=_lognormal_tokens(
                        rng, scenario.prompt_mean, scenario.prompt_sigma,
                        scenario.prompt_max),
                    output_tokens=_lognormal_tokens(
                        rng, scenario.output_mean, scenario.output_sigma,
                        scenario.output_max))
            for i in range(n_requests)]


def replay_trace(arrival_s: Sequence[float], prompt_tokens: Sequence[int],
                 output_tokens: Sequence[int]) -> list[Request]:
    """Requests replaying a recorded trace (parallel per-request lists)."""
    if not (len(arrival_s) == len(prompt_tokens) == len(output_tokens)):
        raise ServeError(
            f"trace columns disagree: {len(arrival_s)} arrivals, "
            f"{len(prompt_tokens)} prompts, {len(output_tokens)} outputs")
    reqs = [Request(rid=i, arrival_s=float(t), prompt_tokens=int(p),
                    output_tokens=int(o))
            for i, (t, p, o) in enumerate(
                zip(arrival_s, prompt_tokens, output_tokens))]
    for r in reqs:
        if r.prompt_tokens < 1 or r.output_tokens < 1:
            raise ServeError(f"request {r.rid}: token counts must be >= 1")
    return sorted(reqs, key=lambda r: (r.arrival_s, r.rid))
