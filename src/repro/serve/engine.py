"""Event-driven serving core: macro-stepped decode over columnar state.

The reference loop (:func:`repro.serve.scheduler.serve_reference`)
interprets every engine step — ~1.5M steps for a 100k-request chat run —
and spends most of its time on per-step Python object traffic.  This
engine reproduces it *bit-for-bit* while pricing decode in macro-steps:

* **struct-of-arrays batch state** — the running batch lives in parallel
  columns instead of ``_Running`` objects, and the per-step quantities
  are stored in *absolute* coordinates so a macro-step touches no
  column at all: ``col_fin`` holds the global decode-step index at
  which an entry finishes (not a per-step ``remaining`` countdown), and
  ``col_resb`` holds ``resident - D_admit`` (so an entry's resident KV
  at global step ``D`` is ``col_resb[i] + D`` without ever rewriting
  the column).  The batch's total resident context at step ``t`` is
  then ``sum(col_resb) + B * (t - 1)`` with the sum maintained
  incrementally on admit/remove.
* **decode macro-stepping** — between batch-composition events the
  batch is static, so the engine advances up to
  ``k = min(col_fin) - D`` decode steps in one tight loop whose body is
  a handful of inlined float ops (via
  :meth:`~repro.serve.latency.StepPricer.decode_coeffs`, the raw
  coefficients of the context cell the closure pricer interpolates in).
  The events that bound a macro are conservative (stopping early is
  always safe — a macro of one step is exactly one reference step):

  - the next **finish** (``min`` over the absolute finish column);
  - the next **arrival** while the batch has free slots — only a *new*
    arrival can flip the prefill gate mid-macro, because the waiting
    head is static and free blocks only shrink while decoding (the
    kv-aware and naive admission gates are both monotone in those);
  - the next **pool-pressure point**: a step whose block growth exceeds
    the free count falls back to one reference-shaped step with the
    preemption loop.

* **integer pool shadowing** — with a pool, an entry crosses a block
  boundary exactly when its resident count fills a block: at global
  decode steps congruent to ``(1 - col_resb[i]) mod block_tokens``, a
  phase fixed at admission.  Entries hang in per-phase buckets, so each
  macro step's total block growth is one integer read.  The
  :class:`~repro.serve.kv.KVCacheManager` is built once (config
  validation, capacity/watermark resolution) and then shadowed by plain
  integer accounting — a used-block counter and per-request block
  counts.  Block *identities* never reach any published output (the
  pool's LIFO id discipline exists for its own ledger tests), and every
  admission gate, occupancy sample and preemption threshold is a pure
  function of these counts, so the shadow is exact.
* **clock discipline** — the simulated clock still accumulates one
  float add per step, through the same cell arithmetic the per-call
  pricer uses (operation-for-operation); closed-form ``k * dt``
  shortcuts would break bit-determinism.  Per-step samples are counted
  inline (runs of steps between events share one value) and adopted
  into :class:`~repro.serve.samples.StepStats` at the end.

A duck-typed table whose ``interpolator`` returns a plain callable
(no ``decode_coeffs`` — e.g. the fake tables unit tests use) is priced
per-step through that callable, preserving its exact call trace.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Sequence

from repro.config import H800, HardwareSpec
from repro.errors import ServeError
from repro.models.configs import ModelConfig
from repro.serve.kv import KVCacheConfig, KVCacheManager, VICTIM_POLICIES
from repro.serve.latency import StepLatencyTable
from repro.serve.samples import StepStats
from repro.serve.scheduler import (
    POLICIES,
    RequestLog,
    ServeResult,
    ServerConfig,
)
from repro.serve.workload import Request

__all__ = ["serve_events"]


class _Entry:
    """Attribute view of one running request for the pluggable
    ``VICTIM_POLICIES`` key functions (same fields as the reference
    loop's ``_Running``)."""

    __slots__ = ("req", "emitted", "resident", "admit_seq")

    def __init__(self, req: Request, emitted: int, resident: int,
                 admit_seq: int):
        self.req = req
        self.emitted = emitted
        self.resident = resident
        self.admit_seq = admit_seq


def serve_events(requests: Sequence[Request], model: ModelConfig,
                 method: str, table: StepLatencyTable,
                 server: ServerConfig | None = None, world: int = 8,
                 spec: HardwareSpec = H800, seed: int = 0,
                 kv: KVCacheConfig | None = None,
                 recorder=None) -> ServeResult:
    """Serve ``requests`` through the event-driven core.

    Same contract as :func:`repro.serve.scheduler.serve` (which wraps
    this), same bits as :func:`~repro.serve.scheduler.serve_reference`.

    ``recorder`` (an enabled :class:`repro.obs.Recorder`, duck-typed:
    ``.enabled`` plus an ``events`` list) captures the full request
    lifecycle in simulated-clock time — arrivals, idle gaps, prefill
    steps, per-request admissions, decode macro-steps, preemptions,
    finishes, and (with a pool) per-step used-block levels and
    watermark crossings.  Recording is strictly read-only: it appends
    event
    tuples and touches no simulation state, so results are
    bit-identical with the recorder on, off, or ``None`` — and with it
    ``None`` (the default) every hook is a single predictable branch.
    This module deliberately never imports :mod:`repro.obs`.
    """
    server = server or ServerConfig()
    server.validate()
    if not requests:
        raise ServeError("serve() needs at least one request")
    recording = recorder is not None and recorder.enabled
    if recording and recorder.events:
        raise ServeError(
            "recorder already holds events; serve() needs a fresh "
            "Recorder per run (mixing two runs' clocks would corrupt "
            "every downstream timeline)")
    pricer = table.interpolator(model, method, world=world, spec=spec,
                                seed=seed)
    coeffs_of = getattr(pricer, "decode_coeffs", None)
    prio = POLICIES[server.policy]
    mgr = KVCacheManager(kv, model) if kv is not None else None
    with_pool = mgr is not None
    naive = kv is not None and kv.admission == "naive"
    victim_key = VICTIM_POLICIES[kv.victim] if kv is not None else None

    order = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
    logs = {r.rid: RequestLog(r) for r in order}
    result = ServeResult(logs=[logs[r.rid] for r in order], makespan_s=0.0,
                         pool_blocks=mgr.capacity_blocks if mgr else 0)

    max_batch = server.max_batch
    max_prefill = server.max_prefill_tokens

    # struct-of-arrays running batch (all columns in admission order);
    # see the module docstring for the absolute coordinates
    col_req: list[Request] = []     # the request objects
    col_rid: list[int] = []         # request ids
    col_fin: list[int] = []         # global decode step of the finish
    col_resb: list[int] = []        # resident - D_admit (resident base)
    col_seq: list[int] = []         # admission counter (victim selection)
    sum_resb = 0                    # running sum of ``col_resb``

    waiting: list[tuple] = []       # heap of (priority, Request)
    #: rid -> emitted count at eviction (requests awaiting re-admission)
    preempted: dict[int, int] = {}
    evicted_at: dict[int, float] = {}
    admit_seq = 0
    clock = order[0].arrival_s
    n_order = len(order)
    next_arrival = 0                # index into ``order``
    arr_times = [r.arrival_s for r in order]
    next_arr_t = arr_times[0]

    n_prefill = 0
    n_decode = 0                    # global decode-step counter ``D``
    n_preempt = 0
    recompute = 0
    peak_resident = 0

    # per-step sample series, counted inline ({value: occurrences});
    # adopted into StepStats at the end
    qd_counts: dict = {}
    bs_counts: dict = {}
    occ_counts: dict = {}
    qd_last = bs_last = occ_last = None

    # prefill prices repeat heavily across steps (chunk token totals
    # cluster); memoise the full (tokens, ctx=0) evaluation per run
    prefill_price: dict[int, float] = {}

    if with_pool:
        # integer shadow of the block pool (see the module docstring)
        bt = mgr.pool.block_tokens
        cap = mgr.capacity_blocks
        wm = mgr.watermark_blocks
        pool_used = 0               # blocks allocated across the batch
        held: dict[int, int] = {}   # rid -> blocks held
        #: per-phase growth buckets: ``pm[p]`` holds the rids that grow
        #: one block at decode steps ``D % bt == p``; ``cnt[p]`` caches
        #: the bucket size for the tight loop
        pm: list[dict] = [{} for _ in range(bt)]
        cnt = [0] * bt

    if recording:
        ev = recorder.events.append
        recorder.meta.update(
            kind="serve", model=model.name, method=method, world=world,
            policy=server.policy, n_requests=n_order,
            pool_blocks=cap if with_pool else 0)
        # arrivals are known up front: bulk-record them (future
        # timestamps included — consumers sort by ts)
        recorder.events.extend(
            ("arrival", r.arrival_s, r.rid, r.prompt_tokens,
             r.output_tokens) for r in order)
        if with_pool:
            wm_lvl = cap - wm       # used-block level of the watermark
            wm_above = False
        else:
            pool_used = 0           # recorded as-is on prefill/decode

    def admit_entry(r: Request, emitted: int, resident: int) -> None:
        nonlocal sum_resb
        col_req.append(r)
        col_rid.append(r.rid)
        col_fin.append(n_decode + r.output_tokens - emitted)
        rb = resident - n_decode
        col_resb.append(rb)
        col_seq.append(admit_seq)
        sum_resb += rb
        if with_pool:
            p = (1 - rb) % bt
            pm[p][r.rid] = None
            cnt[p] += 1

    def drop_entry(i: int) -> None:
        """Remove column slot ``i`` (order-preserving, like the
        reference loop's rebuild)."""
        nonlocal sum_resb
        rb = col_resb[i]
        sum_resb -= rb
        if with_pool:
            p = (1 - rb) % bt
            del pm[p][col_rid[i]]
            cnt[p] -= 1
        del col_req[i]
        del col_rid[i]
        del col_fin[i]
        del col_resb[i]
        del col_seq[i]

    def preempt_one() -> bool:
        """Evict one victim to free pool blocks; False when the batch
        is empty.  Victim choice matches the reference loop: ``max`` by
        the victim-policy key over entries in admission order."""
        nonlocal n_preempt, pool_used
        if not col_rid:
            return False
        D = n_decode
        best_i = -1
        best_key = None
        for i in range(len(col_rid)):
            req = col_req[i]
            view = _Entry(req, req.output_tokens - (col_fin[i] - D),
                          col_resb[i] + D, col_seq[i])
            key = victim_key(view)
            if best_key is None or key > best_key:
                best_i, best_key = i, key
        rid = col_rid[best_i]
        req = col_req[best_i]
        emitted = req.output_tokens - (col_fin[best_i] - D)
        pool_used -= held.pop(rid)
        drop_entry(best_i)
        preempted[rid] = emitted
        evicted_at[rid] = clock
        logs[rid].n_preemptions += 1
        n_preempt += 1
        heapq.heappush(waiting, (prio(req), req))
        if recording:
            ev(("preempt", clock, rid))
        return True

    def slow_decode_step() -> None:
        """One reference-shaped decode step with the pool preemption
        loop — the macro path falls back here when the next step's
        block growth exceeds the free count."""
        nonlocal clock, n_decode, peak_resident, pool_used
        nonlocal bs_last, occ_last, wm_above
        D = n_decode
        if recording:
            t0 = clock
        while True:
            n = len(col_rid)
            need = 0
            for i in range(n):
                d = -(-(col_resb[i] + D + 1) // bt) - held[col_rid[i]]
                if d > 0:
                    need += d
            if need <= cap - pool_used:
                break
            if n <= 1 or not preempt_one():
                raise ServeError(
                    f"KV pool too small: one request needs "
                    f"{need} more blocks with "
                    f"{cap - pool_used}/{cap} free")
        for i in range(n):
            rid = col_rid[i]
            nb = -(-(col_resb[i] + D + 1) // bt)
            d = nb - held[rid]
            if d > 0:
                held[rid] = nb
                pool_used += d
        ctx = sum_resb + n * D
        if ctx > peak_resident:
            peak_resident = ctx
        clock += pricer(n, ctx)
        n_decode = D + 1
        bs_counts[n] = bs_counts.get(n, 0) + 1
        bs_last = n
        for i in range(n - 1, -1, -1):
            if col_fin[i] == D + 1:
                rid = col_rid[i]
                logs[rid].finish_s = clock
                pool_used -= held.pop(rid)
                drop_entry(i)
                if recording:
                    ev(("finish", clock, rid))
        occ = pool_used / cap
        occ_counts[occ] = occ_counts.get(occ, 0) + 1
        occ_last = occ
        if recording:
            ev(("decode", t0, clock, 1, n, pool_used))
            if wm_above != (pool_used > wm_lvl):
                wm_above = not wm_above
                ev(("watermark", clock, 1 if wm_above else 0, pool_used))

    while next_arrival < n_order or waiting or col_rid:
        # deliver arrivals up to the current clock
        while next_arr_t <= clock:
            r = order[next_arrival]
            heapq.heappush(waiting, (prio(r), r))
            next_arrival += 1
            next_arr_t = (arr_times[next_arrival]
                          if next_arrival < n_order else inf)
        if not waiting and not col_rid:
            if recording:
                ev(("idle", clock, next_arr_t))
            clock = next_arr_t                  # idle: jump to work
            continue
        depth = len(waiting)
        qd_counts[depth] = qd_counts.get(depth, 0) + 1
        qd_last = depth

        free_slots = max_batch - len(col_rid)
        do_prefill = bool(waiting) and free_slots > 0
        if do_prefill and with_pool:
            # head-of-queue gate — same rules as the reference loop.
            # resident-on-admission: prompt plus every *cached* decoded
            # token (the latest emitted token's KV is written by the
            # next step); fresh requests carry emitted=1, so the
            # ``get`` default prices them at bare prompt size
            head = waiting[0][1]
            need = head.prompt_tokens + preempted.get(head.rid, 1) - 1
            nb = -(-need // bt)
            if nb > cap:
                raise ServeError(
                    f"request {head.rid} needs {nb} KV "
                    f"blocks but the pool holds {cap}; "
                    f"grow the pool or trim the workload")
            if naive:
                if head.rid in preempted and nb > cap - pool_used:
                    do_prefill = False
            elif not (nb <= cap - pool_used if not col_rid
                      else nb <= cap - pool_used - wm):
                do_prefill = False

        if do_prefill:
            # ---- prefill step: identical to the reference loop ----------
            step_start = clock
            chunk: list[tuple[Request, int]] = []   # (request, resident)
            tokens = 0
            while waiting and len(chunk) < free_slots:
                item = heapq.heappop(waiting)
                r = item[1]
                resident = r.prompt_tokens + preempted.get(r.rid, 1) - 1
                if chunk and tokens + resident > max_prefill:
                    heapq.heappush(waiting, item)
                    break
                if with_pool:
                    nb = -(-resident // bt)
                    if nb > cap:
                        raise ServeError(
                            f"request {r.rid} needs "
                            f"{nb} KV blocks but the "
                            f"pool holds {cap}; grow the "
                            f"pool or trim the workload")
                    if naive:
                        if r.rid not in preempted:
                            while nb > cap - pool_used and preempt_one():
                                pass
                        if nb > cap - pool_used:
                            heapq.heappush(waiting, item)
                            break
                    elif not (nb <= cap - pool_used
                              if not col_rid and not chunk
                              else nb <= cap - pool_used - wm):
                        heapq.heappush(waiting, item)
                        break
                    held[r.rid] = nb
                    pool_used += nb
                chunk.append((r, resident))
                tokens += resident
                if tokens >= max_prefill:
                    break
            price = prefill_price.get(tokens)
            if price is None:
                price = prefill_price[tokens] = pricer(tokens, 0)
            clock += price
            n_prefill += 1
            size = len(col_rid) + len(chunk)
            bs_counts[size] = bs_counts.get(size, 0) + 1
            bs_last = size
            for r, resident in chunk:
                log = logs[r.rid]
                if r.rid in preempted:
                    emitted = preempted.pop(r.rid)
                    log.recompute_tokens += resident
                    recompute += resident
                    log.preempt_stall_s += clock - evicted_at.pop(r.rid)
                    admit_entry(r, emitted, resident)
                    if recording:
                        ev(("admit", step_start, clock, r.rid, 0, resident))
                else:
                    log.queue_wait_s = step_start - r.arrival_s
                    log.first_token_s = clock
                    if recording:
                        ev(("admit", step_start, clock, r.rid, 1, resident))
                    if r.output_tokens <= 1:
                        log.finish_s = clock
                        if with_pool:
                            pool_used -= held.pop(r.rid)
                        if recording:
                            ev(("finish", clock, r.rid))
                    else:
                        admit_entry(r, 1, resident)
                admit_seq += 1
            if with_pool:
                occ = pool_used / cap
                occ_counts[occ] = occ_counts.get(occ, 0) + 1
                occ_last = occ
            if recording:
                # emitted after the admit loop so the trailing pool
                # level reflects this step's admissions and single-token
                # releases (consumers sort by ts; admits share t0)
                ev(("prefill", step_start, clock, len(chunk), tokens,
                    size, pool_used))
                if with_pool and wm_above != (pool_used > wm_lvl):
                    wm_above = not wm_above
                    ev(("watermark", clock, 1 if wm_above else 0,
                        pool_used))
        else:
            # ---- decode: macro-step to the next batch-composition event
            B = len(col_rid)
            d0 = n_decode
            if recording:
                t_macro = clock
            k = min(col_fin) - d0           # steps to the next finish
            ctx = sum_resb + B * d0         # resident KV priced at step 1
            arr_stop = free_slots > 0       # an arrival could prefill next
            wl = depth
            pending: list[Request] = []
            last_q = 1      # last step whose queue-depth sample is flushed
            # pricing state: form -1 forces a resolve on the first step;
            # forms 0/1/2 are decode_coeffs cells inlined below, form 3
            # is the duck-typed per-call fallback
            if coeffs_of is not None:
                form, seg_end = -1, -1.0
            else:
                form, seg_end = 3, inf
            _f = _lt = _lc = _dn = _df = _n = _hi = _sl = _tc = 0.0
            s = 1
            if with_pool:
                free_now = cap - pool_used
                used = pool_used
                last_o = 0      # last step whose occupancy is flushed
                grow_phases: list[int] = []
                ph = (d0 + 1) % bt
                while True:
                    # arrivals: at s == 1 the outer loop already drained
                    # every arrival <= clock, so this stays False
                    if next_arr_t <= clock:
                        c = s - 1 - last_q
                        if c:
                            qd_counts[wl] = qd_counts.get(wl, 0) + c
                            qd_last = wl
                        last_q = s - 1
                        while next_arr_t <= clock:
                            pending.append(order[next_arrival])
                            next_arrival += 1
                            wl += 1
                            next_arr_t = (arr_times[next_arrival]
                                          if next_arrival < n_order
                                          else inf)
                        if arr_stop:
                            executed = s - 1
                            break               # the gate could now admit
                    g = cnt[ph]
                    if g:
                        if g > free_now:
                            executed = s - 1
                            break               # pressure: slow path
                        c = s - 1 - last_o
                        if c:
                            occ = used / cap
                            occ_counts[occ] = occ_counts.get(occ, 0) + c
                            occ_last = occ
                        last_o = s - 1
                        free_now -= g
                        used += g
                        grow_phases.append(ph)
                        # upward watermark crossings happen only on
                        # growth, so this is the one recording check
                        # the tight loop carries (and only on the
                        # already-rare growth branch)
                        if recording and not wm_above and used > wm_lvl:
                            wm_above = True
                            ev(("watermark", clock, 1, used))
                    if ctx > seg_end:
                        co = coeffs_of(B, ctx)
                        form = co[0]
                        if form == 1:
                            _, _lt, _lc, _dn, _df, _n, seg_end = co
                        elif form == 0:
                            _, _f, seg_end = co
                        else:
                            _, _hi, _sl, _tc, _n, seg_end = co
                    if form == 1:
                        clock += (_lt + ((ctx - _lc) / _dn) * _df) * _n
                    elif form == 0:
                        clock += _f
                    elif form == 2:
                        clock += (_hi + _sl * (ctx - _tc)) * _n
                    else:
                        clock += pricer(B, ctx)
                    if s == k:
                        executed = k
                        break
                    ctx += B
                    s += 1
                    ph += 1
                    if ph == bt:
                        ph = 0
            else:
                while True:
                    if next_arr_t <= clock:
                        c = s - 1 - last_q
                        if c:
                            qd_counts[wl] = qd_counts.get(wl, 0) + c
                            qd_last = wl
                        last_q = s - 1
                        while next_arr_t <= clock:
                            pending.append(order[next_arrival])
                            next_arrival += 1
                            wl += 1
                            next_arr_t = (arr_times[next_arrival]
                                          if next_arrival < n_order
                                          else inf)
                        if arr_stop:
                            executed = s - 1
                            break
                    if ctx > seg_end:
                        co = coeffs_of(B, ctx)
                        form = co[0]
                        if form == 1:
                            _, _lt, _lc, _dn, _df, _n, seg_end = co
                        elif form == 0:
                            _, _f, seg_end = co
                        else:
                            _, _hi, _sl, _tc, _n, seg_end = co
                    if form == 1:
                        clock += (_lt + ((ctx - _lc) / _dn) * _df) * _n
                    elif form == 0:
                        clock += _f
                    elif form == 2:
                        clock += (_hi + _sl * (ctx - _tc)) * _n
                    else:
                        clock += pricer(B, ctx)
                    if s == k:
                        executed = k
                        break
                    ctx += B
                    s += 1
            c = executed - last_q
            if c > 0:
                qd_counts[wl] = qd_counts.get(wl, 0) + c
                qd_last = wl
            for r in pending:
                heapq.heappush(waiting, (prio(r), r))
            if executed:
                n_decode = dend = d0 + executed
                bs_counts[B] = bs_counts.get(B, 0) + executed
                bs_last = B
                last_ctx = sum_resb + B * (dend - 1)
                if last_ctx > peak_resident:
                    peak_resident = last_ctx
                finishing = executed == k
                if with_pool:
                    # the run of non-growth steps since the last flush;
                    # the finishing step samples occupancy separately,
                    # *after* the releases (reference loop bottom)
                    c = (executed - 1 if finishing else executed) - last_o
                    if c > 0:
                        occ = used / cap
                        occ_counts[occ] = occ_counts.get(occ, 0) + c
                        occ_last = occ
                    pool_used = used
                    # materialise the growth the buckets accounted
                    for p in grow_phases:
                        for rid in pm[p]:
                            held[rid] += 1
                if finishing:
                    for i in range(B - 1, -1, -1):
                        if col_fin[i] == dend:
                            rid = col_rid[i]
                            logs[rid].finish_s = clock
                            if with_pool:
                                pool_used -= held.pop(rid)
                            drop_entry(i)
                            if recording:
                                ev(("finish", clock, rid))
                    if with_pool:
                        occ = pool_used / cap
                        occ_counts[occ] = occ_counts.get(occ, 0) + 1
                        occ_last = occ
                if recording:
                    # after the finishing releases: the macro-step's
                    # closing pool level (file order trails the finish
                    # events; consumers sort by ts)
                    ev(("decode", t_macro, clock, executed, B, pool_used))
                    if with_pool and wm_above != (pool_used > wm_lvl):
                        wm_above = not wm_above
                        ev(("watermark", clock, 1 if wm_above else 0,
                            pool_used))
            else:
                # pressure before the first step: one reference-shaped
                # step with the preemption loop, then re-plan
                slow_decode_step()

    if recording:
        recorder.meta["t0"] = order[0].arrival_s
        recorder.meta["t1"] = clock
        recorder.meta["makespan_s"] = clock - order[0].arrival_s
    result.makespan_s = clock - order[0].arrival_s
    result.n_prefill_steps = n_prefill
    result.n_decode_steps = n_decode
    result.n_preemptions = n_preempt
    result.recompute_tokens = recompute
    result.peak_resident_tokens = peak_resident
    result.queue_depth = StepStats._from_counts(qd_counts, qd_last)
    result.batch_size = StepStats._from_counts(bs_counts, bs_last)
    result.pool_occupancy = StepStats._from_counts(occ_counts, occ_last)
    return result
