"""Continuous-batching request scheduler (the serving engine loop).

Models the iteration-level scheduler of a modern inference server
(vLLM/Orca style) as a deterministic discrete-time loop over *steps*:

* **prefill step** — admit waiting requests (up to the free batch slots
  and the ``max_prefill_tokens`` token budget) and process their prompts
  together; each admitted request emits its first token at the end of
  the step (that marks its TTFT);
* **decode step** — every running request emits one token; requests
  leave the batch as they reach their output length.

Prefill has priority whenever batch slots and waiting work exist —
keeping time-to-first-token low under load — and decode drains the
running batch otherwise, exactly the two-phase structure the paper's
overlapped kernels accelerate (prefill steps are the big overlappable
GEMMs; decode steps ride the fixed-overhead floor).

Admission order is pluggable: ``"fcfs"`` serves in arrival order,
``"spf"`` (shortest-prompt-first) lets cheap prompts jump the queue,
trading tail fairness for median TTFT.  Step durations come from a
:class:`~repro.serve.latency.StepLatencyTable`, so simulating millions
of requests costs seconds of wall time and zero discrete-event
simulation.  The loop is purely deterministic — (workload, table, knobs)
fixes every output bit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import H800, HardwareSpec
from repro.errors import ServeError
from repro.models.configs import ModelConfig
from repro.serve.latency import StepLatencyTable
from repro.serve.workload import Request

__all__ = ["ServerConfig", "RequestLog", "ServeResult", "serve"]

#: admission policies: waiting-queue priority key per request
POLICIES: dict[str, Callable[[Request], tuple]] = {
    "fcfs": lambda r: (r.arrival_s, r.rid),
    "spf": lambda r: (r.prompt_tokens, r.arrival_s, r.rid),
}


@dataclass(frozen=True)
class ServerConfig:
    """Engine knobs: batch/token admission limits and queue policy."""

    max_batch: int = 32             # concurrent requests in the batch
    max_prefill_tokens: int = 8192  # prompt-token budget per prefill step
    policy: str = "fcfs"            # fcfs | spf

    def validate(self) -> None:
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_prefill_tokens < 1:
            raise ServeError(f"max_prefill_tokens must be >= 1, got "
                             f"{self.max_prefill_tokens}")
        if self.policy not in POLICIES:
            raise ServeError(f"unknown policy {self.policy!r}; expected one "
                             f"of {sorted(POLICIES)}")


@dataclass
class RequestLog:
    """Per-request lifecycle timestamps (simulated seconds)."""

    request: Request
    first_token_s: float | None = None
    finish_s: float | None = None

    @property
    def ttft_s(self) -> float:
        """Time to first token (queueing + prefill)."""
        return self.first_token_s - self.request.arrival_s

    @property
    def tpot_s(self) -> float | None:
        """Time per output token over the decode phase; ``None`` for
        single-token requests (they never decode)."""
        if self.request.output_tokens <= 1:
            return None
        return ((self.finish_s - self.first_token_s)
                / (self.request.output_tokens - 1))


@dataclass
class ServeResult:
    """Everything one :func:`serve` run produced."""

    logs: list[RequestLog]
    makespan_s: float               # first arrival -> last completion
    n_prefill_steps: int = 0
    n_decode_steps: int = 0
    #: waiting-queue depth sampled once per engine step
    queue_depth: list[int] = field(default_factory=list)
    #: running-batch size sampled once per engine step
    batch_size: list[int] = field(default_factory=list)


def serve(requests: Sequence[Request], model: ModelConfig, method: str,
          table: StepLatencyTable, server: ServerConfig | None = None,
          world: int = 8, spec: HardwareSpec = H800,
          seed: int = 0) -> ServeResult:
    """Run the continuous-batching loop over ``requests``.

    ``method`` selects whose kernels price each step (``"torch"`` /
    ``"tilelink"`` / ``"tilelink-tuned"``), through ``table``'s
    memoised step latencies — the run itself never simulates.
    """
    server = server or ServerConfig()
    server.validate()
    if not requests:
        raise ServeError("serve() needs at least one request")
    step_seconds = table.interpolator(model, method, world=world, spec=spec,
                                      seed=seed)
    prio = POLICIES[server.policy]

    order = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
    logs = {r.rid: RequestLog(r) for r in order}
    result = ServeResult(logs=[logs[r.rid] for r in order], makespan_s=0.0)

    waiting: list[tuple] = []       # heap of (priority, Request)
    running: list[tuple[Request, int]] = []     # (request, tokens emitted)
    clock = order[0].arrival_s
    next_arrival = 0                # index into ``order``

    while next_arrival < len(order) or waiting or running:
        # deliver arrivals up to the current clock
        while next_arrival < len(order) and \
                order[next_arrival].arrival_s <= clock:
            r = order[next_arrival]
            heapq.heappush(waiting, (prio(r), r))
            next_arrival += 1
        if not waiting and not running:
            clock = order[next_arrival].arrival_s   # idle: jump to work
            continue
        result.queue_depth.append(len(waiting))

        free_slots = server.max_batch - len(running)
        if waiting and free_slots > 0:
            # ---- prefill step: admit under the slot + token budgets.
            # An oversized prompt (> max_prefill_tokens) admits alone —
            # it must run eventually and the budget is per-step.
            chunk: list[Request] = []
            tokens = 0
            while waiting and len(chunk) < free_slots:
                r = waiting[0][1]
                if chunk and tokens + r.prompt_tokens > \
                        server.max_prefill_tokens:
                    break
                heapq.heappop(waiting)
                chunk.append(r)
                tokens += r.prompt_tokens
                if tokens >= server.max_prefill_tokens:
                    break
            clock += step_seconds(tokens)
            result.n_prefill_steps += 1
            result.batch_size.append(len(running) + len(chunk))
            for r in chunk:
                logs[r.rid].first_token_s = clock
                if r.output_tokens <= 1:
                    logs[r.rid].finish_s = clock
                else:
                    running.append((r, 1))
        else:
            # ---- decode step: one token per running request
            clock += step_seconds(len(running))
            result.n_decode_steps += 1
            result.batch_size.append(len(running))
            still = []
            for r, emitted in running:
                emitted += 1
                if emitted >= r.output_tokens:
                    logs[r.rid].finish_s = clock
                else:
                    still.append((r, emitted))
            running = still

    result.makespan_s = clock - order[0].arrival_s
    return result
