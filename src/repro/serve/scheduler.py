"""Continuous-batching request scheduler (the serving engine loop).

Models the iteration-level scheduler of a modern inference server
(vLLM/Orca style) as a deterministic discrete-time loop over *steps*:

* **prefill step** — admit waiting requests (up to the free batch slots
  and the ``max_prefill_tokens`` token budget) and process their prompts
  together; each admitted request emits its first token at the end of
  the step (that marks its TTFT);
* **decode step** — every running request emits one token; requests
  leave the batch as they reach their output length.

Prefill has priority whenever batch slots and waiting work exist —
keeping time-to-first-token low under load — and decode drains the
running batch otherwise, exactly the two-phase structure the paper's
overlapped kernels accelerate (prefill steps are the big overlappable
GEMMs; decode steps ride the fixed-overhead floor).

Admission order is pluggable: ``"fcfs"`` serves in arrival order,
``"spf"`` (shortest-prompt-first) lets cheap prompts jump the queue,
trading tail fairness for median TTFT.  Step durations come from a
:class:`~repro.serve.latency.StepLatencyTable`; decode steps are priced
with the batch's total resident KV tokens through the table's context
axis, so long-context decode is no longer free.

Passing a :class:`~repro.serve.kv.KVCacheConfig` as ``kv`` adds the
memory story: requests allocate paged KV blocks on admission, grow them
during decode, free them on finish — and when the pool fills, the
engine *preempts*: a victim (``kv.victim`` policy) loses its blocks and
re-enters the waiting queue, and on re-admission its whole resident
context re-prefills (eviction-and-recompute).  ``kv.admission`` selects
whether admission keeps watermark headroom for decode growth
(``"kv-aware"``) or pretends memory is free (``"naive"`` — fresh
prompts evict running requests to make room, so under pressure the
engine thrashes on recompute storms; evicted requests re-admit only
into genuinely free blocks, which bounds the thrash).  With ``kv=None``
(or a pool that never fills) the loop is exactly the memory-oblivious
engine.  The loop is purely deterministic — (workload, table, knobs)
fixes every output bit.

This module defines the serving data model (configs, logs, results) and
keeps the original per-step loop as :func:`serve_reference` — the golden
semantics.  :func:`serve` now delegates to the event-driven macro-step
engine in :mod:`repro.serve.engine`, which produces bit-identical
results ~10x faster; the reference loop stays as the executable spec the
equivalence suite (``tests/test_serve_engine.py``) pins the engine to.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.config import H800, HardwareSpec
from repro.errors import ServeError
from repro.models.configs import ModelConfig
from repro.serve.kv import KVCacheConfig, KVCacheManager, VICTIM_POLICIES
from repro.serve.latency import StepLatencyTable
from repro.serve.samples import StepStats
from repro.serve.workload import Request

__all__ = ["ServerConfig", "RequestLog", "ServeResult", "serve",
           "serve_reference"]

#: admission policies: waiting-queue priority key per request
POLICIES: dict[str, Callable[[Request], tuple]] = {
    "fcfs": lambda r: (r.arrival_s, r.rid),
    "spf": lambda r: (r.prompt_tokens, r.arrival_s, r.rid),
}


@dataclass(frozen=True)
class ServerConfig:
    """Engine knobs: batch/token admission limits and queue policy."""

    max_batch: int = 32             # concurrent requests in the batch
    max_prefill_tokens: int = 8192  # prompt-token budget per prefill step
    policy: str = "fcfs"            # fcfs | spf

    def validate(self) -> None:
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_prefill_tokens < 1:
            raise ServeError(f"max_prefill_tokens must be >= 1, got "
                             f"{self.max_prefill_tokens}")
        if self.policy not in POLICIES:
            raise ServeError(f"unknown policy {self.policy!r}; expected one "
                             f"of {sorted(POLICIES)}")


@dataclass
class RequestLog:
    """Per-request lifecycle timestamps (simulated seconds)."""

    request: Request
    first_token_s: float | None = None
    finish_s: float | None = None
    #: arrival -> start of the first prefill step that admitted it
    queue_wait_s: float = 0.0
    #: times this request was evicted from the pool
    n_preemptions: int = 0
    #: total eviction -> back-in-the-batch time across preemptions
    preempt_stall_s: float = 0.0
    #: resident tokens re-prefilled after evictions (pure redundant work)
    recompute_tokens: int = 0

    @property
    def ttft_s(self) -> float:
        """Time to first token (queueing + prefill)."""
        if self.first_token_s is None:
            raise ServeError(
                f"request {self.request.rid} has no first token yet; "
                f"ttft_s is defined only after a prefill step admitted it")
        return self.first_token_s - self.request.arrival_s

    @property
    def tpot_s(self) -> float | None:
        """Time per output token over the decode phase; ``None`` for
        single-token requests (they never decode)."""
        if self.request.output_tokens <= 1:
            return None
        return ((self.finish_s - self.first_token_s)
                / (self.request.output_tokens - 1))


@dataclass
class ServeResult:
    """Everything one :func:`serve` run produced."""

    logs: list[RequestLog]
    makespan_s: float               # first arrival -> last completion
    n_prefill_steps: int = 0
    n_decode_steps: int = 0
    #: waiting-queue depth sampled once per engine step (streaming
    #: value-count accumulator — O(distinct) memory on million-step runs)
    queue_depth: StepStats = field(default_factory=StepStats)
    #: running-batch size sampled once per engine step
    batch_size: StepStats = field(default_factory=StepStats)
    #: KV-pool capacity in blocks (0 == no pool configured)
    pool_blocks: int = 0
    #: pool occupancy in [0, 1] sampled once per engine step (KV runs)
    pool_occupancy: StepStats = field(default_factory=StepStats)
    #: total evictions across the run
    n_preemptions: int = 0
    #: total re-prefilled resident tokens across the run
    recompute_tokens: int = 0
    #: largest total resident KV (tokens) the batch ever held
    peak_resident_tokens: int = 0


@dataclass
class _Running:
    """One request resident in the batch."""

    req: Request
    emitted: int        # tokens emitted so far (>= 1 once running)
    resident: int       # resident KV tokens (prompt + decoded context)
    admit_seq: int      # monotone admission counter (victim selection)


def serve(requests: Sequence[Request], model: ModelConfig, method: str,
          table: StepLatencyTable, server: ServerConfig | None = None,
          world: int = 8, spec: HardwareSpec = H800,
          seed: int = 0, kv: KVCacheConfig | None = None,
          recorder=None) -> ServeResult:
    """Run the continuous-batching loop over ``requests``.

    ``method`` selects whose kernels price each step — the base methods
    (``"torch"`` / ``"tilelink"`` / ``"tilelink-tuned"``) plus any
    registry-contributed serving method (e.g. the chunk-centric family's
    ``"tilelink-chunk"``; see :func:`repro.registry.serve_method_names`)
    — through ``table``'s memoised step latencies, so the run itself
    never simulates.  Any method with a table entry works: the entry is
    built by ``StepLatencyTable.ensure`` and the run only interpolates.
    ``kv`` enables the paged KV-cache pool (admission gating +
    preemption); ``None`` serves with infinite memory.

    Since the event-driven core landed this is a thin wrapper over
    :func:`repro.serve.engine.serve_events`, which macro-steps decode
    between batch-composition events; its results are bit-identical to
    :func:`serve_reference` (the preserved seed loop) on every field.

    ``recorder`` (an enabled :class:`repro.obs.Recorder`; default
    ``None`` = off) captures the request-lifecycle event log for the
    observability layer without perturbing the run — see
    :func:`serve_events` for the contract.
    """
    from repro.serve.engine import serve_events

    return serve_events(requests, model, method, table, server=server,
                        world=world, spec=spec, seed=seed, kv=kv,
                        recorder=recorder)


def serve_reference(requests: Sequence[Request], model: ModelConfig,
                    method: str, table: StepLatencyTable,
                    server: ServerConfig | None = None, world: int = 8,
                    spec: HardwareSpec = H800, seed: int = 0,
                    kv: KVCacheConfig | None = None) -> ServeResult:
    """The original per-step serving loop, preserved as the golden
    reference.

    One plain Python iteration per engine step — easy to audit, slow at
    fleet scale.  :func:`serve` routes to the event-driven engine
    instead; this loop defines the semantics the engine must reproduce
    bit-for-bit, and the golden-equivalence suite compares the two on
    seeded workloads across {kv on/off} x {fcfs, spf} x {kv-aware,
    naive}.  Accepts the same arguments (including registry-contributed
    ``method`` names) as :func:`serve`.
    """
    server = server or ServerConfig()
    server.validate()
    if not requests:
        raise ServeError("serve() needs at least one request")
    step_seconds = table.interpolator(model, method, world=world, spec=spec,
                                      seed=seed)
    prio = POLICIES[server.policy]
    mgr = KVCacheManager(kv, model) if kv is not None else None
    naive = kv is not None and kv.admission == "naive"
    victim_key = VICTIM_POLICIES[kv.victim] if kv is not None else None

    order = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
    logs = {r.rid: RequestLog(r) for r in order}
    result = ServeResult(logs=[logs[r.rid] for r in order], makespan_s=0.0,
                         pool_blocks=mgr.capacity_blocks if mgr else 0)

    waiting: list[tuple] = []       # heap of (priority, Request)
    running: list[_Running] = []
    #: rid -> emitted count at eviction (requests awaiting re-admission)
    preempted: dict[int, int] = {}
    evicted_at: dict[int, float] = {}
    admit_seq = 0
    clock = order[0].arrival_s
    next_arrival = 0                # index into ``order``

    def resident_of(r: Request) -> int:
        """Resident KV tokens ``r`` holds once (re-)prefilled: the
        prompt plus every decoded token's cache entry.  (The latest
        emitted token's KV is written by the *next* decode step.)"""
        return r.prompt_tokens + max(0, preempted.get(r.rid, 1) - 1)

    def preempt_one() -> bool:
        """Evict one victim to free pool blocks; False when the batch
        is empty.  The victim re-enters the waiting queue and will
        re-prefill its resident context on re-admission."""
        if not running:
            return False
        victim = max(running, key=victim_key)
        running.remove(victim)
        mgr.release(victim.req.rid)
        preempted[victim.req.rid] = victim.emitted
        evicted_at[victim.req.rid] = clock
        logs[victim.req.rid].n_preemptions += 1
        result.n_preemptions += 1
        heapq.heappush(waiting, (prio(victim.req), victim.req))
        return True

    while next_arrival < len(order) or waiting or running:
        # deliver arrivals up to the current clock
        while next_arrival < len(order) and \
                order[next_arrival].arrival_s <= clock:
            r = order[next_arrival]
            heapq.heappush(waiting, (prio(r), r))
            next_arrival += 1
        if not waiting and not running:
            clock = order[next_arrival].arrival_s   # idle: jump to work
            continue
        result.queue_depth.append(len(waiting))

        free_slots = server.max_batch - len(running)
        do_prefill = bool(waiting) and free_slots > 0
        if do_prefill and mgr is not None:
            # head-of-queue gate: when the pool cannot take the head
            # request, decode instead (progress frees blocks).  Naive
            # admission pretends memory is free: a *fresh* arrival
            # always proceeds (forcing evictions below), and only
            # re-admissions of already-evicted requests wait for free
            # blocks — that is what keeps the thrash from livelocking.
            # kv-aware admission gates everything on watermark headroom.
            head = waiting[0][1]
            need = resident_of(head)
            if not mgr.can_ever_fit(need):
                raise ServeError(
                    f"request {head.rid} needs {mgr.blocks_for(need)} KV "
                    f"blocks but the pool holds {mgr.capacity_blocks}; "
                    f"grow the pool or trim the workload")
            if naive:
                if head.rid in preempted and \
                        mgr.blocks_for(need) > mgr.free_blocks:
                    do_prefill = False
            elif not mgr.can_admit(need, batch_empty=not running):
                do_prefill = False

        if do_prefill:
            # ---- prefill step: admit under the slot + token budgets
            # (and, with a pool, the KV gate).  An oversized prompt
            # (> max_prefill_tokens) admits alone — it must run
            # eventually and the budget is per-step.
            step_start = clock
            chunk: list[tuple[Request, int]] = []   # (request, resident)
            tokens = 0
            while waiting and len(chunk) < free_slots:
                # pop the candidate *before* any eviction: preempt_one
                # pushes victims into the waiting heap, which would
                # otherwise change what a later pop removes
                item = heapq.heappop(waiting)
                r = item[1]
                resident = resident_of(r)
                if chunk and tokens + resident > server.max_prefill_tokens:
                    heapq.heappush(waiting, item)
                    break
                if mgr is not None:
                    if not mgr.can_ever_fit(resident):
                        raise ServeError(
                            f"request {r.rid} needs "
                            f"{mgr.blocks_for(resident)} KV blocks but the "
                            f"pool holds {mgr.capacity_blocks}; grow the "
                            f"pool or trim the workload")
                    if naive:
                        # naive admission pretends memory is free: a
                        # fresh prompt evicts running victims until its
                        # context fits, and each victim's whole context
                        # later re-prefills (recompute).  Re-admissions
                        # never evict — a request is fresh exactly once,
                        # which bounds the thrash and rules out the
                        # evict-each-other livelock.
                        if r.rid not in preempted:
                            while mgr.blocks_for(resident) > \
                                    mgr.free_blocks and preempt_one():
                                pass
                        if mgr.blocks_for(resident) > mgr.free_blocks:
                            heapq.heappush(waiting, item)
                            break
                    elif not mgr.can_admit(
                            resident,
                            batch_empty=not running and not chunk):
                        heapq.heappush(waiting, item)
                        break
                    mgr.admit(r.rid, resident)
                chunk.append((r, resident))
                tokens += resident
                if tokens >= server.max_prefill_tokens:
                    break
            clock += step_seconds(tokens, 0)
            result.n_prefill_steps += 1
            result.batch_size.append(len(running) + len(chunk))
            for r, resident in chunk:
                log = logs[r.rid]
                if r.rid in preempted:
                    # re-admission: the resident context just recomputed;
                    # the request resumes decoding where it left off
                    emitted = preempted.pop(r.rid)
                    log.recompute_tokens += resident
                    result.recompute_tokens += resident
                    log.preempt_stall_s += clock - evicted_at.pop(r.rid)
                    running.append(_Running(r, emitted, resident, admit_seq))
                else:
                    log.queue_wait_s = step_start - r.arrival_s
                    log.first_token_s = clock
                    if r.output_tokens <= 1:
                        log.finish_s = clock
                        if mgr is not None:
                            mgr.release(r.rid)
                    else:
                        running.append(_Running(r, 1, resident, admit_seq))
                admit_seq += 1
        else:
            # ---- decode step: one token per running request.  With a
            # pool, grow each request's KV first — evicting victims
            # while the growth does not fit.
            if mgr is not None:
                while True:
                    need = sum(mgr.blocks_to_grow(e.req.rid, e.resident + 1)
                               for e in running)
                    if need <= mgr.free_blocks:
                        break
                    if len(running) <= 1 or not preempt_one():
                        raise ServeError(
                            f"KV pool too small: one request needs "
                            f"{need} more blocks with "
                            f"{mgr.free_blocks}/{mgr.capacity_blocks} free")
                for e in running:
                    mgr.grow_to(e.req.rid, e.resident + 1)
            ctx = sum(e.resident for e in running)
            result.peak_resident_tokens = max(result.peak_resident_tokens,
                                              ctx)
            clock += step_seconds(len(running), ctx)
            result.n_decode_steps += 1
            result.batch_size.append(len(running))
            still = []
            for e in running:
                e.emitted += 1
                e.resident += 1
                if e.emitted >= e.req.output_tokens:
                    logs[e.req.rid].finish_s = clock
                    if mgr is not None:
                        mgr.release(e.req.rid)
                else:
                    still.append(e)
            running = still
        if mgr is not None:
            result.pool_occupancy.append(mgr.occupancy())

    result.makespan_s = clock - order[0].arrival_s
    return result
