"""cuBLAS + NCCL non-overlap baselines (and the Torch attention baseline).

Communication and computation run sequentially on each rank's default
stream — the operator-centric pattern of §2.1: system-wide sync around
every collective, idle SMs during communication.
"""

from __future__ import annotations

from repro.collectives.nccl import NcclCollectives
from repro.kernels.attention import AgAttentionConfig
from repro.kernels.mlp import MlpConfig
from repro.ops.activation import silu_op
from repro.ops.attention import naive_attention_op
from repro.ops.gemm import gemm_op
from repro.runtime.context import DistContext
from repro.sim.engine import Process


def ag_gemm_nonoverlap(ctx: DistContext, m: int, n: int, k: int,
                       x_name: str, w_name: str, out_name: str,
                       tag: str = "base.ag") -> list[Process]:
    """NCCL AllGather, then one cuBLAS GEMM per rank."""
    gathered = f"{tag}.gathered"
    ctx.alloc(gathered, (m, k), "float16", fill=None)
    nccl = NcclCollectives(ctx)
    nccl.all_gather(x_name, gathered)
    return [
        gemm_op(ctx, rank, ctx.heap.tensor(gathered, rank),
                ctx.heap.tensor(w_name, rank),
                ctx.heap.tensor(out_name, rank))
        for rank in range(ctx.world_size)
    ]


def gemm_rs_nonoverlap(ctx: DistContext, m: int, n: int, k: int,
                       x_name: str, w_name: str, out_name: str,
                       tag: str = "base.rs") -> list[Process]:
    """cuBLAS GEMM, then NCCL ReduceScatter."""
    partial = f"{tag}.partial"
    ctx.alloc(partial, (m, n), "float16", fill=None)
    for rank in range(ctx.world_size):
        gemm_op(ctx, rank, ctx.heap.tensor(x_name, rank),
                ctx.heap.tensor(w_name, rank),
                ctx.heap.tensor(partial, rank))
    nccl = NcclCollectives(ctx)
    return nccl.reduce_scatter(partial, out_name)


def mlp_nonoverlap(ctx: DistContext, cfg: MlpConfig, x_name: str,
                   w1_name: str, w2_name: str, out_name: str,
                   tag: str = "base.mlp") -> list[Process]:
    """Full MLP: AG -> GEMM -> SiLU -> GEMM -> RS, all sequential."""
    world = ctx.world_size
    ishard = cfg.i_shard(world)
    inter = ctx.alloc(f"{tag}.inter", (cfg.m, ishard), "float16", fill=None)
    act = ctx.alloc(f"{tag}.act", (cfg.m, ishard), "float16", fill=None)
    ag_gemm_nonoverlap(ctx, cfg.m, ishard, cfg.h, x_name, w1_name,
                       f"{tag}.inter", tag=f"{tag}.p1")
    for rank in range(world):
        silu_op(ctx, rank, inter[rank], act[rank])
    return gemm_rs_nonoverlap(ctx, cfg.m, cfg.h, ishard, f"{tag}.act",
                              w2_name, out_name, tag=f"{tag}.p2")


def attention_nonoverlap(ctx: DistContext, cfg: AgAttentionConfig,
                         q_name: str, k_shards_name: str, v_shards_name: str,
                         out_name: str,
                         tag: str = "base.attn") -> list[Process]:
    """The paper's Torch baseline: NCCL AG of K and V, then unfused
    (score-materializing) attention."""
    world = ctx.world_size
    width = cfg.width
    gk, gv = f"{tag}.K", f"{tag}.V"
    ctx.alloc(gk, (cfg.seq_len, width), "float16", fill=None)
    ctx.alloc(gv, (cfg.seq_len, width), "float16", fill=None)
    nccl = NcclCollectives(ctx)
    nccl.all_gather(k_shards_name, gk)
    nccl.all_gather(v_shards_name, gv)
    s_per = cfg.seq_len // world
    return [
        naive_attention_op(
            ctx, rank, ctx.heap.tensor(q_name, rank),
            ctx.heap.tensor(gk, rank), ctx.heap.tensor(gv, rank),
            ctx.heap.tensor(out_name, rank), cfg.heads, cfg.head_dim,
            causal=cfg.causal, q_offset=rank * s_per)
        for rank in range(world)
    ]
