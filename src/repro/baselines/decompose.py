"""Async-TP PyTorch style operator decomposition (§2.2, Table 2).

The original operators are split into ``world_size`` chunks; P2P copies
run on a communication stream while chunk GEMMs run on the compute stream,
with the host driving every cross-stream dependency.  The two costs the
paper measures are modelled directly:

* **host intervention** — each chunk needs a host sync (stream wait /
  event) plus a fresh kernel launch, serialising ~tens of microseconds of
  CPU time per chunk;
* **small-GEMM inefficiency** — an (m/world) x n x k GEMM fills a fraction
  of the device (wave quantization + fixed prologue), so the sum of chunk
  GEMMs exceeds the monolithic GEMM's time.

Chunk GEMMs reserve ``n_sms - comm_sms`` SMs because the copy kernels
occupy SM channels concurrently (Async-TP's copies are SM-driven).
"""

from __future__ import annotations

from repro.kernels.mlp import MlpConfig
from repro.memory.tensor import SimTensor
from repro.ops.activation import silu_op
from repro.ops.gemm import gemm_kernel_gen
from repro.runtime.context import DistContext
from repro.sim.engine import Join, Process, ProcessGen, Timeout

#: SM channels the chunked copy kernels occupy.
COPY_SMS = 20

#: torch.distributed python dispatch + c10d bookkeeping per decomposed op
#: (the "non-negligible host intervention" of §2.2, on top of launch/sync)
DISPATCH_OVERHEAD = 30e-6


def _chunk_copy(ctx: DistContext, src_rank: int, dst_rank: int, name: str,
                src_name: str, rows: tuple[int, int], cols: int,
                dst_rows: tuple[int, int]) -> ProcessGen:
    """SM-driven P2P chunk copy (cudaMemcpyAsync peer access style)."""
    machine = ctx.machine
    device = machine.device(src_rank)
    held = min(COPY_SMS, device.sms.capacity)
    yield device.sms.acquire(held)
    try:
        src = ctx.heap.tensor(src_name, src_rank)
        nbytes = (rows[1] - rows[0]) * cols * src.itemsize
        payload = src.read_tile((rows, (0, cols)))
        yield machine.interconnect.transfer(src_rank, dst_rank, nbytes, "nccl")
        if machine.config.execute_numerics:
            ctx.heap.tensor(name, dst_rank).write_tile(
                (dst_rows, (0, cols)), payload)
    finally:
        device.sms.release(held)
    return None


def ag_gemm_decomposed(ctx: DistContext, m: int, n: int, k: int,
                       x_name: str, w_name: str, out_name: str,
                       tag: str = "async.ag") -> list[Process]:
    """Chunked AllGather + GEMM with host-driven inter-chunk sync."""
    machine = ctx.machine
    world = ctx.world_size
    m_per = m // world
    gathered = f"{tag}.gathered"
    ctx.alloc(gathered, (m, k), "float16", fill=None)
    procs = []

    def orchestrate(rank: int) -> ProcessGen:
        host = machine.hosts[rank]
        comm = machine.stream(rank, "comm")
        compute = machine.stream(rank, "default")
        w = ctx.heap.tensor(w_name, rank)
        out = ctx.heap.tensor(out_name, rank)
        gathered_t = ctx.heap.tensor(gathered, rank)
        # own chunk lands locally; one staged peer copy in flight at a time
        # (the staging-buffer reuse of torch's all_gather_matmul)
        yield from ctx.rank_copy_data(
            gathered, rank, rank, ((0, m_per), (0, k)),
            ((rank * m_per, (rank + 1) * m_per), (0, k)), src_name=x_name)
        order = [rank] + [(rank + s + 1) % world for s in range(world - 1)]
        pending: dict[int, object] = {}

        def kick(src: int) -> ProcessGen:
            yield Timeout(DISPATCH_OVERHEAD + machine.cost.launch_overhead())
            pending[src] = comm.enqueue(
                _chunk_copy(ctx, src, rank, gathered, x_name,
                            (0, m_per), k,
                            (src * m_per, (src + 1) * m_per)),
                name=f"{tag}.copy[{rank}.{src}]")
            return None

        if len(order) > 1:
            yield from kick(order[1])
        for idx, src in enumerate(order):
            if src in pending:
                # host waits for the chunk before launching its GEMM
                yield from host.sync(pending[src])
            if idx + 1 < len(order):
                yield from kick(order[idx + 1])
            yield Timeout(DISPATCH_OVERHEAD)
            chunk = _ChunkView(gathered_t, src * m_per, m_per)
            out_view = _ChunkView(out, src * m_per, m_per)
            proc = yield from host.launch(
                compute,
                gemm_kernel_gen(ctx, rank, chunk.tensor(ctx, gathered, rank),
                                w, out_view.tensor_out(ctx, out_name, rank),
                                n_sms=machine.config.spec.n_sms - COPY_SMS),
                name=f"{tag}.gemm[{rank}.{src}]")
            # per-chunk event sync: staging-buffer recycling
            yield from host.sync(proc)
        return None

    for rank in range(world):
        procs.append(machine.spawn(orchestrate(rank),
                                   name=f"{tag}.host[{rank}]"))
    return procs


class _ChunkView:
    """Row-chunk view helper: materializes chunk tensors for library ops.

    Library GEMMs take whole tensors; decomposition operates on row
    chunks.  We hand the op a lightweight SimTensor sharing the backing
    array slice (numpy slices are views, so writes land in the parent).
    """

    def __init__(self, parent: SimTensor, row0: int, rows: int):
        self.parent = parent
        self.row0 = row0
        self.rows = rows

    def tensor(self, ctx: DistContext, name: str, rank: int) -> SimTensor:
        parent = self.parent
        data = None
        if parent.data is not None:
            data = parent.data[self.row0:self.row0 + self.rows]
        t = SimTensor.__new__(SimTensor)
        t.name = f"{name}.chunk{self.row0}"
        t.shape = (self.rows, parent.shape[1])
        t.dtype = parent.dtype
        t.rank = rank
        t.data = data
        return t

    tensor_out = tensor


def gemm_rs_decomposed(ctx: DistContext, m: int, n: int, k: int,
                       x_name: str, w_name: str, out_name: str,
                       tag: str = "async.rs") -> list[Process]:
    """Chunked GEMM + P2P partial sends + local adds, host-sequenced."""
    machine = ctx.machine
    world = ctx.world_size
    m_per = m // world
    computed = f"{tag}.computed"   # this rank's chunk GEMM outputs
    landing = f"{tag}.landing"     # chunks received from peers
    ctx.alloc(computed, (m, n), "float16", fill=None)
    ctx.alloc(landing, (m, n), "float16", fill=None)
    arrived = ctx.heap.alloc_signals(f"{tag}.arrived", world)
    procs = []

    def orchestrate(rank: int) -> ProcessGen:
        host = machine.hosts[rank]
        comm = machine.stream(rank, "comm")
        compute = machine.stream(rank, "default")
        x = ctx.heap.tensor(x_name, rank)
        w = ctx.heap.tensor(w_name, rank)
        copies = []
        for step in range(world):
            dst = (rank + step) % world
            yield Timeout(DISPATCH_OVERHEAD)
            chunk_in = _ChunkView(x, dst * m_per, m_per)
            chunk_out = _ChunkView(ctx.heap.tensor(computed, rank),
                                   dst * m_per, m_per)
            proc = yield from host.launch(
                compute,
                gemm_kernel_gen(ctx, rank, chunk_in.tensor(ctx, x_name, rank),
                                w, chunk_out.tensor(ctx, computed, rank),
                                n_sms=machine.config.spec.n_sms - COPY_SMS),
                name=f"{tag}.gemm[{rank}.{step}]")
            # host sync on the chunk GEMM, then kick the send on the comm
            # stream so it overlaps the next chunk's GEMM
            yield from host.sync(proc)
            if dst != rank:
                yield Timeout(DISPATCH_OVERHEAD
                              + machine.cost.launch_overhead())

                def send(dst=dst) -> ProcessGen:
                    yield from _chunk_copy(
                        ctx, rank, dst, landing, computed,
                        (dst * m_per, (dst + 1) * m_per), n,
                        (rank * m_per, (rank + 1) * m_per))
                    arrived[dst].post_add(rank, 1, from_rank=rank)
                    return None

                copy = comm.enqueue(send(),
                                    name=f"{tag}.send[{rank}.{step}]")
                # staging reuse forces a sync before the next chunk's GEMM
                yield from host.sync(copy)
        # wait for every peer's partial to land here
        for q in range(world):
            if q != rank:
                yield arrived[rank].wait_geq(q, 1)
        # local reduction: own computed chunk + world-1 landed chunks
        def reduce_gen() -> ProcessGen:
            device = machine.device(rank)
            nbytes = 2.0 * m * n * 2
            arrival = device.reserve_hbm(nbytes)
            yield Timeout(max(nbytes / machine.cost.hbm_effective_bandwidth,
                              arrival - machine.now))
            if machine.config.execute_numerics:
                slab = ctx.heap.tensor(landing, rank).numpy()
                own = ctx.heap.tensor(computed, rank).numpy()
                total = own[rank * m_per:(rank + 1) * m_per].copy()
                for q in range(world):
                    if q != rank:
                        total += slab[q * m_per:(q + 1) * m_per]
                ctx.heap.tensor(out_name, rank).write_tile(
                    ((0, m_per), (0, n)), total)
            return None

        proc = yield from host.launch(compute, reduce_gen(),
                                      name=f"{tag}.reduce[{rank}]")
        yield from host.sync(proc)
        return None

    for rank in range(world):
        procs.append(machine.spawn(orchestrate(rank),
                                   name=f"{tag}.host[{rank}]"))
    return procs


def mlp_decomposed(ctx: DistContext, cfg: MlpConfig, x_name: str,
                   w1_name: str, w2_name: str, out_name: str,
                   tag: str = "async.mlp") -> list[Process]:
    """Full decomposed MLP: chunked AG+GEMM, SiLU, chunked GEMM+RS."""
    world = ctx.world_size
    ishard = cfg.i_shard(world)
    inter = ctx.alloc(f"{tag}.inter", (cfg.m, ishard), "float16", fill=None)
    act = ctx.alloc(f"{tag}.act", (cfg.m, ishard), "float16", fill=None)
    p1 = ag_gemm_decomposed(ctx, cfg.m, ishard, cfg.h, x_name, w1_name,
                            f"{tag}.inter", tag=f"{tag}.p1")

    def coordinator() -> ProcessGen:
        for proc in p1:
            if not proc.done:
                yield Join(proc)
        acts = [silu_op(ctx, r, inter[r], act[r]) for r in range(world)]
        for proc in acts:
            if not proc.done:
                yield Join(proc)
        p2 = gemm_rs_decomposed(ctx, cfg.m, cfg.h, ishard, f"{tag}.act",
                                w2_name, out_name, tag=f"{tag}.p2")
        for proc in p2:
            if not proc.done:
                yield Join(proc)
        return None

    return [ctx.machine.spawn(coordinator(), name=f"{tag}.coord")]
