"""Baselines the paper compares against, on the same simulated substrate.

* :mod:`repro.baselines.nonoverlap` — cuBLAS+NCCL sequential pipelines
  (and the Torch attention baseline).
* :mod:`repro.baselines.decompose` — Async-TP PyTorch style operator
  decomposition: chunked collectives + chunked GEMMs on separate streams
  with host-driven synchronization.
* :mod:`repro.baselines.flux` — FLUX-style kernel fusion: hand-tuned
  coupled-tile fused kernels (fast AG+GEMM, tightly-coupled GEMM+RS).
* :mod:`repro.baselines.vllm_moe` — the MoE baseline family of Figure 9:
  cuBLAS / CUTLASS per-expert paths and vLLM's fused-but-unoverlapped op.
"""

from repro.baselines import decompose, flux, nonoverlap, vllm_moe

__all__ = ["decompose", "flux", "nonoverlap", "vllm_moe"]
