"""MoE baseline family of Figure 9: cuBLAS / CUTLASS / vLLM-Op + NCCL.

Three implementation tiers for each MoE part, all *without* communication
overlap (NCCL collectives run first/last on the same stream):

* ``"cublas"`` — per-expert GEMM launches with host coordination, plus
  standalone gather (part 1) and scatter + topk-reduce (part 2) passes;
* ``"cutlass"`` — one grouped-GEMM launch (no per-expert host loop) but
  still unfused gather/scatter passes;
* ``"vllm"`` — vLLM's fused op: gather/scatter fused into the grouped
  GEMM main loop (the 9.8x of the paper), still no comm overlap.

All tiers consume the shared :class:`repro.kernels.moe_common.MoeRouting`
bundle, so they solve the identical routed problem as TileLink's kernels.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.nccl import NcclCollectives
from repro.errors import RuntimeLaunchError
from repro.kernels.moe_common import MoeRouting
from repro.kernels.moe_layer import MoeConfig
from repro.ops.activation import silu_op
from repro.ops.group_gemm import fused_group_gemm_op, per_expert_gemm_op
from repro.ops.topk import topk_reduce_op
from repro.runtime.context import DistContext
from repro.sim.engine import Process

IMPLS = ("cublas", "cutlass", "vllm")


def _check_impl(impl: str) -> None:
    if impl not in IMPLS:
        raise RuntimeLaunchError(f"unknown MoE baseline {impl!r}; use {IMPLS}")


def _grouped_gemm(ctx: DistContext, rank: int, impl: str, tokens, weights,
                  out, routing: MoeRouting) -> Process:
    ids = routing.sorted_token_ids
    experts = routing.sorted_expert_of_row
    if impl == "cublas":
        return per_expert_gemm_op(ctx, rank, tokens, weights, out, ids,
                                  experts, gather_fused=False,
                                  host_synced=True)
    if impl == "cutlass":
        return per_expert_gemm_op(ctx, rank, tokens, weights, out, ids,
                                  experts, gather_fused=False,
                                  host_synced=False)
    return fused_group_gemm_op(ctx, rank, tokens, weights, out, ids, experts,
                               block_m=routing.block_m)


def moe_part1_baseline(ctx: DistContext, cfg: MoeConfig,
                       routing: MoeRouting, impl: str,
                       x_name: str, w1_name: str, grouped_out_name: str,
                       tag: str = "moe1") -> list[Process]:
    """AG + Gather + GroupGEMM, non-overlapped.

    ``w1_name`` binds the (E, h, i/world) expert stack (3-d); the output is
    the compact grouped layout (slots x i/world).
    """
    _check_impl(impl)
    world = ctx.world_size
    ishard = cfg.i_shard(world)
    gathered = f"{tag}.{impl}.gathered"
    ctx.alloc(gathered, (cfg.m, cfg.h), "float16", fill=None)
    nccl = NcclCollectives(ctx)
    nccl.all_gather(x_name, gathered)
    return [
        _grouped_gemm(ctx, rank, impl, ctx.heap.tensor(gathered, rank),
                      ctx.heap.tensor(w1_name, rank),
                      ctx.heap.tensor(grouped_out_name, rank), routing)
        for rank in range(world)
    ]


def moe_part2_baseline(ctx: DistContext, cfg: MoeConfig,
                       routing: MoeRouting, impl: str,
                       grouped_in_name: str, w2_name: str, out_name: str,
                       tag: str = "moe2") -> list[Process]:
    """GroupGEMM + Scatter + TopkReduce + RS, non-overlapped.

    ``w2_name`` binds the (E, i/world, h) expert stack; ``grouped_in`` is
    the compact grouped activation (slots x i/world); ``out`` receives
    (m/world x h).
    """
    _check_impl(impl)
    world = ctx.world_size
    grouped_out = f"{tag}.{impl}.ggemm"
    partial = f"{tag}.{impl}.partial"
    ctx.alloc(grouped_out, (len(routing.sorted_token_ids), cfg.h), "float32",
              fill=None)
    ctx.alloc(partial, (cfg.m, cfg.h), "float32", fill=None)
    slots = routing.sorted_token_ids
    for rank in range(world):
        # identity "gather": grouped_in is already expert-ordered rows
        _grouped_gemm(ctx, rank, impl, ctx.heap.tensor(grouped_in_name, rank),
                      ctx.heap.tensor(w2_name, rank),
                      ctx.heap.tensor(grouped_out, rank),
                      _identity_routing(routing))
        topk_reduce_op(ctx, rank, ctx.heap.tensor(grouped_out, rank),
                       ctx.heap.tensor(partial, rank), slots,
                       routing.sorted_weights)
    nccl = NcclCollectives(ctx)
    return nccl.reduce_scatter(partial, out_name)


def _identity_routing(routing: MoeRouting) -> MoeRouting:
    """Part-2 view: rows are already grouped, so the gather is identity."""
    import copy

    r = copy.copy(routing)
    r.sorted_token_ids = np.arange(len(routing.sorted_token_ids),
                                   dtype=np.int64)
    return r


def moe_layer_baseline(ctx: DistContext, cfg: MoeConfig,
                       routing: MoeRouting, impl: str,
                       x_name: str, w1_name: str, w2_name: str,
                       out_name: str, tag: str = "moe") -> list[Process]:
    """Full non-overlapped MoE layer for one baseline tier."""
    _check_impl(impl)
    world = ctx.world_size
    ishard = cfg.i_shard(world)
    slots = len(routing.sorted_token_ids)
    grouped = ctx.alloc(f"{tag}.{impl}.grouped", (slots, ishard), "float16",
                        fill=None)
    act = ctx.alloc(f"{tag}.{impl}.act", (slots, ishard), "float16",
                    fill=None)
    moe_part1_baseline(ctx, cfg, routing, impl, x_name, w1_name,
                       f"{tag}.{impl}.grouped", tag=f"{tag}.p1")
    for rank in range(world):
        silu_op(ctx, rank, grouped[rank], act[rank])
    return moe_part2_baseline(ctx, cfg, routing, impl, f"{tag}.{impl}.act",
                              w2_name, out_name, tag=f"{tag}.p2")
