"""FLUX-style fusion baseline (Chang et al.), on the same substrate.

FLUX hand-writes fused CUDA kernels with a *tightly coupled* design space
(§3.1): the communication tile equals the GEMM tile and both live on SMs
(plus DMA for AG).  Two consequences the paper measures:

* **AG+GEMM** — FLUX's hand-tuned CUTLASS main loop edges out compiled
  code by a few percent (the paper's TileLink reaches 94.5% of FLUX);
  modelled as a ``HAND_TUNING`` factor on the tile time.
* **GEMM+RS** — the coupled tile choice and SM-only communication are
  sub-optimal; TileLink's decoupled hybrid mapping beats it by ~1.28x.
  Modelled structurally: FLUX GEMM+RS *is* the fused ring kernel with
  ``comm tile == compute tile`` (no DMA), so the granularity and resource
  penalties emerge from the simulator rather than a fudge factor.

FLUX does not support MoE (Figure 9 has no FLUX bars) — no MoE entry
points here.
"""

from __future__ import annotations

import math

from repro.collectives.copy_engine import dma_all_gather
from repro.kernels.gemm_rs import GemmRsConfig, gemm_rs_overlapped
from repro.kernels.mlp import MlpConfig
from repro.ops.activation import silu_op
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen, Timeout

#: hand-written CUDA main loop vs compiled code: a few percent faster
HAND_TUNING = 0.95


def ag_gemm_flux(ctx: DistContext, m: int, n: int, k: int,
                 x_name: str, w_name: str, out_name: str,
                 block_m: int = 128, block_n: int = 128,
                 tag: str = "flux.ag") -> list[Process]:
    """DMA AllGather + segment-gated hand-tuned GEMM consumer."""
    machine = ctx.machine
    world = ctx.world_size
    cost = machine.cost
    m_per = m // world
    gathered = f"{tag}.gathered"
    ctx.alloc(gathered, (m, k), "float16", fill=None)
    banks = ctx.heap.alloc_signals(f"{tag}.seg", world)
    dma_all_gather(ctx, x_name, gathered, banks, stream_name="comm")

    def consumer(rank: int) -> ProcessGen:
        device = machine.device(rank)
        want = device.sms.capacity
        yield device.sms.acquire(want)
        try:
            t0 = machine.now
            seg_tiles = math.ceil(m_per / block_m) * math.ceil(n / block_n)
            tile = cost.gemm_tile_time(block_m, block_n, k)
            seg_time = math.ceil(seg_tiles / want) * tile.total * HAND_TUNING
            order = [rank] + [(rank + 1 + s) % world for s in range(world - 1)]
            for seg in order:
                yield banks[rank].wait_geq(seg, 1)
                arrival = device.reserve_hbm(seg_tiles * tile.epilogue_bytes)
                yield Timeout(max(seg_time, arrival - machine.now))
            if machine.config.execute_numerics:
                import numpy as np

                gt = ctx.heap.tensor(gathered, rank).numpy()
                w = ctx.heap.tensor(w_name, rank).numpy()
                out = (gt.astype(np.float32) @ w.astype(np.float32))
                ctx.heap.tensor(out_name, rank).write_tile(
                    ((0, m), (0, n)), out)
            if machine.config.trace:
                machine.record(rank, "compute", tag, t0, machine.now)
        finally:
            device.sms.release(want)
        return None

    return [
        machine.stream(rank).enqueue(
            consumer(rank), name=f"{tag}[{rank}]",
            start_delay=cost.launch_overhead())
        for rank in range(world)
    ]


def gemm_rs_flux(ctx: DistContext, m: int, n: int, k: int,
                 x_name: str, w_name: str, out_name: str,
                 block_m: int = 128, block_n: int = 128,
                 comm_blocks: int = 20,
                 tag: str = "flux.rs") -> list[Process]:
    """Coupled-tile fused GEMM+RS: the ring kernel with comm == compute
    tiles, SM-mapped communication (no DMA)."""
    cfg = GemmRsConfig(
        m=m, n=n, k=k, block_m=block_m, block_n=block_n,
        block_mr=block_m, block_nr=block_n,   # the coupling
        comm_blocks=comm_blocks, mode="ring")
    return gemm_rs_overlapped(ctx, cfg, x_name, w_name, out_name, tag=tag)


def mlp_flux(ctx: DistContext, cfg: MlpConfig, x_name: str, w1_name: str,
             w2_name: str, out_name: str,
             tag: str = "flux.mlp") -> list[Process]:
    """Full FLUX MLP: fused AG+GEMM, SiLU, coupled fused GEMM+RS."""
    world = ctx.world_size
    ishard = cfg.i_shard(world)
    inter = ctx.alloc(f"{tag}.inter", (cfg.m, ishard), "float16", fill=None)
    act = ctx.alloc(f"{tag}.act", (cfg.m, ishard), "float16", fill=None)
    ag_gemm_flux(ctx, cfg.m, ishard, cfg.h, x_name, w1_name, f"{tag}.inter",
                 cfg.block_m, cfg.block_n, tag=f"{tag}.p1")
    for rank in range(world):
        silu_op(ctx, rank, inter[rank], act[rank])
    return gemm_rs_flux(ctx, cfg.m, cfg.h, ishard, f"{tag}.act", w2_name,
                        out_name, cfg.block_m, cfg.block_n,
                        tag=f"{tag}.p2")
