"""Hardware and simulation configuration.

The reproduction runs on a *simulated* multi-GPU node (see DESIGN.md §2).
:class:`HardwareSpec` holds the calibrated constants of one device and the
interconnect; :class:`SimConfig` holds knobs of a single simulation run.

The default spec models an NVIDIA H800 SXM node (the paper's testbed):
H100-class compute (132 SMs, ~989 fp16 TFLOPS) with the export-regulation
NVLink cut to 400 GB/s aggregate (~200 GB/s per direction).  The reduced
link bandwidth is what makes communication a first-order cost in the paper
and is essential for reproducing the shape of its results.

Absolute times produced by the simulator are in **seconds** and are only
roughly calibrated; every experiment in the paper is reported as *relative*
performance, which is what we reproduce.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace


@dataclass(frozen=True)
class HardwareSpec:
    """Calibrated performance constants for one simulated device + node.

    Bandwidths are bytes/second, latencies and overheads are seconds,
    compute rates are FLOP/second.
    """

    name: str = "H800-SXM"

    # --- compute ---------------------------------------------------------
    n_sms: int = 132
    #: Dense fp16/bf16 tensor-core peak of the whole device.
    tensor_flops: float = 989.0e12
    #: Fraction of peak a well-tuned large GEMM sustains (cuBLAS-class).
    tensor_efficiency: float = 0.75
    #: fp32 CUDA-core peak (vector math: softmax, activations, reductions).
    vector_flops: float = 67.0e12

    # --- memory ----------------------------------------------------------
    hbm_bandwidth: float = 3.35e12
    hbm_efficiency: float = 0.82
    l2_bandwidth: float = 11.0e12
    smem_bandwidth_per_sm: float = 128e9

    # --- intra-node interconnect (NVLink through NVSwitch) ----------------
    #: Per-direction NVLink bandwidth of one device (H800: 400 GB/s bidir).
    nvlink_egress: float = 200e9
    nvlink_ingress: float = 200e9
    nvlink_latency: float = 0.9e-6
    #: Achievable fraction for protocol-driven transfers (NCCL-like).
    #: Calibrated against Table 2's non-overlap times on H800.
    nccl_protocol_efficiency: float = 0.60
    #: NCCL ReduceScatter sustains a higher fraction than AllGather (the
    #: reduction pipeline hides packet handling; also visible in Table 2).
    nccl_rs_protocol_efficiency: float = 0.75
    #: Achievable fraction for raw copy-engine / NVSHMEM bulk transfers.
    p2p_protocol_efficiency: float = 0.64
    #: Aggregate copy bandwidth one SM can drive with ld/st loops.
    sm_copy_bandwidth: float = 14e9

    # --- inter-node interconnect (IB / RoCE NIC per GPU) ------------------
    inter_node_bandwidth: float = 50e9
    inter_node_latency: float = 4.5e-6

    # --- engines / host ----------------------------------------------------
    n_copy_engines: int = 4
    copy_engine_latency: float = 1.6e-6
    kernel_launch_overhead: float = 4.0e-6
    #: Host-driven synchronization (stream wait, event sync, cpu barrier).
    host_sync_overhead: float = 14.0e-6

    # --- synchronization primitives ---------------------------------------
    remote_atomic_latency: float = 1.1e-6
    local_atomic_latency: float = 0.20e-6
    #: Granularity at which a spinning consumer re-checks a signal.
    spin_poll_interval: float = 0.12e-6

    def scaled(self, **overrides: float) -> "HardwareSpec":
        """Return a copy with fields replaced (spec is frozen)."""
        return replace(self, **overrides)

    def fingerprint(self) -> str:
        """Stable short hash over every calibrated field.

        Any field change (``replace(spec, n_sms=...)``) yields a different
        fingerprint, so tuner caches and other persisted results keyed on a
        spec never alias across hardware models or recalibrations.
        """
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


#: Default single-node testbed spec used across benchmarks.
H800 = HardwareSpec()

#: A100-like spec (used by ablations; 108 SMs, 312 TFLOPS, 600 GB/s NVLink).
A100 = HardwareSpec(
    name="A100-SXM",
    n_sms=108,
    tensor_flops=312e12,
    vector_flops=19.5e12,
    hbm_bandwidth=2.0e12,
    nvlink_egress=300e9,
    nvlink_ingress=300e9,
)


@dataclass
class SimConfig:
    """Per-run knobs of the simulated node.

    Parameters
    ----------
    world_size:
        Number of ranks (devices) in the node / tensor-parallel group.
    spec:
        Device spec; defaults to the H800 node of the paper.
    execute_numerics:
        When True every tile op applies its numpy effect so results can be
        checked against references (tests, examples).  When False only the
        timing side of the simulation runs (benchmarks at paper scale).
    trace:
        Record per-resource busy intervals for timeline / overlap analysis.
    n_nodes:
        Number of nodes; ranks are split evenly across nodes and links
        between ranks on different nodes use the inter-node NIC constants.
    seed:
        Seed for any stochastic workload generation tied to this run.
    """

    world_size: int = 8
    spec: HardwareSpec = field(default_factory=lambda: H800)
    execute_numerics: bool = True
    trace: bool = False
    n_nodes: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError("world_size must be >= 1")
        if self.n_nodes < 1 or self.world_size % self.n_nodes != 0:
            raise ValueError("world_size must divide evenly across n_nodes")

    @property
    def ranks_per_node(self) -> int:
        return self.world_size // self.n_nodes

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)
