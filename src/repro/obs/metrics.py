"""Counter/gauge/histogram registry with labelled series.

The registry is the aggregation half of the observability layer: the
event log (:mod:`repro.obs.events`) says *what happened when*, the
registry folds it into *how much and how fast*.  Histograms reuse
:class:`repro.serve.samples.StepStats` — the serving engine's
O(distinct-values) order-statistics multiset — so folding a
million-step run's series in costs one dict merge, not a million
observations, and the percentiles stay bit-identical to
:func:`repro.serve.metrics.percentile`.

``snapshot()`` emits the strict-JSON form
``{"format": "repro-obs-metrics/1", "metrics": [...]}`` validated by
``benchmarks/validate_bench_json.py --schema obs-metrics``: no bare
NaN/Infinity ever, and a histogram's quantile fields are null *together*
exactly when the series is empty (the same null-together discipline the
serving report rows follow).
"""

from __future__ import annotations

from repro.errors import ObsError, ServeError
from repro.serve.samples import StepStats

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "METRICS_FORMAT"]

#: Format tag of the ``snapshot()`` payload.
METRICS_FORMAT = "repro-obs-metrics/1"


class Counter:
    """A monotone event count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ObsError(f"counter increments must be >= 0, got {n}")
        self.value += n

    def _snapshot(self) -> dict:
        return {"value": int(self.value)}


class Gauge:
    """A last-written instantaneous value (``None`` until first set)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def _snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """An order-statistics series over observed values.

    Backed by a :class:`StepStats` multiset: ``observe`` is O(1),
    ``merge_counts`` adopts a whole finished series (e.g. a
    ``ServeResult`` per-step series via ``StepStats.counts()``) in one
    dict fold.
    """

    __slots__ = ("stats",)
    kind = "histogram"

    def __init__(self) -> None:
        self.stats = StepStats()

    def observe(self, value: float) -> None:
        self.stats.append(value)

    def observe_repeat(self, value: float, count: int) -> None:
        self.stats.add_repeat(value, count)

    def merge_counts(self, counts: dict) -> None:
        """Fold a ``value -> occurrences`` multiset in."""
        for value, count in counts.items():
            self.stats.add_repeat(value, count)

    def _snapshot(self) -> dict:
        n = len(self.stats)
        if n == 0:
            # null-together: an empty series has no order statistics
            return {"count": 0, "max": None, "p50": None, "p90": None,
                    "p99": None}
        try:
            return {
                "count": n,
                "max": float(self.stats.max),
                "p50": self.stats.percentile(50),
                "p90": self.stats.percentile(90),
                "p99": self.stats.percentile(99),
            }
        except ServeError as exc:     # pragma: no cover - guarded by n
            raise ObsError(f"histogram snapshot failed: {exc}") from exc


#: metric type name -> class (the registry's get-or-create table)
_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create registry of labelled metric series.

    ``registry.counter("requests", scenario="chat")`` returns the one
    :class:`Counter` for that (name, labels) pair, creating it on first
    use; asking for the same pair under a different metric type raises
    :class:`ObsError` (a silent type change would corrupt every
    consumer of the snapshot).
    """

    def __init__(self) -> None:
        self._series: dict[tuple, object] = {}

    def _get(self, type_name: str, name: str, labels: dict):
        if not name:
            raise ObsError("metric name must be a non-empty string")
        key = (name, tuple(sorted(labels.items())))
        metric = self._series.get(key)
        if metric is None:
            metric = self._series[key] = _TYPES[type_name]()
        elif metric.kind != type_name:
            raise ObsError(
                f"metric {name!r} with labels {labels!r} is already "
                f"registered as a {metric.kind}, not a {type_name}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> dict:
        """The strict-JSON ``repro-obs-metrics/1`` payload, sorted by
        (name, labels) so reruns diff cleanly."""
        metrics = []
        for (name, labels) in sorted(self._series):
            metric = self._series[(name, labels)]
            row = {"name": name, "type": metric.kind,
                   "labels": dict(labels)}
            row.update(metric._snapshot())
            metrics.append(row)
        return {"format": METRICS_FORMAT, "metrics": metrics}
