"""Attribution views over a recording: where did the time go?

Three consumers share the reconstruction logic here: the CLI
(``python -m repro.obs summarize|slowest``), the Perfetto exporter's
per-request tracks, and the metrics builder.

For a serving recording the engine clock only ever advances inside a
prefill step, a decode (macro-)step, or an idle jump — and the recorder
captures exactly one event per advance — so the ``prefill``/``decode``/
``idle`` durations partition the makespan *by construction*:
:func:`phase_attribution` reports their coverage (~1.0 up to float
rounding) and the CLI asserts nothing less than 99%.  ``queue`` and
``preempt-stall`` are *request-seconds* overlays on that timeline: many
requests wait concurrently, so their sums exceed wall time by design
and are reported per-request, not as wall-clock slices.
"""

from __future__ import annotations

from repro.errors import ObsError
from repro.obs.events import Recording
from repro.obs.metrics import MetricsRegistry

__all__ = ["PHASES", "build_metrics", "phase_attribution",
           "request_timelines", "slowest_requests", "span_attribution"]

#: The named lifecycle phases a request moves through (and the track
#: names the Perfetto export uses for the per-request rows).
PHASES = ("queue", "prefill", "decode", "preempt-stall", "idle")


def _require(rec: Recording, kind: str, what: str) -> None:
    if rec.kind != kind:
        raise ObsError(f"{what} needs a {kind!r} recording, "
                       f"got kind {rec.kind!r}")


def clock_bounds(rec: Recording) -> tuple[float, float]:
    """The recording's clock origin and end (meta, else event scan)."""
    meta = rec.meta
    if "t0" in meta and "t1" in meta:
        return float(meta["t0"]), float(meta["t1"])
    if rec.intervals:
        return (min(iv[3] for iv in rec.intervals),
                max(iv[4] for iv in rec.intervals))
    if not rec.events:
        raise ObsError("recording is empty: no events, no intervals, and "
                       "no t0/t1 meta")
    starts = [e[1] for e in rec.events]
    ends = [e[2] if len(e) > 2 and isinstance(e[2], (int, float)) else e[1]
            for e in rec.events]
    return min(starts), max(ends)


def request_timelines(rec: Recording) -> dict[int, dict]:
    """Per-request lifecycle view keyed by rid.

    Each entry carries the raw timestamps (``arrival``, ``first_token``,
    ``finish``), token counts, preemption count, and ``segments`` — a
    time-ordered list of ``(phase, t0, t1)`` covering the request's life
    with the :data:`PHASES` vocabulary (``idle`` never appears here; it
    is an engine-level phase).
    """
    _require(rec, "serve", "request_timelines()")
    reqs: dict[int, dict] = {}
    for event in rec.events:
        kind = event[0]
        if kind == "arrival":
            _, ts, rid, prompt, output = event
            reqs[int(rid)] = {
                "rid": int(rid), "arrival": ts,
                "prompt_tokens": int(prompt),
                "output_tokens": int(output),
                "first_token": None, "finish": None, "n_preemptions": 0,
                "queue_wait": None, "preempt_stall": 0.0,
                "segments": [], "_open": None,
            }
        elif kind == "admit":
            _, t0, t1, rid, fresh, resident = event
            r = reqs.get(int(rid))
            if r is None:
                raise ObsError(f"admit event for rid {rid} without an "
                               f"arrival event")
            if fresh:
                r["segments"].append(("queue", r["arrival"], t0))
                r["queue_wait"] = t0 - r["arrival"]
                r["first_token"] = t1
            else:
                # the stall the reference loop charges runs to the END
                # of the re-prefill step; the visual segment ends where
                # the prefill segment starts
                r["segments"].append(("preempt-stall", r["_open"], t0))
                r["preempt_stall"] += t1 - r["_open"]
            r["segments"].append(("prefill", t0, t1))
            r["_open"] = t1              # decoding (or finished) from t1
        elif kind == "preempt":
            _, ts, rid = event
            r = reqs[int(rid)]
            if r["_open"] is not None and ts > r["_open"]:
                r["segments"].append(("decode", r["_open"], ts))
            r["_open"] = ts              # stalled from ts
            r["n_preemptions"] += 1
        elif kind == "finish":
            _, ts, rid = event
            r = reqs[int(rid)]
            if r["_open"] is not None and ts > r["_open"]:
                r["segments"].append(("decode", r["_open"], ts))
            r["finish"] = ts
            r["_open"] = None
    for r in reqs.values():
        del r["_open"]
    return reqs


def phase_attribution(rec: Recording) -> dict:
    """Wall-clock and request-seconds attribution of one serving run."""
    _require(rec, "serve", "phase_attribution()")
    t0, t1 = clock_bounds(rec)
    makespan = t1 - t0
    engine = {"prefill": 0.0, "decode": 0.0, "idle": 0.0}
    counts = {"requests": 0, "finished": 0, "prefill_steps": 0,
              "decode_steps": 0, "preemptions": 0}
    for event in rec.events:
        kind = event[0]
        if kind == "prefill":
            engine["prefill"] += event[2] - event[1]
            counts["prefill_steps"] += 1
        elif kind == "decode":
            engine["decode"] += event[2] - event[1]
            counts["decode_steps"] += int(event[3])
        elif kind == "idle":
            engine["idle"] += event[2] - event[1]
        elif kind == "arrival":
            counts["requests"] += 1
        elif kind == "finish":
            counts["finished"] += 1
        elif kind == "preempt":
            counts["preemptions"] += 1
    queue_s = 0.0
    stall_s = 0.0
    for r in request_timelines(rec).values():
        if r["queue_wait"] is not None:
            queue_s += r["queue_wait"]
        stall_s += r["preempt_stall"]
    attributed = sum(engine.values())
    return {
        "makespan_s": makespan,
        "engine_s": engine,
        "coverage": attributed / makespan if makespan > 0 else 1.0,
        "request_s": {"queue": queue_s, "preempt-stall": stall_s},
        "counts": counts,
    }


def slowest_requests(rec: Recording, k: int = 10) -> list[dict]:
    """The ``k`` highest-latency requests, slowest first, with their
    per-phase timelines (the "why was THIS request slow" view)."""
    if k < 1:
        raise ObsError(f"slowest_requests needs k >= 1, got {k}")
    reqs = list(request_timelines(rec).values())
    _, t1 = clock_bounds(rec)
    for r in reqs:
        end = r["finish"] if r["finish"] is not None else t1
        r["latency"] = end - r["arrival"]
        r["ttft"] = (r["first_token"] - r["arrival"]
                     if r["first_token"] is not None else None)
    reqs.sort(key=lambda r: (-r["latency"], r["rid"]))
    return reqs[:k]


def span_attribution(rec: Recording) -> dict:
    """Wall-time totals of a spans recording, by category and label."""
    _require(rec, "spans", "span_attribution()")
    by_cat: dict[str, dict] = {}
    for event in rec.events:
        if event[0] != "span":
            continue
        _, t0, t1, category, label = event
        cat = by_cat.setdefault(category, {"total_s": 0.0, "count": 0,
                                           "labels": {}})
        dur = t1 - t0
        cat["total_s"] += dur
        cat["count"] += 1
        lab = cat["labels"].setdefault(label, {"total_s": 0.0, "count": 0})
        lab["total_s"] += dur
        lab["count"] += 1
    return by_cat


def build_metrics(rec: Recording) -> MetricsRegistry:
    """Fold one recording into a fresh :class:`MetricsRegistry`."""
    reg = MetricsRegistry()
    if rec.kind == "serve":
        attr = phase_attribution(rec)
        reg.gauge("makespan_s").set(attr["makespan_s"])
        for phase, seconds in attr["engine_s"].items():
            reg.gauge("engine_phase_s", phase=phase).set(seconds)
        counts = attr["counts"]
        reg.counter("requests_total").inc(counts["requests"])
        reg.counter("requests_finished_total").inc(counts["finished"])
        reg.counter("prefill_steps_total").inc(counts["prefill_steps"])
        reg.counter("decode_steps_total").inc(counts["decode_steps"])
        reg.counter("preemptions_total").inc(counts["preemptions"])
        ttft = reg.histogram("ttft_s")
        latency = reg.histogram("request_latency_s")
        queue = reg.histogram("queue_wait_s")
        for r in request_timelines(rec).values():
            if r["first_token"] is not None:
                ttft.observe(r["first_token"] - r["arrival"])
            if r["finish"] is not None:
                latency.observe(r["finish"] - r["arrival"])
            if r["queue_wait"] is not None:
                queue.observe(r["queue_wait"])
        batch = reg.histogram("decode_batch")
        pool = reg.histogram("kv_pool_used_blocks")
        # the trailing used_blocks field is only meaningful on pool runs
        with_pool = bool(rec.meta.get("pool_blocks"))
        for event in rec.events:
            kind = event[0]
            if kind == "decode":
                batch.observe_repeat(int(event[4]), int(event[3]))
                if with_pool:
                    pool.observe(int(event[5]))
            elif kind == "prefill" and with_pool:
                pool.observe(int(event[6]))
    elif rec.kind == "spans":
        for category, cat in span_attribution(rec).items():
            reg.counter("spans_total", category=category).inc(cat["count"])
            reg.gauge("span_total_s", category=category).set(cat["total_s"])
        hist = {}
        for event in rec.events:
            if event[0] == "span":
                _, t0, t1, category, _label = event
                h = hist.get(category)
                if h is None:
                    h = hist[category] = reg.histogram("span_s",
                                                       category=category)
                h.observe(t1 - t0)
    elif rec.kind == "sim":
        for rank, category, _label, start, end in rec.intervals:
            reg.counter("intervals_total", category=category).inc()
            reg.histogram("interval_s", category=category).observe(
                end - start)
        if rec.intervals:
            t0, t1 = clock_bounds(rec)
            reg.gauge("makespan_s").set(t1 - t0)
    else:                               # pragma: no cover - load() gates
        raise ObsError(f"cannot build metrics for kind {rec.kind!r}")
    return reg
