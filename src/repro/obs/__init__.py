"""``repro.obs`` — unified observability: events, metrics, Perfetto.

The serving engine, the autotuner and the kernel simulator all answer
"how long" but not "where did the time go"; this package is the shared
window into all three:

* :mod:`repro.obs.events` — the structured event log.  A
  :class:`Recorder` passed as ``serve(..., recorder=...)`` captures the
  full request lifecycle (arrival → queue → admission → prefill →
  decode macro-steps → preemption/recompute → finish, plus KV-pool
  watermark crossings) in simulated-clock time; passed as
  ``tune(...)``/``sweep(..., recorder=...)`` it collects wall-time
  spans per candidate simulation, prune pass and cache probe.  The
  default (``None`` / :data:`NULL_RECORDER`) keeps every instrumented
  path at its zero-overhead baseline, and recording is read-only by
  construction: results are bit-identical with the recorder on or off.
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with
  labelled series.  Histograms ride the serving engine's
  :class:`~repro.serve.samples.StepStats` multisets (O(distinct-values)
  memory, percentiles bit-identical to ``repro.serve.metrics``), and
  ``snapshot()`` emits strict JSON for
  ``validate_bench_json.py --schema obs-metrics``.
* :mod:`repro.obs.summary` — attribution: per-phase wall-clock
  breakdown (prefill/decode/idle partition the makespan exactly; queue
  and preempt-stall overlay as request-seconds), the K slowest requests
  with their timelines, and span totals for tuner runs.
* :mod:`repro.obs.export` — Chrome trace-event JSON for
  ui.perfetto.dev: serving timelines (engine + per-request phase
  tracks + pool counter track), kernel-sim timelines (per-rank
  compute/comm/host tracks from :mod:`repro.sim.trace`), tuner spans.
* ``python -m repro.obs`` — ``record`` / ``summarize`` / ``slowest`` /
  ``export`` over ``repro-obs/1`` recording files.

Layering: ``repro.serve`` and ``repro.tuner`` never import this
package — their ``recorder`` hooks are duck-typed (``.enabled``,
``.events.append``, ``.span``) — so the hot paths carry no
observability dependency and a disabled recorder costs one boolean
check per site.
"""

from repro.obs.events import (
    EVENT_FIELDS,
    FORMAT,
    KINDS,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Recording,
    load,
    save_recording,
)
from repro.obs.export import (
    save_sim_recording,
    sim_recording,
    to_perfetto,
    write_trace,
)
from repro.obs.metrics import (
    METRICS_FORMAT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.summary import (
    PHASES,
    build_metrics,
    phase_attribution,
    request_timelines,
    slowest_requests,
    span_attribution,
)

__all__ = [
    "Counter", "EVENT_FIELDS", "FORMAT", "Gauge", "Histogram", "KINDS",
    "METRICS_FORMAT", "MetricsRegistry", "NULL_RECORDER", "NullRecorder",
    "PHASES", "Recorder", "Recording", "build_metrics", "load",
    "phase_attribution", "request_timelines", "save_recording",
    "save_sim_recording", "sim_recording", "slowest_requests",
    "span_attribution", "to_perfetto", "write_trace",
]
