"""Observability CLI: record, summarize, and export runs.

::

    python -m repro.obs record    --out run.json [--kind serve|sim] ...
    python -m repro.obs summarize run.json [--metrics-out metrics.json]
    python -m repro.obs slowest   run.json [-k 10]
    python -m repro.obs export    run.json --out trace.json [--requests N]

``record`` produces a self-contained seeded run — a serving simulation
against the shipped latency table (``--kind serve``, the default) or a
traced AG+GEMM kernel simulation (``--kind sim``) — so CI can exercise
the whole pipeline without any prior artifact.  ``summarize`` prints
the per-phase time attribution (and fails loudly if less than 99% of
the simulated wall-clock is attributed — the format-rot tripwire);
``slowest`` prints the K worst requests with their event timelines;
``export`` writes Chrome trace-event JSON for ui.perfetto.dev (open
the site, drag the file in).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ObsError, TileLinkError
from repro.obs.events import Recorder, load
from repro.obs.export import save_sim_recording, write_trace
from repro.obs.summary import (
    build_metrics,
    phase_attribution,
    slowest_requests,
    span_attribution,
)

#: (scenario -> model) pairing mirrored from ``benchmarks/bench_serving``.
_SCENARIO_MODELS = {
    "chat": "Mixtral-8x7B",
    "rag": "LLaMA2-7B",
    "batch-summarize": "Mixtral-8x7B",
    "long-context": "LLaMA2-7B",
}


def _cmd_record(args) -> int:
    if args.kind == "sim":
        return _record_sim(args)
    return _record_serve(args)


def _record_serve(args) -> int:
    from repro.models.configs import E2E_MODELS
    from repro.serve import (
        KVCacheConfig,
        ServerConfig,
        StepLatencyTable,
        generate_requests,
        resolve_latency_table,
        serve,
    )

    model_name = args.model or _SCENARIO_MODELS.get(args.scenario,
                                                    "Mixtral-8x7B")
    models = {m.name: m for m in E2E_MODELS}
    if model_name not in models:
        raise ObsError(f"unknown model {model_name!r}; "
                       f"known: {sorted(models)}")
    model = models[model_name]
    table = resolve_latency_table() or StepLatencyTable(readonly=True)
    table.ensure(model, args.method, world=args.world, seed=args.seed)
    reqs = generate_requests(args.scenario, args.requests, seed=args.seed)
    kv = KVCacheConfig(block_tokens=args.block_tokens,
                       pool_blocks=args.pool_blocks,
                       admission=args.admission)
    recorder = Recorder()
    res = serve(reqs, model, args.method, table, ServerConfig(),
                world=args.world, seed=args.seed, kv=kv, recorder=recorder)
    recorder.save(args.out)
    print(f"recorded {args.scenario}/{args.method}: {len(res.logs)} "
          f"requests, {len(recorder.events)} events, makespan "
          f"{res.makespan_s:.3f} s -> {args.out}")
    return 0


def _record_sim(args) -> int:
    from repro.bench.harness import run_builder_traced
    from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped

    m, n, k = 256, 96, 64
    world = 4

    def builder(ctx) -> None:
        ctx.alloc("x", (m // world, k), "float16", fill=None)
        ctx.alloc("w", (k, n), "float16", fill=None)
        ctx.alloc("y", (m, n), "float16", fill=None)
        cfg = AgGemmConfig(m=m, n=n, k=k, block_m=32, block_n=32,
                           block_k=32, block_mp=32, comm_blocks=4,
                           mode="dma")
        ag_gemm_overlapped(ctx, cfg, "x", "w", "y", grid=16)

    total, ctx = run_builder_traced(builder, world=world, seed=args.seed)
    trace = ctx.machine.trace
    save_sim_recording(args.out, trace, meta={
        "kernel": "ag_gemm", "shape": f"m{m}n{n}k{k}", "world": world,
        "total_s": total})
    print(f"recorded ag_gemm sim: {len(trace.intervals)} intervals over "
          f"{world} ranks, {total * 1e3:.3f} ms simulated -> {args.out}")
    return 0


def _print_serve_summary(rec) -> int:
    attr = phase_attribution(rec)
    makespan = attr["makespan_s"]
    counts = attr["counts"]
    print(f"serving run — {counts['requests']} requests, "
          f"makespan {makespan:.3f} s")
    print("  engine wall-clock by phase:")
    for phase in ("prefill", "decode", "idle"):
        s = attr["engine_s"][phase]
        pct = 100.0 * s / makespan if makespan > 0 else 0.0
        print(f"    {phase:<14}{s:>12.3f} s  {pct:6.2f}%")
    coverage = attr["coverage"]
    print(f"    {'attributed':<14}{100.0 * coverage:>11.2f}%")
    print("  request-seconds overlays (concurrent, so they can exceed "
          "wall time):")
    for phase in ("queue", "preempt-stall"):
        print(f"    {phase:<14}{attr['request_s'][phase]:>12.3f} req-s")
    print(f"  counts: {counts['prefill_steps']} prefill steps, "
          f"{counts['decode_steps']} decode steps, "
          f"{counts['preemptions']} preemptions, "
          f"{counts['finished']}/{counts['requests']} finished")
    if coverage < 0.99:
        print(f"FAIL: only {100.0 * coverage:.2f}% of the simulated "
              f"wall-clock is attributed to phases (floor: 99%)",
              file=sys.stderr)
        return 1
    return 0


def _print_span_summary(rec) -> int:
    by_cat = span_attribution(rec)
    total = sum(cat["total_s"] for cat in by_cat.values())
    print(f"spans run — {sum(c['count'] for c in by_cat.values())} spans, "
          f"{total:.3f} s recorded wall time")
    for category in sorted(by_cat, key=lambda c: -by_cat[c]["total_s"]):
        cat = by_cat[category]
        print(f"  {category:<12}{cat['total_s']:>10.3f} s  "
              f"({cat['count']} spans)")
        labels = cat["labels"]
        for label in sorted(labels, key=lambda l: -labels[l]["total_s"])[:8]:
            lab = labels[label]
            print(f"    {label:<40}{lab['total_s']:>10.3f} s  "
                  f"x{lab['count']}")
    return 0


def _print_sim_summary(rec) -> int:
    from repro.sim.trace import Trace

    trace = Trace()
    for rank, category, label, start, end in rec.intervals:
        trace.record(rank, category, label, start, end)
    print(f"kernel-sim run — {len(rec.intervals)} intervals, makespan "
          f"{trace.makespan() * 1e3:.3f} ms")
    categories = sorted({iv[1] for iv in rec.intervals})
    for category in categories:
        print(f"  {category:<10}{trace.busy_time(category) * 1e3:>10.3f} "
              f"ms busy (union over ranks)")
    if "compute" in categories and "comm" in categories:
        comm = trace.busy_time("comm")
        overlap = trace.overlap_time("compute", "comm")
        if comm > 0:
            print(f"  comm hidden under compute: "
                  f"{100.0 * overlap / comm:.1f}%")
    return 0


def _cmd_summarize(args) -> int:
    rec = load(args.path)
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(build_metrics(rec).snapshot(), fh, indent=1,
                      sort_keys=True, allow_nan=False)
        print(f"metrics snapshot -> {args.metrics_out}")
    if rec.kind == "serve":
        return _print_serve_summary(rec)
    if rec.kind == "spans":
        return _print_span_summary(rec)
    return _print_sim_summary(rec)


def _cmd_slowest(args) -> int:
    rec = load(args.path)
    rows = slowest_requests(rec, k=args.k)
    print(f"{len(rows)} slowest requests:")
    for r in rows:
        ttft = f"{r['ttft']:.3f}" if r["ttft"] is not None else "-"
        done = "" if r["finish"] is not None else "  [unfinished]"
        print(f"  req {r['rid']}: latency {r['latency']:.3f} s, "
              f"ttft {ttft} s, {r['prompt_tokens']} prompt + "
              f"{r['output_tokens']} output tokens, "
              f"{r['n_preemptions']} preemptions{done}")
        for phase, t0, t1 in r["segments"]:
            print(f"    {phase:<14}{t0:>12.3f} -> {t1:<12.3f} "
                  f"({t1 - t0:.3f} s)")
    return 0


def _cmd_export(args) -> int:
    rec = load(args.path)
    write_trace(args.out, rec, max_request_tracks=args.requests)
    print(f"perfetto trace -> {args.out} "
          f"(open https://ui.perfetto.dev and drag the file in)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run a seeded workload and save "
                                        "its recording")
    rec.add_argument("--out", required=True, help="recording output path")
    rec.add_argument("--kind", choices=("serve", "sim"), default="serve")
    rec.add_argument("-n", "--requests", type=int, default=200)
    rec.add_argument("--scenario", default="chat")
    rec.add_argument("--model", default=None,
                     help="served model (default: scenario pairing)")
    rec.add_argument("--method", default="tilelink")
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument("--world", type=int, default=8)
    rec.add_argument("--block-tokens", type=int, default=64)
    rec.add_argument("--pool-blocks", type=int, default=4096)
    rec.add_argument("--admission", choices=("kv-aware", "naive"),
                     default="kv-aware")
    rec.set_defaults(func=_cmd_record)

    summ = sub.add_parser("summarize", help="per-phase time attribution")
    summ.add_argument("path")
    summ.add_argument("--metrics-out", default=None,
                      help="also write an obs-metrics JSON snapshot")
    summ.set_defaults(func=_cmd_summarize)

    slow = sub.add_parser("slowest", help="the K slowest requests with "
                                          "their timelines")
    slow.add_argument("path")
    slow.add_argument("-k", type=int, default=10)
    slow.set_defaults(func=_cmd_slowest)

    exp = sub.add_parser("export", help="write Chrome trace-event JSON")
    exp.add_argument("path")
    exp.add_argument("--out", required=True)
    exp.add_argument("--requests", type=int, default=200,
                     help="cap on per-request tracks (slowest kept)")
    exp.set_defaults(func=_cmd_export)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TileLinkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
