"""Structured event recording: the observability layer's data model.

One :class:`Recorder` collects the events of one run — a serving
simulation's request lifecycle (``kind="serve"``), a tuner invocation's
wall-time spans (``kind="spans"``), or a kernel simulation's busy
intervals adapted from :class:`repro.sim.trace.TraceInterval`
(``kind="sim"``).  Events are plain tuples with fixed per-kind layouts
(:data:`EVENT_FIELDS`); the hot paths append tuples and nothing else, so
an enabled recorder never perturbs what it observes and a disabled one
(:data:`NULL_RECORDER`, or simply ``recorder=None``) costs one boolean
check per instrumentation site.

Serving events carry *simulated-clock* timestamps (the engine's
seconds); span events carry *wall-clock* ``time.perf_counter`` seconds —
the tuner's spans answer "where did the sweep spend its wall time",
which is real time, not simulated time.

Recordings persist as strict JSON (``{"format": "repro-obs/1", ...}``,
never a bare NaN/Infinity token) via :meth:`Recorder.save` /
:func:`save_recording` and come back as :class:`Recording` via
:func:`load`, which validates the layout field-by-field and raises
:class:`repro.errors.ObsError` on anything malformed — the CLI and the
exporters never operate on half-checked data.
"""

from __future__ import annotations

import json
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

from repro.errors import ObsError

__all__ = [
    "EVENT_FIELDS", "FORMAT", "KINDS", "NULL_RECORDER", "NullRecorder",
    "Recorder", "Recording", "load", "save_recording",
]

#: On-disk format tag (bump on layout changes; :func:`load` rejects
#: anything else).
FORMAT = "repro-obs/1"

#: Recording kinds: serving lifecycle, kernel-sim intervals, wall spans.
KINDS = ("serve", "sim", "spans")

#: Event layouts: ``kind -> payload field names`` (the stored tuple is
#: ``(kind, *payload)``).  The first payload field is always the event's
#: primary timestamp.  ``fresh`` on ``admit`` is 1 for a first admission
#: and 0 for a re-admission after preemption; ``above`` on ``watermark``
#: is 1 crossing up over the headroom threshold, 0 crossing back down.
#: ``used_blocks`` on ``prefill``/``decode`` is the KV pool level at the
#: step's end — folded into the step events (instead of a separate
#: sample event) so a pool run costs no extra allocations per step; it
#: is 0 and meaningless when the run had no pool (``meta.pool_blocks``
#: of 0 tells consumers to ignore it).
EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    "arrival": ("ts", "rid", "prompt_tokens", "output_tokens"),
    "idle": ("t0", "t1"),
    "prefill": ("t0", "t1", "admitted", "tokens", "batch", "used_blocks"),
    "admit": ("t0", "t1", "rid", "fresh", "resident"),
    "decode": ("t0", "t1", "steps", "batch", "used_blocks"),
    "preempt": ("ts", "rid"),
    "finish": ("ts", "rid"),
    "watermark": ("ts", "above", "used_blocks"),
    "span": ("t0", "t1", "category", "label"),
}

#: ``EVENT_FIELDS`` payload slots holding strings (everything else is a
#: finite number).
_STR_FIELDS = {("span", "category"), ("span", "label")}


class Recorder:
    """Collects one run's events.

    The instrumented code paths (``serve_events``, the tuner) treat this
    purely as ``events.append`` plus the :attr:`enabled` gate — they
    never import :mod:`repro.obs`, so the serving engine stays free of
    any observability dependency.  Use one fresh recorder per run: the
    engine refuses a recorder that already holds events (mixing two
    runs' simulated clocks would corrupt every downstream view).
    """

    __slots__ = ("events", "meta")

    #: Instrumentation sites check this one flag; subclasses (the null
    #: recorder) turn the whole layer off by flipping it.
    enabled = True

    def __init__(self, meta: dict | None = None):
        self.events: list[tuple] = []
        self.meta: dict = dict(meta or {})

    def span(self, t0: float, t1: float, category: str, label: str) -> None:
        """Record one labelled wall-time span (tuner instrumentation)."""
        self.events.append(("span", t0, t1, category, label))

    @contextmanager
    def timed(self, category: str, label: str):
        """Record the wall time of a ``with`` block as one span."""
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.events.append(("span", t0, perf_counter(), category, label))

    def recording(self) -> "Recording":
        """Freeze the collected events into a :class:`Recording`."""
        kind = self.meta.get("kind", "spans")
        if kind not in KINDS:
            raise ObsError(f"recorder meta carries unknown kind {kind!r}; "
                           f"expected one of {KINDS}")
        meta = {k: v for k, v in self.meta.items() if k != "kind"}
        return Recording(kind=kind, meta=meta, events=list(self.events))

    def save(self, path) -> None:
        """Persist as strict ``repro-obs/1`` JSON."""
        rec = self.recording()
        save_recording(path, kind=rec.kind, meta=rec.meta, events=rec.events)


class NullRecorder(Recorder):
    """The default no-op recorder: every hook sees ``enabled`` False."""

    enabled = False

    def span(self, t0, t1, category, label) -> None:
        pass

    @contextmanager
    def timed(self, category, label):
        yield self


#: Shared disabled recorder — pass this (or ``None``) to keep the
#: instrumented paths at their zero-overhead baseline.
NULL_RECORDER = NullRecorder()


@dataclass
class Recording:
    """One validated recording: events and, for ``kind="sim"``, the
    kernel-simulation intervals ``(rank, category, label, start, end)``."""

    kind: str
    meta: dict = field(default_factory=dict)
    events: list[tuple] = field(default_factory=list)
    intervals: list[tuple] = field(default_factory=list)

    def by_kind(self, kind: str) -> list[tuple]:
        """All events of one kind, in recorded order."""
        return [e for e in self.events if e[0] == kind]


def _is_num(value: object) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value))


def _check_event(i: int, event: object) -> tuple:
    if not isinstance(event, (list, tuple)) or not event:
        raise ObsError(f"event {i}: not a non-empty list: {event!r}")
    kind = event[0]
    fields = EVENT_FIELDS.get(kind)
    if fields is None:
        raise ObsError(f"event {i}: unknown event kind {kind!r}; "
                       f"expected one of {sorted(EVENT_FIELDS)}")
    if len(event) != 1 + len(fields):
        raise ObsError(f"event {i} ({kind}): expected fields {fields}, "
                       f"got {len(event) - 1} values")
    for name, value in zip(fields, event[1:]):
        if (kind, name) in _STR_FIELDS:
            if not isinstance(value, str) or not value:
                raise ObsError(f"event {i} ({kind}): field {name!r} must be "
                               f"a non-empty string, got {value!r}")
        elif not _is_num(value):
            raise ObsError(f"event {i} ({kind}): field {name!r} must be a "
                           f"finite number, got {value!r}")
    return tuple(event)


def _check_interval(i: int, iv: object) -> tuple:
    if not isinstance(iv, (list, tuple)) or len(iv) != 5:
        raise ObsError(f"interval {i}: expected "
                       f"[rank, category, label, start, end], got {iv!r}")
    rank, category, label, start, end = iv
    if not isinstance(rank, int) or isinstance(rank, bool) or rank < 0:
        raise ObsError(f"interval {i}: rank must be an int >= 0, got {rank!r}")
    for name, value in (("category", category), ("label", label)):
        if not isinstance(value, str) or not value:
            raise ObsError(f"interval {i}: {name} must be a non-empty "
                           f"string, got {value!r}")
    if not _is_num(start) or not _is_num(end) or end < start:
        raise ObsError(f"interval {i}: needs finite start <= end, "
                       f"got {start!r}..{end!r}")
    return tuple(iv)


def _reject_constant(token: str) -> float:
    raise ObsError(f"non-finite JSON constant {token!r} in recording; "
                   f"the emitter must write null instead")


def save_recording(path, *, kind: str, meta: dict | None = None,
                   events=(), intervals=()) -> None:
    """Write one recording as strict ``repro-obs/1`` JSON."""
    if kind not in KINDS:
        raise ObsError(f"unknown recording kind {kind!r}; "
                       f"expected one of {KINDS}")
    payload = {
        "format": FORMAT,
        "kind": kind,
        "meta": dict(meta or {}),
        "events": [list(e) for e in events],
        "intervals": [list(iv) for iv in intervals],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True, allow_nan=False)


def load(path) -> Recording:
    """Read a recording back, validating every event field.

    Raises :class:`ObsError` on a missing/unreadable file, non-strict
    JSON, a foreign format tag, or any malformed event/interval.
    """
    try:
        with open(path) as fh:
            payload = json.load(fh, parse_constant=_reject_constant)
    except OSError as exc:
        raise ObsError(f"cannot read recording {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObsError(f"recording {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ObsError(f"recording {path}: top level must be an object, "
                       f"got {type(payload).__name__}")
    if payload.get("format") != FORMAT:
        raise ObsError(f"recording {path}: format "
                       f"{payload.get('format')!r} is not {FORMAT!r}")
    kind = payload.get("kind")
    if kind not in KINDS:
        raise ObsError(f"recording {path}: unknown kind {kind!r}; "
                       f"expected one of {KINDS}")
    meta = payload.get("meta", {})
    if not isinstance(meta, dict):
        raise ObsError(f"recording {path}: meta must be an object")
    raw_events = payload.get("events", [])
    raw_intervals = payload.get("intervals", [])
    if not isinstance(raw_events, list) or not isinstance(raw_intervals, list):
        raise ObsError(f"recording {path}: events and intervals must be "
                       f"lists")
    events = [_check_event(i, e) for i, e in enumerate(raw_events)]
    intervals = [_check_interval(i, iv) for i, iv in enumerate(raw_intervals)]
    return Recording(kind=kind, meta=meta, events=events,
                     intervals=intervals)
