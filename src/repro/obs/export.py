"""Chrome trace-event (Perfetto-loadable) JSON export.

One exporter for every timeline the repo produces — this is where the
Figure-10 overlap story becomes *visible* instead of a ratio:

* ``kind="serve"`` — the engine track (prefill/decode step slices and
  idle gaps on one process), a ``kv_pool_used`` counter track with
  watermark-crossing instants, and one thread per request whose slices
  are the :data:`repro.obs.summary.PHASES` segments;
* ``kind="sim"`` — :class:`repro.sim.trace.TraceInterval` records laid
  out one process per rank, one thread per category
  (compute/comm/host/...), so loading the file in ui.perfetto.dev shows
  communication sliding under computation;
* ``kind="spans"`` — the tuner's wall-time spans, one thread per
  category (simulate/prune/cache/...).

Timestamps are normalised to the recording's origin and emitted in
microseconds (the trace-event unit).  Output is strict JSON, metadata
events first, then every slice in non-decreasing ``ts`` order — the
shape ``validate_bench_json.py --schema obs-trace`` pins in CI.
"""

from __future__ import annotations

import json

from repro.errors import ObsError
from repro.obs.events import Recorder, Recording
from repro.obs.summary import clock_bounds, request_timelines

__all__ = ["save_sim_recording", "sim_recording", "to_perfetto",
           "write_trace"]

#: Engine-track slice names (cat "engine") the validator accepts.
ENGINE_NAMES = ("prefill", "decode", "idle")


def _as_recording(rec) -> Recording:
    if isinstance(rec, Recording):
        return rec
    if isinstance(rec, Recorder):
        return rec.recording()
    raise ObsError(f"expected a Recording or Recorder, "
                   f"got {type(rec).__name__}")


def sim_recording(trace, meta: dict | None = None) -> Recording:
    """Adapt a :class:`repro.sim.trace.Trace` (or an interval iterable)
    into a ``kind="sim"`` recording."""
    intervals = getattr(trace, "intervals", trace)
    rows = []
    for iv in intervals:
        if isinstance(iv, (list, tuple)):
            rank, category, label, start, end = iv
        else:
            rank, category, label = iv.rank, iv.category, iv.label
            start, end = iv.start, iv.end
        rows.append((rank, category, label, start, end))
    if not rows:
        raise ObsError("sim recording needs at least one trace interval; "
                       "was the simulation run with trace=True?")
    return Recording(kind="sim", meta=dict(meta or {}), intervals=rows)


def save_sim_recording(path, trace, meta: dict | None = None) -> None:
    """Persist a kernel-sim trace as a ``repro-obs/1`` recording."""
    from repro.obs.events import save_recording

    rec = sim_recording(trace, meta)
    save_recording(path, kind="sim", meta=rec.meta, intervals=rec.intervals)


def _finish(meta_events: list[dict], slices: list[dict]) -> dict:
    slices.sort(key=lambda e: e["ts"])
    return {"traceEvents": meta_events + slices, "displayTimeUnit": "ms"}


def _serve_trace(rec: Recording, max_request_tracks: int | None) -> dict:
    t0, _ = clock_bounds(rec)

    def us(t: float) -> float:
        return (t - t0) * 1e6

    meta_events = [
        {"ph": "M", "pid": 1, "tid": 0, "ts": 0, "name": "process_name",
         "args": {"name": "serving engine"}},
        {"ph": "M", "pid": 1, "tid": 0, "ts": 0, "name": "thread_name",
         "args": {"name": "steps"}},
        {"ph": "M", "pid": 1, "tid": 1, "ts": 0, "name": "thread_name",
         "args": {"name": "idle"}},
        {"ph": "M", "pid": 2, "tid": 0, "ts": 0, "name": "process_name",
         "args": {"name": "requests"}},
    ]
    slices: list[dict] = []
    with_pool = bool(rec.meta.get("pool_blocks"))
    for event in rec.events:
        kind = event[0]
        if kind in ("prefill", "decode"):
            slices.append({"ph": "X", "pid": 1, "tid": 0, "name": kind,
                           "cat": "engine", "ts": us(event[1]),
                           "dur": max(0.0, us(event[2]) - us(event[1]))})
            if with_pool:
                # each step event carries the closing pool level
                slices.append({"ph": "C", "pid": 1, "name": "kv_pool_used",
                               "ts": us(event[2]),
                               "args": {"blocks": event[-1]}})
        elif kind == "idle":
            slices.append({"ph": "X", "pid": 1, "tid": 1, "name": "idle",
                           "cat": "engine", "ts": us(event[1]),
                           "dur": max(0.0, us(event[2]) - us(event[1]))})
        elif kind == "watermark":
            name = ("watermark_above" if event[2] else "watermark_below")
            slices.append({"ph": "i", "pid": 1, "tid": 0, "name": name,
                           "cat": "engine", "ts": us(event[1]), "s": "p",
                           "args": {"used_blocks": event[3]}})

    reqs = list(request_timelines(rec).values())
    if max_request_tracks is not None and len(reqs) > max_request_tracks:
        # keep the interesting tracks: the slowest end-to-end requests
        _, t_end = clock_bounds(rec)
        reqs.sort(key=lambda r: (
            -((r["finish"] if r["finish"] is not None else t_end)
              - r["arrival"]), r["rid"]))
        reqs = reqs[:max_request_tracks]
    for r in sorted(reqs, key=lambda r: r["rid"]):
        rid = r["rid"]
        meta_events.append(
            {"ph": "M", "pid": 2, "tid": rid, "ts": 0,
             "name": "thread_name", "args": {"name": f"req {rid}"}})
        for phase, s, e in r["segments"]:
            slices.append({"ph": "X", "pid": 2, "tid": rid, "name": phase,
                           "cat": "phase", "ts": us(s),
                           "dur": max(0.0, us(e) - us(s))})
    return _finish(meta_events, slices)


def _sim_trace(rec: Recording) -> dict:
    t0, _ = clock_bounds(rec)
    ranks = sorted({iv[0] for iv in rec.intervals})
    categories = sorted({iv[1] for iv in rec.intervals})
    tid_of = {c: i for i, c in enumerate(categories)}
    meta_events = []
    for rank in ranks:
        meta_events.append(
            {"ph": "M", "pid": rank + 1, "tid": 0, "ts": 0,
             "name": "process_name", "args": {"name": f"rank {rank}"}})
        for category in categories:
            meta_events.append(
                {"ph": "M", "pid": rank + 1, "tid": tid_of[category],
                 "ts": 0, "name": "thread_name",
                 "args": {"name": category}})
    slices = []
    for rank, category, label, start, end in rec.intervals:
        slices.append({"ph": "X", "pid": rank + 1, "tid": tid_of[category],
                       "name": label, "cat": category,
                       "ts": (start - t0) * 1e6,
                       "dur": max(0.0, (end - start) * 1e6)})
    return _finish(meta_events, slices)


def _span_trace(rec: Recording) -> dict:
    spans = [e for e in rec.events if e[0] == "span"]
    if not spans:
        raise ObsError("spans recording holds no span events; nothing "
                       "to export")
    t0 = min(e[1] for e in spans)
    categories = sorted({e[3] for e in spans})
    tid_of = {c: i for i, c in enumerate(categories)}
    meta_events = [{"ph": "M", "pid": 1, "tid": 0, "ts": 0,
                    "name": "process_name", "args": {"name": "tuner"}}]
    for category in categories:
        meta_events.append({"ph": "M", "pid": 1, "tid": tid_of[category],
                            "ts": 0, "name": "thread_name",
                            "args": {"name": category}})
    slices = []
    for _, s, e, category, label in spans:
        slices.append({"ph": "X", "pid": 1, "tid": tid_of[category],
                       "name": label, "cat": category,
                       "ts": (s - t0) * 1e6,
                       "dur": max(0.0, (e - s) * 1e6)})
    return _finish(meta_events, slices)


def to_perfetto(rec, *, max_request_tracks: int | None = None) -> dict:
    """The Chrome trace-event payload for one recording (or a live
    :class:`Recorder`).  ``max_request_tracks`` caps the per-request
    thread count of a serving trace, keeping the slowest requests."""
    rec = _as_recording(rec)
    if rec.kind == "serve":
        return _serve_trace(rec, max_request_tracks)
    if rec.kind == "sim":
        if not rec.intervals:
            raise ObsError("sim recording holds no intervals; nothing "
                           "to export")
        return _sim_trace(rec)
    if rec.kind == "spans":
        return _span_trace(rec)
    raise ObsError(f"cannot export recording kind {rec.kind!r}")


def write_trace(path, rec, *, max_request_tracks: int | None = None) -> None:
    """Write the Perfetto JSON for ``rec`` to ``path`` (strict JSON)."""
    payload = to_perfetto(rec, max_request_tracks=max_request_tracks)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True, allow_nan=False)
