"""Tile grid arithmetic shared by mappings, kernels and the compiler."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError


def ceil_div(a: int, b: int) -> int:
    if b <= 0:
        raise MappingError(f"ceil_div by non-positive {b}")
    return -(-a // b)


@dataclass(frozen=True)
class TileGrid:
    """A 2-d tiling of an (m x n) index space into (bm x bn) tiles.

    Tile ids are row-major: ``tile_id = tid_m * tiles_n + tid_n``.  Edge
    tiles are ragged (clamped by the accessors in
    :class:`repro.memory.tensor.SimTensor`).
    """

    m: int
    n: int
    bm: int
    bn: int

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0:
            raise MappingError(f"negative extent in grid {self}")
        if self.bm <= 0 or self.bn <= 0:
            raise MappingError(f"non-positive tile size in grid {self}")

    @property
    def tiles_m(self) -> int:
        return ceil_div(self.m, self.bm)

    @property
    def tiles_n(self) -> int:
        return ceil_div(self.n, self.bn)

    @property
    def n_tiles(self) -> int:
        return self.tiles_m * self.tiles_n

    def tile_coords(self, tile_id: int) -> tuple[int, int]:
        if not 0 <= tile_id < self.n_tiles:
            raise MappingError(f"tile_id {tile_id} out of range (grid {self})")
        return divmod(tile_id, self.tiles_n)

    def tile_id(self, tid_m: int, tid_n: int) -> int:
        if not (0 <= tid_m < self.tiles_m and 0 <= tid_n < self.tiles_n):
            raise MappingError(f"tile coords ({tid_m},{tid_n}) out of grid {self}")
        return tid_m * self.tiles_n + tid_n

    def ranges(self, tile_id: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """Half-open (row, col) element ranges of a tile, clamped."""
        tid_m, tid_n = self.tile_coords(tile_id)
        r0 = tid_m * self.bm
        c0 = tid_n * self.bn
        return (r0, min(r0 + self.bm, self.m)), (c0, min(c0 + self.bn, self.n))

    def row_range(self, tid_m: int) -> tuple[int, int]:
        if not 0 <= tid_m < self.tiles_m:
            raise MappingError(f"tid_m {tid_m} out of grid {self}")
        r0 = tid_m * self.bm
        return r0, min(r0 + self.bm, self.m)

    def tiles_covering_rows(self, lo: int, hi: int) -> range:
        """Row-tile indices whose span intersects [lo, hi)."""
        if lo >= hi:
            return range(0)
        first = max(0, lo // self.bm)
        last = min(self.tiles_m, ceil_div(hi, self.bm))
        return range(first, last)
