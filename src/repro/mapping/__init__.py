"""Tile-centric mapping: shape (f_S), rank (f_R) and channel (f_C) maps.

The backend uses these to link communication and computation tiles (paper
§4.1).  *Static* mappings are affine and resolved at compile time
(:mod:`repro.mapping.static`); *dynamic* mappings are lookup tables filled
at runtime, e.g. by MoE routing (:mod:`repro.mapping.dynamic`).
"""

from repro.mapping.layout import TileGrid, ceil_div
from repro.mapping.static import AffineTileMapping
from repro.mapping.dynamic import TableTileMapping, build_moe_consumer_mapping

__all__ = [
    "AffineTileMapping",
    "TableTileMapping",
    "TileGrid",
    "build_moe_consumer_mapping",
    "ceil_div",
]
