"""Static (affine) tile-centric mapping — paper §4.1.

For a dimension of extent ``M`` sharded across ``R`` ranks with ``C``
channels (barriers) per rank and producer tile size ``T``, the paper defines

.. code-block:: text

    M_per_rank    = ceil(M / R)
    M_per_channel = ceil(M / (R * C))
    range(t)  = [t * T, t * T + T)
    rank(t)   = floor(t / floor(M_per_rank / T))
    channel(t)= floor(t / floor(M_per_channel / T))

:class:`AffineTileMapping` implements exactly these formulas plus the
consumer-side queries the compiler needs: which channels cover a row span
and how many producer notifies make each channel "ready" (the
``producer_threshold`` embedded in the BlockChannel argument).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError
from repro.mapping.layout import ceil_div


@dataclass(frozen=True)
class AffineTileMapping:
    """Affine f_S / f_R / f_C over one sharded dimension.

    Parameters
    ----------
    extent:
        Global extent M of the mapped dimension (the full, gathered view).
    tile:
        Producer tile size T along this dimension.
    world_size:
        Number of ranks R the dimension is sharded across.
    channels_per_rank:
        Barriers per rank C; more channels = finer consumer wake-ups.
    """

    extent: int
    tile: int
    world_size: int
    channels_per_rank: int = 1

    def __post_init__(self) -> None:
        if self.extent <= 0 or self.tile <= 0:
            raise MappingError(f"extent/tile must be positive: {self}")
        if self.world_size <= 0 or self.channels_per_rank <= 0:
            raise MappingError(f"world_size/channels must be positive: {self}")
        if self.per_rank % self.tile != 0:
            raise MappingError(
                f"per-rank extent {self.per_rank} must be a multiple of the "
                f"tile size {self.tile} (got extent={self.extent}, "
                f"R={self.world_size})"
            )
        if (self.per_rank // self.tile) % self.channels_per_rank != 0:
            raise MappingError(
                f"channels_per_rank={self.channels_per_rank} must divide the "
                f"{self.per_rank // self.tile} tiles of each rank (the "
                "paper's affine formulas assume channel-aligned tiles)"
            )

    # -- derived quantities (the paper's M_per_rank / M_per_channel) -----------

    @property
    def per_rank(self) -> int:
        return ceil_div(self.extent, self.world_size)

    @property
    def per_channel(self) -> int:
        return ceil_div(self.extent, self.world_size * self.channels_per_rank)

    @property
    def n_tiles(self) -> int:
        return ceil_div(self.extent, self.tile)

    @property
    def n_channels(self) -> int:
        """Global channel count (R * C)."""
        return self.world_size * self.channels_per_rank

    @property
    def tiles_per_rank(self) -> int:
        return max(1, self.per_rank // self.tile)

    @property
    def tiles_per_channel(self) -> int:
        return max(1, self.per_channel // self.tile)

    # -- the three mappings -------------------------------------------------------

    def shape_range(self, tile_id: int) -> tuple[int, int]:
        """f_S: half-open element range of a producer tile (clamped)."""
        self._check(tile_id)
        lo = tile_id * self.tile
        return lo, min(lo + self.tile, self.extent)

    def rank_of(self, tile_id: int) -> int:
        """f_R: rank owning the shard this tile falls in."""
        self._check(tile_id)
        return min(tile_id // self.tiles_per_rank, self.world_size - 1)

    def channel_of(self, tile_id: int) -> int:
        """f_C: global channel (barrier) index of this tile."""
        self._check(tile_id)
        return min(tile_id // self.tiles_per_channel, self.n_channels - 1)

    def _check(self, tile_id: int) -> None:
        if not 0 <= tile_id < self.n_tiles:
            raise MappingError(
                f"tile_id {tile_id} outside [0, {self.n_tiles}) for {self}"
            )

    # -- inverse / consumer-side queries -------------------------------------------

    def local_channel(self, channel: int) -> tuple[int, int]:
        """Split a global channel index into (owner_rank, channel_in_rank)."""
        if not 0 <= channel < self.n_channels:
            raise MappingError(f"channel {channel} out of range for {self}")
        return divmod(channel, self.channels_per_rank)[0], channel % self.channels_per_rank

    def channel_range(self, channel: int) -> tuple[int, int]:
        """Element range covered by one channel."""
        if not 0 <= channel < self.n_channels:
            raise MappingError(f"channel {channel} out of range for {self}")
        lo = channel * self.per_channel
        return lo, min(lo + self.per_channel, self.extent)

    def tiles_in_channel(self, channel: int) -> int:
        """Producer tiles mapped to a channel — the channel's full threshold."""
        lo, hi = self.channel_range(channel)
        if hi <= lo:
            return 0
        first = lo // self.tile
        last = ceil_div(hi, self.tile)
        return last - first

    def owner_of_element(self, index: int) -> int:
        """Rank whose shard contains element ``index`` of the global view."""
        if not 0 <= index < self.extent:
            raise MappingError(f"element {index} out of extent {self.extent}")
        return min(index // self.per_rank, self.world_size - 1)

    def channels_covering(self, lo: int, hi: int) -> list[int]:
        """Global channels whose ranges intersect [lo, hi)."""
        if lo >= hi:
            return []
        lo = max(lo, 0)
        hi = min(hi, self.extent)
        first = lo // self.per_channel
        last = ceil_div(hi, self.per_channel)
        return list(range(first, min(last, self.n_channels)))

    def wait_list(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Consumer wait set for a row span: [(channel, threshold), ...].

        The consumer is ready when every covering channel has received its
        *full* producer count (the paper's "consumer tile is marked ready
        when all the producer tiles it depends on are done").
        """
        return [(c, self.tiles_in_channel(c)) for c in self.channels_covering(lo, hi)]
