"""Dynamic (lookup-table) tile-centric mapping — paper §4.1.

For workloads whose data placement is only known at runtime (MoE dynamic
routing), the mappings become tables::

    range   = [fS_low[tile_id], fS_high[tile_id])
    rank    = fR[tile_id]
    channel = fC[tile_id]

The *access* pattern is fixed at compile time; the *values* are filled by
runtime logic.  :func:`build_moe_consumer_mapping` is that runtime logic for
the AG + MoE kernel of Figure 5: after top-k routing, tokens are grouped by
expert, and each consumer tile of the grouped layout learns which source
rank's shard its tokens came from and which channel signals their arrival.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.mapping.layout import ceil_div


class TableTileMapping:
    """Lookup-table f_S / f_R / f_C with the same query interface as affine.

    Tables may be filled incrementally (``fill``) or all at once
    (``fill_all``); querying an unfilled entry raises, mirroring how a real
    kernel reading an unwritten table would be a bug.
    """

    UNFILLED = -1

    def __init__(self, n_tiles: int, n_channels: int, world_size: int):
        if n_tiles <= 0:
            raise MappingError("TableTileMapping needs n_tiles >= 1")
        self.n_tiles = n_tiles
        self.n_channels = n_channels
        self.world_size = world_size
        self.fS_low = np.full(n_tiles, self.UNFILLED, dtype=np.int64)
        self.fS_high = np.full(n_tiles, self.UNFILLED, dtype=np.int64)
        self.fR = np.full(n_tiles, self.UNFILLED, dtype=np.int64)
        self.fC = np.full(n_tiles, self.UNFILLED, dtype=np.int64)
        #: Per-channel producer-notify thresholds (filled with the tables).
        self.channel_threshold = np.zeros(n_channels, dtype=np.int64)
        #: Optional per-tile wait sets for tiles gated by several channels
        #: (a consumer tile whose tokens arrive from multiple source ranks
        #: must see every covering shard land, not only the primary one).
        self.wait_sets: list[list[tuple[int, int]] | None] = [None] * n_tiles

    def fill(self, tile_id: int, lo: int, hi: int, rank: int, channel: int,
             wait_set: list[tuple[int, int]] | None = None) -> None:
        self._check(tile_id)
        if hi < lo:
            raise MappingError(f"fill: bad range [{lo}, {hi})")
        if not 0 <= rank < self.world_size:
            raise MappingError(f"fill: rank {rank} out of range")
        if not 0 <= channel < self.n_channels:
            raise MappingError(f"fill: channel {channel} out of range")
        self.fS_low[tile_id] = lo
        self.fS_high[tile_id] = hi
        self.fR[tile_id] = rank
        self.fC[tile_id] = channel
        if wait_set is not None:
            for c, _thr in wait_set:
                if not 0 <= c < self.n_channels:
                    raise MappingError(f"fill: wait-set channel {c} out of range")
            self.wait_sets[tile_id] = list(wait_set)

    def fill_all(self, lows: np.ndarray, highs: np.ndarray,
                 ranks: np.ndarray, channels: np.ndarray) -> None:
        for arr in (lows, highs, ranks, channels):
            if len(arr) != self.n_tiles:
                raise MappingError("fill_all: table length mismatch")
        self.fS_low[:] = lows
        self.fS_high[:] = highs
        self.fR[:] = ranks
        self.fC[:] = channels

    def _check(self, tile_id: int) -> None:
        if not 0 <= tile_id < self.n_tiles:
            raise MappingError(f"tile_id {tile_id} outside [0, {self.n_tiles})")

    def _filled(self, tile_id: int) -> None:
        if self.fR[tile_id] == self.UNFILLED:
            raise MappingError(
                f"dynamic mapping queried at unfilled tile {tile_id} "
                "(runtime routing has not populated the lookup tables)"
            )

    # -- queries (same protocol as AffineTileMapping) ---------------------------

    def shape_range(self, tile_id: int) -> tuple[int, int]:
        self._check(tile_id)
        self._filled(tile_id)
        return int(self.fS_low[tile_id]), int(self.fS_high[tile_id])

    def rank_of(self, tile_id: int) -> int:
        self._check(tile_id)
        self._filled(tile_id)
        return int(self.fR[tile_id])

    def channel_of(self, tile_id: int) -> int:
        self._check(tile_id)
        self._filled(tile_id)
        return int(self.fC[tile_id])

    def wait_list_for_tile(self, tile_id: int) -> list[tuple[int, int]]:
        """Channel/threshold pairs a consumer tile must wait on.

        Multi-source tiles return their full wait set; single-source tiles
        return the primary (f_C) channel with its full threshold.
        """
        self._check(tile_id)
        self._filled(tile_id)
        ws = self.wait_sets[tile_id]
        if ws is not None:
            return list(ws)
        c = self.channel_of(tile_id)
        return [(c, int(self.channel_threshold[c]))]


def build_moe_consumer_mapping(
    topk_ids: np.ndarray,
    n_experts: int,
    tokens_per_rank: int,
    world_size: int,
    block_m: int,
    channels_per_rank: int = 1,
) -> tuple[TableTileMapping, np.ndarray, np.ndarray]:
    """Runtime routing -> dynamic mapping for the AG + MoE kernel (Fig. 5).

    Tokens (already ordered rank-major in the gathered view: rank ``r``
    contributed rows ``[r * tokens_per_rank, (r+1) * tokens_per_rank)``) are
    expanded top-k ways and grouped by expert.  The grouped view is tiled
    with ``block_m`` rows per consumer tile; each (expert-aligned) tile
    learns, via the returned tables, the *source rank* whose AllGather shard
    must land before the tile may compute, and the channel that signals it.

    Returns ``(mapping, sorted_token_ids, expert_tile_offsets)`` where
    ``sorted_token_ids`` maps grouped rows back to original token indices
    (the gather the kernel fuses into the GroupGEMM), and
    ``expert_tile_offsets[e]`` is the first tile id of expert ``e``.
    """
    if topk_ids.ndim != 2:
        raise MappingError("topk_ids must be (tokens, topk)")
    n_tokens, topk = topk_ids.shape
    if n_tokens != tokens_per_rank * world_size:
        raise MappingError(
            f"topk_ids rows ({n_tokens}) != tokens_per_rank*world_size "
            f"({tokens_per_rank * world_size})"
        )
    if topk_ids.size and (topk_ids.min() < 0 or topk_ids.max() >= n_experts):
        raise MappingError("expert id out of range in topk_ids")

    flat_experts = topk_ids.reshape(-1)                  # row i*topk+j
    token_of_slot = np.arange(n_tokens).repeat(topk)      # original token per slot
    # group by expert, and *within* an expert order rows by source rank so
    # early tiles gate on early-arriving AllGather shards (this ordering is
    # what lets the grouped GEMM start before the last shard lands)
    src_of_slot = token_of_slot // max(1, tokens_per_rank)
    order = np.argsort(flat_experts * world_size + src_of_slot, kind="stable")
    sorted_token_ids = token_of_slot[order]
    sorted_experts = flat_experts[order]

    # Pad each expert group to a multiple of block_m (vLLM-style alignment)
    counts = np.bincount(flat_experts, minlength=n_experts)
    padded = np.maximum(ceil_div_vec(counts, block_m), 0) * block_m
    n_tiles = int(padded.sum() // block_m)
    expert_tile_offsets = np.zeros(n_experts + 1, dtype=np.int64)
    np.cumsum(padded // block_m, out=expert_tile_offsets[1:])

    n_channels = world_size * channels_per_rank
    mapping = TableTileMapping(max(n_tiles, 1), n_channels, world_size)
    # Channel c covers shard rows of rank c // channels_per_rank; threshold
    # counts AllGather producer tiles per channel (one producer tile per
    # block of shard rows — the producer grid must agree; see ag_moe kernel).
    shard_tiles = ceil_div(tokens_per_rank, block_m)
    per_channel_tiles = ceil_div(shard_tiles, channels_per_rank)
    for c in range(n_channels):
        in_rank = c % channels_per_rank
        lo = in_rank * per_channel_tiles
        mapping.channel_threshold[c] = max(0, min(per_channel_tiles, shard_tiles - lo))

    group_starts = np.zeros(n_experts + 1, dtype=np.int64)
    np.cumsum(counts, out=group_starts[1:])
    for e in range(n_experts):
        for t in range(int(padded[e] // block_m)):
            tile_id = int(expert_tile_offsets[e]) + t
            row_lo = t * block_m
            row_hi = min(row_lo + block_m, int(counts[e]))
            # slots of this tile within the expert's sorted group
            g0 = int(group_starts[e])
            slots = sorted_token_ids[g0 + row_lo: g0 + max(row_hi, row_lo)]
            if len(slots) == 0:
                # fully padded tile: no data dependency; rank 0 / channel of
                # rank 0, threshold satisfied trivially
                mapping.fill(tile_id, 0, 0, 0, 0)
                continue
            # every source rank contributing tokens to this tile gates it;
            # the primary f_R / f_C entries record the highest source rank,
            # and the wait set lists every covering channel with its full
            # arrival threshold
            src_ranks = np.unique(slots // tokens_per_rank)
            gate_rank = int(src_ranks.max())
            lo_g, hi_g = g0 + row_lo, g0 + row_hi
            wait_set = [
                (int(r) * channels_per_rank + c,
                 int(mapping.channel_threshold[int(r) * channels_per_rank + c]))
                for r in src_ranks
                for c in range(channels_per_rank)
            ]
            mapping.fill(tile_id, int(lo_g), int(hi_g), gate_rank,
                         gate_rank * channels_per_rank, wait_set=wait_set)
    return mapping, sorted_token_ids, expert_tile_offsets


def ceil_div_vec(a: np.ndarray, b: int) -> np.ndarray:
    """Vectorized ceil-division (numpy arrays)."""
    if b <= 0:
        raise MappingError("ceil_div_vec by non-positive divisor")
    return -(-a // b)
