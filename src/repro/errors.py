"""Exception hierarchy for the TileLink reproduction.

All library-raised exceptions derive from :class:`TileLinkError` so user code
can catch one base class.  Sub-classes are grouped by subsystem: the
simulator, the tile language frontend, the compiler backend and the runtime.
"""

from __future__ import annotations


class TileLinkError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(TileLinkError):
    """The discrete-event simulator reached an invalid state."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while processes were still blocked.

    This is how the substrate surfaces a lost-signal / missing-notify bug in
    a fused kernel: a ``consumer_tile_wait`` whose producer never notifies
    leaves its process suspended forever, and the event queue drains.
    """

    def __init__(self, message: str, blocked: list[str] | None = None):
        super().__init__(message)
        #: Names of the processes that were still blocked at drain time.
        self.blocked = blocked or []


class CompileError(TileLinkError):
    """The tile-language frontend rejected a kernel."""

    def __init__(self, message: str, lineno: int | None = None, source: str | None = None):
        loc = f" (line {lineno})" if lineno is not None else ""
        super().__init__(f"{message}{loc}")
        self.lineno = lineno
        self.source = source


class LoweringError(TileLinkError):
    """The backend could not lower a primitive (e.g. missing mapping)."""


class ConsistencyError(TileLinkError):
    """A memory-consistency violation was detected.

    Raised by the consistency checker when a schedule moves a guarded
    load/store across its acquire/release primitive (paper §4.2).
    """


class AnalysisError(TileLinkError):
    """The static synchronization analyzer rejected a kernel or plan.

    Raised at compile time (``CompileOptions(validate=True)``) when a
    structural rule fires at error severity, e.g. ``barrier_all`` under a
    rank-divergent ``If``.  ``findings`` carries the machine-readable
    :class:`repro.analyze.Finding` records behind the message.
    """

    def __init__(self, message: str, findings: list | None = None):
        super().__init__(message)
        self.findings = findings or []


class MappingError(TileLinkError):
    """A tile-centric mapping was queried outside its valid domain."""


class RuntimeLaunchError(TileLinkError):
    """Kernel launch failed (bad grid, missing symmetric tensor, ...)."""


class ShapeError(TileLinkError):
    """Tile/tensor shape mismatch detected at compile or run time."""


class ServeError(TileLinkError):
    """The serving simulator was misconfigured (unknown scenario, missing
    latency-table entry, invalid trace, ...)."""


class ObsError(TileLinkError):
    """The observability layer was misused (recorder reuse, malformed
    recording file, metric type conflict, unknown export kind, ...).

    Raised by :mod:`repro.obs` — the recorder/metrics/export subsystem —
    never by the serving hot path itself: with the recorder disabled the
    engine cannot reach any code that raises this."""


class RegistryError(TileLinkError):
    """A kernel-family registration is incomplete, duplicated, or unknown.

    Raised by :func:`repro.registry.register_family` when a family record is
    missing a required piece (the message names it), and by lookups for
    families that were never registered."""
