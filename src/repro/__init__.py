"""TileLink reproduction: tile-centric compute-communication overlap.

A faithful, simulator-backed reproduction of *TileLink: Generating
Efficient Compute-Communication Overlapping Kernels using Tile-Centric
Primitives* (MLSys 2025).  See DESIGN.md for the system inventory and
README.md for a tour.

Public entry points:

* :class:`repro.config.SimConfig` / :class:`repro.config.HardwareSpec` --
  simulated-testbed configuration (H800 node by default);
* :class:`repro.runtime.DistContext` -- the distributed job: symmetric
  heap, streams, host primitives;
* :func:`repro.lang.kernel` + ``repro.lang.tl`` -- the tile DSL and the
  nine tile-centric primitives;
* :mod:`repro.kernels` -- the overlapped kernel zoo (AG+GEMM, GEMM+RS,
  AG+MoE, MoE+RS, AG-KV+attention, full layers);
* :mod:`repro.baselines` -- cuBLAS+NCCL / Async-TP / FLUX / vLLM baselines;
* :mod:`repro.bench` -- the per-figure experiment drivers;
* :mod:`repro.tuner` -- autotuning over the decoupled design space
  (``AgGemmConfig.autotune(...)``, ``mode="auto"``, persistent cache).
"""

from repro.config import H800, A100, HardwareSpec, SimConfig
from repro.runtime.context import DistContext

__version__ = "0.1.0"

__all__ = ["A100", "DistContext", "H800", "HardwareSpec", "SimConfig",
           "__version__"]
