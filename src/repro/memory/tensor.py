"""Device-resident tensors for the simulated node.

:class:`SimTensor` pairs a shape/dtype with an owning rank and — in numeric
mode — a backing numpy array.  In timing mode (benchmarks at paper scale)
no array is materialized: shape arithmetic and byte counts still work, but
reads/writes are no-ops.  All kernels run the same instruction stream in
both modes, so tests exercise exactly the code benchmarks time.

Tile accessors use half-open element ranges per dimension and clamp to the
tensor bounds (ragged edge tiles), mirroring Triton's masked loads/stores.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

#: Accepted dtype aliases -> numpy dtype.
_DTYPES = {
    "float16": np.float16,
    "float32": np.float32,
    "int32": np.int32,
    "int64": np.int64,
}


def resolve_dtype(dtype: str | np.dtype | type) -> np.dtype:
    if isinstance(dtype, str):
        if dtype not in _DTYPES:
            raise ShapeError(f"unsupported dtype {dtype!r}")
        return np.dtype(_DTYPES[dtype])
    return np.dtype(dtype)


class SimTensor:
    """An n-d tensor living on one simulated rank."""

    __slots__ = ("name", "shape", "dtype", "rank", "data")

    def __init__(self, name: str, shape: tuple[int, ...], dtype: str | np.dtype,
                 rank: int, data: np.ndarray | None = None):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise ShapeError(f"negative dimension in shape {shape}")
        self.dtype = resolve_dtype(dtype)
        self.rank = rank
        if data is not None:
            if tuple(data.shape) != self.shape:
                raise ShapeError(
                    f"backing array shape {data.shape} != tensor shape {self.shape}"
                )
            data = np.ascontiguousarray(data, dtype=self.dtype)
        self.data = data

    # -- constructors ----------------------------------------------------------

    @classmethod
    def zeros(cls, name: str, shape: tuple[int, ...], dtype: str | np.dtype,
              rank: int, materialize: bool = True) -> "SimTensor":
        data = np.zeros(shape, dtype=resolve_dtype(dtype)) if materialize else None
        return cls(name, shape, dtype, rank, data)

    @classmethod
    def from_array(cls, name: str, array: np.ndarray, rank: int) -> "SimTensor":
        return cls(name, tuple(array.shape), array.dtype, rank, array)

    # -- metadata ----------------------------------------------------------------

    @property
    def materialized(self) -> bool:
        return self.data is not None

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mat = "" if self.materialized else " (timing-only)"
        return f"<SimTensor {self.name} {self.shape} {self.dtype} rank={self.rank}{mat}>"

    # -- tile access -----------------------------------------------------------

    def _slices(self, ranges: tuple[tuple[int, int], ...]) -> tuple[slice, ...]:
        if len(ranges) != len(self.shape):
            raise ShapeError(
                f"{self.name}: got {len(ranges)} ranges for {len(self.shape)}-d tensor"
            )
        out = []
        for (lo, hi), dim in zip(ranges, self.shape):
            if lo < 0 or hi < lo:
                raise ShapeError(f"{self.name}: bad range [{lo}, {hi})")
            out.append(slice(min(lo, dim), min(hi, dim)))
        return tuple(out)

    def tile_bytes(self, ranges: tuple[tuple[int, int], ...]) -> int:
        """Bytes actually covered by a (clamped) tile."""
        slices = self._slices(ranges)
        n = 1
        for sl in slices:
            n *= max(0, sl.stop - sl.start)
        return n * self.itemsize

    def read_tile(self, ranges: tuple[tuple[int, int], ...]) -> np.ndarray | None:
        """Copy out a tile (None in timing mode)."""
        if self.data is None:
            return None
        return self.data[self._slices(ranges)].copy()

    def write_tile(self, ranges: tuple[tuple[int, int], ...],
                   value: np.ndarray | None) -> None:
        """Write a tile; silently no-ops in timing mode."""
        if self.data is None:
            return
        if value is None:
            raise ShapeError(f"{self.name}: writing None tile in numeric mode")
        slices = self._slices(ranges)
        region = self.data[slices]
        self.data[slices] = np.asarray(value, dtype=self.dtype)[
            tuple(slice(0, s.stop - s.start) for s in slices)
        ] if value.shape != region.shape else value.astype(self.dtype, copy=False)

    def accumulate_tile(self, ranges: tuple[tuple[int, int], ...],
                        value: np.ndarray | None) -> None:
        """Add into a tile (reduction epilogues); no-op in timing mode."""
        if self.data is None:
            return
        if value is None:
            raise ShapeError(f"{self.name}: accumulating None tile in numeric mode")
        slices = self._slices(ranges)
        region = self.data[slices]
        add = np.asarray(value)
        if add.shape != region.shape:
            add = add[tuple(slice(0, s.stop - s.start) for s in slices)]
        self.data[slices] = (region.astype(np.float32) + add.astype(np.float32)
                             ).astype(self.dtype)

    def numpy(self) -> np.ndarray:
        """The full backing array (raises in timing mode)."""
        if self.data is None:
            raise ShapeError(f"{self.name} is timing-only; no data to return")
        return self.data
