"""Signal cells: the device-side barriers behind TileLink's primitives.

A :class:`SignalArray` is a bank of monotonically-increasing counters living
in one rank's memory (the paper's "channels": each rank owns ``C`` barriers
— §4.1).  The two operations mirror the PTX the paper lowers to:

* :meth:`SignalArray.post_add` — ``red.release.sys.global.add``: fire and
  forget.  The issuing SM continues immediately; the increment lands after
  the (local or remote) atomic latency, and release semantics are honoured
  because callers only post *after* their data-producing instructions have
  been applied (the compiler's consistency pass enforces that ordering).

* :meth:`SignalArray.wait_geq` — a ``ld.global.acquire`` spin loop: the
  caller suspends until the counter reaches a threshold; satisfied waits
  cost one poll interval, unsatisfied waits wake when the matching post
  lands.

Deadlocks from lost notifies surface as :class:`repro.errors.DeadlockError`
when the event queue drains with waiters still parked.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.costmodel import CostModel
from repro.sim.engine import Awaitable, Process, Simulator, Timeout


class _WaitGeq(Awaitable):
    __slots__ = ("array", "index", "threshold")

    def __init__(self, array: "SignalArray", index: int, threshold: int):
        self.array = array
        self.index = index
        self.threshold = threshold

    def arm(self, sim: Simulator, proc: Process) -> None:
        self.array._arm_wait(sim, proc, self.index, self.threshold)


class SignalArray:
    """A bank of signal counters owned by one rank."""

    def __init__(self, sim: Simulator, cost: CostModel, rank: int, n: int,
                 name: str = "signals"):
        if n < 1:
            raise SimulationError(f"signal array {name!r} needs >= 1 cells")
        self.sim = sim
        self.cost = cost
        self.rank = rank
        self.name = name
        self.values = np.zeros(n, dtype=np.int64)
        self._waiters: dict[int, list[tuple[int, Process]]] = {}
        #: Count of posts, for tests/ablations.
        self.posts = 0

    def __len__(self) -> int:
        return len(self.values)

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self.values):
            raise SimulationError(
                f"signal index {index} out of range for {self.name!r} "
                f"(n={len(self.values)})"
            )

    # -- producer side -----------------------------------------------------------

    def post_add(self, index: int, amount: int, from_rank: int) -> None:
        """Fire-and-forget atomic add with release semantics.

        The increment becomes visible after the atomic latency (remote if
        the poster is on a different rank than the array's owner).
        """
        self._check(index)
        if amount < 1:
            raise SimulationError("signal increments must be positive")
        latency = self.cost.atomic_latency(remote=(from_rank != self.rank))
        self.posts += 1

        def apply() -> None:
            self.values[index] += amount
            self._wake(index)

        self.sim.call_later(latency, apply)

    def post_set(self, index: int, value: int, from_rank: int) -> None:
        """Fire-and-forget atomic max-set (used by host-side rank_notify)."""
        self._check(index)
        latency = self.cost.atomic_latency(remote=(from_rank != self.rank))
        self.posts += 1

        def apply() -> None:
            self.values[index] = max(self.values[index], value)
            self._wake(index)

        self.sim.call_later(latency, apply)

    # -- consumer side ---------------------------------------------------------

    def read(self, index: int) -> int:
        self._check(index)
        return int(self.values[index])

    def wait_geq(self, index: int, threshold: int) -> Awaitable:
        """Awaitable: resumes once ``values[index] >= threshold``.

        An already-satisfied wait still costs one poll interval (the acquire
        load), matching a single spin iteration on hardware.
        """
        self._check(index)
        if self.values[index] >= threshold:
            return Timeout(self.cost.spin_wait_quantum())
        return _WaitGeq(self, index, threshold)

    def _arm_wait(self, sim: Simulator, proc: Process, index: int,
                  threshold: int) -> None:
        if self.values[index] >= threshold:  # raced with a post
            sim.schedule(self.cost.spin_wait_quantum(), proc, None)
            return
        self._waiters.setdefault(index, []).append((threshold, proc))

    def _wake(self, index: int) -> None:
        waiters = self._waiters.get(index)
        if not waiters:
            return
        still_blocked = []
        current = self.values[index]
        for threshold, proc in waiters:
            if current >= threshold:
                # One poll interval to observe the new value.
                self.sim.schedule(self.cost.spin_wait_quantum(), proc, None)
            else:
                still_blocked.append((threshold, proc))
        if still_blocked:
            self._waiters[index] = still_blocked
        else:
            del self._waiters[index]

    @property
    def blocked_waiters(self) -> int:
        return sum(len(ws) for ws in self._waiters.values())

    def reset(self) -> None:
        """Zero all counters (between layer invocations)."""
        if self.blocked_waiters:
            raise SimulationError(
                f"cannot reset {self.name!r} with {self.blocked_waiters} blocked waiters"
            )
        self.values[:] = 0
