"""Memory substrate: device tensors, NVSHMEM-like symmetric heap, signals."""

from repro.memory.tensor import SimTensor
from repro.memory.signals import SignalArray
from repro.memory.symmetric import SymmetricHeap

__all__ = ["SimTensor", "SignalArray", "SymmetricHeap"]
