"""NVSHMEM-like symmetric heap across the simulated ranks.

The paper's runtime allocates tensors and barriers in NVSHMEM symmetric
memory so any rank can address a peer's buffer by (symbol, rank) — Figure 7
("NVSHMEM init / Alloc SHMEM / ... / Free SHMEM").  :class:`SymmetricHeap`
reproduces that contract: :meth:`alloc` creates one identically-shaped
tensor per rank under a shared name; remote puts/gets move tile payloads
over the interconnect and apply them at arrival time, so an unguarded read
of a peer buffer observes stale data exactly like real hardware would.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RuntimeLaunchError, ShapeError
from repro.memory.signals import SignalArray
from repro.memory.tensor import SimTensor, resolve_dtype
from repro.sim.engine import Awaitable, Timeout
from repro.sim.machine import Machine

Ranges = tuple[tuple[int, int], ...]


class SymmetricHeap:
    """Per-name, per-rank tensor and signal allocations."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self._tensors: dict[str, list[SimTensor]] = {}
        self._signals: dict[str, list[SignalArray]] = {}

    # -- allocation ---------------------------------------------------------------

    def alloc(self, name: str, shape: tuple[int, ...], dtype: str | np.dtype,
              fill: float | None = 0.0) -> list[SimTensor]:
        """Allocate a symmetric tensor: one instance per rank.

        ``fill=None`` leaves numeric-mode data uninitialised garbage
        (uniform noise) to make missing-synchronization bugs observable.
        """
        if name in self._tensors:
            raise RuntimeLaunchError(f"symmetric tensor {name!r} already allocated")
        materialize = self.machine.config.execute_numerics
        tensors = []
        rng = np.random.default_rng(self.machine.config.seed ^ hash(name) & 0xFFFF)
        for rank in range(self.machine.world_size):
            if not materialize:
                t = SimTensor(name, shape, dtype, rank, data=None)
            elif fill is None:
                noise = rng.standard_normal(shape).astype(resolve_dtype(dtype))
                t = SimTensor(name, shape, dtype, rank, data=noise)
            else:
                data = np.full(shape, fill, dtype=resolve_dtype(dtype))
                t = SimTensor(name, shape, dtype, rank, data=data)
            tensors.append(t)
        self._tensors[name] = tensors
        return tensors

    def bind(self, name: str, per_rank_arrays: list[np.ndarray]) -> list[SimTensor]:
        """Allocate a symmetric tensor initialised from per-rank arrays."""
        if name in self._tensors:
            raise RuntimeLaunchError(f"symmetric tensor {name!r} already allocated")
        if len(per_rank_arrays) != self.machine.world_size:
            raise RuntimeLaunchError(
                f"bind({name!r}) needs {self.machine.world_size} arrays, "
                f"got {len(per_rank_arrays)}"
            )
        shape = tuple(per_rank_arrays[0].shape)
        for a in per_rank_arrays:
            if tuple(a.shape) != shape:
                raise ShapeError(f"bind({name!r}): ragged per-rank shapes")
        materialize = self.machine.config.execute_numerics
        tensors = [
            SimTensor(name, shape, per_rank_arrays[r].dtype, r,
                      data=per_rank_arrays[r].copy() if materialize else None)
            for r in range(self.machine.world_size)
        ]
        self._tensors[name] = tensors
        return tensors

    def alloc_signals(self, name: str, n: int) -> list[SignalArray]:
        """Allocate a symmetric bank of ``n`` signal cells per rank."""
        if name in self._signals:
            raise RuntimeLaunchError(f"signal bank {name!r} already allocated")
        banks = [
            SignalArray(self.machine.sim, self.machine.cost, rank, n,
                        name=f"{name}[{rank}]")
            for rank in range(self.machine.world_size)
        ]
        self._signals[name] = banks
        return banks

    def free(self, name: str) -> None:
        self._tensors.pop(name, None)
        self._signals.pop(name, None)

    # -- lookup -------------------------------------------------------------------

    def tensor(self, name: str, rank: int) -> SimTensor:
        try:
            return self._tensors[name][rank]
        except KeyError:
            raise RuntimeLaunchError(f"no symmetric tensor named {name!r}") from None

    def tensors(self, name: str) -> list[SimTensor]:
        try:
            return self._tensors[name]
        except KeyError:
            raise RuntimeLaunchError(f"no symmetric tensor named {name!r}") from None

    def signals(self, name: str, rank: int) -> SignalArray:
        try:
            return self._signals[name][rank]
        except KeyError:
            raise RuntimeLaunchError(f"no signal bank named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._tensors)

    # -- remote data movement -------------------------------------------------------

    def put_tile(self, name: str, src_rank: int, dst_rank: int,
                 src_ranges: Ranges, dst_ranges: Ranges,
                 protocol: str = "p2p",
                 src_name: str | None = None) -> Awaitable:
        """Push a tile from ``src_rank``'s buffer into ``dst_rank``'s buffer.

        Returns an awaitable that completes at data-arrival time; the numpy
        effect is applied *at arrival*, not at issue, so unsynchronized
        remote reads see stale data (this is what the memory-consistency
        tests rely on).
        """
        src = self.tensor(src_name or name, src_rank)
        dst = self.tensor(name, dst_rank)
        nbytes = src.tile_bytes(src_ranges)
        payload = src.read_tile(src_ranges)
        _start, arrival = self.machine.interconnect.reserve(
            src_rank, dst_rank, nbytes, protocol)
        delay = max(0.0, arrival - self.machine.sim.now)

        if payload is not None or not self.machine.config.execute_numerics:
            def apply() -> None:
                dst.write_tile(dst_ranges, payload)
            self.machine.sim.call_later(delay, apply)
        if self.machine.config.trace:
            self.machine.record(src_rank, "comm", f"put:{name}",
                                self.machine.sim.now, arrival)
        return Timeout(delay)

    def get_tile(self, name: str, src_rank: int, dst_rank: int,
                 src_ranges: Ranges, dst_ranges: Ranges,
                 protocol: str = "p2p",
                 dst_name: str | None = None) -> Awaitable:
        """Pull a tile from a peer into the local buffer (pull mode).

        The payload is snapshotted at *issue* time on the source — a pull
        that races an unsynchronized producer reads whatever was there.
        """
        src = self.tensor(name, src_rank)
        dst = self.tensor(dst_name or name, dst_rank)
        nbytes = src.tile_bytes(src_ranges)
        payload = src.read_tile(src_ranges)
        _start, arrival = self.machine.interconnect.reserve(
            src_rank, dst_rank, nbytes, protocol)
        delay = max(0.0, arrival - self.machine.sim.now)

        if payload is not None or not self.machine.config.execute_numerics:
            def apply() -> None:
                dst.write_tile(dst_ranges, payload)
            self.machine.sim.call_later(delay, apply)
        if self.machine.config.trace:
            self.machine.record(dst_rank, "comm", f"get:{name}",
                                self.machine.sim.now, arrival)
        return Timeout(delay)
