"""The ``tl`` namespace: what kernel authors call inside ``@kernel`` bodies.

These functions are *markers*: the AST frontend recognizes them by name and
translates calls into IR nodes.  Calling them outside a kernel raises, with
one exception — the pure scalar helpers (:func:`cdiv`, :func:`minimum`,
:func:`maximum`) also work as plain Python so reference implementations can
share code with kernels.

Vocabulary (mirrors Triton plus the paper's Table 3 primitives):

======================  =====================================================
tile creation           ``zeros(shape, dtype)``, ``full(shape, value, dtype)``
memory                  ``load(t, rows, cols)``, ``store(t, rows, cols, v)``,
                        ``load_vec(t, span)``, ``store_vec(t, span, v)``,
                        ``gather_rows(t, idx, cols)``, ``atomic_add(t, rows,
                        cols, v)``
math                    ``dot(a, b, acc=None)``, ``exp``, ``log``, ``silu``,
                        ``gelu``, ``relu``, ``cast``, ``expand_dims``,
                        ``row_max``, ``row_sum``, ``maximum_tile``
scalars                 ``block_id()``, ``num_blocks()``, ``cdiv``,
                        ``minimum``, ``maximum``
signal primitives       ``producer_tile_notify``, ``consumer_tile_wait``,
                        ``peer_tile_notify``, ``peer_tile_wait``
data primitives         ``tile_push_data``, ``tile_pull_data``
misc                    ``barrier_all()``
======================  =====================================================

The host-side primitives of Table 3 (``rank_notify``, ``rank_wait``,
``rank_copy_data``) are methods on :class:`repro.runtime.context.DistContext`
— they drive copy engines and streams from the CPU, not from inside kernels.
"""

from __future__ import annotations

from typing import Any


class constexpr:  # noqa: N801 - mirrors triton.language.constexpr
    """Annotation marking a kernel parameter as a compile-time constant."""


def _kernel_only(name: str) -> Any:
    raise RuntimeError(
        f"tl.{name} is only meaningful inside an @kernel-decorated function; "
        "the frontend compiles it to IR"
    )


# -- scalar helpers (usable both inside and outside kernels) -----------------


def cdiv(a: int, b: int) -> int:
    """Ceiling division."""
    return -(-a // b)


def minimum(a, b):
    return a if a < b else b


def maximum(a, b):
    return a if a > b else b


# -- markers ------------------------------------------------------------------

#: tile-producing tl functions: name -> produces a value
TILE_FNS = {
    "zeros", "full", "load", "load_vec", "gather_rows", "dot", "exp", "log",
    "silu", "gelu", "relu", "cast", "expand_dims", "row_max", "row_sum",
    "maximum_tile", "minimum_tile",
}

#: tl functions producing a *scalar* read from memory (dynamic tables)
SCALAR_LOAD_FNS = {"load_scalar"}

#: effect-only tl functions (no value produced)
EFFECT_FNS = {"store", "store_vec", "atomic_add", "scatter_add_rows"}

#: scalar tl functions usable in scalar expressions
SCALAR_FNS = {"block_id", "num_blocks", "cdiv", "minimum", "maximum"}

#: TileLink device-side primitives (Table 3); True if they produce a value
PRIMITIVES = {
    "producer_tile_notify": False,
    "consumer_tile_wait": False,
    "peer_tile_notify": False,
    "peer_tile_wait": False,
    "tile_push_data": False,
    "tile_pull_data": True,
    "barrier_all": False,
}


def __getattr__(name: str) -> Any:
    """Any marker used at plain-Python runtime raises with a clear message."""
    if name in TILE_FNS or name in EFFECT_FNS or name in PRIMITIVES or name in (
        "block_id", "num_blocks",
    ):
        return lambda *a, **k: _kernel_only(name)
    raise AttributeError(f"module 'tl' has no attribute {name!r}")
