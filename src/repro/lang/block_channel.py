"""The BlockChannel special kernel argument (paper Figure 7).

``BlockChannel`` encapsulates the distributed mapping metadata a fused
kernel needs: process rank, world size, barrier configuration,
producer/consumer block relationships and the tile-centric mapping used to
resolve primitives.  The backend "decomposes" it during compilation /
interpretation: scalar fields feed ``channel.<field>`` reads, mappings feed
primitive lowering, and the signal banks are the physical barriers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import LoweringError
from repro.mapping.dynamic import TableTileMapping
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping
from repro.memory.signals import SignalArray

Mapping = Union[AffineTileMapping, TableTileMapping]


@dataclass
class BlockChannel:
    """Distributed metadata + barriers for one rank's kernel launch."""

    rank: int
    num_ranks: int
    #: blocks of the launch grid assigned to the communication part
    comm_blocks: int
    #: producer (communication) tile grid over the mapped tensor
    comm_grid: TileGrid | None = None
    #: consumer (computation) tile grid over the same index space
    consumer_grid: TileGrid | None = None
    #: tile-centric mapping along the sharded dimension
    producer_mapping: Mapping | None = None
    #: this rank's producer->consumer barrier bank
    barriers: SignalArray | None = None
    #: every rank's producer->consumer bank (remote notifies)
    all_barriers: list[SignalArray] = field(default_factory=list)
    #: per-tile peer barrier banks (ring/peer signalling), one per rank
    all_peer_barriers: list[SignalArray] = field(default_factory=list)
    #: notifies required before one channel counts as ready (static default)
    producer_threshold: int = 1
    #: where p2p notifies land: "local" (pull-style kernels: producer and
    #: consumer share a rank) or "mapped" (push-style: f_R names the target)
    notify_target: str = "local"
    #: dynamic consumer-side mapping (MoE); producer side stays static
    consumer_mapping: TableTileMapping | None = None
    #: multiplies static wait thresholds when producer tiles span several
    #: column tiles per channel row (each (m, n) tile notifies once)
    threshold_scale: int = 1
    #: dynamic per-(tile, channel) notify amounts: a "broadcast" notify of
    #: tile t posts notify_counts[t][c] to each local channel c (used by the
    #: MoE scatter/topk-reduce chain, where one grouped tile contributes
    #: rows to several token segments)
    notify_counts: "object | None" = None

    # -- derived metadata (exposed to kernels as channel.<field>) ----------------

    @property
    def num_barriers(self) -> int:
        return len(self.barriers) if self.barriers is not None else 0

    @property
    def num_producer_blocks(self) -> int:
        return self.comm_grid.n_tiles if self.comm_grid is not None else 0

    @property
    def num_consumer_blocks(self) -> int:
        return self.consumer_grid.n_tiles if self.consumer_grid is not None else 0

    def scalar_field(self, name: str) -> int:
        """Resolve a ``channel.<name>`` read inside a kernel."""
        try:
            value = getattr(self, name)
        except AttributeError:
            raise LoweringError(f"BlockChannel has no field {name!r}") from None
        if not isinstance(value, int):
            raise LoweringError(f"BlockChannel field {name!r} is not scalar")
        return value

    # -- primitive resolution -----------------------------------------------------

    def require_mapping(self) -> Mapping:
        if self.producer_mapping is None:
            raise LoweringError(
                "kernel uses tile-centric primitives but the BlockChannel "
                "carries no producer mapping"
            )
        return self.producer_mapping

    @property
    def is_dynamic(self) -> bool:
        return isinstance(self.producer_mapping, TableTileMapping)

    def consumer_wait_list(self, consumer_tid_m: int) -> list[tuple[int, int]]:
        """(channel, threshold) pairs a consumer row-tile must wait on."""
        if self.consumer_mapping is not None:
            return self.consumer_mapping.wait_list_for_tile(consumer_tid_m)
        mapping = self.require_mapping()
        if isinstance(mapping, TableTileMapping):
            return mapping.wait_list_for_tile(consumer_tid_m)
        if self.consumer_grid is None:
            raise LoweringError("consumer_tile_wait needs a consumer grid")
        lo, hi = self.consumer_grid.row_range(consumer_tid_m)
        return [(c, t * self.threshold_scale) for c, t in mapping.wait_list(lo, hi)]

    def producer_channel(self, producer_tile_id: int) -> int:
        return self.require_mapping().channel_of(producer_tile_id)

    def producer_rank(self, producer_tile_id: int) -> int:
        return self.require_mapping().rank_of(producer_tile_id)

    def producer_range(self, producer_tile_id: int) -> tuple[int, int]:
        return self.require_mapping().shape_range(producer_tile_id)
