"""The ``@kernel`` decorator: source -> cached IR handle.

A :class:`KernelDef` is what users launch through the runtime::

    from repro.lang import kernel
    from repro.lang import tl

    @kernel
    def my_gemm(a, b, c, M: tl.constexpr, N: tl.constexpr, K: tl.constexpr,
                BLOCK: tl.constexpr):
        ...

Compilation (frontend + backend passes) happens lazily per distinct
constexpr binding and is cached, mirroring Triton's JIT specialization.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import CompileError
from repro.lang.frontend import compile_function
from repro.lang.ir import KernelIR

#: re-exported for annotations: ``M: constexpr``
from repro.lang.tl import constexpr  # noqa: F401


class KernelDef:
    """A tile-language kernel: parsed lazily, specialized per constexprs."""

    def __init__(self, fn: Callable):
        self.fn = fn
        self.name = fn.__name__
        self.__doc__ = fn.__doc__
        self._ir: KernelIR | None = None
        #: compiled-program cache, keyed by frozen constexpr items
        self._programs: dict[tuple, Any] = {}
        #: analyzer annotations (role, comm axis, output params) — kernel
        #: modules populate this after definition; repro.analyze reads it
        self.meta: dict[str, Any] = {}

    @property
    def ir(self) -> KernelIR:
        if self._ir is None:
            self._ir = compile_function(self.fn)
        return self._ir

    def specialization_key(self, constexprs: dict[str, Any]) -> tuple:
        ir = self.ir
        missing = [p for p in ir.constexpr_params if p not in constexprs]
        if missing:
            raise CompileError(
                f"kernel {self.name!r} missing constexpr bindings: {missing}")
        return tuple((k, constexprs[k]) for k in ir.constexpr_params)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        raise CompileError(
            f"kernel {self.name!r} cannot be called directly; launch it via "
            "repro.runtime.launch_kernel(...)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelDef {self.name}>"


def kernel(fn: Callable) -> KernelDef:
    """Decorator turning a Python function into a tile-language kernel."""
    return KernelDef(fn)
