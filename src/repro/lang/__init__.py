"""TileLink's tile language: a Python-AST-compiled tile DSL.

Kernels are plain Python functions decorated with :func:`repro.lang.dsl.kernel`
that combine Triton-style tile operations (``tl.load``, ``tl.dot``,
``tl.store``) with TileLink's nine tile-centric primitives (Table 3 of the
paper).  The frontend (:mod:`repro.lang.frontend`) parses the function
source into a structured tile IR (:mod:`repro.lang.ir`); the backend passes
live in :mod:`repro.compiler`.
"""

from repro.lang.block_channel import BlockChannel
from repro.lang.dsl import KernelDef, constexpr, kernel

__all__ = ["BlockChannel", "KernelDef", "constexpr", "kernel"]
