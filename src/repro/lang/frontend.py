"""AST frontend: Python kernel source -> tile IR.

Mirrors the paper's compilation flow (Figure 7): the decorated function's
source is parsed with :mod:`ast`; tile operations and TileLink primitives
are recognized as ``tl.*`` calls and translated into
:class:`repro.lang.ir.KernelIR`.

Supported Python subset (anything else raises :class:`CompileError` with
the offending line):

* assignments to simple names (tuples of scalars allowed), ``+=`` etc.;
* ``for`` over ``range(...)`` with scalar bounds;
* ``if``/``elif``/``else`` on scalar conditions; bare ``return``;
* scalar arithmetic (``+ - * / // % **`` comparisons, ``and``/``or``);
* ``tl.*`` tile ops and primitives; tensor params indexed by rank
  (``buffers[to_rank]``); ``channel.<field>`` metadata reads.

Names are *category-stable*: a name that ever holds a tile may not be
reused as a scalar (and vice versa) — the same restriction Triton imposes.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable

from repro.errors import CompileError
from repro.lang import tl as tl_mod
from repro.lang.ir import (
    AssignScalar,
    BinOp,
    ChannelField,
    Const,
    Expr,
    For,
    If,
    KernelIR,
    Name,
    Primitive,
    Return,
    Stmt,
    TensorRef,
    TileOp,
    UnaryOp,
    inherit_linenos,
)

_BINOPS: dict[type, str] = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.Div: "/", ast.Pow: "**",
}
_CMPOPS: dict[type, str] = {
    ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
    ast.Eq: "==", ast.NotEq: "!=",
}
_TILE_BINOPS: dict[type, str] = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div",
}

#: BlockChannel fields kernels may read (paper Fig. 7's special argument).
CHANNEL_FIELDS = {
    "rank", "num_ranks", "num_barriers", "num_producer_blocks",
    "num_consumer_blocks", "producer_threshold", "comm_blocks",
}


def compile_function(fn: Callable) -> KernelIR:
    """Parse and translate a kernel function into IR."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise CompileError(f"cannot fetch source of {fn!r}: {exc}") from exc
    tree = ast.parse(source)
    fdefs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(fdefs) != 1:
        raise CompileError("expected exactly one function definition")
    return _Translator(fdefs[0], source).translate()


class _Translator:
    def __init__(self, fdef: ast.FunctionDef, source: str):
        self.fdef = fdef
        self.source = source
        self.params: list[str] = []
        self.constexpr_params: list[str] = []
        self.channel_param: str | None = None
        self.tile_vars: set[str] = set()
        self.scalar_vars: set[str] = set()
        self._tmp = 0

    # -- helpers ---------------------------------------------------------------

    def err(self, msg: str, node: ast.AST | None = None) -> CompileError:
        lineno = getattr(node, "lineno", None)
        return CompileError(msg, lineno=lineno, source=self.source)

    def fresh(self) -> str:
        self._tmp += 1
        return f"%t{self._tmp}"

    def mark_tile(self, name: str, node: ast.AST) -> None:
        if name in self.scalar_vars:
            raise self.err(f"name {name!r} used as both scalar and tile", node)
        self.tile_vars.add(name)

    def mark_scalar(self, name: str, node: ast.AST) -> None:
        if name in self.tile_vars:
            raise self.err(f"name {name!r} used as both scalar and tile", node)
        self.scalar_vars.add(name)

    # -- signature --------------------------------------------------------------

    def translate(self) -> KernelIR:
        args = self.fdef.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise self.err("kernels take simple positional parameters only",
                           self.fdef)
        for a in args.args:
            self.params.append(a.arg)
            ann = a.annotation
            label = self._annotation_label(ann)
            if label == "constexpr":
                self.constexpr_params.append(a.arg)
                self.mark_scalar(a.arg, a)
            elif label == "BlockChannel":
                if self.channel_param is not None:
                    raise self.err("only one BlockChannel parameter allowed", a)
                self.channel_param = a.arg
        body = self.block(self.fdef.body)
        # backstop: synthesized nodes inherit the nearest preceding line so
        # verifier/analyzer findings never point at "line 0"
        inherit_linenos(body, default=self.fdef.lineno)
        return KernelIR(
            name=self.fdef.name,
            params=self.params,
            constexpr_params=self.constexpr_params,
            channel_param=self.channel_param,
            body=body,
            source=self.source,
        )

    @staticmethod
    def _annotation_label(ann: ast.expr | None) -> str | None:
        if ann is None:
            return None
        if isinstance(ann, ast.Attribute):
            return ann.attr
        if isinstance(ann, ast.Name):
            return ann.id
        return None

    # -- statements --------------------------------------------------------------

    def block(self, stmts: list[ast.stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for node in stmts:
            out.extend(self.stmt(node))
        return out

    def stmt(self, node: ast.stmt) -> list[Stmt]:
        if isinstance(node, ast.Assign):
            return self._assign(node)
        if isinstance(node, ast.AugAssign):
            return self._aug_assign(node)
        if isinstance(node, ast.Expr):
            return self._expr_stmt(node)
        if isinstance(node, ast.For):
            return self._for(node)
        if isinstance(node, ast.If):
            return self._if(node)
        if isinstance(node, ast.Return):
            if node.value is not None:
                raise self.err("kernels cannot return values", node)
            return [Return(lineno=node.lineno)]
        if isinstance(node, ast.Pass):
            return []
        if isinstance(node, (ast.Expr, ast.AnnAssign)):
            raise self.err("unsupported statement", node)
        raise self.err(f"unsupported statement {type(node).__name__}", node)

    def _assign(self, node: ast.Assign) -> list[Stmt]:
        if len(node.targets) != 1:
            raise self.err("chained assignment unsupported", node)
        target = node.targets[0]
        if isinstance(target, ast.Tuple):
            if not isinstance(node.value, ast.Tuple) or \
                    len(target.elts) != len(node.value.elts):
                raise self.err("tuple assignment needs matching tuple of "
                               "scalar expressions", node)
            out: list[Stmt] = []
            for t, v in zip(target.elts, node.value.elts):
                if not isinstance(t, ast.Name):
                    raise self.err("tuple targets must be names", node)
                self.mark_scalar(t.id, node)
                out.append(AssignScalar(t.id, self.scalar(v),
                                        lineno=node.lineno))
            return out
        if not isinstance(target, ast.Name):
            raise self.err("assignment target must be a simple name", node)
        name = target.id
        # scalar loads from memory (dynamic-mapping tables): tl.load_scalar
        if isinstance(node.value, ast.Call) and \
                self._tl_name(node.value) in tl_mod.SCALAR_LOAD_FNS:
            stmts, op = self._tile_call(node.value,
                                        self._tl_name(node.value),
                                        target=name)
            self.mark_scalar(name, node)
            return stmts + [op]
        if self._is_tile_expr(node.value):
            stmts, _ = self.tile(node.value, target=name)
            self.mark_tile(name, node)
            return stmts
        self.mark_scalar(name, node)
        return [AssignScalar(name, self.scalar(node.value),
                             lineno=node.lineno)]

    def _aug_assign(self, node: ast.AugAssign) -> list[Stmt]:
        if not isinstance(node.target, ast.Name):
            raise self.err("augmented target must be a simple name", node)
        name = node.target.id
        opcls = type(node.op)
        if name in self.tile_vars:
            # fused accumulate: acc += tl.dot(a, b) lowers into dot's acc slot
            if opcls is ast.Add and self._is_tl_call(node.value, "dot"):
                stmts, _ = self.tile(node.value, target=name, dot_acc=name)
                return stmts
            if opcls not in _TILE_BINOPS:
                raise self.err("unsupported tile augmented op", node)
            rhs_stmts, rhs = self._tile_operand(node.value)
            op = TileOp(_TILE_BINOPS[opcls], target=name, args=(name, rhs),
                        lineno=node.lineno)
            return rhs_stmts + [op]
        if opcls not in _BINOPS:
            raise self.err("unsupported scalar augmented op", node)
        self.mark_scalar(name, node)
        return [AssignScalar(name, BinOp(_BINOPS[opcls], Name(name),
                                         self.scalar(node.value)),
                             lineno=node.lineno)]

    def _expr_stmt(self, node: ast.Expr) -> list[Stmt]:
        call = node.value
        if isinstance(call, ast.Constant) and isinstance(call.value, str):
            return []  # docstring
        if not isinstance(call, ast.Call):
            raise self.err("bare expressions must be tl calls", node)
        fname = self._tl_name(call)
        if fname is None:
            raise self.err("only tl.* calls allowed as statements", node)
        if fname in tl_mod.PRIMITIVES:
            return self._primitive(call, fname, target=None)
        if fname in tl_mod.EFFECT_FNS:
            stmts, op = self._tile_call(call, fname, target=None)
            return stmts + [op]
        raise self.err(f"tl.{fname} produces a value; assign it", node)

    def _for(self, node: ast.For) -> list[Stmt]:
        if node.orelse:
            raise self.err("for/else unsupported", node)
        if not isinstance(node.target, ast.Name):
            raise self.err("loop variable must be a simple name", node)
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range"):
            raise self.err("for loops must iterate over range(...)", node)
        bounds = [self.scalar(a) for a in it.args]
        if len(bounds) == 1:
            start, stop, step = Const(0), bounds[0], Const(1)
        elif len(bounds) == 2:
            start, stop, step = bounds[0], bounds[1], Const(1)
        elif len(bounds) == 3:
            start, stop, step = bounds
        else:
            raise self.err("range() takes 1-3 arguments", node)
        self.mark_scalar(node.target.id, node)
        body = self.block(node.body)
        return [For(node.target.id, start, stop, step, body, lineno=node.lineno)]

    def _if(self, node: ast.If) -> list[Stmt]:
        cond = self.scalar(node.test)
        then = self.block(node.body)
        orelse = self.block(node.orelse) if node.orelse else []
        return [If(cond, then, orelse, lineno=node.lineno)]

    # -- tl call plumbing -------------------------------------------------------

    def _tl_name(self, call: ast.Call) -> str | None:
        f = call.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) \
                and f.value.id == "tl":
            return f.attr
        return None

    def _is_tl_call(self, node: ast.expr, name: str) -> bool:
        return isinstance(node, ast.Call) and self._tl_name(node) == name

    def _primitive(self, call: ast.Call, fname: str,
                   target: str | None) -> list[Stmt]:
        stmts: list[Stmt] = []
        args: list[Any] = []
        for a in call.args:
            stmts_a, val = self._any_operand(a)
            stmts.extend(stmts_a)
            args.append(val)
        kwargs: dict[str, Any] = {}
        for kw in call.keywords:
            if kw.arg is None:
                raise self.err("**kwargs unsupported", call)
            stmts_k, val = self._any_operand(kw.value)
            stmts.extend(stmts_k)
            kwargs[kw.arg] = val
        prim = Primitive(fname, tuple(args), kwargs, target=target,
                         lineno=call.lineno)
        stmts.append(prim)
        return stmts

    def _tile_call(self, call: ast.Call, fname: str,
                   target: str | None, dot_acc: str | None = None
                   ) -> tuple[list[Stmt], TileOp]:
        stmts: list[Stmt] = []
        args: list[Any] = []
        for a in call.args:
            stmts_a, val = self._any_operand(a)
            stmts.extend(stmts_a)
            args.append(val)
        kwargs: dict[str, Any] = {}
        for kw in call.keywords:
            if kw.arg is None:
                raise self.err("**kwargs unsupported", call)
            stmts_k, val = self._any_operand(kw.value)
            stmts.extend(stmts_k)
            kwargs[kw.arg] = val
        if fname == "dot" and dot_acc is not None:
            kwargs["acc"] = dot_acc
        op = TileOp(fname, target=target, args=tuple(args), kwargs=kwargs,
                    lineno=call.lineno)
        return stmts, op

    # -- operands: scalar Expr | tile var name | TensorRef | (lo, hi) | str ----

    def _any_operand(self, node: ast.expr) -> tuple[list[Stmt], Any]:
        """Compile a call argument to whatever category it belongs to."""
        # string literals (modes, dtypes)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [], node.value
        # (lo, hi) range pair or shape tuple
        if isinstance(node, ast.Tuple):
            elems = []
            for e in node.elts:
                elems.append(self.scalar(e))
            return [], tuple(elems)
        # tensor param, possibly rank-indexed
        ref = self._try_tensor_ref(node)
        if ref is not None:
            return [], ref
        if self._is_tile_expr(node):
            return self._tile_operand(node)
        return [], self.scalar(node)

    def _try_tensor_ref(self, node: ast.expr) -> TensorRef | None:
        if isinstance(node, ast.Name) and node.id in self.params \
                and node.id not in self.constexpr_params \
                and node.id != self.channel_param \
                and node.id not in self.tile_vars \
                and node.id not in self.scalar_vars:
            return TensorRef(node.id)
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name) \
                and node.value.id in self.params:
            return TensorRef(node.value.id, rank=self.scalar(node.slice))
        return None

    def _tile_operand(self, node: ast.expr) -> tuple[list[Stmt], str]:
        """Compile a tile expression to statements + the holding var name."""
        if isinstance(node, ast.Name):
            if node.id not in self.tile_vars:
                raise self.err(f"{node.id!r} is not a tile", node)
            return [], node.id
        stmts, name = self.tile(node, target=self.fresh())
        return stmts, name

    # -- tile expressions ----------------------------------------------------------

    def _is_tile_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tile_vars
        if isinstance(node, ast.Call):
            fname = self._tl_name(node)
            if fname in tl_mod.TILE_FNS:
                return True
            if fname is not None and tl_mod.PRIMITIVES.get(fname):
                return True  # tile_pull_data
            return False
        if isinstance(node, ast.BinOp):
            return self._is_tile_expr(node.left) or self._is_tile_expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._is_tile_expr(node.operand)
        return False

    def tile(self, node: ast.expr, target: str,
             dot_acc: str | None = None) -> tuple[list[Stmt], str]:
        """Compile a tile expression into statements ending in ``target``."""
        if isinstance(node, ast.Name):
            if node.id not in self.tile_vars:
                raise self.err(f"{node.id!r} is not a tile", node)
            self.mark_tile(target, node)
            return [TileOp("copy", target=target, args=(node.id,),
                           lineno=node.lineno)], target
        if isinstance(node, ast.Call):
            fname = self._tl_name(node)
            if fname is None:
                raise self.err("only tl.* calls produce tiles", node)
            if fname in tl_mod.PRIMITIVES:
                if not tl_mod.PRIMITIVES[fname]:
                    raise self.err(f"tl.{fname} produces no value", node)
                stmts = self._primitive(node, fname, target=target)
                self.mark_tile(target, node)
                return stmts, target
            if fname not in tl_mod.TILE_FNS:
                raise self.err(f"tl.{fname} is not a tile function", node)
            stmts, op = self._tile_call(node, fname, target=target,
                                        dot_acc=dot_acc)
            self.mark_tile(target, node)
            return stmts + [op], target
        if isinstance(node, ast.BinOp):
            opcls = type(node.op)
            if opcls not in _TILE_BINOPS:
                raise self.err("unsupported tile operator", node)
            l_stmts, lhs = self._operand_any_side(node.left)
            r_stmts, r = self._operand_any_side(node.right)
            self.mark_tile(target, node)
            op = TileOp(_TILE_BINOPS[opcls], target=target, args=(lhs, r),
                        lineno=node.lineno)
            return l_stmts + r_stmts + [op], target
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            s_stmts, s = self._tile_operand(node.operand)
            self.mark_tile(target, node)
            return s_stmts + [TileOp("neg", target=target, args=(s,),
                                     lineno=node.lineno)], target
        raise self.err("unsupported tile expression", node)

    def _operand_any_side(self, node: ast.expr) -> tuple[list[Stmt], Any]:
        """A binary-op side: tile var name (str) or scalar Expr."""
        if self._is_tile_expr(node):
            return self._tile_operand(node)
        return [], self.scalar(node)

    # -- scalar expressions -----------------------------------------------------------

    def scalar(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, bool)):
                return Const(node.value)
            raise self.err(f"unsupported constant {node.value!r}", node)
        if isinstance(node, ast.Name):
            if node.id in self.tile_vars:
                raise self.err(f"tile {node.id!r} used in scalar context", node)
            return Name(node.id)
        if isinstance(node, ast.BinOp):
            opcls = type(node.op)
            if opcls not in _BINOPS:
                raise self.err("unsupported scalar operator", node)
            return BinOp(_BINOPS[opcls], self.scalar(node.left),
                         self.scalar(node.right))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return UnaryOp("-", self.scalar(node.operand))
            if isinstance(node.op, ast.Not):
                return UnaryOp("not", self.scalar(node.operand))
            raise self.err("unsupported unary operator", node)
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self.err("chained comparisons unsupported", node)
            opcls = type(node.ops[0])
            if opcls not in _CMPOPS:
                raise self.err("unsupported comparison", node)
            return BinOp(_CMPOPS[opcls], self.scalar(node.left),
                         self.scalar(node.comparators[0]))
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            expr = self.scalar(node.values[0])
            for v in node.values[1:]:
                expr = BinOp(op, expr, self.scalar(v))
            return expr
        if isinstance(node, ast.Call):
            fname = self._tl_name(node)
            if fname in ("cdiv", "minimum", "maximum"):
                if len(node.args) != 2:
                    raise self.err(f"tl.{fname} takes two arguments", node)
                opname = {"cdiv": "cdiv", "minimum": "min", "maximum": "max"}[fname]
                return BinOp(opname, self.scalar(node.args[0]),
                             self.scalar(node.args[1]))
            if fname == "block_id":
                return Name("$bid")
            if fname == "num_blocks":
                return Name("$nblocks")
            if fname is not None:
                raise self.err(f"unknown tl function tl.{fname}", node)
            raise self.err("unsupported call in scalar expression", node)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) \
                    and node.value.id == self.channel_param:
                if node.attr not in CHANNEL_FIELDS:
                    raise self.err(
                        f"unknown BlockChannel field {node.attr!r}", node)
                return ChannelField(node.attr)
            raise self.err("unsupported attribute access", node)
        raise self.err(f"unsupported scalar expression "
                       f"{type(node).__name__}", node)
