"""Structured tile IR.

The frontend compiles a kernel's Python AST into this IR; compiler passes
annotate it; the backend interprets it per block on the simulated device.

Two value categories exist at run time:

* **scalars** — Python ints/floats/bools produced by :class:`Expr` trees
  (block ids, loop counters, tile-id arithmetic, constexpr parameters);
* **tiles** — numpy arrays (numeric mode) or shape-only stubs (timing
  mode) produced by :class:`TileOp` statements.

Statements are structured (no CFG): ``For`` and ``If`` nest blocks of
statements.  Passes attach scheduling annotations directly to the nodes
(``For.aggregable``, ``For.pipelined``, ``For.prefetch``, ``Load.guards``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

# ---------------------------------------------------------------------------
# scalar expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base scalar expression."""

    def walk(self) -> Iterator["Expr"]:
        yield self


@dataclass(frozen=True)
class Const(Expr):
    value: int | float | bool | str

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Name(Expr):
    """A scalar local / parameter / constexpr reference."""

    id: str

    def __repr__(self) -> str:
        return self.id


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * // % min max < <= > >= == != and or
    left: Expr
    right: Expr

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # - not
    operand: Expr

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.operand.walk()


@dataclass(frozen=True)
class ChannelField(Expr):
    """Access to a BlockChannel metadata field (e.g. channel.rank)."""

    field_name: str

    def __repr__(self) -> str:
        return f"channel.{self.field_name}"


# ---------------------------------------------------------------------------
# tensor references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TensorRef:
    """A tensor parameter, optionally indexed by rank (``buffers[to_rank]``).

    ``rank`` is None for "the local instance of this (symmetric) tensor".
    """

    name: str
    rank: Expr | None = None

    def __repr__(self) -> str:
        return self.name if self.rank is None else f"{self.name}[{self.rank!r}]"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base statement."""

    def children(self) -> list[list["Stmt"]]:
        """Nested statement blocks (for tree walks)."""
        return []


@dataclass
class AssignScalar(Stmt):
    target: str
    value: Expr
    lineno: int | None = None


@dataclass
class TileOp(Stmt):
    """A tile-producing/consuming operation assigned to a local name.

    ``op`` selects the semantics (see repro.compiler.ops_registry);
    ``args`` holds Exprs, TensorRefs, strings and nested (lo, hi) Expr
    pairs, per-op.  ``target`` is None for pure-effect ops (store).
    """

    op: str
    target: str | None
    args: tuple[Any, ...]
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: filled by passes: wait statements guarding this op (consistency)
    guards: list["Primitive"] = field(default_factory=list)
    #: set by the pipeliner: this load may be issued one iteration early
    prefetchable: bool = False
    lineno: int | None = None


@dataclass
class Primitive(Stmt):
    """A TileLink tile-centric primitive (Table 3)."""

    name: str  # producer_tile_notify | consumer_tile_wait | peer_tile_notify
    #        | peer_tile_wait | tile_push_data | tile_pull_data | barrier_all
    args: tuple[Any, ...]
    kwargs: dict[str, Any] = field(default_factory=dict)
    target: str | None = None  # tile_pull_data produces a value
    lineno: int | None = None

    @property
    def is_wait(self) -> bool:
        return self.name in ("consumer_tile_wait", "peer_tile_wait", "rank_wait",
                             "barrier_all")

    @property
    def is_notify(self) -> bool:
        return self.name in ("producer_tile_notify", "peer_tile_notify",
                             "rank_notify")


@dataclass
class For(Stmt):
    var: str
    start: Expr
    stop: Expr
    step: Expr
    body: list[Stmt]
    #: no sync/comm inside: backend may cost it analytically (trips x body)
    aggregable: bool = False
    #: software pipelining applies (multi-stage overlap of loads & compute)
    pipelined: bool = False
    lineno: int | None = None

    def children(self) -> list[list[Stmt]]:
        return [self.body]


@dataclass
class If(Stmt):
    cond: Expr
    then: list[Stmt]
    orelse: list[Stmt] = field(default_factory=list)
    lineno: int | None = None

    def children(self) -> list[list[Stmt]]:
        return [self.then, self.orelse]


@dataclass
class Return(Stmt):
    lineno: int | None = None


# ---------------------------------------------------------------------------
# kernel container
# ---------------------------------------------------------------------------


@dataclass
class KernelIR:
    name: str
    #: positional parameter names, in order
    params: list[str]
    #: names of parameters declared tl.constexpr
    constexpr_params: list[str]
    #: name of the BlockChannel parameter (None if the kernel has none)
    channel_param: str | None
    body: list[Stmt]
    source: str = ""

    def walk_stmts(self) -> Iterator[Stmt]:
        """All statements, depth first."""
        stack: list[Stmt] = list(reversed(self.body))
        while stack:
            node = stack.pop()
            yield node
            for block in node.children():
                stack.extend(reversed(block))


def walk_block(body: list[Stmt]) -> Iterator[Stmt]:
    """All statements under a block, depth first."""
    stack: list[Stmt] = list(reversed(body))
    while stack:
        node = stack.pop()
        yield node
        for block in node.children():
            stack.extend(reversed(block))


def contains_sync(body: list[Stmt]) -> bool:
    """True if any statement in the block is a primitive (sync/comm)."""
    return any(isinstance(s, Primitive) for s in walk_block(body))


def walk_with_parents(
    body: list[Stmt], parents: tuple[Stmt, ...] = (),
) -> Iterator[tuple[Stmt, tuple[Stmt, ...]]]:
    """All statements depth first, each with its chain of enclosing nodes.

    The analyzer uses this for structural rules that depend on context
    (e.g. a ``barrier_all`` nested under a rank-divergent ``If``).
    """
    for s in body:
        yield s, parents
        for block in s.children():
            yield from walk_with_parents(block, parents + (s,))


def stmt_lineno(s: Stmt) -> int | None:
    """Source line of a statement, if the frontend recorded one."""
    return getattr(s, "lineno", None)


def expr_refs(e: Expr) -> set[str]:
    """Names referenced by a scalar expression.

    Plain locals/params appear by name; channel metadata fields appear as
    ``"channel.<field>"`` — so rank-divergence is a membership test for
    ``"channel.rank"``.
    """
    refs: set[str] = set()
    for node in e.walk():
        if isinstance(node, Name):
            refs.add(node.id)
        elif isinstance(node, ChannelField):
            refs.add(f"channel.{node.field_name}")
    return refs


def inherit_linenos(body: list[Stmt], default: int | None = None) -> None:
    """Fill missing ``lineno`` fields from the nearest preceding statement.

    Synthesized nodes (tuple-unpacking assignments, desugared augmented
    assignments) otherwise report ``None`` and analyzer findings lose their
    source anchor.
    """
    last = default
    for s in body:
        if getattr(s, "lineno", None) is None and hasattr(s, "lineno"):
            s.lineno = last
        else:
            last = getattr(s, "lineno", last)
        for block in s.children():
            inherit_linenos(block, last)


# ---------------------------------------------------------------------------
# pretty printing (debugging / golden tests)
# ---------------------------------------------------------------------------


def pretty(ir: KernelIR) -> str:
    lines = [f"kernel {ir.name}({', '.join(ir.params)})"]

    def emit(body: list[Stmt], depth: int) -> None:
        pad = "  " * depth
        for s in body:
            if isinstance(s, AssignScalar):
                lines.append(f"{pad}{s.target} = {s.value!r}")
            elif isinstance(s, TileOp):
                tgt = f"{s.target} = " if s.target else ""
                flags = " [prefetch]" if s.prefetchable else ""
                lines.append(f"{pad}{tgt}{s.op}{s.args!r}{flags}")
            elif isinstance(s, Primitive):
                tgt = f"{s.target} = " if s.target else ""
                lines.append(f"{pad}{tgt}@{s.name}{s.args!r}")
            elif isinstance(s, For):
                tags = []
                if s.aggregable:
                    tags.append("agg")
                if s.pipelined:
                    tags.append("pipe")
                tag = f" [{','.join(tags)}]" if tags else ""
                lines.append(
                    f"{pad}for {s.var} in range({s.start!r}, {s.stop!r}, "
                    f"{s.step!r}){tag}:")
                emit(s.body, depth + 1)
            elif isinstance(s, If):
                lines.append(f"{pad}if {s.cond!r}:")
                emit(s.then, depth + 1)
                if s.orelse:
                    lines.append(f"{pad}else:")
                    emit(s.orelse, depth + 1)
            elif isinstance(s, Return):
                lines.append(f"{pad}return")
            else:  # pragma: no cover
                lines.append(f"{pad}<?{type(s).__name__}>")

    emit(ir.body, 1)
    return "\n".join(lines)
