"""Abstract interpretation of kernel IR into event traces.

One :func:`interpret_launch` call plays a single (rank, block) through the
IR at a concrete instantiation — constexprs bound, channel metadata real,
tile-id arithmetic evaluated exactly — but with *events* recorded instead
of simulated: each TileLink primitive becomes a wait/notify event against
an :class:`~repro.analyze.model.AbstractBank`, and each memory tile op
becomes a read/write/accum access record.

The value lattice is {concrete scalar} ∪ {UNKNOWN}.  ``tl.load_scalar``
results and unresolved names evaluate to UNKNOWN; accesses whose extents
involve UNKNOWN are recorded with ``rows=None`` and excluded from the
race/coverage checks (data-dependent addressing — e.g. ``gather_rows``
through a routing table — is out of scope by design).  Branches on
UNKNOWN conditions are explored both ways with ``guaranteed=False``.

Semantics mirror ``repro.compiler.interp.BlockInterp`` — the op table,
``consumer_wait_list`` threshold resolution, notify target selection and
``tile_pull_data`` shard-local row arithmetic are the same code paths
(the channel objects are real; only the signal arrays are abstract).
"""

from __future__ import annotations

from typing import Any

from repro.errors import LoweringError, MappingError
from repro.lang.block_channel import BlockChannel
from repro.lang.ir import (
    AssignScalar,
    BinOp,
    ChannelField,
    Const,
    Expr,
    For,
    If,
    KernelIR,
    Name,
    Primitive,
    Return,
    Stmt,
    TensorRef,
    TileOp,
    UnaryOp,
)
from repro.analyze.findings import Finding
from repro.analyze.model import UNKNOWN, Event, Site

#: per-thread event budget; a kernel emitting more is truncated (warning)
MAX_EVENTS = 50_000
#: per-loop iteration budget
MAX_TRIPS = 4_096

_BINOP_FNS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "**": lambda a, b: a ** b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "min": min,
    "max": max,
    "cdiv": lambda a, b: -(-a // b),
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
}


class _Return(Exception):
    pass


class _Truncated(Exception):
    pass


class AbstractEvaluator:
    """Plays one (rank, block) of a kernel, recording events."""

    def __init__(self, ir: KernelIR, constexprs: dict[str, Any],
                 channel: BlockChannel | None, tensors: dict[str, str],
                 shapes: dict[str, tuple[int, int]], rank: int, bid: int,
                 grid: int, world: int):
        self.ir = ir
        self.channel = channel
        self.tensors = tensors      # kernel param -> plan tensor name
        self.shapes = shapes        # plan tensor name -> (rows, cols)
        self.rank = rank
        self.world = world
        self.scalars: dict[str, Any] = dict(constexprs)
        self.scalars["$bid"] = bid
        self.scalars["$nblocks"] = grid
        self.events: list[Event] = []
        self.findings: list[Finding] = []
        self.cond_depth = 0          # >0 inside an undecidable branch
        self._warned: set[tuple] = set()

    # -- plumbing ------------------------------------------------------------

    def site(self, s: Stmt, detail: str = "") -> Site:
        return Site(self.ir.name, getattr(s, "lineno", None), detail)

    def emit(self, event: Event) -> None:
        if len(self.events) >= MAX_EVENTS:
            raise _Truncated()
        self.events.append(event)

    def warn_once(self, rule: str, message: str, s: Stmt) -> None:
        key = (rule, getattr(s, "lineno", None))
        if key in self._warned:
            return
        self._warned.add(key)
        self.findings.append(Finding(
            rule=rule, message=message, kernel=self.ir.name,
            lineno=getattr(s, "lineno", None)))

    @property
    def guaranteed(self) -> bool:
        return self.cond_depth == 0

    # -- scalar evaluation ---------------------------------------------------

    def eval(self, e: Expr) -> Any:
        if isinstance(e, Const):
            return e.value
        if isinstance(e, Name):
            return self.scalars.get(e.id, UNKNOWN)
        if isinstance(e, ChannelField):
            if self.channel is None:
                return UNKNOWN
            try:
                return self.channel.scalar_field(e.field_name)
            except (LoweringError, AttributeError):
                return UNKNOWN
        if isinstance(e, UnaryOp):
            v = self.eval(e.operand)
            if v is UNKNOWN:
                return UNKNOWN
            return -v if e.op == "-" else (not v)
        if isinstance(e, BinOp):
            left = self.eval(e.left)
            # short-circuit like Python so `k and f(k)` stays decidable
            if e.op == "and" and left is not UNKNOWN and not left:
                return left
            if e.op == "or" and left is not UNKNOWN and left:
                return left
            right = self.eval(e.right)
            if left is UNKNOWN or right is UNKNOWN:
                return UNKNOWN
            fn = _BINOP_FNS.get(e.op)
            if fn is None:
                return UNKNOWN
            try:
                return fn(left, right)
            except (ZeroDivisionError, TypeError, ValueError):
                return UNKNOWN
        return UNKNOWN

    def eval_int(self, e: Expr) -> Any:
        v = self.eval(e)
        return int(v) if v is not UNKNOWN else UNKNOWN

    def range_pair(self, pair: Any) -> tuple[int, int] | None:
        if not (isinstance(pair, tuple) and len(pair) == 2):
            return None
        lo, hi = self.eval(pair[0]), self.eval(pair[1])
        if lo is UNKNOWN or hi is UNKNOWN:
            return None
        return (int(lo), int(hi))

    def resolve_ref(self, ref: TensorRef) -> tuple[str, int] | None:
        """TensorRef -> (plan tensor name, instance rank)."""
        name = self.tensors.get(ref.name)
        if name is None:
            return None
        if ref.rank is None:
            return (name, self.rank)
        r = self.eval_int(ref.rank)
        if r is UNKNOWN:
            return None
        return (name, r)

    # -- access recording ---------------------------------------------------

    def access(self, kind: str, s: Stmt, ref: TensorRef,
               rows: tuple[int, int] | None,
               cols: tuple[int, int] | None, detail: str) -> None:
        resolved = self.resolve_ref(ref)
        if resolved is None:
            return
        name, rank = resolved
        if cols is None and rows is not None and name in self.shapes:
            # 1-D ops (load_vec/store_vec) span whole rows of flat tables;
            # keep the extent unknown rather than guess a 2-D projection
            rows = None
        self.emit(Event(kind, self.site(s, detail),
                        guaranteed=self.guaranteed, tensor=name, rank=rank,
                        rows=rows, cols=cols))

    # -- statements -----------------------------------------------------------

    def run(self) -> None:
        try:
            self.exec_block(self.ir.body)
        except _Return:
            pass
        except _Truncated:
            self.findings.append(Finding(
                rule="analysis.truncated", kernel=self.ir.name,
                message=f"event budget ({MAX_EVENTS}) exhausted at rank "
                        f"{self.rank}; trace is partial"))

    def exec_block(self, body: list[Stmt]) -> None:
        for s in body:
            self.exec_stmt(s)

    def exec_stmt(self, s: Stmt) -> None:
        if isinstance(s, AssignScalar):
            self.scalars[s.target] = self.eval(s.value)
        elif isinstance(s, TileOp):
            self.exec_tile_op(s)
        elif isinstance(s, Primitive):
            try:
                self.exec_primitive(s)
            except (LoweringError, MappingError) as exc:
                self.warn_once(
                    "analysis.error",
                    f"primitive {s.name} failed abstract evaluation: {exc}",
                    s)
        elif isinstance(s, For):
            self.exec_for(s)
        elif isinstance(s, If):
            self.exec_if(s)
        elif isinstance(s, Return):
            raise _Return()

    def exec_for(self, s: For) -> None:
        start = self.eval_int(s.start)
        stop = self.eval_int(s.stop)
        step = self.eval_int(s.step)
        if UNKNOWN in (start, stop, step) or step == 0:
            self.warn_once(
                "analysis.unknown-loop-bounds",
                f"loop over {s.var!r} has statically-unknown bounds; "
                "body explored once (non-guaranteed)", s)
            saved = dict(self.scalars)
            self.scalars[s.var] = UNKNOWN
            self.cond_depth += 1
            try:
                self.exec_block(s.body)
            finally:
                self.cond_depth -= 1
                self._merge_scalars(saved)
            return
        trips = range(start, stop, step)
        if len(trips) > MAX_TRIPS:
            raise _Truncated()
        for i in trips:
            self.scalars[s.var] = i
            self.exec_block(s.body)

    def exec_if(self, s: If) -> None:
        cond = self.eval(s.cond)
        if cond is not UNKNOWN:
            self.exec_block(s.then if cond else s.orelse)
            return
        # undecidable: explore both branches, non-guaranteed, and smear
        # any scalars the branches disagree on
        saved = dict(self.scalars)
        self.cond_depth += 1
        try:
            self.exec_block(s.then)
            after_then = dict(self.scalars)
            self.scalars = dict(saved)
            self.exec_block(s.orelse)
            for k, v in after_then.items():
                if self.scalars.get(k, UNKNOWN) != v:
                    self.scalars[k] = UNKNOWN
        finally:
            self.cond_depth -= 1

    def _merge_scalars(self, saved: dict[str, Any]) -> None:
        for k in list(self.scalars):
            if k not in saved:
                self.scalars[k] = UNKNOWN
            elif self.scalars[k] != saved[k]:
                self.scalars[k] = UNKNOWN

    # -- tile ops -------------------------------------------------------------

    def exec_tile_op(self, s: TileOp) -> None:
        op = s.op
        if op == "load":
            ref, rows, cols = s.args[0], self.range_pair(s.args[1]), \
                self.range_pair(s.args[2])
            if isinstance(ref, TensorRef):
                self.access("read", s, ref, rows, cols, "load")
        elif op == "load_vec":
            ref = s.args[0]
            if isinstance(ref, TensorRef):
                self.access("read", s, ref, self.range_pair(s.args[1]),
                            None, "load_vec")
        elif op == "gather_rows":
            ref = s.args[0]
            if isinstance(ref, TensorRef):
                # rows are data-dependent (index tile): extent unknown
                self.access("read", s, ref, None,
                            self.range_pair(s.args[2]), "gather_rows")
        elif op == "load_scalar":
            ref = s.args[0]
            if isinstance(ref, TensorRef):
                self.access("read", s, ref, None, None, "load_scalar")
            if s.target is not None:
                self.scalars[s.target] = UNKNOWN
        elif op in ("store", "atomic_add"):
            ref, rows, cols = s.args[0], self.range_pair(s.args[1]), \
                self.range_pair(s.args[2])
            kind = "write" if op == "store" else "accum"
            if isinstance(ref, TensorRef):
                self.access(kind, s, ref, rows, cols, op)
        elif op == "store_vec":
            ref = s.args[0]
            if isinstance(ref, TensorRef):
                self.access("write", s, ref, self.range_pair(s.args[1]),
                            None, "store_vec")
        elif op == "scatter_add_rows":
            ref = s.args[0]
            if isinstance(ref, TensorRef):
                # destination rows come from an index tile: extent unknown
                self.access("accum", s, ref, None,
                            self.range_pair(s.args[2]), "scatter_add_rows")
        # pure tile arithmetic (dot, add, copy, zeros, cast, ...) emits
        # no cross-thread-visible events

    # -- primitives -----------------------------------------------------------

    def exec_primitive(self, s: Primitive) -> None:
        ch = self.channel
        if ch is None:
            raise LoweringError(
                f"primitive {s.name} needs a BlockChannel argument")
        name = s.name

        if name == "producer_tile_notify":
            tid = self.eval_int(s.args[0])
            if tid is UNKNOWN:
                self.warn_once("analysis.error",
                               "producer_tile_notify tile id is unknown", s)
                return
            mode = s.args[1] if len(s.args) > 1 else \
                s.kwargs.get("mode", "p2p")
            if ch.notify_counts is not None and mode == "broadcast":
                for channel_idx, amount in enumerate(ch.notify_counts[tid]):
                    if amount > 0:
                        self.emit(Event(
                            "notify",
                            self.site(s, f"notify t{tid} c{channel_idx}"),
                            guaranteed=self.guaranteed,
                            bank=ch.barriers.key, cell=int(channel_idx),
                            amount=int(amount)))
                return
            channel_idx = ch.producer_channel(tid)
            if mode == "p2p":
                target = s.kwargs.get("to")
                if target is not None:
                    dst = self.eval_int(target)
                    if dst is UNKNOWN:
                        self.warn_once("analysis.error",
                                       "notify target rank is unknown", s)
                        return
                elif getattr(ch, "notify_target", "local") == "mapped":
                    dst = ch.producer_rank(tid)
                else:
                    dst = self.rank
                self.emit(Event(
                    "notify", self.site(s, f"notify t{tid} -> r{dst}"),
                    guaranteed=self.guaranteed,
                    bank=ch.all_barriers[dst].key, cell=channel_idx,
                    amount=1))
            elif mode == "broadcast":
                for dst in range(ch.num_ranks):
                    self.emit(Event(
                        "notify", self.site(s, f"notify t{tid} -> r{dst}"),
                        guaranteed=self.guaranteed,
                        bank=ch.all_barriers[dst].key, cell=channel_idx,
                        amount=1))
            else:
                raise LoweringError(f"unknown notify mode {mode!r}")
            return

        if name == "consumer_tile_wait":
            tid = self.eval_int(s.args[0])
            if tid is UNKNOWN:
                self.warn_once("analysis.error",
                               "consumer_tile_wait tile id is unknown", s)
                return
            for channel_idx, threshold in ch.consumer_wait_list(tid):
                self.emit(Event(
                    "wait",
                    self.site(s, f"wait t{tid} c{channel_idx}"),
                    guaranteed=self.guaranteed, bank=ch.barriers.key,
                    cell=int(channel_idx), threshold=int(threshold)))
            return

        if name == "peer_tile_notify":
            cell = self.eval_int(s.args[0])
            dst = self.eval_int(s.args[1])
            if UNKNOWN in (cell, dst):
                self.warn_once("analysis.error",
                               "peer_tile_notify cell/rank unknown", s)
                return
            if not ch.all_peer_barriers:
                raise LoweringError("BlockChannel has no peer barriers")
            self.emit(Event(
                "notify", self.site(s, f"peer notify cell {cell} -> r{dst}"),
                guaranteed=self.guaranteed,
                bank=ch.all_peer_barriers[dst].key, cell=cell, amount=1))
            return

        if name == "peer_tile_wait":
            cell = self.eval_int(s.args[0])
            rank = self.eval_int(s.args[1])
            count = self.eval_int(s.kwargs["count"]) \
                if "count" in s.kwargs else 1
            if UNKNOWN in (cell, rank, count):
                self.warn_once("analysis.error",
                               "peer_tile_wait cell/rank/count unknown", s)
                return
            if not ch.all_peer_barriers:
                raise LoweringError("BlockChannel has no peer barriers")
            self.emit(Event(
                "wait", self.site(s, f"peer wait cell {cell} @ r{rank}"),
                guaranteed=self.guaranteed,
                bank=ch.all_peer_barriers[rank].key, cell=cell,
                threshold=count))
            return

        if name == "tile_push_data":
            ref = s.args[0]
            if not isinstance(ref, TensorRef):
                raise LoweringError("tile_push_data needs a tensor argument")
            tid_m = self.eval_int(s.args[1])
            tid_n = self.eval_int(s.args[2])
            if ch.comm_grid is None:
                raise LoweringError("tile_push_data needs a comm grid")
            if UNKNOWN in (tid_m, tid_n):
                self.access("write", s, ref, None, None, "tile_push_data")
                return
            (r0, r1), (c0, c1) = ch.comm_grid.ranges(
                ch.comm_grid.tile_id(tid_m, tid_n))
            self.access("write", s, ref, (r0, r1), (c0, c1),
                        "tile_push_data")
            return

        if name == "tile_pull_data":
            ref = s.args[0]
            if not isinstance(ref, TensorRef):
                raise LoweringError("tile_pull_data needs a tensor argument")
            tid_m = self.eval_int(s.args[1])
            tid_n = self.eval_int(s.args[2]) if len(s.args) > 2 else 0
            if ch.comm_grid is None:
                raise LoweringError("tile_pull_data needs a comm grid")
            mapping = ch.require_mapping()
            if UNKNOWN in (tid_m, tid_n):
                self.warn_once("analysis.error",
                               "tile_pull_data tile id is unknown", s)
                return
            src_rank = mapping.rank_of(tid_m)
            (r0, r1), (c0, c1) = ch.comm_grid.ranges(
                ch.comm_grid.tile_id(tid_m, tid_n))
            per_rank = getattr(mapping, "per_rank", None)
            rows = None
            if per_rank is not None:
                rows = (r0 - src_rank * per_rank, r1 - src_rank * per_rank)
            resolved = self.tensors.get(ref.name)
            if resolved is not None:
                self.emit(Event(
                    "read", self.site(s, f"pull t{tid_m} from r{src_rank}"),
                    guaranteed=self.guaranteed, tensor=resolved,
                    rank=src_rank, rows=rows, cols=(c0, c1)))
            return

        if name == "barrier_all":
            self.emit(Event("barrier", self.site(s, "barrier_all"),
                            guaranteed=self.guaranteed))
            return

        raise LoweringError(f"unsupported primitive {name!r}")


def interpret_launch(ir: KernelIR, constexprs: dict[str, Any],
                     channel: BlockChannel | None, tensors: dict[str, str],
                     shapes: dict[str, tuple[int, int]], rank: int,
                     bid: int, grid: int,
                     world: int) -> tuple[list[Event], list[Finding]]:
    """Abstractly run one (rank, block); returns (events, findings)."""
    ev = AbstractEvaluator(ir, constexprs, channel, tensors, shapes,
                           rank=rank, bid=bid, grid=grid, world=world)
    ev.run()
    return ev.events, ev.findings
