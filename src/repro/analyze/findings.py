"""Machine-readable findings for the static synchronization analyzer.

Every rule the analyzer can fire is registered in :data:`RULES` with a
stable id and a default severity; a :class:`Finding` pins one firing to a
kernel and source line.  :class:`Report` aggregates findings for a plan (or
a whole sweep) and knows how to render itself as text or JSON, and whether
it passes plain / ``--strict`` gating.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: severity ordering, most severe first
SEVERITIES = ("error", "warning", "info")

#: rule id -> (default severity, one-line description)
RULES: dict[str, tuple[str, str]] = {
    "deadlock.unmatched-wait": (
        "error", "a wait site has no notify site posting to its cell"),
    "deadlock.unreachable-threshold": (
        "error", "total posts to a waited cell can never reach the "
                 "wait threshold"),
    "deadlock.stall": (
        "error", "the abstract schedule wedges with threads blocked at "
                 "a wait even when every conditional notify fires"),
    "deadlock.cycle": (
        "error", "cross-rank wait cycle: each rank's pending notifies sit "
                 "behind a wait on another rank in the cycle"),
    "race.unguarded-read": (
        "error", "a tile buffer is read without a guarding wait ordered "
                 "after the producer's notify"),
    "race.double-produce": (
        "error", "the same output tile region is produced twice"),
    "coverage.hole": (
        "error", "declared output extents are not fully covered by "
                 "guaranteed tile stores"),
    "barrier.rank-divergent": (
        "error", "barrier_all under an If whose condition depends on "
                 "channel.rank (some ranks never arrive)"),
    "barrier.block-divergent": (
        "error", "barrier_all under an If whose condition depends on the "
                 "block id (some blocks never arrive)"),
    "struct.arity": (
        "error", "a tile-centric primitive was called with the wrong "
                 "number of positional arguments"),
    "struct.bad-mode": (
        "error", "producer_tile_notify mode is not 'p2p' or 'broadcast'"),
    "struct.no-channel": (
        "error", "tile-centric primitives used in a kernel without a "
                 "BlockChannel parameter"),
    "struct.nonpositive-count": (
        "error", "peer_tile_wait with a constant count <= 0 (satisfied "
                 "before any notify; not a synchronization)"),
    "analysis.note": (
        "info", "informational note from the analyzer"),
    "analysis.truncated": (
        "warning", "the abstract interpretation hit its event budget; "
                   "results for this thread are partial"),
    "analysis.unknown-loop-bounds": (
        "warning", "a loop bound could not be evaluated; its body was "
                   "explored once, non-guaranteed"),
    "analysis.error": (
        "warning", "abstract evaluation of a statement failed; the site "
                   "was skipped"),
}


@dataclass(frozen=True)
class Finding:
    """One rule firing, anchored to a kernel and (when known) a line."""

    rule: str
    message: str
    kernel: str = "<plan>"
    lineno: int | None = None
    plan: str | None = None
    severity: str = ""  # default: the rule's registered severity

    def __post_init__(self) -> None:
        if not self.severity:
            object.__setattr__(
                self, "severity", RULES.get(self.rule, ("warning", ""))[0])

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "kernel": self.kernel,
            "lineno": self.lineno,
            "plan": self.plan,
            "message": self.message,
        }

    def render(self) -> str:
        loc = self.kernel
        if self.lineno is not None:
            loc += f":{self.lineno}"
        plan = f" [{self.plan}]" if self.plan else ""
        return f"{self.severity}: {self.rule}: {loc}{plan}: {self.message}"


@dataclass
class Report:
    """Aggregated findings for one plan or a whole sweep."""

    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def by_severity(self, severity: str) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity("error")

    @property
    def warnings(self) -> list[Finding]:
        return self.by_severity("warning")

    def ok(self, strict: bool = False) -> bool:
        if self.errors:
            return False
        return not (strict and self.warnings)

    def sorted(self) -> list[Finding]:
        order = {s: i for i, s in enumerate(SEVERITIES)}
        return sorted(
            self.findings,
            key=lambda f: (order.get(f.severity, len(SEVERITIES)),
                           f.plan or "", f.kernel, f.lineno or 0, f.rule))

    def render(self) -> str:
        lines = [f.render() for f in self.sorted()]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.by_severity('info'))} note(s)")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "findings": [f.to_dict() for f in self.sorted()],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }, indent=2)


def dedupe(findings: list[Finding]) -> list[Finding]:
    """Collapse repeat firings of a rule at one site (loops re-fire)."""
    seen: set[tuple] = set()
    out: list[Finding] = []
    for f in findings:
        key = (f.rule, f.kernel, f.lineno, f.plan)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out
