"""Signal-flow graph: wait sites paired with the notify sites feeding them.

Built over the event traces of a :class:`~repro.analyze.model.LaunchPlan`:
for every ``(bank, cell)`` signal the graph records which thread positions
post to it (and how much) and which wait on it (and with what threshold).
Signals are monotonic counters in this runtime — posts accumulate and
waits never consume — so per-cell *totals* decide reachability:

* optimistic total — every post fires, including those under undecided
  branches (used to prove a wait can never be satisfied);
* guaranteed total — only posts on unconditional paths (used to warn when
  satisfaction depends on a branch the analyzer could not decide).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyze.model import BankKey, LaunchPlan, Site, Thread

Cell = tuple[BankKey, int]


@dataclass
class PostRec:
    thread: int          # index into plan.threads
    pos: int             # index into thread.events
    amount: int
    guaranteed: bool
    site: Site


@dataclass
class WaitRec:
    thread: int
    pos: int
    threshold: int
    guaranteed: bool
    site: Site


@dataclass
class SignalFlow:
    plan: LaunchPlan
    posts: dict[Cell, list[PostRec]] = field(default_factory=dict)
    waits: dict[Cell, list[WaitRec]] = field(default_factory=dict)

    @classmethod
    def build(cls, plan: LaunchPlan) -> "SignalFlow":
        sfg = cls(plan)
        for ti, thread in enumerate(plan.threads):
            for pos, ev in enumerate(thread.events):
                if ev.bank is None or ev.cell is None:
                    continue
                cell: Cell = (ev.bank, ev.cell)
                if ev.kind == "notify":
                    sfg.posts.setdefault(cell, []).append(PostRec(
                        ti, pos, ev.amount, ev.guaranteed, ev.site))
                elif ev.kind == "wait":
                    sfg.waits.setdefault(cell, []).append(WaitRec(
                        ti, pos, ev.threshold, ev.guaranteed, ev.site))
        return sfg

    def optimistic_total(self, cell: Cell) -> int:
        return sum(p.amount for p in self.posts.get(cell, []))

    def guaranteed_total(self, cell: Cell) -> int:
        return sum(p.amount for p in self.posts.get(cell, [])
                   if p.guaranteed)

    def notify_threads(self, cell: Cell) -> set[int]:
        return {p.thread for p in self.posts.get(cell, [])}

    def notify_sites(self, cell: Cell) -> list[Site]:
        seen: set[tuple] = set()
        out: list[Site] = []
        for p in self.posts.get(cell, []):
            key = (p.site.kernel, p.site.lineno)
            if key not in seen:
                seen.add(key)
                out.append(p.site)
        return out

    def pairings(self) -> dict[Cell, tuple[list[WaitRec], list[PostRec]]]:
        """Every waited cell with its wait records and notify records."""
        return {cell: (ws, self.posts.get(cell, []))
                for cell, ws in self.waits.items()}


def thread_post_index(thread: Thread) -> dict[Cell, list[int]]:
    """Cell -> sorted positions at which ``thread`` posts to it."""
    index: dict[Cell, list[int]] = {}
    for pos, ev in enumerate(thread.events):
        if ev.kind == "notify" and ev.bank is not None:
            index.setdefault((ev.bank, ev.cell), []).append(pos)
    return index


def thread_wait_index(thread: Thread) -> dict[Cell, list[int]]:
    """Cell -> sorted positions at which ``thread`` waits on it."""
    index: dict[Cell, list[int]] = {}
    for pos, ev in enumerate(thread.events):
        if ev.kind == "wait" and ev.bank is not None:
            index.setdefault((ev.bank, ev.cell), []).append(pos)
    return index
