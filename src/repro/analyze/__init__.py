"""repro.analyze: static synchronization verifier for tile-centric kernels.

Checks the producer/consumer signal protocol of the overlapped kernels
*without running them*: kernel IR is abstractly interpreted at small
concrete instantiations into per-thread event traces, a signal-flow graph
pairs every wait site with the notify sites feeding it, and the checkers
prove (or refute) deadlock-freedom, guarded tile reads, single
production and full output coverage.  ``python -m repro.analyze --all``
sweeps every registered kernel family.
"""

from repro.analyze.absint import interpret_launch
from repro.analyze.checks import (
    analyze_plan,
    check_coverage,
    check_races,
    check_schedule,
    check_thresholds,
)
from repro.analyze.findings import RULES, Finding, Report, dedupe
from repro.analyze.model import (
    AbstractBank,
    Event,
    LaunchPlan,
    PlanBuilder,
    Site,
    Thread,
)
from repro.analyze.registry import (
    FAMILIES,
    analyze_registered,
    build_ag_gemm_plan,
    build_ag_moe_plan,
    build_gemm_rs_plan,
    build_moe_rs_plan,
    check_compiled_ir,
    structural_check_ir,
)
from repro.analyze.sfg import SignalFlow

__all__ = [
    "AbstractBank",
    "Event",
    "FAMILIES",
    "Finding",
    "LaunchPlan",
    "PlanBuilder",
    "RULES",
    "Report",
    "SignalFlow",
    "Site",
    "Thread",
    "analyze_plan",
    "analyze_registered",
    "build_ag_gemm_plan",
    "build_ag_moe_plan",
    "build_gemm_rs_plan",
    "build_moe_rs_plan",
    "check_compiled_ir",
    "check_coverage",
    "check_races",
    "check_schedule",
    "check_thresholds",
    "dedupe",
    "interpret_launch",
    "structural_check_ir",
]
