"""Plan builders + structural IR checks for the registered kernels.

Each ``build_*_plan`` function mirrors its family's ``*_overlapped``
launcher — same channel construction, constexpr binding, launch streams
and host comm threads — but at a small concrete instantiation (world in
{2, 4, 8}, a few tile-grid shapes) and against abstract signal banks, so
the whole producer/consumer chain can be checked without simulating it.

:data:`FAMILIES` is a lazy view over :mod:`repro.registry`: every kernel
family declares its shipped plan instantiations in its
``register_family(analyze_plans=...)`` hook, and
:func:`analyze_registered` sweeps them — it is what both the
``python -m repro.analyze`` CLI and the mutant tests drive.

:func:`structural_check_ir` is the compile-time half: purely syntactic
rules over one :class:`~repro.lang.ir.KernelIR` (primitive arity, notify
modes, missing channels, rank/block-divergent ``barrier_all``) that run
on every ``compile_kernel(..., validate=True)`` via
:func:`check_compiled_ir`.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Callable, Iterator

from repro.analyze.checks import analyze_plan
from repro.analyze.findings import Finding, Report
from repro.analyze.model import LaunchPlan, PlanBuilder
from repro.errors import AnalysisError
from repro.lang.ir import (
    Const,
    If,
    KernelIR,
    Primitive,
    expr_refs,
    walk_with_parents,
)
from repro.mapping.dynamic import TableTileMapping
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping

# ---------------------------------------------------------------------------
# structural (compile-time) checks
# ---------------------------------------------------------------------------

#: primitive -> (min positional args, max positional args)
_PRIMITIVE_ARITY: dict[str, tuple[int, int]] = {
    "producer_tile_notify": (1, 2),
    "consumer_tile_wait": (1, 1),
    "peer_tile_notify": (2, 2),
    "peer_tile_wait": (2, 2),
    "tile_push_data": (4, 4),
    "tile_pull_data": (2, 3),
    "barrier_all": (0, 0),
}

_NOTIFY_MODES = ("p2p", "broadcast")


def _const_value(arg: Any) -> Any:
    return arg.value if isinstance(arg, Const) else arg


def _taint_sets(ir: KernelIR) -> tuple[set[str], set[str]]:
    """Scalar names (transitively) derived from channel.rank / block id."""
    rank_taint = {"channel.rank"}
    bid_taint = {"$bid"}
    for _ in range(2):  # two passes reach a fixpoint for straight-line defs
        for s in ir.walk_stmts():
            target = getattr(s, "target", None)
            value = getattr(s, "value", None)
            if target is None or value is None:
                continue
            refs = expr_refs(value)
            if refs & rank_taint:
                rank_taint.add(target)
            if refs & bid_taint:
                bid_taint.add(target)
    return rank_taint, bid_taint


def structural_check_ir(ir: KernelIR) -> list[Finding]:
    """Syntactic rules over one kernel IR; no instantiation needed."""
    findings: list[Finding] = []
    prims = [(s, parents) for s, parents in walk_with_parents(ir.body)
             if isinstance(s, Primitive)]
    if prims and ir.channel_param is None:
        s = prims[0][0]
        findings.append(Finding(
            rule="struct.no-channel", kernel=ir.name,
            lineno=getattr(s, "lineno", None),
            message="kernel uses tile-centric primitives but declares no "
                    "BlockChannel parameter"))

    rank_taint, bid_taint = _taint_sets(ir)
    for s, parents in prims:
        lo_hi = _PRIMITIVE_ARITY.get(s.name)
        if lo_hi is not None:
            lo, hi = lo_hi
            if not lo <= len(s.args) <= hi:
                findings.append(Finding(
                    rule="struct.arity", kernel=ir.name,
                    lineno=getattr(s, "lineno", None),
                    message=f"{s.name} takes {lo}..{hi} positional "
                            f"arguments, got {len(s.args)}"))
        if s.name == "producer_tile_notify":
            mode = s.args[1] if len(s.args) > 1 else s.kwargs.get("mode")
            mode = _const_value(mode)
            if mode is not None and isinstance(mode, str) \
                    and mode not in _NOTIFY_MODES:
                findings.append(Finding(
                    rule="struct.bad-mode", kernel=ir.name,
                    lineno=getattr(s, "lineno", None),
                    message=f"producer_tile_notify mode {mode!r} is not "
                            f"one of {_NOTIFY_MODES}"))
        if s.name == "peer_tile_wait":
            count = _const_value(s.kwargs.get("count"))
            if isinstance(count, int) and count <= 0:
                findings.append(Finding(
                    rule="struct.nonpositive-count", kernel=ir.name,
                    lineno=getattr(s, "lineno", None),
                    message=f"peer_tile_wait count={count} is satisfied "
                            "before any notify (not a synchronization)"))
        if s.name == "barrier_all":
            for p in parents:
                if not isinstance(p, If):
                    continue
                refs = expr_refs(p.cond)
                if refs & rank_taint:
                    findings.append(Finding(
                        rule="barrier.rank-divergent", kernel=ir.name,
                        lineno=getattr(s, "lineno", None),
                        message="barrier_all under an If whose condition "
                                "depends on channel.rank: diverging ranks "
                                "never arrive"))
                    break
                if refs & bid_taint:
                    findings.append(Finding(
                        rule="barrier.block-divergent", kernel=ir.name,
                        lineno=getattr(s, "lineno", None),
                        message="barrier_all under an If whose condition "
                                "depends on the block id: diverging blocks "
                                "never arrive"))
                    break
    return findings


def check_compiled_ir(ir: KernelIR) -> list[Finding]:
    """Compile-time gate: raise :class:`AnalysisError` on error findings."""
    findings = structural_check_ir(ir)
    errors = [f for f in findings if f.severity == "error"]
    if errors:
        raise AnalysisError(
            f"{ir.name}: static analysis rejected the kernel:\n"
            + "\n".join(f.render() for f in errors),
            findings=findings)
    return findings


# ---------------------------------------------------------------------------
# plan builders (one per family, mirroring the *_overlapped launchers)
# ---------------------------------------------------------------------------

#: small launch grid shared by all plans (a few producer + consumer blocks)
_GRID = 4
_COMM_BLOCKS = 2


def _override(ir_overrides: dict[str, KernelIR] | None, kdef: Any):
    return (ir_overrides or {}).get(kdef.name)


def build_ag_gemm_plan(world: int = 2, mode: str = "dma", *,
                       block_m: int = 16, block_mp: int = 16,
                       threshold_scale: int = 1,
                       ir_overrides: dict[str, KernelIR] | None = None,
                       name: str | None = None,
                       ) -> tuple[LaunchPlan, list[Finding]]:
    """Mirror of :func:`repro.kernels.ag_gemm.ag_gemm_overlapped`."""
    from repro.kernels.ag_gemm import (
        _ag_consumer_gemm,
        _ag_pull_producer,
        _ag_push_producer,
    )

    m, n, k = world * 32, 32, 32
    bn = bk = 16
    per = m // world
    comm_blocks = 0 if mode == "dma" else _COMM_BLOCKS
    b = PlanBuilder(name or f"ag_gemm/{mode}/w{world}", "ag_gemm", world)
    b.tensor("shards", (per, k))
    b.tensor("w", (k, n))
    b.tensor("gathered", (m, k))
    b.tensor("out", (m, n))
    b.output("gathered")

    mapping = AffineTileMapping(m, block_mp, world, 1)
    channels = b.make_block_channels(
        "ag_gemm", mapping=mapping,
        comm_grid=TileGrid(m, k, block_mp, k),
        consumer_grid=TileGrid(m, n, block_m, bn),
        notify_target="mapped" if mode == "push" else "local",
        threshold_scale=threshold_scale,
        comm_blocks=comm_blocks)

    if mode == "dma":
        for rank in range(world):
            t = b.host(rank, "ag_gemm.dma")
            order = [rank] + [(rank + off) % world
                              for off in range(1, world)]
            for q in order:
                t.read("shards", q, (0, per), (0, k))
                t.write("gathered", rank, (q * per, (q + 1) * per), (0, k))
                t.notify(channels[rank].barriers, q,
                         mapping.tiles_per_channel)
    elif mode == "pull":
        b.launch(_ag_pull_producer, _GRID,
                 dict(M=m, K=k, BMP=block_mp, COMM_BLOCKS=comm_blocks),
                 dict(shards="shards", gathered="gathered"),
                 channels, stream="comm",
                 ir=_override(ir_overrides, _ag_pull_producer))
    elif mode == "push":
        b.launch(_ag_push_producer, _GRID,
                 dict(M=m, K=k, BMP=block_mp, COMM_BLOCKS=comm_blocks,
                      WORLD=world),
                 dict(shards="shards", gathered="gathered"),
                 channels, stream="comm",
                 ir=_override(ir_overrides, _ag_push_producer))
    else:
        raise ValueError(f"unknown ag_gemm mode {mode!r}")

    b.launch(_ag_consumer_gemm, _GRID,
             dict(M=m, N=n, K=k, BM=block_m, BN=bn, BK=bk,
                  COMM_BLOCKS=comm_blocks),
             dict(gathered="gathered", w="w", out="out"),
             channels, ir=_override(ir_overrides, _ag_consumer_gemm))
    return b.build()


def build_gemm_rs_plan(world: int = 2, mode: str = "ring", *,
                       threshold_scale: int | None = None,
                       ir_overrides: dict[str, KernelIR] | None = None,
                       name: str | None = None,
                       ) -> tuple[LaunchPlan, list[Finding]]:
    """Mirror of :func:`repro.kernels.gemm_rs.gemm_rs_overlapped`."""
    from repro.kernels.gemm_rs import (
        _gemm_producer,
        _gemm_rs_ring,
        _rs_reduce,
    )

    m, n, k = world * 32, 32, 32
    bm = bn = bk = bmr = 16
    bnr = 32
    m_per = m // world
    b = PlanBuilder(name or f"gemm_rs/{mode}/w{world}", "gemm_rs", world)
    b.tensor("tokens", (m, k))
    b.tensor("weights", (k, n))
    b.tensor("gemm_out", (m, n))
    b.tensor("out", (m_per, n))

    mapping = AffineTileMapping(m, bm, world, 1)
    gemm_grid = TileGrid(m, n, bm, bn)
    reduce_grid = TileGrid(m, n, bmr, bnr)
    ts = gemm_grid.tiles_n if threshold_scale is None else threshold_scale

    if mode == "ring":
        b.tensor("buffers", (m, n))
        channels = b.make_block_channels(
            "gemm_rs", mapping=mapping, comm_grid=reduce_grid,
            consumer_grid=reduce_grid, peer_cells=reduce_grid.n_tiles,
            threshold_scale=ts, comm_blocks=_COMM_BLOCKS)
        b.launch(_gemm_rs_ring, _GRID,
                 dict(M=m, N=n, K=k, BM=bm, BN=bn, BK=bk, BMR=bmr,
                      BNR=bnr, COMM_BLOCKS=_COMM_BLOCKS),
                 dict(tokens="tokens", weights="weights",
                      gemm_out="gemm_out", buffers="buffers", out="out"),
                 channels, ir=_override(ir_overrides, _gemm_rs_ring))
        return b.build()

    if mode != "hybrid":
        raise ValueError(f"unknown gemm_rs mode {mode!r}")

    b.tensor("landing", (m, n))
    channels = b.make_block_channels(
        "gemm_rs", mapping=mapping, comm_grid=reduce_grid,
        consumer_grid=reduce_grid, peer_cells=world, threshold_scale=ts)

    b.launch(_gemm_producer, _GRID,
             dict(M=m, N=n, K=k, BM=bm, BN=bn, BK=bk),
             dict(tokens="tokens", weights="weights", gemm_out="gemm_out"),
             channels, ir=_override(ir_overrides, _gemm_producer))

    for rank in range(world):
        t = b.host(rank, "gemm_rs.scatter")
        ch = channels[rank]
        for off in range(1, world):
            q = (rank + off) % world
            t.wait(ch.barriers, q,
                   mapping.tiles_in_channel(q) * gemm_grid.tiles_n)
            t.read("gemm_out", rank, (q * m_per, (q + 1) * m_per), (0, n))
            t.write("landing", q, (rank * m_per, (rank + 1) * m_per),
                    (0, n))
            t.notify(ch.all_peer_barriers[q], rank, 1)

    b.launch(_rs_reduce, _GRID,
             dict(M=m, N=n, BMR=bmr, BNR=bnr, WORLD=world),
             dict(landing="landing", gemm_out="gemm_out", out="out"),
             channels, ir=_override(ir_overrides, _rs_reduce))
    return b.build()


def _routing(world: int, m: int, block_m: int):
    from repro.kernels.moe_common import routing_memo

    return routing_memo(4, 2, world, 17)(m, block_m)


def build_ag_moe_plan(world: int = 2, *,
                      ir_overrides: dict[str, KernelIR] | None = None,
                      name: str | None = None,
                      ) -> tuple[LaunchPlan, list[Finding]]:
    """Mirror of :func:`repro.kernels.ag_moe.ag_moe_overlapped`."""
    from repro.kernels.ag_moe import _ag_moe_group_gemm

    m, h, d = world * 32, 32, 32
    bm = bk = 16
    bn = 16
    per = m // world
    routing = _routing(world, m, bm)
    b = PlanBuilder(name or f"ag_moe/w{world}", "ag_moe", world)
    b.tensor("shards", (per, h))
    b.tensor("w1", (4 * h, d))
    b.tensor("gathered", (m, h))
    b.tensor("ids", (routing.padded_rows, 1))
    b.tensor("etile", (routing.n_tiles, 1))
    b.tensor("grouped_out", (routing.padded_rows, d))
    b.output("gathered")

    ag_mapping = AffineTileMapping(m, bm, world)
    channels = b.make_block_channels(
        "ag_moe", mapping=ag_mapping,
        comm_grid=TileGrid(m, h, bm, h),
        consumer_grid=TileGrid(routing.padded_rows, d, bm, bn),
        consumer_mapping=routing.mapping)

    for rank in range(world):
        t = b.host(rank, "ag_moe.dma")
        order = [rank] + [(rank + off) % world for off in range(1, world)]
        for q in order:
            t.read("shards", q, (0, per), (0, h))
            t.write("gathered", rank, (q * per, (q + 1) * per), (0, h))
            t.notify(channels[rank].barriers, q,
                     ag_mapping.tiles_per_channel)

    b.launch(_ag_moe_group_gemm, _GRID,
             dict(NT=routing.n_tiles, H=h, D=d, BM=bm, BN=bn, BK=bk),
             dict(gathered="gathered", weights2d="w1", ids="ids",
                  expert_of_tile="etile", grouped_out="grouped_out"),
             channels, ir=_override(ir_overrides, _ag_moe_group_gemm))
    return b.build()


def build_moe_rs_plan(world: int = 2, *,
                      ir_overrides: dict[str, KernelIR] | None = None,
                      name: str | None = None,
                      ) -> tuple[LaunchPlan, list[Finding]]:
    """Mirror of :func:`repro.kernels.moe_rs.moe_rs_overlapped`."""
    from repro.kernels.moe_rs import _moe_rs_producer, _moe_rs_reduce

    m, h, d = world * 32, 32, 32
    bm = bn = bk = bmr = 16
    bnr = 32
    m_per = m // world
    routing = _routing(world, m, bm)
    b = PlanBuilder(name or f"moe_rs/w{world}", "moe_rs", world)
    b.tensor("grouped_in", (routing.padded_rows, d))
    b.tensor("w2", (4 * d, h))
    b.tensor("ids", (routing.padded_rows, 1))
    b.tensor("etile", (routing.n_tiles, 1))
    b.tensor("row_weights", (routing.padded_rows, 1))
    b.tensor("partial", (m + 1, h))
    b.tensor("landing", (m, h))
    b.tensor("out", (m_per, h))

    seg_mapping = TableTileMapping(world, world, world)
    for s in range(world):
        seg_mapping.fill(s, s * m_per, (s + 1) * m_per, s, s)
    seg_mapping.channel_threshold[:] = routing.segment_thresholds

    channels = b.make_block_channels(
        "moe_rs", mapping=seg_mapping,
        comm_grid=TileGrid(m, h, m_per, h),
        consumer_grid=TileGrid(m_per, h, bmr, bnr),
        consumer_mapping=seg_mapping, peer_cells=world)
    for ch in channels:
        ch.notify_counts = routing.segment_counts

    b.launch(_moe_rs_producer, _GRID,
             dict(NT=routing.n_tiles, D=d, H=h, BM=bm, BN=bn, BK=bk),
             dict(grouped_in="grouped_in", weights2d="w2", ids="ids",
                  expert_of_tile="etile", row_weights="row_weights",
                  partial="partial"),
             channels, ir=_override(ir_overrides, _moe_rs_producer))

    for rank in range(world):
        t = b.host(rank, "moe_rs.scatter")
        ch = channels[rank]
        for off in range(world):
            q = (rank + off) % world
            t.wait(ch.barriers, q, int(routing.segment_thresholds[q]))
            t.read("partial", rank, (q * m_per, (q + 1) * m_per), (0, h))
            t.write("landing", q, (rank * m_per, (rank + 1) * m_per),
                    (0, h))
            t.notify(ch.all_peer_barriers[q], rank, 1)

    b.launch(_moe_rs_reduce, _GRID,
             dict(MP=m_per, H=h, BMR=bmr, BNR=bnr, WORLD=world),
             dict(landing="landing", out="out"),
             channels, ir=_override(ir_overrides, _moe_rs_reduce))
    return b.build()


def _native_plan(family: str, detail: str) -> tuple[LaunchPlan, list]:
    """Families simulated natively (no tile IR): an informational plan."""
    b = PlanBuilder(f"{family}/native", family, 1)
    b.note(f"{family} runs as a native simulator kernel ({detail}); "
           "it has no tile IR to analyze")
    return b.build()


def build_ag_attention_plan(**_: Any) -> tuple[LaunchPlan, list]:
    from repro.kernels.attention import ANALYZE_META

    return _native_plan("ag_attention", ANALYZE_META["detail"])


def build_ring_attention_plan(**_: Any) -> tuple[LaunchPlan, list]:
    from repro.kernels.ring_attention import ANALYZE_META

    return _native_plan("ring_attention", ANALYZE_META["detail"])


class _RegisteredFamilies(Mapping):
    """Lazy family -> plan-thunks view over :mod:`repro.registry`.

    Each kernel module declares its shipped plan instantiations in its
    ``register_family(analyze_plans=...)`` hook; this proxy resolves them
    on first access so importing :mod:`repro.analyze` stays cheap and
    cycle-free.
    """

    def _resolve(self) -> dict[
            str, list[Callable[[], tuple[LaunchPlan, list[Finding]]]]]:
        from repro.registry import families

        return {name: fam.analyze_plans()
                for name, fam in families().items()}

    def __getitem__(self, name: str):
        return self._resolve()[name]

    def __iter__(self):
        return iter(self._resolve())

    def __len__(self) -> int:
        return len(self._resolve())

    def __contains__(self, name: object) -> bool:
        return name in self._resolve()


#: family -> shipped plan instantiations (zero-arg thunks), registry-driven
FAMILIES: Mapping = _RegisteredFamilies()


def analyze_registered(
        families: list[str] | None = None,
) -> Iterator[tuple[LaunchPlan, Report]]:
    """Sweep the registered plan instantiations; yields (plan, report)."""
    names = families if families is not None else list(FAMILIES)
    for family in names:
        if family not in FAMILIES:
            raise KeyError(
                f"unknown kernel family {family!r}; registered: "
                f"{', '.join(FAMILIES)}")
        for thunk in FAMILIES[family]:
            plan, extra = thunk()
            structural = []
            for kernel_name in sorted({t.kernel for t in plan.threads}):
                ir = _shipped_ir(kernel_name)
                if ir is not None:
                    structural.extend(structural_check_ir(ir))
            yield plan, analyze_plan(plan, extra=structural + list(extra))


def _shipped_ir(kernel_name: str) -> KernelIR | None:
    """Resolve a thread's kernel name back to a registered KernelDef IR."""
    from repro.registry import families

    for fam in families().values():
        for kdef in fam.kernels:
            ir = getattr(kdef, "ir", None)
            if ir is not None and ir.name == kernel_name:
                return ir
    return None
