"""The analyzer's checkers: deadlock, race, coverage, barrier divergence.

All checkers run over a fully-built :class:`~repro.analyze.model.LaunchPlan`
and its :class:`~repro.analyze.sfg.SignalFlow`:

* :func:`check_thresholds` — per waited cell, compare the wait threshold
  against the total amount ever posted: zero posts is an unmatched wait,
  a positive-but-short optimistic total can never satisfy the wait, and a
  short *guaranteed* total means satisfaction hinges on an undecided
  branch (warning).
* :func:`check_schedule` — an abstract scheduler: every thread advances
  through its trace, waits block on monotonic counters, barriers
  rendezvous per launch scope, and conditional notifies fire
  optimistically.  A wedged fixpoint is a deadlock even in the best case;
  the blocked waits are reported and the inter-rank wait-for graph is
  condensed (SCC) to surface cross-rank cycles.
* :func:`check_races` — reads of tile buffers must be ordered after the
  overlapping writer: either by stream/launch ordering, or by a wait the
  reader issued earlier on a cell the writer posts at-or-after the write
  (the wait-guards-read rule; an approximation — the threshold could in
  principle be met by other posters, but for tile-mapped channels the
  posters of a cell are exactly the producers of its tiles).  The same
  pass flags guaranteed double-production of one output region.
* :func:`check_coverage` — declared outputs must be fully tiled by
  guaranteed stores on every rank.

Accesses with statically-unknown extents (data-dependent addressing:
``gather_rows``, ``scatter_add_rows``, routing tables) are excluded from
the race and coverage checks by design.
"""

from __future__ import annotations

from repro.analyze.findings import Finding, Report, dedupe
from repro.analyze.model import LaunchPlan, Thread
from repro.analyze.sfg import (
    Cell,
    SignalFlow,
    thread_post_index,
    thread_wait_index,
)


def _fmt_cell(cell: Cell) -> str:
    (bank_name, bank_rank), idx = cell
    return f"{bank_name}@r{bank_rank}[{idx}]"


def _fmt_sites(sites: list) -> str:
    return ", ".join(s.render() for s in sites[:3]) or "none"


# ---------------------------------------------------------------------------
# deadlock: per-cell totals
# ---------------------------------------------------------------------------


def check_thresholds(sfg: SignalFlow) -> list[Finding]:
    findings: list[Finding] = []
    plan = sfg.plan.name
    for cell, (waits, posts) in sfg.pairings().items():
        opt = sum(p.amount for p in posts)
        guaranteed = sum(p.amount for p in posts if p.guaranteed)
        for w in waits:
            if opt == 0:
                findings.append(Finding(
                    rule="deadlock.unmatched-wait", plan=plan,
                    kernel=w.site.kernel, lineno=w.site.lineno,
                    message=f"wait on {_fmt_cell(cell)} (threshold "
                            f"{w.threshold}) has no notify site"))
            elif opt < w.threshold:
                findings.append(Finding(
                    rule="deadlock.unreachable-threshold", plan=plan,
                    kernel=w.site.kernel, lineno=w.site.lineno,
                    message=f"wait on {_fmt_cell(cell)} needs "
                            f"{w.threshold} but total posts reach only "
                            f"{opt} (notify sites: "
                            f"{_fmt_sites(sfg.notify_sites(cell))})"))
            elif guaranteed < w.threshold:
                findings.append(Finding(
                    rule="deadlock.unreachable-threshold", plan=plan,
                    severity="warning",
                    kernel=w.site.kernel, lineno=w.site.lineno,
                    message=f"wait on {_fmt_cell(cell)} needs "
                            f"{w.threshold}; only {guaranteed} posts are "
                            f"unconditional ({opt} optimistic)"))
    return dedupe(findings)


# ---------------------------------------------------------------------------
# deadlock: abstract schedule fixpoint + inter-rank SCC
# ---------------------------------------------------------------------------


def check_schedule(plan: LaunchPlan) -> list[Finding]:
    threads = plan.threads
    n = len(threads)
    counters: dict[Cell, int] = {}
    ptr = [0] * n
    finished = [len(t.events) == 0 for t in threads]
    at_barrier = [False] * n

    remaining: dict[str, int] = {}
    for t in threads:
        remaining[t.group] = remaining.get(t.group, 0) + (
            0 if len(t.events) == 0 else 1)
    scope_members: dict[str, list[int]] = {}
    for i, t in enumerate(threads):
        scope_members.setdefault(t.scope, []).append(i)

    def group_done(group: str) -> bool:
        return remaining.get(group, 0) == 0

    def started(i: int) -> bool:
        return all(group_done(g) for g in threads[i].after)

    def finish(i: int) -> None:
        finished[i] = True
        remaining[threads[i].group] -= 1

    def advance(i: int) -> bool:
        """Step thread i as far as it can go; True if it moved."""
        t = threads[i]
        moved = False
        while ptr[i] < len(t.events):
            ev = t.events[ptr[i]]
            if ev.kind == "wait":
                cell: Cell = (ev.bank, ev.cell)
                if counters.get(cell, 0) >= ev.threshold:
                    ptr[i] += 1
                    moved = True
                else:
                    break
            elif ev.kind == "notify":
                cell = (ev.bank, ev.cell)
                counters[cell] = counters.get(cell, 0) + ev.amount
                ptr[i] += 1
                moved = True
            elif ev.kind == "barrier":
                if not at_barrier[i]:
                    at_barrier[i] = True
                    moved = True
                break
            else:
                ptr[i] += 1
                moved = True
        if ptr[i] >= len(t.events) and not finished[i]:
            finish(i)
            moved = True
        return moved

    progress = True
    while progress:
        progress = False
        for i in range(n):
            if finished[i] or not started(i):
                continue
            if at_barrier[i]:
                continue
            if advance(i):
                progress = True
        # barrier rendezvous per launch scope: release when every live
        # member is parked at its barrier
        for scope, members in scope_members.items():
            live = [i for i in members if not finished[i]]
            if live and all(at_barrier[i] for i in live):
                if any(finished[i] for i in members):
                    # some siblings exited without this barrier: divergence
                    continue
                for i in live:
                    at_barrier[i] = False
                    ptr[i] += 1
                progress = True

    findings: list[Finding] = []
    blocked = [i for i in range(n) if not finished[i] and started(i)]
    if not blocked:
        return findings

    plan_name = plan.name
    blocked_waits: list[tuple[int, Cell]] = []
    for i in blocked:
        ev = threads[i].events[ptr[i]]
        if ev.kind == "barrier":
            exited = [threads[j].key for j in scope_members[threads[i].scope]
                      if finished[j]]
            findings.append(Finding(
                rule="barrier.rank-divergent", plan=plan_name,
                kernel=ev.site.kernel, lineno=ev.site.lineno,
                message=f"thread {threads[i].key} waits at barrier_all but "
                        f"launch siblings exited without reaching it "
                        f"({', '.join(exited[:3]) or 'peers blocked'})"))
        elif ev.kind == "wait":
            cell = (ev.bank, ev.cell)
            blocked_waits.append((i, cell))
            findings.append(Finding(
                rule="deadlock.stall", plan=plan_name,
                kernel=ev.site.kernel, lineno=ev.site.lineno,
                message=f"thread {threads[i].key} wedges at wait on "
                        f"{_fmt_cell(cell)}: counter stuck at "
                        f"{counters.get(cell, 0)} < {ev.threshold} even "
                        f"with all conditional notifies fired"))

    # inter-rank wait-for graph: blocked rank -> ranks holding unfired
    # posts for the blocked cell
    post_idx = [thread_post_index(t) for t in threads]
    edges: set[tuple[int, int]] = set()
    ranks_blocked: set[int] = set()
    for i, cell in blocked_waits:
        ranks_blocked.add(threads[i].rank)
        for j in range(n):
            pending = [p for p in post_idx[j].get(cell, ()) if p >= ptr[j]]
            if pending and not finished[j]:
                edges.add((threads[i].rank, threads[j].rank))
    # mutual reachability over <=8 ranks: tiny transitive closure
    ranks = sorted({r for e in edges for r in e})
    reach = {r: {s for (a, s) in edges if a == r} for r in ranks}
    changed = True
    while changed:
        changed = False
        for r in ranks:
            extra = set()
            for s in reach[r]:
                extra |= reach.get(s, set())
            if not extra <= reach[r]:
                reach[r] |= extra
                changed = True
    cycle_ranks = sorted(
        r for r in ranks
        if r in ranks_blocked and any(
            r in reach.get(s, set()) and s in reach[r] and s != r
            for s in ranks))
    if len(cycle_ranks) >= 2:
        findings.append(Finding(
            rule="deadlock.cycle", plan=plan_name,
            message=f"cross-rank wait cycle over ranks {cycle_ranks}: each "
                    "rank's pending notifies sit behind a wait on another "
                    "rank in the cycle"))
    return dedupe(findings)


# ---------------------------------------------------------------------------
# races and double-produce
# ---------------------------------------------------------------------------


def _overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def check_races(plan: LaunchPlan) -> list[Finding]:
    threads = plan.threads
    findings: list[Finding] = []
    plan_name = plan.name

    # accesses grouped by (tensor, instance rank); unknown extents excluded
    reads: dict[tuple[str, int], list[tuple[int, int, object]]] = {}
    writes: dict[tuple[str, int], list[tuple[int, int, object]]] = {}
    for ti, t in enumerate(threads):
        for pos, ev in enumerate(t.events):
            if ev.tensor is None or ev.rows is None or ev.cols is None:
                continue
            key = (ev.tensor, ev.rank)
            if ev.kind == "read":
                reads.setdefault(key, []).append((ti, pos, ev))
            elif ev.kind == "write":
                writes.setdefault(key, []).append((ti, pos, ev))

    wait_idx = [thread_wait_index(t) for t in threads]
    post_idx = [thread_post_index(t) for t in threads]

    def ordered_after(reader: Thread, writer: Thread) -> bool:
        """Stream/launch ordering already serializes the pair."""
        return writer.group in reader.after or reader.group in writer.after

    def guarded(ri: int, rpos: int, wi: int, wpos: int) -> bool:
        """Reader waited (before reading) on a cell the writer posts
        at-or-after the write."""
        for cell, wait_positions in wait_idx[ri].items():
            if wait_positions[0] >= rpos:
                continue
            posts = post_idx[wi].get(cell)
            if posts and posts[-1] >= wpos:
                return True
        return False

    for key, rlist in reads.items():
        wlist = writes.get(key, [])
        if not wlist:
            continue
        for ri, rpos, rev in rlist:
            for wi, wpos, wev in wlist:
                if wi == ri:
                    continue
                if not (_overlap(rev.rows, wev.rows)
                        and _overlap(rev.cols, wev.cols)):
                    continue
                if ordered_after(threads[ri], threads[wi]):
                    continue
                if guarded(ri, rpos, wi, wpos):
                    continue
                findings.append(Finding(
                    rule="race.unguarded-read", plan=plan_name,
                    kernel=rev.site.kernel, lineno=rev.site.lineno,
                    message=f"read of {key[0]}@r{key[1]} rows{rev.rows} "
                            f"cols{rev.cols} races with write at "
                            f"{wev.site.render()}: no guarding wait "
                            "ordered after the producer's notify"))

    # double-produce: one output region stored twice (guaranteed stores,
    # any thread pair including the same thread — duplicated loop
    # iterations produce twice from one block)
    for key, wlist in writes.items():
        stores = [(ti, pos, ev) for ti, pos, ev in wlist if ev.guaranteed]
        if len(stores) > 2000:
            findings.append(Finding(
                rule="analysis.note", plan=plan_name,
                message=f"{key[0]}@r{key[1]}: {len(stores)} stores — "
                        "double-produce check skipped (budget)"))
            continue
        for a in range(len(stores)):
            ti_a, pos_a, ev_a = stores[a]
            for b in range(a + 1, len(stores)):
                ti_b, pos_b, ev_b = stores[b]
                if _overlap(ev_a.rows, ev_b.rows) \
                        and _overlap(ev_a.cols, ev_b.cols):
                    findings.append(Finding(
                        rule="race.double-produce", plan=plan_name,
                        kernel=ev_b.site.kernel, lineno=ev_b.site.lineno,
                        message=f"{key[0]}@r{key[1]} rows{ev_b.rows} "
                                f"cols{ev_b.cols} produced twice (also "
                                f"written at {ev_a.site.render()})"))
    return dedupe(findings)


# ---------------------------------------------------------------------------
# coverage
# ---------------------------------------------------------------------------


def _union_area(rects: list[tuple[tuple[int, int], tuple[int, int]]]) -> int:
    """Exact union area via coordinate compression (tile counts are tiny)."""
    xs = sorted({x for r, _ in rects for x in r})
    ys = sorted({y for _, c in rects for y in c})
    area = 0
    for i in range(len(xs) - 1):
        for j in range(len(ys) - 1):
            cx, cy = xs[i], ys[j]
            if any(r[0] <= cx < r[1] and c[0] <= cy < c[1]
                   for r, c in rects):
                area += (xs[i + 1] - xs[i]) * (ys[j + 1] - ys[j])
    return area


def check_coverage(plan: LaunchPlan) -> list[Finding]:
    findings: list[Finding] = []
    for name in plan.outputs:
        rows, cols = plan.tensors[name]
        for rank in range(plan.world):
            rects = []
            skip = False
            for t in plan.threads:
                for ev in t.events:
                    if ev.tensor != name or ev.rank != rank:
                        continue
                    if ev.kind not in ("write", "accum"):
                        continue
                    if ev.rows is None or ev.cols is None:
                        skip = True   # unknown-extent writer: unprovable
                        break
                    if ev.guaranteed and ev.kind == "write":
                        rects.append((ev.rows, ev.cols))
                if skip:
                    break
            if skip:
                continue
            covered = _union_area(rects) if rects else 0
            if covered < rows * cols:
                findings.append(Finding(
                    rule="coverage.hole", plan=plan.name,
                    message=f"output {name}@r{rank}: guaranteed stores "
                            f"cover {covered} of {rows * cols} elements "
                            f"({len(rects)} tile stores)"))
    return dedupe(findings)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def analyze_plan(plan: LaunchPlan,
                 extra: list[Finding] | None = None) -> Report:
    """Run every checker over a built plan; returns the Report."""
    report = Report()
    for f in dedupe(extra or []):
        report.add(f)
    for note in plan.notes:
        report.add(Finding(rule="analysis.note", plan=plan.name,
                           message=note))
    sfg = SignalFlow.build(plan)
    report.extend(check_thresholds(sfg))
    report.extend(check_schedule(plan))
    report.extend(check_races(plan))
    report.extend(check_coverage(plan))
    return report
