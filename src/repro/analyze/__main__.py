"""Lint CLI: sweep the registered kernels through the static analyzer.

Usage::

    python -m repro.analyze --all [--strict] [--json PATH]
    python -m repro.analyze --kernel ag_gemm gemm_rs
    python -m repro.analyze --list

Exit status is 0 iff every analyzed plan passes (no error findings;
with ``--strict`` no warnings either) — the CI lint gate.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analyze.findings import Report
from repro.analyze.registry import FAMILIES, analyze_registered


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="static synchronization verifier for the registered "
                    "tile-centric kernels")
    parser.add_argument("--all", action="store_true",
                        help="analyze every registered kernel family")
    parser.add_argument("--kernel", nargs="+", metavar="FAMILY",
                        help="analyze only these families")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")
    parser.add_argument("--json", metavar="PATH",
                        help="also write machine-readable findings to PATH "
                             "('-' for stdout)")
    parser.add_argument("--list", action="store_true",
                        help="list registered families and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the per-plan verdict lines")
    args = parser.parse_args(argv)

    if args.list:
        for family, thunks in FAMILIES.items():
            print(f"{family}: {len(thunks)} plan(s)")
        return 0
    if not args.all and not args.kernel:
        parser.error("pick --all, --kernel FAMILY..., or --list")

    families = None if args.all else args.kernel
    combined = Report()
    plans = []
    failed = False
    try:
        for plan, report in analyze_registered(families):
            ok = report.ok(strict=args.strict)
            failed = failed or not ok
            verdict = "ok" if ok else "FAIL"
            print(f"[{verdict}] {plan.name}: {len(plan.threads)} threads, "
                  f"{len(report.errors)} error(s), "
                  f"{len(report.warnings)} warning(s)")
            if not args.quiet:
                for f in report.sorted():
                    print(f"  {f.render()}")
            combined.extend(report.findings)
            plans.append({"plan": plan.name, "ok": ok})
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.json:
        payload = json.loads(combined.to_json())
        payload["plans"] = plans
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")

    print(f"{len(plans)} plan(s): "
          f"{sum(1 for p in plans if p['ok'])} ok, "
          f"{sum(1 for p in plans if not p['ok'])} failing"
          + (" (strict)" if args.strict else ""))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
