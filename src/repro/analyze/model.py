"""Abstract execution model for the static synchronization analyzer.

The analyzer never runs the simulator.  Instead each kernel launch (and
each host-side comm thread) becomes a :class:`Thread`: a straight-line
trace of :class:`Event` records — signal waits/posts, tile reads/writes,
barriers — obtained by abstractly interpreting the kernel IR at a small
concrete instantiation (world size, tile-grid shape).

Signals live in :class:`AbstractBank` objects.  A bank is a *name*, an
owning rank, and a cell count — it deliberately implements ``__len__`` so
it can be dropped into a real :class:`~repro.lang.block_channel.BlockChannel`
where the runtime would hold a ``SignalArray``; all of the channel's
tile-to-channel/threshold metadata resolution is then reused verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.lang.block_channel import BlockChannel
from repro.mapping.dynamic import TableTileMapping
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping

#: lattice top for scalar abstract values
UNKNOWN = object()

#: (bank name, owning rank) — the analyzer's key for one signal array
BankKey = tuple[str, int]


class AbstractBank:
    """Stand-in for a ``SignalArray``: identity + size, no state."""

    def __init__(self, name: str, rank: int, size: int):
        self.name = name
        self.rank = rank
        self.size = size

    def __len__(self) -> int:
        return self.size

    @property
    def key(self) -> BankKey:
        return (self.name, self.rank)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AbstractBank {self.name}@{self.rank} x{self.size}>"


@dataclass(frozen=True)
class Site:
    """Where an event came from: kernel (or host label) + source line."""

    kernel: str
    lineno: int | None
    detail: str = ""

    def render(self) -> str:
        loc = self.kernel
        if self.lineno is not None:
            loc += f":{self.lineno}"
        return f"{loc} ({self.detail})" if self.detail else loc


@dataclass
class Event:
    """One abstract action in a thread's trace.

    ``kind`` is one of ``wait`` / ``notify`` / ``read`` / ``write`` /
    ``accum`` / ``barrier``.  Signal events carry ``(bank, cell)`` plus an
    ``amount`` (notify) or ``threshold`` (wait).  Access events carry the
    tensor's plan name, the instance rank, and half-open row/col ranges —
    ``None`` when the extent could not be resolved statically (such
    accesses are excluded from the race/coverage checks).
    ``guaranteed`` is False for events under a branch the analyzer could
    not decide.
    """

    kind: str
    site: Site
    guaranteed: bool = True
    bank: BankKey | None = None
    cell: int | None = None
    amount: int = 0
    threshold: int = 0
    tensor: str | None = None
    rank: int | None = None
    rows: tuple[int, int] | None = None
    cols: tuple[int, int] | None = None


@dataclass
class Thread:
    """One abstract execution: a kernel block on a rank, or a host proc."""

    key: str
    kernel: str
    rank: int
    group: str                      # launch id (barrier scope, ordering)
    events: list[Event] = field(default_factory=list)
    #: groups that must fully complete before this thread starts
    #: (same-stream launch ordering); transitively closed by the builder
    after: frozenset[str] = frozenset()
    #: barrier rendezvous scope: one SPMD launch across all ranks
    scope: str = ""


class HostTrace:
    """Recorder for a host-side comm thread (DMA / copy-engine proc)."""

    def __init__(self, label: str, rank: int):
        self.label = label
        self.rank = rank
        self.events: list[Event] = []

    def _site(self, detail: str) -> Site:
        return Site(self.label, None, detail)

    def wait(self, bank: AbstractBank, cell: int, threshold: int) -> None:
        self.events.append(Event(
            "wait", self._site(f"rank_wait cell {cell} >= {threshold}"),
            bank=bank.key, cell=cell, threshold=threshold))

    def notify(self, bank: AbstractBank, cell: int, amount: int = 1) -> None:
        self.events.append(Event(
            "notify", self._site(f"rank_notify cell {cell} += {amount}"),
            bank=bank.key, cell=cell, amount=amount))

    def read(self, tensor: str, rank: int, rows: tuple[int, int],
             cols: tuple[int, int]) -> None:
        self.events.append(Event(
            "read", self._site(f"rank_copy_data read {tensor}@{rank}"),
            tensor=tensor, rank=rank, rows=rows, cols=cols))

    def write(self, tensor: str, rank: int, rows: tuple[int, int],
              cols: tuple[int, int]) -> None:
        self.events.append(Event(
            "write", self._site(f"rank_copy_data write {tensor}@{rank}"),
            tensor=tensor, rank=rank, rows=rows, cols=cols))


@dataclass
class LaunchPlan:
    """A fully-instantiated abstract execution: threads + declared outputs."""

    name: str
    family: str
    world: int
    threads: list[Thread] = field(default_factory=list)
    #: plan tensor name -> per-rank (rows, cols); symmetric across ranks
    tensors: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: tensor names whose full per-rank extent must be covered by writes
    outputs: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


class PlanBuilder:
    """Builds a :class:`LaunchPlan`, mirroring ``DistContext`` channel and
    stream semantics (same-stream launches serialize; banks are shared)."""

    def __init__(self, name: str, family: str, world: int):
        self.name = name
        self.family = family
        self.world = world
        self.plan = LaunchPlan(name=name, family=family, world=world)
        self._channel_count = 0
        self._launch_count = 0
        #: (rank, stream) -> group label of the last enqueued work
        self._stream_tail: dict[tuple[int, str], str] = {}
        #: group -> transitively-closed set of predecessor groups
        self._closure: dict[str, frozenset[str]] = {}
        self._pending: list[tuple] = []   # deferred kernel launches

    # -- channels (mirrors DistContext.make_block_channels) -----------------

    def make_block_channels(
        self,
        name: str,
        mapping: AffineTileMapping | TableTileMapping | None = None,
        comm_grid: TileGrid | None = None,
        consumer_grid: TileGrid | None = None,
        peer_cells: int = 0,
        notify_target: str = "local",
        consumer_mapping: TableTileMapping | None = None,
        threshold_scale: int = 1,
        comm_blocks: int = 0,
    ) -> list[BlockChannel]:
        self._channel_count += 1
        uname = f"{name}.{self._channel_count}"
        n_channels = 1 if mapping is None else mapping.n_channels
        barriers = [AbstractBank(f"{uname}.bar", r, max(1, n_channels))
                    for r in range(self.world)]
        peers: list[AbstractBank] = []
        if peer_cells > 0:
            peers = [AbstractBank(f"{uname}.peer", r, peer_cells)
                     for r in range(self.world)]
        channels = []
        for rank in range(self.world):
            ch = BlockChannel(
                rank=rank,
                num_ranks=self.world,
                comm_blocks=comm_blocks,
                comm_grid=comm_grid,
                consumer_grid=consumer_grid,
                producer_mapping=mapping,
                barriers=barriers[rank],
                all_barriers=barriers,
                all_peer_barriers=peers,
            )
            ch.notify_target = notify_target
            ch.consumer_mapping = consumer_mapping
            ch.threshold_scale = threshold_scale
            channels.append(ch)
        return channels

    # -- tensors ------------------------------------------------------------

    def tensor(self, name: str, shape: tuple[int, int]) -> str:
        self.plan.tensors[name] = shape
        return name

    def output(self, name: str) -> None:
        if name not in self.plan.tensors:
            raise KeyError(f"output {name!r} has no declared shape")
        if name not in self.plan.outputs:
            self.plan.outputs.append(name)

    def note(self, text: str) -> None:
        self.plan.notes.append(text)

    # -- enqueue ordering ----------------------------------------------------

    def _enqueue(self, rank: int, stream: str, label: str) -> str:
        """Reserve a group label on (rank, stream); returns the label with
        its transitive predecessor closure recorded."""
        self._launch_count += 1
        group = f"{label}#{self._launch_count}"
        tail = self._stream_tail.get((rank, stream))
        preds: set[str] = set()
        if tail is not None:
            preds.add(tail)
            preds |= self._closure[tail]
        self._closure[group] = frozenset(preds)
        self._stream_tail[(rank, stream)] = group
        return group

    def launch(self, kdef: Any, grid: int, constexprs: dict[str, Any],
               tensors: dict[str, str], channels: list[BlockChannel],
               stream: str = "default", ir: Any = None,
               label: str | None = None) -> None:
        """Record an SPMD launch (one group per rank, like launch_spmd)."""
        label = label or kdef.name
        for p in kdef.meta.get("outputs", ()):
            if p in tensors:
                self.output(tensors[p])
        self._launch_count += 1
        scope = f"{label}/{self._launch_count}"
        for rank in range(self.world):
            group = self._enqueue(rank, stream, f"{label}[r{rank}]")
            self._pending.append(
                (kdef, ir, grid, constexprs, dict(tensors),
                 channels[rank], rank, group, scope))

    def host(self, rank: int, label: str, stream: str = "comm") -> HostTrace:
        """Record a host-side comm thread; returns its event recorder."""
        trace = HostTrace(label, rank)
        group = self._enqueue(rank, stream, label)
        thread = Thread(key=f"{label}@{rank}", kernel=label, rank=rank,
                        group=group, events=trace.events,
                        after=self._closure[group], scope=group)
        self.plan.threads.append(thread)
        return trace

    # -- build ----------------------------------------------------------------

    def build(self) -> tuple[LaunchPlan, list]:
        """Abstractly interpret all pending launches; returns the finished
        plan plus any findings raised during interpretation."""
        from repro.analyze.absint import interpret_launch

        findings: list = []
        for (kdef, ir, grid, constexprs, tensors, channel, rank,
             group, scope) in self._pending:
            kir = ir if ir is not None else kdef.ir
            for bid in range(grid):
                events, fs = interpret_launch(
                    kir, constexprs, channel, tensors, self.plan.tensors,
                    rank=rank, bid=bid, grid=grid, world=self.world)
                findings.extend(fs)
                self.plan.threads.append(Thread(
                    key=f"{kdef.name}[r{rank}b{bid}]#{group}",
                    kernel=kdef.name, rank=rank, group=group,
                    events=events, after=self._closure[group],
                    scope=scope))
        self._pending = []
        # host threads recorded before later launches captured a stale
        # closure only if the host was enqueued first — recompute nothing:
        # closures were frozen at enqueue time, matching stream semantics.
        return self.plan, findings
