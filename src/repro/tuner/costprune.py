"""Analytic pre-filter for tuner candidates (the *prune* stage).

Running every candidate through the discrete-event simulator is the
expensive part of autotuning (hundreds of milliseconds each at paper
scale).  But an overlapped kernel can never beat the slower of its two
halves: total time is lower-bounded by

* the **compute floor** — wave-quantized GEMM time on the SMs left to the
  consumer (``ceil(tiles / sms)`` waves priced by
  :meth:`repro.sim.costmodel.CostModel.gemm_tile_time`, plus the HBM
  epilogue floor), and
* the **communication floor** — the bytes every rank must move across its
  NVLink, at p2p efficiency, additionally throttled by
  ``comm_blocks * sm_copy_bandwidth`` when the transport is SM ``ld/st``
  loops instead of the copy engine.

:func:`prune` evaluates those closed-form bounds for every candidate and
discards any whose *lower bound* already exceeds the incumbent (the
simulated time of the best config seen so far, seeded with the hand-picked
default).  Only survivors — sorted most-promising-first — reach the
simulator.  Because the bound is conservative it never discards a config
that could actually win, up to the fidelity of the cost model itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.config import HardwareSpec
from repro.sim.costmodel import CostModel
from repro.tuner.space import Candidate

#: Modes whose transport is SM ld/st loops (throughput scales with the
#: number of communication blocks); everything else rides the copy engine.
SM_TRANSPORT_MODES = frozenset({"pull", "push", "ring"})


def gemm_wave_time(spec: HardwareSpec, m: int, n: int, k: int, *,
                   block_m: int, block_n: int, block_k: int,
                   n_sms: int, dtype_bytes: int = 2) -> float:
    """Wave-quantized GEMM makespan on ``n_sms`` SMs (compute floor).

    Delegates to :meth:`CostModel.gemm_time_monolithic` so the pruner's
    floor and the simulator's calibration can never drift apart.
    """
    return CostModel(spec).gemm_time_monolithic(
        m, n, k, dtype_bytes=dtype_bytes, n_sms=max(1, n_sms),
        bm=block_m, bn=block_n, bk=block_k)


def link_transfer_time(spec: HardwareSpec, nbytes: float, *,
                       sm_blocks: int | None = None) -> float:
    """Floor for moving ``nbytes`` through one rank's NVLink port.

    ``sm_blocks`` set means SM-driven transport: the copy loop may not
    even saturate the link, so the floor is the max of the link time and
    the aggregate SM copy throughput.
    """
    t = nbytes / (spec.nvlink_ingress * spec.p2p_protocol_efficiency)
    if sm_blocks is not None:
        t = max(t, nbytes / max(1, sm_blocks) / spec.sm_copy_bandwidth)
    return t


def ag_gemm_lower_bound(cand: Candidate, *, m: int, n: int, k: int,
                        world: int, spec: HardwareSpec,
                        dtype_bytes: int = 2) -> float:
    """Closed-form lower bound for one AG+GEMM candidate.

    AllGather moves ``(world-1)/world`` of the gathered activation into
    every rank; the consumer GEMM covers the full (m x n) output with the
    SMs not reserved for communication.
    """
    mode = cand.get("mode", "dma")
    comm_blocks = int(cand.get("comm_blocks", 0))
    sm_comm = mode in SM_TRANSPORT_MODES
    consumer_sms = spec.n_sms - (comm_blocks if sm_comm else 0)
    compute = gemm_wave_time(
        spec, m, n, k,
        block_m=int(cand.get("block_m", 128)),
        block_n=int(cand.get("block_n", 128)),
        block_k=int(cand.get("block_k", 64)),
        n_sms=consumer_sms, dtype_bytes=dtype_bytes)
    comm_bytes = (world - 1) * (m // world) * k * dtype_bytes
    comm = link_transfer_time(spec, comm_bytes,
                              sm_blocks=comm_blocks if sm_comm else None)
    return max(compute, comm)


def gemm_rs_lower_bound(cand: Candidate, *, m: int, n: int, k: int,
                        world: int, spec: HardwareSpec,
                        dtype_bytes: int = 2) -> float:
    """Closed-form lower bound for one GEMM+RS candidate.

    The producer GEMM covers the full (m x n) partial; ReduceScatter sends
    ``world - 1`` remote segments of ``(m/world x n)`` out of each rank.
    """
    mode = cand.get("mode", "hybrid")
    comm_blocks = int(cand.get("comm_blocks", 0))
    sm_comm = mode in SM_TRANSPORT_MODES
    producer_sms = spec.n_sms - (comm_blocks if sm_comm else 0)
    compute = gemm_wave_time(
        spec, m, n, k,
        block_m=int(cand.get("block_m", 128)),
        block_n=int(cand.get("block_n", 128)),
        block_k=int(cand.get("block_k", 64)),
        n_sms=producer_sms, dtype_bytes=dtype_bytes)
    comm_bytes = (world - 1) * (m // world) * n * dtype_bytes
    comm = link_transfer_time(spec, comm_bytes,
                              sm_blocks=comm_blocks if sm_comm else None)
    return max(compute, comm)


def ag_moe_lower_bound(cand: Candidate, *, m: int, h: int, d: int,
                       world: int, spec: HardwareSpec, topk: int = 2,
                       grouped_rows: int | None = None,
                       dtype_bytes: int = 2) -> float:
    """Closed-form lower bound for one AG+MoE-GroupGEMM candidate.

    The token AllGather rides the copy engine (no SM reservation); the
    grouped consumer GEMM covers at least ``m * topk`` grouped rows —
    expert padding only *adds* tiles, so the un-padded row count is a
    sound floor when the caller has no routing at hand.  Pass the actual
    ``routing.padded_rows`` as ``grouped_rows`` for a tighter bound.
    """
    rows = grouped_rows if grouped_rows is not None else m * topk
    compute = gemm_wave_time(
        spec, rows, d, h,
        block_m=int(cand.get("block_m", 128)),
        block_n=int(cand.get("block_n", 128)),
        block_k=int(cand.get("block_k", 64)),
        n_sms=spec.n_sms, dtype_bytes=dtype_bytes)
    comm_bytes = (world - 1) * (m // world) * h * dtype_bytes
    comm = link_transfer_time(spec, comm_bytes)
    return max(compute, comm)


def moe_rs_lower_bound(cand: Candidate, *, m: int, h: int, d: int,
                       world: int, spec: HardwareSpec, topk: int = 2,
                       grouped_rows: int | None = None,
                       dtype_bytes: int = 2) -> float:
    """Closed-form lower bound for one GroupGEMM+Scatter+TopkReduce+RS
    candidate.

    The producer grouped GEMM covers the grouped rows x ``h`` over depth
    ``d`` on all SMs (scatter-add and the final reduction only add work);
    the segment scatter ships ``world - 1`` fp32 partial segments of
    ``(m/world x h)`` out of every rank on the copy engine.
    """
    rows = grouped_rows if grouped_rows is not None else m * topk
    compute = gemm_wave_time(
        spec, rows, h, d,
        block_m=int(cand.get("block_m", 128)),
        block_n=int(cand.get("block_n", 128)),
        block_k=int(cand.get("block_k", 64)),
        n_sms=spec.n_sms, dtype_bytes=dtype_bytes)
    comm_bytes = (world - 1) * (m // world) * h * 4  # fp32 partials
    comm = link_transfer_time(spec, comm_bytes)
    return max(compute, comm)


def flash_segment_floor(spec: HardwareSpec, heads: int, sq: int, dim: int, *,
                        block_q: int, block_kv: int, n_sms: int,
                        steps: int) -> float:
    """Makespan floor of one flash-attention segment pass.

    Mirrors :func:`repro.ops.attention.flash_segment_time` so the pruner's
    attention floor and the simulator's per-segment pricing cannot drift.
    """
    cm = CostModel(spec)
    blocks = heads * math.ceil(sq / block_q)
    waves = math.ceil(blocks / max(1, n_sms))
    step_t = cm.flash_step_time(block_q, block_kv, dim)
    return waves * (cm.MMA_PROLOGUE + max(1, steps) * step_t)


def ag_attention_lower_bound(cand: Candidate, *, heads: int, head_dim: int,
                             seq_len: int, world: int, spec: HardwareSpec,
                             causal: bool = True,
                             dtype_bytes: int = 2) -> float:
    """Closed-form lower bound for one AG-KV + flash-attention candidate.

    The busiest rank sets the makespan floor: under causal masking the
    last rank attends to every KV segment (its own diagonal segment at
    half density); without masking every rank does.  The KV AllGather
    moves ``world - 1`` remote K and V segments into every rank on the
    copy engine.
    """
    s_per = seq_len // world
    bq = int(cand.get("block_q", 128))
    bkv = int(cand.get("block_kv", 128))
    n_sms = max(1, spec.n_sms - int(cand.get("comm_sms", 0)))
    steps_full = math.ceil(s_per / bkv)
    compute = 0.0
    for seg in range(world):
        frac = 0.5 if (causal and seg == world - 1) else 1.0
        compute += flash_segment_floor(
            spec, heads, s_per, head_dim, block_q=bq, block_kv=bkv,
            n_sms=n_sms, steps=math.ceil(steps_full * frac))
    width = heads * head_dim
    comm_bytes = 2.0 * (world - 1) * s_per * width * dtype_bytes  # K and V
    comm = link_transfer_time(spec, comm_bytes)
    return max(compute, comm)


def ring_attention_lower_bound(cand: Candidate, *, heads: int, head_dim: int,
                               seq_len: int, world: int,
                               spec: HardwareSpec) -> float:
    """Closed-form lower bound for one RingAttention candidate.

    The ring is lockstep: ``world`` steps, each a full-density chunk of
    flash compute (plain RingAttention neither skips masked chunks nor
    rebalances the causal triangle).  Hop latencies only add on top.
    """
    s_per = seq_len // world
    bq = int(cand.get("block_q", 128))
    bkv = int(cand.get("block_kv", 128))
    per_step = flash_segment_floor(
        spec, heads, s_per, head_dim, block_q=bq, block_kv=bkv,
        n_sms=spec.n_sms, steps=math.ceil(s_per / bkv))
    return world * per_step


@dataclass(frozen=True)
class PruneResult:
    """Outcome of the analytic pre-filter over one candidate list.

    ``survivors`` are sorted by ascending bound (most promising first) so
    the search lowers its incumbent as early as possible.
    """

    survivors: tuple[Candidate, ...]
    bounds: tuple[float, ...]          # bound of each survivor, same order
    n_total: int
    n_pruned: int

    @property
    def prune_fraction(self) -> float:
        return self.n_pruned / self.n_total if self.n_total else 0.0


def prune(candidates: Sequence[Candidate],
          bound_fn: Callable[[Candidate], float],
          incumbent: float, *, slack: float = 0.0) -> PruneResult:
    """Drop candidates whose lower bound exceeds ``incumbent * (1+slack)``.

    ``slack > 0`` keeps near-ties alive when the caller distrusts the
    bound's tightness; the acceptance default is 0 (exact dominance).
    """
    if incumbent <= 0:
        raise ValueError("incumbent time must be positive")
    cutoff = incumbent * (1.0 + slack)
    scored = [(bound_fn(c), c) for c in candidates]
    kept = sorted(((b, c) for b, c in scored if b <= cutoff),
                  key=lambda bc: bc[0])
    return PruneResult(
        survivors=tuple(c for _, c in kept),
        bounds=tuple(b for b, _ in kept),
        n_total=len(scored),
        n_pruned=len(scored) - len(kept),
    )
