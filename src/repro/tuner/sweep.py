"""Multi-shape tuning sweeps (the *sweep* driver).

The paper's tables are whole shape *tables* — Table 4's six MoE shapes,
Figure 8's six MLP shapes — not single points, and tuning them one
:func:`repro.tuner.search.tune` call at a time repays none of the work
across shapes.  :func:`sweep` drives a list of
:class:`~repro.tuner.search.TuneTask` through **one shared**
:class:`~repro.tuner.cache.TuneCache`:

* every task's full cache key (kernel | shape | world | spec fingerprint |
  space fingerprint | search signature) is computed up front via
  :func:`repro.tuner.search.task_cache_key`;
* tasks that resolve to the *same* key — shapes sharing a space
  fingerprint and problem signature, or one shape listed under two names —
  are deduplicated: the candidate simulations run once and every aliasing
  entry shares the result (``deduped_from`` names the first task);
* everything else flows through :func:`tune` with the shared cache, so a
  warm rerun of the whole sweep does **zero** simulations
  (``from_cache=True`` on every shape) — cache warm-up is paid once per
  table, not once per bench invocation;
* ``workers=N`` fans the cold, non-aliasing groups out over a process
  pool (:mod:`repro.tuner.parallel`) with identical report semantics.

The returned :class:`SweepReport` carries one :class:`SweepEntry` per
task, formats as a paper-style per-shape table, and exports plain dict
rows for the machine-readable bench path
(``benchmarks/bench_autotune_sweep.py --json``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, Sequence, Union

from repro.config import H800, HardwareSpec
from repro.tuner import cache as cache_mod
from repro.tuner.model import DEFAULT_OPTIMISM, DEFAULT_PROBES
from repro.tuner.search import TuneResult, TuneTask, task_cache_key, tune
from repro.tuner.space import TunerError

#: A sweep input: a bare task (named after its kernel/shape) or a
#: (display name, task) pair.
SweepInput = Union[TuneTask, tuple[str, TuneTask]]


@dataclass(frozen=True)
class SweepEntry:
    """Outcome of one task of a :func:`sweep` call."""

    name: str
    kernel: str
    shape_key: str
    cache_key: str
    result: TuneResult
    #: name of the earlier sweep task whose tuning this entry reused
    #: (same full cache key); ``None`` when this entry ran its own search.
    deduped_from: str | None = None

    @property
    def speedup(self) -> float:
        if not self.result.default_time:
            return float("nan")
        return self.result.default_time / self.result.best_time

    @property
    def n_simulated(self) -> int:
        """Simulations this entry actually paid for (0 when deduplicated)."""
        return 0 if self.deduped_from is not None else self.result.n_simulated

    @property
    def from_cache(self) -> bool:
        """True when no new simulation ran for this shape (persistent-cache
        hit or intra-sweep dedup)."""
        return self.result.from_cache or self.deduped_from is not None


@dataclass
class SweepReport:
    """Per-shape outcomes of one :func:`sweep` call."""

    entries: list[SweepEntry]

    @property
    def n_simulated(self) -> int:
        return sum(e.n_simulated for e in self.entries)

    @property
    def n_from_cache(self) -> int:
        return sum(1 for e in self.entries if e.from_cache)

    @property
    def n_deduped(self) -> int:
        return sum(1 for e in self.entries if e.deduped_from is not None)

    def entry(self, name: str) -> SweepEntry:
        for e in self.entries:
            if e.name == name:
                return e
        raise TunerError(f"no sweep entry named {name!r}; "
                         f"known: {[e.name for e in self.entries]}")

    def rows(self) -> list[dict]:
        """Plain dict rows (one per shape) for JSON emission.

        A cache hit without a recorded ``default_time`` has no baseline:
        ``default_ms`` and ``speedup`` are ``None`` (JSON ``null``), never
        ``0.0``/``NaN`` — ``json.dump`` would serialise the latter as a
        bare ``NaN`` token, which is not valid JSON and breaks strict
        parsers of the ``--json`` bench output.
        """
        return [{
            "name": e.name,
            "kernel": e.kernel,
            "shape": e.shape_key,
            "default_ms": (e.result.default_time * 1e3
                           if e.result.default_time else None),
            "tuned_ms": e.result.best_time * 1e3,
            "speedup": e.speedup if math.isfinite(e.speedup) else None,
            "n_simulated": e.n_simulated,
            "from_cache": e.from_cache,
            "deduped_from": e.deduped_from,
            "best": dict(e.result.best),
        } for e in self.entries]

    def format(self, title: str = "Tuning sweep") -> str:
        """Paper-style per-shape table of the sweep outcome."""
        from repro.util.tables import format_table

        rows = []
        for e in self.entries:
            # dedup wins over cache: a deduplicated entry shares the first
            # task's result object, so result.from_cache alone would
            # mislabel it and disagree with n_deduped in the TOTAL row
            provenance = (f"dedup<-{e.deduped_from}" if e.deduped_from
                          else "cache" if e.result.from_cache else "searched")
            has_default = bool(e.result.default_time)
            rows.append([
                e.name, e.kernel,
                e.result.default_time * 1e3 if has_default else "-",
                e.result.best_time * 1e3,
                e.speedup if has_default else "-",
                e.n_simulated, provenance,
            ])
        rows.append(["TOTAL", "-", "-", "-", "-", self.n_simulated,
                     f"{self.n_from_cache}/{len(self.entries)} warm"])
        return format_table(
            ["shape", "kernel", "default (ms)", "tuned (ms)", "speedup",
             "simulated", "provenance"],
            rows, title=title)


def _normalize(tasks: Iterable[SweepInput]) -> list[tuple[str, TuneTask]]:
    named: list[tuple[str, TuneTask]] = []
    seen: dict[str, int] = {}
    for item in tasks:
        if isinstance(item, TuneTask):
            name, task = f"{item.kernel}:{item.shape_key}", item
        else:
            name, task = item
        # keep display names unique so reports and entry() stay unambiguous
        if name in seen:
            seen[name] += 1
            name = f"{name}#{seen[name]}"
        else:
            seen[name] = 0
        named.append((name, task))
    return named


def sweep(tasks: Sequence[SweepInput], *, world: int = 8,
          spec: HardwareSpec = H800, strategy: str = "exhaustive",
          cache: cache_mod.TuneCache | None = None,
          max_trials: int | None = None, seed: int = 0, slack: float = 0.0,
          halving_scale: float = 0.25, halving_eta: int = 2,
          model_probes: int = DEFAULT_PROBES,
          model_optimism: float = DEFAULT_OPTIMISM,
          workers: int | None = None,
          progress: Callable[[str], None] | None = None,
          recorder=None) -> SweepReport:
    """Tune a whole shape table through one shared cache.

    ``tasks`` is a sequence of :class:`TuneTask` (or ``(name, task)``
    pairs for nicer report labels); every search parameter is shared by
    the whole sweep so the per-task cache keys stay comparable.
    ``workers=N`` (N > 1) fans the non-aliasing cold tasks out over a
    process pool (see :mod:`repro.tuner.parallel`) with identical report
    semantics; the default tunes serially.  ``progress`` (e.g. ``print``)
    receives one line per shape as it resolves.  ``recorder`` (an
    enabled :class:`repro.obs.Recorder`, duck-typed) collects wall-clock
    spans — one ``tune`` span per shape plus the per-stage spans
    :func:`tune` records inside it; under ``workers>1`` only the
    parent-side spans survive (fork-pool children cannot report back).
    """
    named = _normalize(tasks)
    if not named:
        raise TunerError("sweep() needs at least one task")

    rec = (recorder if recorder is not None
           and getattr(recorder, "enabled", False) else None)
    if rec is not None:
        rec.meta.setdefault("kind", "spans")

    if workers is not None and workers > 1:
        from repro.tuner.parallel import parallel_sweep

        return parallel_sweep(
            named, world=world, spec=spec, strategy=strategy, cache=cache,
            max_trials=max_trials, seed=seed, slack=slack,
            halving_scale=halving_scale, halving_eta=halving_eta,
            model_probes=model_probes, model_optimism=model_optimism,
            workers=workers, progress=progress, recorder=recorder)

    memo: dict[str, tuple[str, TuneResult]] = {}
    entries: list[SweepEntry] = []
    for name, task in named:
        key = task_cache_key(task, world=world, spec=spec, strategy=strategy,
                             max_trials=max_trials, seed=seed, slack=slack,
                             halving_scale=halving_scale,
                             halving_eta=halving_eta,
                             model_probes=model_probes,
                             model_optimism=model_optimism)
        if key in memo:
            first_name, shared = memo[key]
            entries.append(SweepEntry(
                name=name, kernel=task.kernel, shape_key=task.shape_key,
                cache_key=key, result=shared, deduped_from=first_name))
            if rec is not None:
                t_now = perf_counter()
                rec.span(t_now, t_now, "cache", f"dedup:{name}<-{first_name}")
            if progress is not None:
                # dedup keys on the FULL cache key (shape, world, spec and
                # search signature included), not just the space
                # fingerprint — say so, and name the shared key
                progress(f"[sweep] {name}: deduplicated (same cache key "
                         f"as {first_name}: {key})")
            continue
        t_tune = perf_counter() if rec is not None else 0.0
        result = tune(task, world=world, spec=spec, strategy=strategy,
                      cache=cache, max_trials=max_trials, seed=seed,
                      slack=slack, halving_scale=halving_scale,
                      halving_eta=halving_eta, model_probes=model_probes,
                      model_optimism=model_optimism, recorder=recorder)
        if rec is not None:
            rec.span(t_tune, perf_counter(), "tune", name)
        memo[key] = (name, result)
        entries.append(SweepEntry(
            name=name, kernel=task.kernel, shape_key=task.shape_key,
            cache_key=key, result=result))
        if progress is not None:
            provenance = ("cache" if result.from_cache
                          else f"{result.n_simulated} simulations")
            progress(f"[sweep] {name}: best {result.best_time * 1e3:.3f} ms "
                     f"({provenance})")
    return SweepReport(entries=entries)
