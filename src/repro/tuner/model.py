"""Model-guided search (the *model* strategy, ``tune(strategy="model")``).

The exhaustive/halving strategies still pay one full-fidelity simulation
per cost-model survivor.  But the pruner's analytic lower bound
(:mod:`repro.tuner.costprune`) is already a good *shape* of the truth —
what it misses is a per-candidate residual: how much slower than its
floor a candidate actually runs once wave quantization, signal waits and
stream scheduling bite.  That residual is strongly structured by the
design-space axes (a ``pull`` mapping pays SM-transport overhead at any
tile size; a tiny ``block_k`` always re-reads the accumulator), so a
lightweight model over the axes can *rank* the remaining candidates
before the searcher pays for them.

:class:`ResidualModel` fits exactly that: per-axis multiplicative
residuals, ridge-regularized, pure-stdlib math.  Each trial contributes
one observation ``log(time / bound)``; the features are one-hot
indicators per (axis, value) pair plus an intercept; ridge-regularized
least squares keeps the tiny, collinear system well-posed.  Predictions
are ``bound * exp(x . w)``, clamped to never dip below the analytic
bound (the bound is provably a floor — the model must not "un-learn"
that).

:func:`model_guided_search` is the search loop built on top, used by
``tune(strategy="model")``:

1. seed with the hand-picked default (simulated by ``tune`` itself) plus
   a small **bound-stratified probe set** — evenly spaced picks over the
   ascending-bound survivor order, so the model sees cheap and expensive
   corners alike;
2. repeatedly refit on every trial paid so far, re-rank the remaining
   survivors by predicted time, and simulate the best-ranked candidate
   **only while its optimistic prediction still beats the incumbent** —
   ``optimistic = bound + optimism * (predicted - bound)``, so
   ``optimism=0`` degrades to pure bound-based dynamic pruning (never
   stops earlier than exhaustive would) and ``optimism=1`` trusts the
   fitted prediction outright;
3. stop the moment no remaining candidate's optimistic prediction beats
   the incumbent.

The fallback is provable: the default config is always simulated at full
fidelity and stays in the trial list, so ``best_time <= default_time``
holds no matter how wrong the model is — early stopping can only cost
optimality, never correctness.  Because the stop budget *does* change
the winner, ``search_signature()`` folds the probe count and optimism
into the cache key: a model-search entry never aliases an exhaustive
one.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.tuner.space import Candidate, TunerError

#: default probe-set size (bound-stratified seeds before the first fit)
DEFAULT_PROBES = 4
#: default optimism: fraction of the predicted residual the stop rule
#: trusts (0 = pure bound / exhaustive behaviour, 1 = trust the model).
DEFAULT_OPTIMISM = 0.75

#: numeric guards: log-residuals are clamped so exp() cannot overflow
_MAX_LOG = 16.0
_TINY = 1e-30


def stratified_probe_indices(n: int, probes: int) -> list[int]:
    """Evenly spaced indices over ``range(n)`` including both endpoints.

    The survivor list arrives sorted by ascending analytic bound, so
    these picks stratify the probe set over the bound distribution —
    the model's first fit sees the promising *and* the dominated end.
    """
    if n <= 0:
        return []
    if probes >= n:
        return list(range(n))
    if probes <= 1:
        return [0]
    return sorted({round(i * (n - 1) / (probes - 1)) for i in range(probes)})


def _solve(a: list[list[float]], b: list[float]) -> list[float]:
    """Solve ``a @ x = b`` by Gaussian elimination with partial pivoting.

    The systems here are tiny (one row per distinct (axis, value) pair,
    typically < 30) and ridge-regularized, so this is both fast and
    well-conditioned — no numpy dependency in the tuner's hot loop.
    """
    n = len(b)
    m = [row[:] + [b[i]] for i, row in enumerate(a)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(m[r][col]))
        if abs(m[pivot][col]) < 1e-12:
            raise TunerError("singular system in ResidualModel fit "
                             "(ridge must be > 0)")
        m[col], m[pivot] = m[pivot], m[col]
        inv = 1.0 / m[col][col]
        for r in range(n):
            if r == col:
                continue
            f = m[r][col] * inv
            if f == 0.0:
                continue
            for c in range(col, n + 1):
                m[r][c] -= f * m[col][c]
    return [m[i][n] / m[i][i] for i in range(n)]


class ResidualModel:
    """Ridge regression of per-axis multiplicative residuals.

    Observations are ``y = log(time / bound)`` per trial; features are an
    intercept plus one-hot indicators per (axis, value) pair seen in the
    training set.  A value never seen in training contributes nothing
    (the intercept carries the average residual), so predictions degrade
    gracefully toward "typical slowdown over the bound" instead of
    extrapolating.  ``ridge`` regularizes every coefficient except the
    intercept, which keeps the intentionally-collinear one-hot system
    (each axis's indicators sum to the intercept column) well-posed.
    """

    def __init__(self, ridge: float = 1.0):
        if ridge <= 0:
            raise TunerError(f"ridge must be > 0, got {ridge}")
        self.ridge = float(ridge)
        self._features: dict[tuple[str, str], int] = {}
        self._weights: list[float] | None = None

    @property
    def fitted(self) -> bool:
        return self._weights is not None

    def _encode(self, cand: Candidate) -> list[int]:
        """Indices (into the weight vector) of the candidate's active
        features; the intercept (index 0) is implicit."""
        return [idx for idx in (self._features.get((axis, repr(value)))
                                for axis, value in cand.items())
                if idx is not None]

    def fit(self, candidates: Sequence[Candidate], bounds: Sequence[float],
            times: Sequence[float]) -> None:
        """(Re)fit from scratch on the trials paid so far."""
        if not (len(candidates) == len(bounds) == len(times)):
            raise TunerError("fit() needs parallel candidate/bound/time "
                             "sequences")
        if not candidates:
            self._features, self._weights = {}, None
            return
        self._features = {}
        for cand in candidates:
            for axis, value in cand.items():
                self._features.setdefault((axis, repr(value)),
                                          len(self._features) + 1)
        dim = 1 + len(self._features)
        xs: list[list[int]] = [[0] + self._encode(c) for c in candidates]
        ys = [max(0.0, min(_MAX_LOG,
                           math.log(max(t, _TINY) / max(b, _TINY))))
              for b, t in zip(bounds, times)]
        # normal equations on the sparse one-hot rows
        ata = [[0.0] * dim for _ in range(dim)]
        aty = [0.0] * dim
        for active, y in zip(xs, ys):
            for i in active:
                aty[i] += y
                for j in active:
                    ata[i][j] += 1.0
        for i in range(1, dim):           # regularize all but the intercept
            ata[i][i] += self.ridge
        ata[0][0] += 1e-9                 # keep the pivot nonzero pre-data
        self._weights = _solve(ata, aty)

    def predict(self, cand: Candidate, bound: float) -> float:
        """Predicted full-fidelity time, never below the analytic bound.

        Unfitted models predict the bound itself (maximum optimism): the
        searcher then behaves like bound-ordered exhaustive search until
        the first fit lands.
        """
        if self._weights is None:
            return bound
        z = self._weights[0] + sum(self._weights[i]
                                   for i in self._encode(cand))
        return max(bound, bound * math.exp(max(-_MAX_LOG, min(_MAX_LOG, z))))


def model_guided_search(
    survivors: Sequence[Candidate], bounds: Sequence[float],
    trials: list[tuple[Candidate, float]], incumbent: float,
    simulate: Callable[[Candidate], float],
    bound_of: Callable[[Candidate], float], *,
    slack: float = 0.0, probes: int = DEFAULT_PROBES,
    optimism: float = DEFAULT_OPTIMISM, ridge: float = 1.0,
) -> tuple[float, int, int, int]:
    """Run the model-guided loop over ``survivors`` (ascending bound).

    Mutates ``trials`` in place (the caller's trial log, already seeded
    with the simulated default) and returns ``(incumbent, n_simulated,
    n_pruned_dynamic, n_model_skipped)`` — the last being the candidates
    abandoned when no remaining optimistic prediction beat the incumbent.
    """
    if not 0.0 <= optimism <= 1.0:
        raise TunerError(f"model optimism must be in [0, 1], got {optimism}")
    if probes < 1:
        raise TunerError(f"model probe count must be >= 1, got {probes}")
    n_sim = n_dyn = 0
    remaining = list(zip(survivors, bounds))

    def cutoff() -> float:
        return incumbent * (1.0 + slack)

    # -- phase 1: bound-stratified probes seed the first fit --------------
    picked = set(stratified_probe_indices(len(remaining), probes))
    probe_set = [cb for i, cb in enumerate(remaining) if i in picked]
    remaining = [cb for i, cb in enumerate(remaining) if i not in picked]
    for cand, bound in probe_set:
        if bound > cutoff():
            n_dyn += 1
            continue
        t = simulate(cand)
        n_sim += 1
        trials.append((dict(cand), t))
        incumbent = min(incumbent, t)

    # -- phase 2: refit, re-rank, simulate while the model says it pays ---
    model = ResidualModel(ridge=ridge)
    while remaining:
        model.fit([c for c, _ in trials],
                  [bound_of(c) for c, _ in trials],
                  [t for _, t in trials])
        ranked = sorted(
            ((b + optimism * (model.predict(c, b) - b), c, b)
             for c, b in remaining), key=lambda obc: obc[0])
        optimistic, cand, bound = ranked[0]
        if optimistic > cutoff():
            # no remaining candidate is predicted to beat the incumbent,
            # even optimistically: stop paying for simulations.  (This
            # subsumes bound-based pruning: optimistic >= bound, so a
            # bound above the cutoff can never reach a simulation.)
            return incumbent, n_sim, n_dyn, len(remaining)
        remaining = [(c, b) for c, b in remaining if c is not cand]
        t = simulate(cand)
        n_sim += 1
        trials.append((dict(cand), t))
        incumbent = min(incumbent, t)
    return incumbent, n_sim, n_dyn, 0
