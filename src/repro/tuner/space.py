"""Declarative search spaces over the decoupled design space (paper §3.1).

The paper's central observation is that an overlapped kernel is picked from
*independent* subspaces: compute tile sizes, communication tile sizes,
push vs. pull dataflow, SM vs. copy-engine transport, and the number of
communication SMs.  :class:`SearchSpace` makes that product explicit — a
tuple of named :class:`Axis` objects plus an optional constraint that
rejects invalid/duplicate combinations (e.g. shape-divisibility rules, or
the fact that a copy-engine mapping ignores the ``comm_blocks`` axis).

Each kernel registers a *space factory* next to its config dataclass (see
``repro.kernels.ag_gemm``) via :func:`register_space`; the tuner resolves
it by kernel name with :func:`get_space`.  To add a new kernel to the
tuner:

1. write ``def my_kernel_search_space(m, n, k, world, preset="default")``
   returning a :class:`SearchSpace` whose axis names match the kernel's
   config-dataclass fields,
2. call ``register_space("my_kernel", my_kernel_search_space)`` at module
   scope, and
3. expose an ``autotune`` classmethod that builds a
   :class:`repro.tuner.search.TuneTask` from it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.errors import TileLinkError


class TunerError(TileLinkError):
    """Invalid search-space definition or tuner usage."""


#: A candidate point: axis name -> chosen value.
Candidate = dict


@dataclass(frozen=True)
class Axis:
    """One named knob of the design space with its discrete values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise TunerError(f"axis {self.name!r} needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise TunerError(f"axis {self.name!r} has duplicate values")


@dataclass(frozen=True)
class SearchSpace:
    """Cartesian product of :class:`Axis` values, minus constraint rejects.

    ``constraint(candidate) -> bool`` prunes invalid points *structurally*
    (divisibility, aliasing axes); performance-based pruning is the job of
    :mod:`repro.tuner.costprune`.
    """

    axes: tuple[Axis, ...]
    constraint: Callable[[Candidate], bool] | None = field(default=None)

    def __post_init__(self) -> None:
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise TunerError(f"duplicate axis names: {names}")

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.axes)

    def candidates(self) -> Iterator[Candidate]:
        """Yield every valid candidate (deterministic axis-major order)."""
        for combo in itertools.product(*(a.values for a in self.axes)):
            cand = dict(zip(self.axis_names, combo))
            if self.constraint is None or self.constraint(cand):
                yield cand

    def __len__(self) -> int:
        return sum(1 for _ in self.candidates())

    def fingerprint(self) -> str:
        """Short stable hash of the axes (names + values).

        Used in cache keys so a changed space invalidates stale entries.
        The constraint is intentionally not hashed (not reliably
        serialisable); change an axis when a space's semantics change.
        """
        payload = json.dumps(
            [[a.name, [repr(v) for v in a.values]] for a in self.axes])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Per-kernel space registry
# ---------------------------------------------------------------------------

#: kernel name -> factory(m, n, k, world, preset=...) -> SearchSpace
_SPACE_REGISTRY: dict[str, Callable[..., SearchSpace]] = {}


def register_space(kernel: str, factory: Callable[..., SearchSpace]) -> None:
    """Register ``factory`` as the search-space builder for ``kernel``."""
    _SPACE_REGISTRY[kernel] = factory


def get_space(kernel: str) -> Callable[..., SearchSpace]:
    """Resolve the registered space factory for ``kernel``."""
    try:
        return _SPACE_REGISTRY[kernel]
    except KeyError:
        raise TunerError(
            f"no search space registered for kernel {kernel!r}; "
            f"known: {sorted(_SPACE_REGISTRY)}") from None


def registered_kernels() -> tuple[str, ...]:
    return tuple(sorted(_SPACE_REGISTRY))


def divisors_of(extent: int, values: Sequence[int]) -> tuple[int, ...]:
    """Filter ``values`` down to those dividing ``extent`` (axis helper)."""
    out = tuple(v for v in values if extent % v == 0)
    if not out:
        raise TunerError(f"no value of {values} divides extent {extent}")
    return out
