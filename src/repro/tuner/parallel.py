"""Parallel execution layer for multi-shape sweeps (``sweep(..., workers=N)``).

A cold sweep over a paper shape table pays every candidate simulation on
one core; the tasks are independent once deduplicated, so the sweep can
fan out.  :func:`parallel_sweep` keeps the serial driver's exact
semantics by splitting the work in three:

1. **partition** — every task's full cache key is computed up front (the
   same :func:`~repro.tuner.search.task_cache_key` the serial path uses);
   tasks aliasing an earlier key never reach a worker, they share the
   leader's result exactly as serial dedup does;
2. **resolve warm leaders in-parent** — a key already present in the
   shared cache is answered by a cache probe (zero simulations), so a
   warm rerun never spawns a process;
3. **fan out cold leaders** — :func:`repro.util.forkpool.fork_run`
   (the fork-inheriting index pool this layer was extracted into) tunes
   each remaining group.  Every group writes to its *own* cache file
   (atomic rename, written once when the group finishes), and the
   parent folds the finished files into the shared cache through
   :meth:`~repro.tuner.cache.TuneCache.merge_from` — the same
   flock-protected read-merge-rename path every other cache write takes.
   A worker that crashes mid-group therefore cannot corrupt the shared
   file or drop other groups' results: its file simply never exists,
   while completed groups are merged in a ``finally`` before the failure
   propagates.

:class:`~repro.tuner.search.TuneTask` carries closures (builder
factories, analytic bounds) that cannot cross a pickle boundary, so the
pool inherits the task table over ``fork()`` and workers receive only a
group index.  On platforms without ``fork`` the driver degrades to the
serial loop — same report, no parallelism.  (The serial loop is kept
here rather than delegated to the pool's own fallback because it tunes
against the *shared* cache, not private per-group files.)

The report is assembled in task order from per-key results, so entry
order, dedup labels and ``n_simulated`` accounting are identical to the
serial run (``SweepReport.rows()`` compares byte-for-byte): the
simulator is deterministic, and a cold group tunes against an empty
private cache exactly like a cold serial task tunes against a shared
cache that does not contain its key.
"""

from __future__ import annotations

import shutil
import tempfile
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from time import perf_counter
from typing import Callable

from repro.config import H800, HardwareSpec
from repro.tuner import cache as cache_mod
from repro.tuner.model import DEFAULT_OPTIMISM, DEFAULT_PROBES
from repro.tuner.search import TuneResult, TuneTask, task_cache_key, tune
from repro.tuner.space import TunerError
from repro.util.forkpool import fork_available, fork_run


def _merge_worker_caches(cache: cache_mod.TuneCache | None,
                         cache_dir: str | None) -> int:
    """Fold every *finished* per-group cache file into the shared cache
    (one flush for all of them).

    Group files appear atomically when their tune completes, so this is
    safe to run after a worker crash: partial groups have no file, and
    the shared cache only ever sees complete entries.

    A readonly shared cache is skipped outright: ``merge_from`` raises on
    readonly handles (nothing would persist), and this runs in a
    ``finally`` where raising would discard the completed report — the
    same silent-no-persist semantics the serial path's ``put`` has.
    """
    if cache is None or cache_dir is None or cache.readonly:
        return 0
    # numeric group order (not lexicographic): merge_from gives later
    # sources precedence on key conflicts, so precedence must follow the
    # group index, not "group10" < "group2"
    files = sorted(Path(cache_dir).glob("group*.json"),
                   key=lambda p: int(p.stem[len("group"):]))
    return cache.merge_from(*files)


def parallel_sweep(named: list[tuple[str, TuneTask]], *, world: int = 8,
                   spec: HardwareSpec = H800, strategy: str = "exhaustive",
                   cache: cache_mod.TuneCache | None = None,
                   max_trials: int | None = None, seed: int = 0,
                   slack: float = 0.0, halving_scale: float = 0.25,
                   halving_eta: int = 2,
                   model_probes: int = DEFAULT_PROBES,
                   model_optimism: float = DEFAULT_OPTIMISM, workers: int = 2,
                   progress: Callable[[str], None] | None = None,
                   recorder=None):
    """Run one sweep's task list with cold key groups fanned out over a
    process pool.  Called by :func:`repro.tuner.sweep.sweep` with the
    already-normalized ``(name, task)`` list; not meant to be invoked
    directly.

    ``recorder`` spans cover only parent-side work: warm-leader cache
    probes, the serial fallback, and one ``fanout`` span bracketing the
    whole worker pool.  Per-candidate spans recorded *inside* forked
    children die with the child process (a fork-pool worker returns only
    its pickled :class:`TuneResult`), so a parallel sweep's span total
    under-counts by design — the fanout span is the honest envelope.
    """
    from repro.tuner.sweep import SweepEntry, SweepReport

    rec = (recorder if recorder is not None
           and getattr(recorder, "enabled", False) else None)

    tune_kwargs = dict(world=world, spec=spec, strategy=strategy,
                       max_trials=max_trials, seed=seed, slack=slack,
                       halving_scale=halving_scale, halving_eta=halving_eta,
                       model_probes=model_probes,
                       model_optimism=model_optimism)

    keyed = [(name, task,
              task_cache_key(task, world=world, spec=spec, strategy=strategy,
                             max_trials=max_trials, seed=seed, slack=slack,
                             halving_scale=halving_scale,
                             halving_eta=halving_eta,
                             model_probes=model_probes,
                             model_optimism=model_optimism))
             for name, task in named]

    # -- partition: one leader per unique key, in first-occurrence order --
    leaders: list[tuple[str, TuneTask, str]] = []
    seen: set[str] = set()
    for name, task, key in keyed:
        if key not in seen:
            seen.add(key)
            leaders.append((name, task, key))

    results: dict[str, TuneResult] = {}

    # -- warm leaders: a shared-cache probe answers without simulating ----
    cold: list[tuple[str, TuneTask, str]] = []
    for name, task, key in leaders:
        if cache is not None and key in cache:
            results[key] = tune(task, cache=cache, recorder=recorder,
                                **tune_kwargs)
        else:
            cold.append((name, task, key))

    # -- cold leaders: fan out (or fall back to the serial loop) ----------
    if cold and (not fork_available() or workers <= 1 or len(cold) == 1):
        for name, task, key in cold:
            results[key] = tune(task, cache=cache, recorder=recorder,
                                **tune_kwargs)
    elif cold:
        cache_dir = (tempfile.mkdtemp(prefix="repro-sweep-workers-")
                     if cache is not None else None)
        cold_tasks = [task for _, task, _ in cold]

        def tune_group(index: int) -> TuneResult:
            """Tune one cold key group against a private cache file
            (inherited over ``fork()``; only ``index`` crosses)."""
            group_cache = None
            if cache_dir is not None:
                group_cache = cache_mod.TuneCache(
                    Path(cache_dir) / f"group{index}.json")
            return tune(cold_tasks[index], cache=group_cache, **tune_kwargs)

        t_fan = perf_counter() if rec is not None else 0.0
        try:
            group_results, group_failures = fork_run(
                tune_group, len(cold), workers)
            if rec is not None:
                rec.span(t_fan, perf_counter(), "fanout",
                         f"{len(cold)} groups x {workers} workers")
        finally:
            try:
                _merge_worker_caches(cache, cache_dir)
            finally:
                if cache_dir is not None:
                    shutil.rmtree(cache_dir, ignore_errors=True)
        for i, result in group_results.items():
            results[cold[i][2]] = result
        if group_failures:
            # a dead worker fails *every* unfinished future with
            # BrokenProcessPool, so prefer a real exception (the root
            # cause) for the re-raise; name no specific task otherwise
            failures = [(cold[i][0], exc) for i, exc in group_failures]
            for name, exc in failures:
                if not isinstance(exc, BrokenProcessPool):
                    raise exc
            names = sorted(name for name, _ in failures)
            raise TunerError(
                f"a sweep worker died while tuning one of {names}; "
                f"completed groups were merged into the shared cache"
            ) from failures[0][1]

    # -- assemble in task order: identical to the serial report -----------
    first_name: dict[str, str] = {}
    entries: list[SweepEntry] = []
    for name, task, key in keyed:
        if key in first_name:
            entries.append(SweepEntry(
                name=name, kernel=task.kernel, shape_key=task.shape_key,
                cache_key=key, result=results[key],
                deduped_from=first_name[key]))
            if progress is not None:
                # keep this line identical to the serial driver's: dedup
                # keys on the FULL cache key, so name the shared key
                progress(f"[sweep] {name}: deduplicated (same cache key "
                         f"as {first_name[key]}: {key})")
            continue
        first_name[key] = name
        result = results[key]
        entries.append(SweepEntry(
            name=name, kernel=task.kernel, shape_key=task.shape_key,
            cache_key=key, result=result))
        if progress is not None:
            provenance = ("cache" if result.from_cache
                          else f"{result.n_simulated} simulations")
            progress(f"[sweep] {name}: best {result.best_time * 1e3:.3f} ms "
                     f"({provenance})")
    return SweepReport(entries=entries)
