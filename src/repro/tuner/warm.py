"""Shipped warm-cache plumbing (tuned-by-default resolution).

``benchmarks/warm_cache.json`` is a checked-in read-only
:class:`~repro.tuner.cache.TuneCache` holding the exhaustive-search
winners for the paper's shape tables.  Consumers — the bench builders'
``tuned=None`` auto mode and the end-to-end runner's
``method="tilelink-tuned"`` — resolve configs through it with **zero**
simulation: a key hit yields the finalized tuned config, a miss falls
back to the paper default.  This module owns the file location and the
hit-or-None resolution step so :mod:`repro.bench.experiments` and
:mod:`repro.models.transformer` share one implementation.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.config import HardwareSpec
from repro.tuner.cache import TuneCache

#: Environment override for the shipped warm-cache location (point it at a
#: nonexistent path to disable the tuned-by-default columns).
ENV_WARM_CACHE = "REPRO_WARM_CACHE"


def warm_cache_path() -> Path:
    env = os.environ.get(ENV_WARM_CACHE)
    if env:
        return Path(env)
    return (Path(__file__).resolve().parents[3] / "benchmarks"
            / "warm_cache.json")


def resolve_warm_cache(path: str | os.PathLike | None = None
                       ) -> TuneCache | None:
    """The shipped warm cache as a read-only :class:`TuneCache`, or
    ``None`` when the file does not exist (source checkouts only ship
    it; installed packages fall back to untuned columns)."""
    p = Path(path) if path is not None else warm_cache_path()
    if not p.is_file():
        return None
    return TuneCache(p, readonly=True)


def warm_tuned_config(cache: TuneCache | None, task: Any, *, world: int,
                      spec: HardwareSpec,
                      max_trials: int | None = None) -> Any | None:
    """Finalized tuned config for ``task`` from ``cache``, or ``None``.

    Purely a cache lookup — never simulates.  ``task`` is a
    :class:`~repro.tuner.search.TuneTask`; the key is computed for the
    given runtime ``world``/``spec`` so a deployment that diverged from
    the shipped sweep's testbed misses cleanly instead of being served a
    config tuned for different hardware.
    """
    if cache is None:
        return None
    from repro.tuner.search import task_cache_key

    hit = cache.get(task_cache_key(task, world=world, spec=spec,
                                   max_trials=max_trials))
    if hit is None:
        return None
    return task.finalize(dict(hit["best"]))
