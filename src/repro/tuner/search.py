"""Search strategies over the pruned candidate set (the *search* stage).

The pipeline a :func:`tune` call runs:

1. **cache probe** — return immediately on a hit (no simulation at all);
2. **incumbent seed** — simulate the task's hand-picked default config
   once; its time is the bar every candidate must beat;
3. **prune** — :func:`repro.tuner.costprune.prune` discards every
   candidate whose analytic lower bound already exceeds the incumbent;
4. **search** — simulate survivors through
   :func:`repro.bench.harness.run_builder` under one of three strategies:

   * ``"exhaustive"`` — every survivor, in ascending-bound order, with
     *dynamic* re-pruning: as the incumbent drops, later candidates whose
     bound now exceeds it are skipped without simulating;
   * ``"random"`` — a seeded random subset of at most ``max_trials``
     survivors (same dynamic re-pruning);
   * ``"halving"`` — successive halving: every survivor is first simulated
     on a *scaled-down* problem (rows shrunk by ``scale``), only the top
     ``1/eta`` fraction graduates to a full-size simulation;
   * ``"model"`` — model-guided search: a :class:`repro.tuner.model.ResidualModel`
     is trained online on the trials already paid for, re-ranks the
     remaining survivors by predicted time, and the search stops as soon
     as no remaining candidate's optimistic prediction beats the
     incumbent (73 vs 200 simulations over the full Figure-8 MLP table,
     never worse than the default);

5. **cache write** — persist the winner keyed on (kernel, shape, world,
   spec fingerprint, space fingerprint).

The default config is always simulated at full size and included in the
final ranking, so ``best_time <= default_time`` holds by construction —
tuning can only match or improve on the hand-picked point.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

from repro.config import H800, HardwareSpec
from repro.tuner import cache as cache_mod
from repro.tuner.costprune import PruneResult, prune
from repro.tuner.model import (
    DEFAULT_OPTIMISM,
    DEFAULT_PROBES,
    model_guided_search,
)
from repro.tuner.space import Candidate, SearchSpace, TunerError

#: builder(ctx) callable accepted by repro.bench.harness.run_builder.
Builder = Callable[[Any], None]


@dataclass(frozen=True)
class TuneTask:
    """Everything the searcher needs to tune one kernel on one shape.

    Kernel modules construct these next to their config dataclasses (see
    ``AgGemmConfig.autotune``).  ``make_builder(candidate, scale)`` must
    return a fresh-context builder for the candidate with the problem's
    row dimension shrunk by ``scale`` (``1.0`` = full size; used by the
    halving strategy's cheap low-fidelity rungs).  ``bound(candidate)`` is
    the analytic lower bound the pruner uses; ``finalize(candidate)``
    converts the winning dict into the kernel's config object.
    """

    kernel: str
    shape_key: str
    space: SearchSpace
    default: Candidate
    make_builder: Callable[[Candidate, float], Builder]
    bound: Callable[[Candidate], float]
    finalize: Callable[[Candidate], Any] = field(default=lambda c: dict(c))


@dataclass
class TuneResult:
    """Outcome of one :func:`tune` call (also what the cache reconstructs)."""

    best: Candidate
    best_time: float
    best_config: Any
    default_time: float | None
    n_candidates: int
    n_pruned: int           # discarded by the analytic pre-filter
    n_pruned_dynamic: int   # skipped later as the incumbent improved
    n_simulated: int        # full discrete-event simulations actually run
    from_cache: bool
    strategy: str
    #: candidates abandoned when the model strategy's early stop fired
    #: (no remaining optimistic prediction beat the incumbent); 0 for
    #: every other strategy and for cache hits.
    n_model_skipped: int = 0
    trials: list[tuple[Candidate, float]] = field(default_factory=list)

    @property
    def prune_fraction(self) -> float:
        return self.n_pruned / self.n_candidates if self.n_candidates else 0.0


def search_signature(strategy: str, max_trials: int | None, seed: int,
                     slack: float = 0.0, halving_scale: float = 0.25,
                     halving_eta: int = 2,
                     model_probes: int = DEFAULT_PROBES,
                     model_optimism: float = DEFAULT_OPTIMISM) -> str:
    """Cache-key suffix identifying a *restricted* search.

    The canonical full search (exhaustive, uncapped, no prune slack) keeps
    a bare key so bench reruns and ``mode="auto"`` all share one entry;
    every weaker search is suffixed so its possibly-weaker winner never
    aliases it.  *Every* result-changing search parameter is folded in:
    ``max_trials`` (``mtall`` when uncapped — a normalized token, not the
    Python repr), the random seed, the prune ``slack`` (a slack-loosened
    prune can admit — and pick — a candidate the strict run never
    simulates), for halving the rung ``halving_scale``/``halving_eta``
    (an aggressive scale-down ranks the rung differently and may graduate
    a weaker finalist), and for the model strategy the probe budget and
    stop optimism (both move the early-stop point and therefore the
    winner — a model-search entry must never alias an exhaustive one).
    Halving keys always carry the ``hs``/``he`` fields, so entries stored
    under the pre-scale legacy format are never served back (same
    migration stance as the ``mtNone`` cleanup).

    Known limitation: a bare-key entry written by *pre-signature* code
    running an exhaustive search with ``slack > 0`` is indistinguishable
    from a genuine canonical entry and is still served; no in-repo
    caller ever combined slack with a persistent cache, and re-tuning
    (``TuneCache.clear()``) evicts such an entry if one exists.
    """
    if strategy == "exhaustive" and max_trials is None and slack == 0.0:
        return ""
    mt = "all" if max_trials is None else str(int(max_trials))
    sig = f"|{strategy}-mt{mt}-s{int(seed)}"
    if slack != 0.0:
        sig += f"-sl{float(slack):g}"
    if strategy == "halving":
        sig += f"-hs{float(halving_scale):g}-he{int(halving_eta)}"
    if strategy == "model":
        sig += f"-p{int(model_probes)}-o{float(model_optimism):g}"
    return sig


def task_cache_key(task: TuneTask, *, world: int, spec: HardwareSpec,
                   strategy: str = "exhaustive",
                   max_trials: int | None = None, seed: int = 0,
                   slack: float = 0.0, halving_scale: float = 0.25,
                   halving_eta: int = 2, model_probes: int = DEFAULT_PROBES,
                   model_optimism: float = DEFAULT_OPTIMISM) -> str:
    """The exact persistent-cache key a :func:`tune` call would use."""
    return cache_mod.make_key(
        task.kernel, task.shape_key, world, spec.fingerprint(),
        task.space.fingerprint()) + search_signature(
            strategy, max_trials, seed, slack, halving_scale, halving_eta,
            model_probes, model_optimism)


def _simulate(task: TuneTask, cand: Candidate, scale: float, *,
              world: int, spec: HardwareSpec) -> float:
    # Imported lazily: repro.bench pulls in the kernel zoo, which itself
    # imports the tuner to register search spaces.
    from repro.bench.harness import run_builder

    return run_builder(task.make_builder(cand, scale), world=world, spec=spec)


def tune(task: TuneTask, *, world: int = 8, spec: HardwareSpec = H800,
         strategy: str = "exhaustive", cache: cache_mod.TuneCache | None = None,
         max_trials: int | None = None, seed: int = 0, slack: float = 0.0,
         halving_scale: float = 0.25, halving_eta: int = 2,
         model_probes: int = DEFAULT_PROBES,
         model_optimism: float = DEFAULT_OPTIMISM,
         recorder=None) -> TuneResult:
    """Autotune ``task`` and return the best configuration found.

    This is the subsystem's one-call API: prune with the cost model,
    search the survivors through the simulator, memoise the winner.

    ``recorder`` (an enabled :class:`repro.obs.Recorder`, duck-typed —
    this module never imports :mod:`repro.obs`) collects *wall-clock*
    spans: one per candidate simulation (labelled by kernel/shape and
    search stage), one per prune pass, one per cache probe/write — so a
    sweep's wall time is attributable span by span.  ``None`` (the
    default) records nothing and skips every timing call.
    """
    if strategy not in ("exhaustive", "random", "halving", "model"):
        raise TunerError(f"unknown search strategy {strategy!r}")
    if strategy == "halving" and halving_eta < 2:
        # a silently clamped eta would run a different search than the
        # cache signature records, duplicating the he2 entry under a
        # second key that describes a search that never ran
        raise TunerError(f"halving_eta must be >= 2, got {halving_eta}")
    if strategy == "model":
        # reject upfront, before the default's full-fidelity simulation
        # is paid (model_guided_search re-checks for its own callers)
        if not 0.0 <= model_optimism <= 1.0:
            raise TunerError(
                f"model optimism must be in [0, 1], got {model_optimism}")
        if model_probes < 1:
            raise TunerError(
                f"model probe count must be >= 1, got {model_probes}")

    rec = (recorder if recorder is not None
           and getattr(recorder, "enabled", False) else None)
    if rec is not None:
        rec.meta.setdefault("kind", "spans")
    shape = f"{task.kernel}:{task.shape_key}"

    def sim(cand: Candidate, scale: float, stage: str) -> float:
        """One candidate simulation, span-recorded when tracing."""
        if rec is None:
            return _simulate(task, cand, scale, world=world, spec=spec)
        t0 = perf_counter()
        t = _simulate(task, cand, scale, world=world, spec=spec)
        rec.span(t0, perf_counter(), "simulate", f"{shape}:{stage}")
        return t

    # The search signature is part of the key: a capped/random search must
    # not alias a later, stronger search on the same shape/spec/space.
    key = task_cache_key(task, world=world, spec=spec, strategy=strategy,
                         max_trials=max_trials, seed=seed, slack=slack,
                         halving_scale=halving_scale, halving_eta=halving_eta,
                         model_probes=model_probes,
                         model_optimism=model_optimism)
    if cache is not None:
        t_probe = perf_counter() if rec is not None else 0.0
        hit = cache.get(key)
        if rec is not None:
            rec.span(t_probe, perf_counter(), "cache",
                     f"{'hit' if hit is not None else 'miss'}:{shape}")
        if hit is not None:
            best = dict(hit["best"])
            default_time = hit.get("meta", {}).get("default_time")
            return TuneResult(
                best=best, best_time=float(hit["time_s"]),
                best_config=task.finalize(best),
                # coerce like time_s: a hand-edited or foreign cache file
                # may carry the meta value as a JSON string, and a stringly
                # default_time would leak into SweepReport.rows()
                default_time=(float(default_time)
                              if default_time is not None else None),
                n_candidates=int(hit.get("meta", {}).get("n_candidates", 0)),
                n_pruned=int(hit.get("meta", {}).get("n_pruned", 0)),
                n_pruned_dynamic=0, n_simulated=0, from_cache=True,
                strategy=str(hit.get("meta", {}).get("strategy", strategy)))

    candidates = list(task.space.candidates())
    if not candidates:
        raise TunerError(f"search space for {task.kernel!r} is empty")

    # -- incumbent seed: the hand-picked default --------------------------
    default_time = sim(task.default, 1.0, "default")
    n_simulated = 1
    trials: list[tuple[Candidate, float]] = [(dict(task.default), default_time)]
    incumbent = default_time

    # -- static prune against the incumbent -------------------------------
    others = [c for c in candidates if c != task.default]
    t_prune = perf_counter() if rec is not None else 0.0
    pruned: PruneResult = prune(others, task.bound, incumbent, slack=slack)
    if rec is not None:
        rec.span(t_prune, perf_counter(), "prune",
                 f"{shape}:{pruned.n_pruned}/{len(others)}")

    # -- pick the trial list per strategy ----------------------------------
    survivors = list(pruned.survivors)
    n_dynamic = 0
    n_model_skipped = 0
    if strategy == "random":
        rng = random.Random(seed)
        rng.shuffle(survivors)
        survivors = survivors[:max_trials if max_trials is not None else len(survivors)]
    elif strategy == "exhaustive" and max_trials is not None:
        survivors = survivors[:max_trials]
    elif strategy == "halving" and len(survivors) > 1:
        if max_trials is not None:
            survivors = survivors[:max_trials]   # cap the rung, bound order
        scored = [(c, sim(c, halving_scale, "rung")) for c in survivors]
        n_simulated += len(scored)
        scored.sort(key=lambda ct: ct[1])
        keep = max(1, math.ceil(len(scored) / halving_eta))
        survivors = [c for c, _ in scored[:keep]]
    elif strategy == "model":
        bounds = list(pruned.bounds)
        if max_trials is not None:
            survivors = survivors[:max_trials]
            bounds = bounds[:max_trials]
        incumbent, n_model_sim, n_dynamic, n_model_skipped = \
            model_guided_search(
                survivors, bounds, trials, incumbent,
                lambda c: sim(c, 1.0, "model"),
                task.bound, slack=slack, probes=model_probes,
                optimism=model_optimism)
        n_simulated += n_model_sim
        survivors = []          # the shared full-fidelity pass has no work

    # -- full-fidelity pass with dynamic re-pruning ------------------------
    for cand in survivors:
        if task.bound(cand) > incumbent * (1.0 + slack):
            n_dynamic += 1
            continue
        t = sim(cand, 1.0, "search")
        n_simulated += 1
        trials.append((dict(cand), t))
        incumbent = min(incumbent, t)

    best, best_time = min(trials, key=lambda ct: ct[1])
    result = TuneResult(
        best=best, best_time=best_time, best_config=task.finalize(best),
        default_time=default_time, n_candidates=len(candidates),
        n_pruned=pruned.n_pruned, n_pruned_dynamic=n_dynamic,
        n_simulated=n_simulated, from_cache=False, strategy=strategy,
        n_model_skipped=n_model_skipped, trials=trials)

    if cache is not None:
        t_put = perf_counter() if rec is not None else 0.0
        cache.put(key, best, best_time, meta={
            "default_time": default_time, "n_candidates": len(candidates),
            "n_pruned": pruned.n_pruned, "strategy": strategy,
            "n_simulated": n_simulated,
            "kernel": task.kernel, "shape": task.shape_key, "world": world,
        })
        if rec is not None:
            rec.span(t_put, perf_counter(), "cache", f"put:{shape}")
    return result
