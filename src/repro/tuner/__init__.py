"""``repro.tuner`` — autotuning over the decoupled tile-centric design space.

The paper picks one point per kernel out of its §3.1 design space by hand;
this subsystem searches the space automatically.  Four stages, one module
each:

* :mod:`repro.tuner.space` — declarative :class:`SearchSpace` of named
  axes (tile m/n/k, comm tile, ``comm_blocks``, push/pull/hybrid mode,
  SM vs. copy-engine transport) plus the per-kernel registry;
* :mod:`repro.tuner.costprune` — analytic lower bounds from
  :class:`repro.sim.costmodel.CostModel` + wave-quantization arithmetic
  that discard dominated candidates before any simulation runs;
* :mod:`repro.tuner.search` — exhaustive / random / successive-halving
  strategies executing survivors through
  :func:`repro.bench.harness.run_builder`;
* :mod:`repro.tuner.cache` — persistent JSON memo keyed on
  (kernel, shape, world size, spec fingerprint, space fingerprint).

One-call API::

    from repro.tuner import tune
    result = tune(task, world=8, spec=H800, cache=TuneCache(path))
    cfg = result.best_config          # e.g. an AgGemmConfig

or, one level higher, the kernels' classmethods::

    cfg = AgGemmConfig.autotune(m, n, k, world=8, spec=H800)
"""

from repro.tuner.cache import TuneCache, default_cache_path, make_key
from repro.tuner.costprune import (
    PruneResult,
    ag_gemm_lower_bound,
    gemm_rs_lower_bound,
    gemm_wave_time,
    link_transfer_time,
    prune,
)
from repro.tuner.search import TuneResult, TuneTask, tune
from repro.tuner.space import (
    Axis,
    SearchSpace,
    TunerError,
    divisors_of,
    get_space,
    register_space,
    registered_kernels,
)

__all__ = [
    "Axis", "PruneResult", "SearchSpace", "TuneCache", "TuneResult",
    "TuneTask", "TunerError", "ag_gemm_lower_bound", "default_cache_path",
    "divisors_of", "gemm_rs_lower_bound", "gemm_wave_time", "get_space",
    "link_transfer_time", "make_key", "prune", "register_space",
    "registered_kernels", "tune",
]
