"""``repro.tuner`` — autotuning over the decoupled tile-centric design space.

The paper picks one point per kernel out of its §3.1 design space by hand;
this subsystem searches the space automatically.  Four stages, one module
each:

* :mod:`repro.tuner.space` — declarative :class:`SearchSpace` of named
  axes (tile m/n/k, comm tile, ``comm_blocks``, push/pull/hybrid mode,
  SM vs. copy-engine transport) plus the per-kernel registry;
* :mod:`repro.tuner.costprune` — analytic lower bounds from
  :class:`repro.sim.costmodel.CostModel` + wave-quantization arithmetic
  that discard dominated candidates before any simulation runs;
* :mod:`repro.tuner.search` — exhaustive / random / successive-halving /
  model-guided strategies executing survivors through
  :func:`repro.bench.harness.run_builder`;
* :mod:`repro.tuner.model` — :class:`ResidualModel`, the ridge-regularized
  per-axis residual predictor behind ``strategy="model"`` (rank before
  you pay: refit online, simulate only while the optimistic prediction
  beats the incumbent);
* :mod:`repro.tuner.cache` — persistent JSON memo keyed on
  (kernel, shape, world size, spec fingerprint, space fingerprint);
* :mod:`repro.tuner.sweep` — multi-shape driver tuning a whole shape
  table (Table 4, Figure 8) through one shared cache, deduplicating
  candidate simulation across shapes that alias in key space;
* :mod:`repro.tuner.parallel` — ``sweep(..., workers=N)`` execution
  layer fanning the non-aliasing cold tasks out over a process pool,
  merging per-worker cache files through the flock-protected flush;
* :mod:`repro.tuner.warm` — shipped warm-cache resolution (the
  zero-simulation hit-or-fallback step behind the tuned-by-default bench
  columns and ``method="tilelink-tuned"``).

One-call API::

    from repro.tuner import tune
    result = tune(task, world=8, spec=H800, cache=TuneCache(path))
    cfg = result.best_config          # e.g. an AgGemmConfig

or, one level higher, the kernels' classmethods::

    cfg = AgGemmConfig.autotune(m, n, k, world=8, spec=H800)
"""

from repro.tuner.cache import TuneCache, default_cache_path, make_key
from repro.tuner.costprune import (
    PruneResult,
    ag_attention_lower_bound,
    ag_gemm_lower_bound,
    ag_moe_lower_bound,
    flash_segment_floor,
    gemm_rs_lower_bound,
    gemm_wave_time,
    link_transfer_time,
    moe_rs_lower_bound,
    prune,
    ring_attention_lower_bound,
)
from repro.tuner.model import (
    ResidualModel,
    model_guided_search,
    stratified_probe_indices,
)
from repro.tuner.search import (
    TuneResult,
    TuneTask,
    search_signature,
    task_cache_key,
    tune,
)
from repro.tuner.space import (
    Axis,
    SearchSpace,
    TunerError,
    divisors_of,
    get_space,
    register_space,
    registered_kernels,
)
from repro.tuner.parallel import parallel_sweep
from repro.tuner.sweep import SweepEntry, SweepReport, sweep
from repro.tuner.warm import (
    resolve_warm_cache,
    warm_cache_path,
    warm_tuned_config,
)

__all__ = [
    "Axis", "PruneResult", "ResidualModel", "SearchSpace", "SweepEntry",
    "SweepReport", "TuneCache", "TuneResult", "TuneTask", "TunerError",
    "ag_attention_lower_bound", "ag_gemm_lower_bound", "ag_moe_lower_bound",
    "default_cache_path", "divisors_of", "flash_segment_floor",
    "gemm_rs_lower_bound", "gemm_wave_time", "get_space",
    "link_transfer_time", "make_key", "model_guided_search",
    "moe_rs_lower_bound", "parallel_sweep", "prune",
    "register_space", "registered_kernels", "ring_attention_lower_bound",
    "resolve_warm_cache", "search_signature", "stratified_probe_indices",
    "sweep", "task_cache_key", "tune", "warm_cache_path",
    "warm_tuned_config",
]
