"""Persistent result cache for the tuner (the *cache* stage).

Tuning is deterministic but expensive (each candidate is a full
discrete-event simulation), so results are memoised on disk: a JSON file
mapping a cache key to the winning candidate and its simulated time.  The
key is built from everything that changes the answer —

    kernel name | shape key | world size | HardwareSpec.fingerprint()
    | SearchSpace.fingerprint() [| search signature]

so retuning happens exactly when the workload, the simulated hardware, or
the candidate space itself changes.  Restricted searches (random, capped
``max_trials``) carry a signature suffix so their possibly-weaker winners
never alias a later full exhaustive search (see ``tune()``).  Repeated bench runs hit the cache and
skip simulation entirely, which also makes published numbers reproducible:
the cache file records *which* config produced them.

The default location is ``$REPRO_TUNE_CACHE`` or
``~/.cache/repro-tilelink/tune_cache.json``; pass an explicit path for
hermetic runs (tests use ``tmp_path``).  Writes are atomic
(write-temp-then-rename); every flush takes an exclusive ``flock`` on a
sidecar lockfile and re-reads + merges the on-disk entries before
renaming, so two processes tuning different kernels against one cache
file cannot drop each other's results.  A corrupt/foreign file is
treated as empty rather than raising.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.tuner.space import TunerError
from repro.util.jsonstore import VersionedJsonStore

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

_VERSION = 1

#: Environment override for the default on-disk location.
ENV_CACHE_PATH = "REPRO_TUNE_CACHE"


def default_cache_path() -> Path:
    env = os.environ.get(ENV_CACHE_PATH)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tilelink" / "tune_cache.json"


def make_key(kernel: str, shape_key: str, world: int, spec_fingerprint: str,
             space_fingerprint: str) -> str:
    return "|".join([kernel, shape_key, f"w{world}", spec_fingerprint,
                     space_fingerprint])


class TuneCache(VersionedJsonStore):
    """Dict-like persistent store of tuning results.

    Entries are plain JSON objects ``{"best": candidate, "time_s": float,
    "meta": {...}}``.  The file is re-read lazily on first access and
    rewritten atomically on every :meth:`put` (tuning writes are rare and
    small; durability beats batching here).  The storage discipline
    (lazy read, corrupt-as-empty, atomic rename, readonly) lives in
    :class:`~repro.util.jsonstore.VersionedJsonStore`; this class layers
    the flock-protected read-merge flush on top.
    """

    _version = _VERSION

    def __init__(self, path: str | os.PathLike | None = None, *,
                 readonly: bool = False):
        super().__init__(path if path is not None else default_cache_path(),
                         readonly=readonly)

    # -- storage ------------------------------------------------------------

    @contextmanager
    def _write_lock(self) -> Iterator[None]:
        """Exclusive inter-process lock spanning one read-merge-rename.

        Without it two processes could interleave their disk re-reads and
        renames and still lose an update; ``flock`` on a sidecar lockfile
        closes that window.  Degrades to unlocked (merge-on-flush only) on
        platforms without :mod:`fcntl`.
        """
        if fcntl is None:
            yield
            return
        lock_path = self.path.with_name(self.path.name + ".lock")
        with open(lock_path, "w") as lock_fh:
            fcntl.flock(lock_fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_fh, fcntl.LOCK_UN)

    def _flush(self, merge: bool = True) -> None:
        if self.readonly:
            return
        entries = self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._write_lock():
            if merge:
                # Another process may have written since our lazy read; a
                # blind read-modify-write of the whole file would drop its
                # entries.  Re-read under the lock and merge, our entries
                # winning any key conflict (we hold the freshest result
                # for keys we tuned).
                on_disk = self._read_disk()
                if on_disk:
                    entries = {**on_disk, **entries}
                    self._entries = entries
            self._atomic_write(entries)

    # -- dict-ish API -------------------------------------------------------

    def get(self, key: str) -> dict | None:
        entry = self._load().get(key)
        return dict(entry) if entry is not None else None

    def put(self, key: str, best: dict, time_s: float,
            meta: dict[str, Any] | None = None) -> None:
        self._load()[key] = {"best": dict(best), "time_s": float(time_s),
                             "meta": dict(meta or {})}
        self._flush()

    def merge_from(self, *sources: "TuneCache | str | os.PathLike") -> int:
        """Absorb every entry of ``sources`` (caches or cache-file paths)
        into this cache with **one** flush; returns the number merged.

        This is the parallel sweep's result funnel: each worker tunes
        against its own cache file, and the parent folds the finished
        files into the shared cache through the same flock-protected
        read-merge-rename path every other write takes — one rewrite for
        the whole batch, not one per file.  Source entries win key
        conflicts (they are the freshest results), later sources winning
        over earlier ones.  Only entries that are new or actually differ
        count (and trigger the flush): re-merging identical files is a
        free no-op.

        Merging into a ``readonly`` cache raises: ``_flush`` would
        silently no-op while the in-memory view mutated and a positive
        merged count told the caller the entries persisted.
        """
        if self.readonly:
            raise TunerError(
                f"cannot merge into readonly cache {self.path}: the "
                f"merged entries would never be flushed to disk")
        entries = self._load()
        merged = 0
        for source in sources:
            src = (source if isinstance(source, TuneCache)
                   else TuneCache(source))
            for key, entry in src._load().items():
                if entries.get(key) != entry:
                    entries[key] = dict(entry)
                    merged += 1
        if merged:
            self._flush()
        return merged

    def clear(self) -> None:
        """Empty the cache file (no merge: clearing means clearing).

        Clearing a ``readonly`` cache raises for the same reason merging
        into one does: the file would keep its entries while this
        handle's in-memory view reads empty — a silently diverged handle.
        """
        if self.readonly:
            raise TunerError(
                f"cannot clear readonly cache {self.path}: the file would "
                f"keep its entries while this handle reads empty")
        self._entries = {}
        self._flush(merge=False)
