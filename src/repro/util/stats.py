"""Statistics helpers used by the benchmark harness."""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty input."""
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregate the paper reports (GEOMEAN bars).

    All values must be positive.
    """
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup_table(
    times: Mapping[str, Sequence[float]], baseline: str
) -> dict[str, list[float]]:
    """Convert absolute times per method into relative performance.

    Relative performance is ``t_baseline / t_method`` per workload — the
    y-axis of the paper's figures (baseline == 1.0, higher is better).
    """
    if baseline not in times:
        raise KeyError(f"baseline {baseline!r} not in results")
    base = times[baseline]
    out: dict[str, list[float]] = {}
    for name, series in times.items():
        if len(series) != len(base):
            raise ValueError(f"series {name!r} length mismatch with baseline")
        out[name] = [b / t for b, t in zip(base, series)]
    return out
