"""Plain-text table / bar-chart rendering for the benchmark harness.

The harness prints results in the same rows/series the paper reports; these
helpers keep that output readable in a terminal and in the committed
``bench_output.txt``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_bar_chart(
    series: Mapping[str, Sequence[float]],
    labels: Sequence[str],
    title: str | None = None,
    width: int = 40,
) -> str:
    """Render grouped horizontal bars (one group per label) in ASCII.

    Used to echo the paper's bar figures next to the numeric tables.
    """
    peak = max((max(vals) for vals in series.values() if len(vals)), default=1.0)
    peak = max(peak, 1e-12)
    name_w = max((len(n) for n in series), default=0)
    label_w = max((len(str(lab)) for lab in labels), default=0)
    out = []
    if title:
        out.append(title)
    for i, label in enumerate(labels):
        out.append(f"{str(label):<{label_w}}")
        for name, vals in series.items():
            if i >= len(vals):
                continue
            v = vals[i]
            bar = "#" * max(1, round(width * v / peak)) if v > 0 else ""
            out.append(f"  {name:<{name_w}} |{bar} {v:.3f}")
    return "\n".join(out)


def format_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    x = float(n)
    for u in units:
        if abs(x) < 1024.0 or u == units[-1]:
            return f"{x:.2f} {u}" if u != "B" else f"{int(x)} B"
        x /= 1024.0
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Human-readable duration (µs/ms/s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds:.4f} s"
