"""Shared small utilities: statistics, ASCII tables, size formatting."""

from repro.util.stats import geomean, mean, speedup_table
from repro.util.tables import format_table, render_bar_chart

__all__ = ["geomean", "mean", "speedup_table", "format_table", "render_bar_chart"]
