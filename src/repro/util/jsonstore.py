"""Shared storage discipline for the on-disk JSON entry stores.

:class:`repro.tuner.cache.TuneCache` and
:class:`repro.serve.latency.StepLatencyTable` persist the same way — a
versioned ``{"version": N, "entries": {...}}`` file, read lazily on
first access, treated as empty when missing/corrupt/foreign, rewritten
atomically (write-temp-then-rename), with ``readonly`` handles that keep
an in-memory view but never touch disk.  This base class owns that
discipline so a storage fix lands once; subclasses add their own entry
schema and any extra flush semantics (the tuner cache layers a
flock-protected read-merge step on top).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


class VersionedJsonStore:
    """Lazy-read, atomically-flushed ``{"version", "entries"}`` file."""

    #: subclasses pin their schema version; a file with any other
    #: version (or shape) reads as empty rather than raising
    _version: int = 1

    def __init__(self, path: str | os.PathLike, *, readonly: bool = False):
        self.path = Path(path)
        #: a read-only store never rewrites its file — mutations still
        #: update the in-memory view (so resolution paths keep working)
        #: but nothing is flushed.  Used for shipped/checked-in files.
        self.readonly = readonly
        self._entries: dict[str, dict] | None = None

    def _read_disk(self) -> dict[str, dict]:
        """Entries currently on disk; {} for a missing/corrupt/foreign
        file."""
        try:
            raw = json.loads(self.path.read_text())
            if isinstance(raw, dict) and raw.get("version") == self._version:
                entries = raw.get("entries", {})
                if isinstance(entries, dict):
                    return entries
        except (OSError, ValueError):
            pass  # missing or corrupt file == empty store
        return {}

    def _load(self) -> dict[str, dict]:
        if self._entries is None:
            self._entries = self._read_disk()
        return self._entries

    def _atomic_write(self, entries: dict[str, dict]) -> None:
        """Write ``entries`` under the version header via temp + rename."""
        payload = {"version": self._version, "entries": entries}
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _flush(self) -> None:
        """Default flush: rewrite the in-memory entries (no merge)."""
        if self.readonly:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(self._load())

    # -- shared dict-ish surface --------------------------------------------

    def keys(self) -> tuple[str, ...]:
        return tuple(self._load())

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def __len__(self) -> int:
        return len(self._load())
