"""Fork-inheriting process pool for index-addressed work lists.

Three parallel consumers in this repo share one awkward constraint: the
work items are rich Python objects that cannot cross a pickle boundary
(tuner tasks carry builder closures, latency-cell jobs carry
:class:`~repro.models.configs.ModelConfig` variants bound into local
functions), but the work *list* is indexable and the pool can inherit it
over ``fork()``.  This module is that pattern, extracted from the
tuner's sweep pool so ``refresh_latency_table.py --workers`` and the
serving bench can reuse it:

* the caller builds ``fn`` — any callable, closures welcome — in the
  parent and calls :func:`fork_run` / :func:`fork_map` with a job count;
* workers inherit ``fn`` through module state over ``fork()`` and
  receive only an integer index (the one thing pickled per job);
* failure handling is fail-fast with full attribution: on the first
  exception the remaining jobs are cancelled, and the caller gets every
  failure paired with its job index — with :class:`BrokenProcessPool`
  noise (a dead worker fails *every* unfinished future with it)
  separated from root causes.

Platforms without the ``fork`` start method (or ``workers <= 1``, or a
single job) degrade to running the jobs serially in-process — same
results, exceptions propagate directly.

Determinism note: the pool changes *where* jobs run, never what they
compute.  A caller that needs byte-identical artifacts (the latency-table
refresh, the tuner cache) must itself consume results in job order —
``fork_map`` returns them index-ordered for exactly that.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable

__all__ = ["fork_available", "fork_map", "fork_run"]

#: Worker state inherited over ``fork()``: the job callable of the
#: currently running :func:`fork_run`.  Submitted call arguments are
#: pickled by ``ProcessPoolExecutor``, so workers look the callable up
#: here and take only the job index over the pipe.
_FN: Callable[[int], Any] | None = None


def _invoke(index: int) -> Any:
    """Pool worker: run one inherited job by index."""
    assert _FN is not None, "worker state lost (fork start method required)"
    return _FN(index)


def fork_available() -> bool:
    """Whether this platform can fan out over ``fork()`` at all."""
    return "fork" in multiprocessing.get_all_start_methods()


def fork_run(fn: Callable[[int], Any], n: int, workers: int
             ) -> tuple[dict[int, Any], list[tuple[int, BaseException]]]:
    """Run ``fn(0) .. fn(n-1)`` across ``workers`` forked processes.

    Returns ``(results, failures)``: ``results`` maps job index to
    return value for every job that finished, ``failures`` pairs each
    failed job's index with its exception.  On the first failure the
    remaining jobs are cancelled (fail fast) — cancelled jobs appear in
    neither mapping.  Serially executed jobs (no ``fork``, one worker,
    or one job) raise directly instead, having completed every earlier
    job.
    """
    if n <= 0:
        return {}, []
    if not fork_available() or workers <= 1 or n == 1:
        return {i: fn(i) for i in range(n)}, []
    global _FN
    _FN = fn
    results: dict[int, Any] = {}
    failures: list[tuple[int, BaseException]] = []
    try:
        with ProcessPoolExecutor(
                max_workers=min(workers, n),
                mp_context=multiprocessing.get_context("fork")) as pool:
            futures = {pool.submit(_invoke, i): i for i in range(n)}
            done, pending = wait(futures, return_when=FIRST_EXCEPTION)
            if any(f.exception() is not None for f in done):
                # don't let shutdown() run the remaining jobs to
                # completion just to discard their results
                for fut in pending:
                    fut.cancel()
            for fut, i in futures.items():
                if fut.cancelled() or not fut.done():
                    continue
                exc = fut.exception()
                if exc is not None:
                    failures.append((i, exc))
                else:
                    results[i] = fut.result()
    finally:
        _FN = None
    failures.sort(key=lambda pair: pair[0])
    return results, failures


def fork_map(fn: Callable[[int], Any], n: int, workers: int) -> list[Any]:
    """:func:`fork_run`, raising on any failure; returns results in job
    order.  Prefers a root-cause exception over the
    :class:`BrokenProcessPool` echoes a dead worker leaves behind."""
    results, failures = fork_run(fn, n, workers)
    if failures:
        for _, exc in failures:
            if not isinstance(exc, BrokenProcessPool):
                raise exc
        raise failures[0][1]
    return [results[i] for i in range(n)]
