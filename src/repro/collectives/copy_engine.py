"""Copy-engine (DMA) data movement with signal publication.

This is the communication substrate of TileLink's DMA-mapped kernels: the
host enqueues ``rank_copy_data`` transfers on a communication stream and
publishes per-segment signals (``rank_notify``) that device-side consumer
kernels wait on with ``consumer_tile_wait`` — the resource-mapping choice
of Figure 2c (communication on the copy engine, zero SM cost) and the
pattern of Figure 6.
"""

from __future__ import annotations

from repro.errors import ShapeError
from repro.memory.signals import SignalArray
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen


def dma_all_gather(
    ctx: DistContext,
    src_name: str,
    dst_name: str,
    banks: list[SignalArray] | None,
    stream_name: str = "comm",
    segment_notifies: int = 1,
) -> list[Process]:
    """Pull-mode AllGather on copy engines, one segment signal per shard.

    Rank ``r`` copies its own shard locally, then pulls every peer shard
    ``q`` into rows ``[q*m, (q+1)*m)`` of its gathered buffer, posting
    ``banks[r][q] += segment_notifies`` as each shard lands.  Consumers
    (e.g. a GEMM kernel whose BlockChannel points at the same banks) start
    on a shard's tiles as soon as its signal arrives — communication and
    computation overlap with no SM cost for the copies.

    ``segment_notifies`` lets the publisher match whatever per-channel
    threshold the consumer's mapping expects.
    """
    machine = ctx.machine
    world = machine.world_size
    shards = ctx.heap.tensors(src_name)
    dsts = ctx.heap.tensors(dst_name)
    m, cols = shards[0].shape
    if dsts[0].shape[0] != m * world:
        raise ShapeError(
            f"dma_all_gather: dst rows {dsts[0].shape[0]} != {m * world}")

    def rank_proc(rank: int) -> ProcessGen:
        # own shard first (cheap local DMA), then peers nearest-first
        order = [rank] + [(rank + off) % world for off in range(1, world)]
        for q in order:
            yield from ctx.rank_copy_data(
                dst_name, src_rank=q, dst_rank=rank,
                src_ranges=((0, m), (0, cols)),
                dst_ranges=((q * m, (q + 1) * m), (0, cols)),
                src_name=src_name)
            if banks is not None:
                banks[rank].post_add(q, segment_notifies, from_rank=rank)
        return None

    return [
        machine.stream(rank, stream_name).enqueue(
            rank_proc(rank), name=f"dma.ag.{src_name}[{rank}]")
        for rank in range(world)
    ]


def dma_scatter_segments(
    ctx: DistContext,
    src_name: str,
    dst_name: str,
    banks: list[SignalArray] | None,
    stream_name: str = "comm",
    segment_notifies: int = 1,
) -> list[Process]:
    """Push-mode scatter: rank r pushes row-segment q of its source to q.

    The building block of the hybrid ReduceScatter (scatter on DMA,
    reduction on SMs): destination rank ``q`` receives one partial segment
    from every peer at rows ``[r*seg, (r+1)*seg)`` of its landing buffer
    and gets ``banks[q][r]`` posted per arrival.
    """
    machine = ctx.machine
    world = machine.world_size
    srcs = ctx.heap.tensors(src_name)
    dsts = ctx.heap.tensors(dst_name)
    rows, cols = srcs[0].shape
    if rows % world != 0:
        raise ShapeError(f"scatter rows {rows} not divisible by {world}")
    seg = rows // world
    if dsts[0].shape[0] != rows:
        raise ShapeError(
            f"dma_scatter: landing buffer rows {dsts[0].shape[0]} != {rows}")

    def rank_proc(rank: int) -> ProcessGen:
        for off in range(world):
            q = (rank + off) % world
            yield from ctx.rank_copy_data(
                dst_name, src_rank=rank, dst_rank=q,
                src_ranges=((q * seg, (q + 1) * seg), (0, cols)),
                dst_ranges=((rank * seg, (rank + 1) * seg), (0, cols)),
                src_name=src_name)
            if banks is not None:
                banks[q].post_add(rank, segment_notifies, from_rank=rank)
        return None

    return [
        machine.stream(rank, stream_name).enqueue(
            rank_proc(rank), name=f"dma.scatter.{src_name}[{rank}]")
        for rank in range(world)
    ]
