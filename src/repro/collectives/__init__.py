"""Operator-centric collectives: the baselines' communication layer.

:mod:`repro.collectives.nccl` implements NCCL-like ring collectives as
simulated kernels (SM-driven, protocol-efficiency-limited);
:mod:`repro.collectives.copy_engine` implements DMA-engine data movement
with signal publication — the communication substrate TileLink's
DMA-mapped kernels use.
"""

from repro.collectives.nccl import NcclCollectives
from repro.collectives.copy_engine import dma_all_gather, dma_scatter_segments

__all__ = ["NcclCollectives", "dma_all_gather", "dma_scatter_segments"]
