"""NCCL-style collectives on the simulated node.

Ring algorithms with the classic cost shape: ``(R-1)/R`` of the data
crosses each link, steps serialize on neighbour arrivals, protocol
efficiency caps achievable bandwidth, and each collective is a kernel
launch that occupies a handful of SM channels.  These are the
``cuBLAS+NCCL`` baselines' communication ops and the paper's operator-
centric primitives (§2.1): system-wide synchronization before/after, no
overlap with compute unless the caller runs them on separate streams.

All collectives are SPMD: one process per rank enqueued on that rank's
stream; numerics land in the destination symmetric tensors at arrival.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import ShapeError
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen, Timeout

#: SM channels an NCCL kernel occupies while driving the protocol.
DEFAULT_COMM_SMS = 20

#: process-wide uid so several NcclCollectives instances on one context
#: never collide on signal-bank names
_UID = itertools.count(1)


class NcclCollectives:
    """Collective operations bound to a :class:`DistContext`."""

    def __init__(self, ctx: DistContext, comm_sms: int = DEFAULT_COMM_SMS):
        self.ctx = ctx
        self.machine = ctx.machine
        self.comm_sms = comm_sms

    # -- helpers -----------------------------------------------------------------

    def _bank(self, tag: str, cells: int):
        return self.ctx.heap.alloc_signals(f"nccl.{tag}.{next(_UID)}", cells)

    def _launch(self, gen_factory, stream_name: str, tag: str) -> list[Process]:
        procs = []
        for rank in range(self.machine.world_size):
            stream = self.machine.stream(rank, stream_name)
            procs.append(stream.enqueue(
                gen_factory(rank), name=f"{tag}[{rank}]",
                start_delay=self.machine.cost.launch_overhead()))
        return procs

    def _occupy_sms(self, rank: int) -> ProcessGen:
        device = self.machine.device(rank)
        n = min(self.comm_sms, device.sms.capacity)
        yield device.sms.acquire(n)
        return n

    @staticmethod
    def _row_segments(rows: int, world: int) -> list[tuple[int, int]]:
        if rows % world != 0:
            raise ShapeError(
                f"collective extent {rows} not divisible by world {world}")
        seg = rows // world
        return [(r * seg, (r + 1) * seg) for r in range(world)]

    # -- AllGather -----------------------------------------------------------------

    def all_gather(self, src_name: str, dst_name: str,
                   stream_name: str = "default") -> list[Process]:
        """Ring AllGather: per-rank shards (m, n) -> full (m*R, n) everywhere."""
        ctx, machine = self.ctx, self.machine
        world = machine.world_size
        shards = ctx.heap.tensors(src_name)
        dsts = ctx.heap.tensors(dst_name)
        m, = {t.shape[0] for t in shards}
        if dsts[0].shape[0] != m * world:
            raise ShapeError(
                f"all_gather: dst rows {dsts[0].shape[0]} != shard rows "
                f"{m} * world {world}")
        arrived = self._bank("ag", world)
        seg_bytes = shards[0].nbytes

        def rank_proc(rank: int) -> ProcessGen:
            held = yield from self._occupy_sms(rank)
            device = machine.device(rank)
            try:
                t0 = machine.now
                # local shard into the gathered view (HBM copy)
                arrival = device.reserve_hbm(2 * seg_bytes)
                yield Timeout(max(0.0, arrival - machine.now))
                if machine.config.execute_numerics:
                    dsts[rank].write_tile(
                        ((rank * m, (rank + 1) * m), (0, dsts[rank].shape[1])),
                        shards[rank].numpy())
                arrived[rank].post_add(rank, 1, from_rank=rank)
                nxt = (rank + 1) % world
                for step in range(world - 1):
                    seg = (rank - step) % world
                    if step > 0:
                        yield arrived[rank].wait_geq(seg, 1)
                    payload = dsts[rank].read_tile(
                        ((seg * m, (seg + 1) * m), (0, dsts[rank].shape[1])))
                    yield machine.interconnect.transfer(
                        rank, nxt, seg_bytes, "nccl")
                    if machine.config.execute_numerics:
                        dsts[nxt].write_tile(
                            ((seg * m, (seg + 1) * m),
                             (0, dsts[nxt].shape[1])), payload)
                    arrived[nxt].post_add(seg, 1, from_rank=rank)
                if machine.config.trace:
                    machine.record(rank, "comm", f"nccl.ag:{src_name}",
                                   t0, machine.now)
                # SPMD exit barrier: every segment present locally
                for seg in range(world):
                    yield arrived[rank].wait_geq(seg, 1)
            finally:
                device.sms.release(held)
            return None

        return self._launch(rank_proc, stream_name, f"nccl.ag.{src_name}")

    # -- ReduceScatter ---------------------------------------------------------------

    def reduce_scatter(self, src_name: str, dst_name: str,
                       stream_name: str = "default") -> list[Process]:
        """Ring ReduceScatter over rows: (M, n) per rank -> (M/R, n) sums.

        Rank r ends with ``sum_q src[q][seg_r]`` where seg_r is the r-th row
        segment.
        """
        ctx, machine = self.ctx, self.machine
        world = machine.world_size
        srcs = ctx.heap.tensors(src_name)
        dsts = ctx.heap.tensors(dst_name)
        rows, cols = srcs[0].shape
        segments = self._row_segments(rows, world)
        seg_rows = rows // world
        if dsts[0].shape[0] != seg_rows:
            raise ShapeError(
                f"reduce_scatter: dst rows {dsts[0].shape[0]} != {seg_rows}")
        seg_bytes = seg_rows * cols * srcs[0].itemsize
        arrived = self._bank("rs", world)
        # numeric working buffers: partial sums as they travel the ring
        partials: list[dict[int, np.ndarray]] = [dict() for _ in range(world)]

        def rank_proc(rank: int) -> ProcessGen:
            held = yield from self._occupy_sms(rank)
            device = machine.device(rank)
            try:
                t0 = machine.now
                nxt = (rank + 1) % world
                for step in range(world - 1):
                    seg = (rank - step - 1) % world
                    lo, hi = segments[seg]
                    if step > 0:
                        # the partial for this segment landed here last step
                        yield arrived[rank].wait_geq(seg, 1)
                    if machine.config.execute_numerics:
                        local = srcs[rank].read_tile(((lo, hi), (0, cols)))
                        acc = partials[rank].pop(seg, None)
                        payload = local.astype(np.float32) if acc is None \
                            else local.astype(np.float32) + acc
                    else:
                        payload = None
                    # reduction math on SMs, then the ring hop
                    arrival = device.reserve_hbm(2 * seg_bytes)
                    yield Timeout(max(0.0, arrival - machine.now))
                    yield machine.interconnect.transfer(
                        rank, nxt, seg_bytes, "nccl_rs")
                    if machine.config.execute_numerics:
                        partials[nxt][seg] = payload
                    arrived[nxt].post_add(seg, 1, from_rank=rank)
                # final: own segment arrives carrying world-1 partials
                lo, hi = segments[rank]
                yield arrived[rank].wait_geq(rank, 1)
                arrival = device.reserve_hbm(2 * seg_bytes)
                yield Timeout(max(0.0, arrival - machine.now))
                if machine.config.execute_numerics:
                    local = srcs[rank].read_tile(((lo, hi), (0, cols)))
                    acc = partials[rank].pop(rank)
                    total = local.astype(np.float32) + acc
                    dsts[rank].write_tile(((0, seg_rows), (0, cols)), total)
                if machine.config.trace:
                    machine.record(rank, "comm", f"nccl.rs:{src_name}",
                                   t0, machine.now)
            finally:
                device.sms.release(held)
            return None

        return self._launch(rank_proc, stream_name, f"nccl.rs.{src_name}")

    # -- AllReduce -------------------------------------------------------------------

    def all_reduce(self, src_name: str, dst_name: str,
                   stream_name: str = "default") -> list[Process]:
        """Ring AllReduce = ReduceScatter + AllGather (NCCL's algorithm).

        Implemented by composition through an internal scratch tensor.
        """
        ctx = self.ctx
        rows, cols = ctx.heap.tensors(src_name)[0].shape
        world = self.machine.world_size
        scratch = f"nccl.ar.scratch.{next(_UID)}"
        ctx.heap.alloc(scratch, (rows // world, cols), "float32")
        self.reduce_scatter(src_name, scratch, stream_name)
        return self.all_gather(scratch, dst_name, stream_name)

    # -- All2All ---------------------------------------------------------------------

    def all_to_all(self, src_name: str, dst_name: str,
                   stream_name: str = "default") -> list[Process]:
        """Each rank scatters row-segment q of its source to rank q."""
        ctx, machine = self.ctx, self.machine
        world = machine.world_size
        srcs = ctx.heap.tensors(src_name)
        dsts = ctx.heap.tensors(dst_name)
        rows, cols = srcs[0].shape
        segments = self._row_segments(rows, world)
        seg_rows = rows // world
        seg_bytes = seg_rows * cols * srcs[0].itemsize
        arrived = self._bank("a2a", world)

        def rank_proc(rank: int) -> ProcessGen:
            held = yield from self._occupy_sms(rank)
            device = machine.device(rank)
            try:
                t0 = machine.now
                for off in range(world):
                    dst = (rank + off) % world
                    lo, hi = segments[dst]
                    payload = srcs[rank].read_tile(((lo, hi), (0, cols)))
                    if dst == rank:
                        arrival = device.reserve_hbm(2 * seg_bytes)
                        yield Timeout(max(0.0, arrival - machine.now))
                    else:
                        yield machine.interconnect.transfer(
                            rank, dst, seg_bytes, "nccl")
                    if machine.config.execute_numerics:
                        dsts[dst].write_tile(
                            ((rank * seg_rows, (rank + 1) * seg_rows),
                             (0, cols)), payload)
                    arrived[dst].post_add(rank, 1, from_rank=rank)
                for q in range(world):
                    yield arrived[rank].wait_geq(q, 1)
                if machine.config.trace:
                    machine.record(rank, "comm", f"nccl.a2a:{src_name}",
                                   t0, machine.now)
            finally:
                device.sms.release(held)
            return None

        return self._launch(rank_proc, stream_name, f"nccl.a2a.{src_name}")
