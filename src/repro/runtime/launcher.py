"""Kernel launcher: compile once, run SPMD on the simulated node.

A launch spawns one simulation process per block of the grid; blocks queue
FIFO on the device's SM pool (persistent-block kernels use ``grid <= SMs``
and stride over tiles internally, like the paper's Figure 4 kernels).
Launch overhead is charged on the stream, and the kernel process completes
when all its blocks have drained.
"""

from __future__ import annotations

from typing import Any

from repro.compiler.interp import run_block
from repro.compiler.program import CompiledProgram, CompileOptions, compile_kernel
from repro.errors import RuntimeLaunchError
from repro.lang.block_channel import BlockChannel
from repro.lang.dsl import KernelDef
from repro.sim.engine import AllOf, Process, ProcessGen
from repro.sim.machine import Machine
from repro.sim.stream import Stream


def _split_args(program: CompiledProgram, args: dict[str, Any],
                rank: int) -> dict[str, Any]:
    """Per-rank view of launch arguments.

    Symmetric tensors stay as lists (kernels may index peers); BlockChannel
    lists are narrowed to the rank's instance.
    """
    bindings: dict[str, Any] = {}
    for name in program.tensor_params:
        if name not in args:
            raise RuntimeLaunchError(
                f"kernel {program.name!r}: missing argument {name!r}")
        bindings[name] = args[name]
    if program.ir.channel_param is not None:
        ch = args.get(program.ir.channel_param)
        if isinstance(ch, list):
            ch = ch[rank]
        if not isinstance(ch, BlockChannel):
            raise RuntimeLaunchError(
                f"kernel {program.name!r}: argument "
                f"{program.ir.channel_param!r} must be a BlockChannel")
        bindings[program.ir.channel_param] = ch
    return bindings


def kernel_process(program: CompiledProgram, machine: Machine, rank: int,
                   grid: int, bindings: dict[str, Any],
                   label: str | None = None) -> ProcessGen:
    """Generator running one rank's grid (usable inside stream enqueues)."""
    if grid < 1:
        raise RuntimeLaunchError(f"grid must be >= 1, got {grid}")
    device = machine.device(rank)
    label = label or program.name

    def block(bid: int) -> ProcessGen:
        yield device.sms.acquire()
        try:
            yield from run_block(program, machine, rank, bid, grid,
                                 bindings, label=label)
        finally:
            device.sms.release()
        return None

    procs = [
        machine.spawn(block(bid), name=f"{label}[r{rank}b{bid}]")
        for bid in range(grid)
    ]
    yield AllOf(procs)
    return None


def launch_kernel(machine: Machine, kdef: KernelDef, grid: int, rank: int,
                  args: dict[str, Any],
                  options: CompileOptions | None = None,
                  stream: Stream | None = None,
                  label: str | None = None) -> Process:
    """Launch one rank's kernel; returns the stream-enqueued process."""
    if grid < 1:
        raise RuntimeLaunchError(f"grid must be >= 1, got {grid}")
    ir = kdef.ir
    constexprs = {p: args[p] for p in ir.constexpr_params if p in args}
    program = compile_kernel(kdef, constexprs, options)
    bindings = _split_args(program, args, rank)
    stream = stream or machine.stream(rank)
    gen = kernel_process(program, machine, rank, grid, bindings, label=label)
    return stream.enqueue(
        gen,
        name=label or f"{kdef.name}[{rank}]",
        start_delay=machine.cost.launch_overhead(),
    )


def launch_spmd(machine: Machine, kdef: KernelDef, grid: int,
                args: dict[str, Any],
                options: CompileOptions | None = None,
                stream_name: str = "default",
                label: str | None = None) -> list[Process]:
    """Launch the same kernel on every rank (SPMD, Figure 7's runtime)."""
    return [
        launch_kernel(machine, kdef, grid, rank, args, options,
                      stream=machine.stream(rank, stream_name), label=label)
        for rank in range(machine.world_size)
    ]
