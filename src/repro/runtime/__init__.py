"""SPMD runtime: distributed context, kernel launcher, profiling helpers."""

from repro.runtime.context import DistContext
from repro.runtime.launcher import launch_kernel, launch_spmd

__all__ = ["DistContext", "launch_kernel", "launch_spmd"]
