"""Distributed execution context: the NVSHMEM-style runtime of Figure 7.

:class:`DistContext` owns the symmetric heap and the per-rank hosts/streams,
builds :class:`BlockChannel` argument sets, and implements the *host-side*
primitives of Table 3:

* :meth:`DistContext.rank_copy_data` — peer-to-peer copy on the DMA copy
  engine (``cudaMemcpyPeerAsync``-style); direction is given by the order
  of source and destination, covering both pull and push.
* :meth:`DistContext.rank_notify` — post a signal visible to device kernels
  once prior work on the stream completed (``cuStreamWriteValue``-style).
* :meth:`DistContext.rank_wait` — block the host until a signal arrives.

These are what map communication onto the copy engine while compute kernels
run on SMs (the paper's Figure 6 pattern and the DMA-mapped AllGather used
by the MLP/MoE kernels).
"""

from __future__ import annotations

import numpy as np

from repro.config import SimConfig
from repro.lang.block_channel import BlockChannel
from repro.mapping.dynamic import TableTileMapping
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping
from repro.memory.signals import SignalArray
from repro.memory.symmetric import SymmetricHeap
from repro.memory.tensor import SimTensor
from repro.sim.engine import Join, Process, ProcessGen, Timeout
from repro.sim.machine import Machine
from repro.sim.stream import Stream

Ranges = tuple[tuple[int, int], ...]


class DistContext:
    """One distributed job on a freshly-booted simulated node."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.heap = SymmetricHeap(machine)
        self._channel_count = 0

    @classmethod
    def create(cls, config: SimConfig | None = None) -> "DistContext":
        return cls(Machine(config or SimConfig()))

    @property
    def world_size(self) -> int:
        return self.machine.world_size

    # -- allocation passthroughs ----------------------------------------------

    def alloc(self, name: str, shape: tuple[int, ...], dtype: str,
              fill: float | None = 0.0) -> list[SimTensor]:
        return self.heap.alloc(name, shape, dtype, fill)

    def bind(self, name: str, per_rank: list[np.ndarray]) -> list[SimTensor]:
        return self.heap.bind(name, per_rank)

    def stream(self, rank: int, name: str = "default") -> Stream:
        return self.machine.stream(rank, name)

    # -- BlockChannel construction ------------------------------------------------

    def make_block_channels(
        self,
        name: str,
        mapping: AffineTileMapping | TableTileMapping | None = None,
        comm_grid: TileGrid | None = None,
        consumer_grid: TileGrid | None = None,
        peer_cells: int = 0,
        notify_target: str = "local",
        consumer_mapping: TableTileMapping | None = None,
        threshold_scale: int = 1,
        comm_blocks: int = 0,
    ) -> list[BlockChannel]:
        """Allocate barrier banks and build one BlockChannel per rank."""
        self._channel_count += 1
        uname = f"{name}.{self._channel_count}"
        n_channels = 1
        if mapping is not None:
            n_channels = mapping.n_channels
        barriers = self.heap.alloc_signals(f"{uname}.bar", max(1, n_channels))
        peers: list[SignalArray] = []
        if peer_cells > 0:
            peers = self.heap.alloc_signals(f"{uname}.peer", peer_cells)
        channels = []
        for rank in range(self.world_size):
            ch = BlockChannel(
                rank=rank,
                num_ranks=self.world_size,
                comm_blocks=comm_blocks,
                comm_grid=comm_grid,
                consumer_grid=consumer_grid,
                producer_mapping=mapping,
                barriers=barriers[rank],
                all_barriers=barriers,
                all_peer_barriers=peers,
            )
            ch.notify_target = notify_target
            ch.consumer_mapping = consumer_mapping
            ch.threshold_scale = threshold_scale
            channels.append(ch)
        return channels

    # -- host-side primitives (Table 3) ----------------------------------------------

    def rank_copy_data(self, name: str, src_rank: int, dst_rank: int,
                       src_ranges: Ranges, dst_ranges: Ranges,
                       src_name: str | None = None) -> ProcessGen:
        """Copy a region between ranks using the source's DMA copy engine.

        Meant to be enqueued on a (comm) stream::

            stream.enqueue(ctx.rank_copy_data(...), name="ag_kv")
        """
        machine = self.machine
        src = self.heap.tensor(src_name or name, src_rank)
        dst = self.heap.tensor(name, dst_rank)
        nbytes = src.tile_bytes(src_ranges)
        engine = machine.device(src_rank).copy_engines
        yield engine.acquire()
        try:
            yield Timeout(machine.cost.spec.copy_engine_latency)
            t0 = machine.now
            payload = src.read_tile(src_ranges)
            if src_rank == dst_rank:
                # local DMA: charge both HBM read and write
                arrival = machine.device(src_rank).reserve_hbm(2 * nbytes)
                delay = max(0.0, arrival - machine.now)
            else:
                _st, arrival = machine.interconnect.reserve(
                    src_rank, dst_rank, nbytes, "p2p")
                delay = max(0.0, arrival - machine.now)
            if machine.config.execute_numerics:
                def apply(t=dst, r=dst_ranges, d=payload):
                    t.write_tile(r, d)
                machine.sim.call_later(delay, apply)
            if delay > 0:
                yield Timeout(delay)
            machine.record(dst_rank, "comm", f"dma:{name}", t0, machine.now) \
                if machine.config.trace else None
        finally:
            engine.release()
        return None

    def rank_notify(self, banks: list[SignalArray], dst_rank: int,
                    index: int, from_rank: int, amount: int = 1) -> ProcessGen:
        """Host-side notify: post a signal after prior stream work.

        Enqueue on the same stream as the copy it publishes.
        """
        banks[dst_rank].post_add(index, amount, from_rank=from_rank)
        return
        yield  # pragma: no cover - generator marker

    def rank_wait(self, bank: SignalArray, index: int, threshold: int,
                  host_synced: bool = False) -> ProcessGen:
        """Host-side wait: block until a signal reaches a threshold.

        By default this models a ``cuStreamWaitValue``-style wait enqueued
        on the stream (no CPU involvement once armed); ``host_synced=True``
        adds the full host round trip (a blocking CPU wait).
        """
        t0 = self.machine.now
        yield bank.wait_geq(index, threshold)
        if host_synced:
            yield Timeout(self.machine.cost.host_sync_overhead())
        if self.machine.config.trace:
            self.machine.record(bank.rank, "host", "rank_wait", t0,
                                self.machine.now)
        return None

    # -- whole-job execution -----------------------------------------------------

    def run(self, until: float | None = None) -> float:
        return self.machine.run(until)

    def join_all(self, procs: list[Process]) -> ProcessGen:
        """Helper generator: wait for a set of processes."""
        for p in procs:
            if not p.done:
                yield Join(p)
        return None
