"""Counting resources and bandwidth pipes for the simulated node.

Two resource kinds cover everything the substrate needs:

* :class:`Resource` — a counting semaphore with FIFO fairness, used for SM
  pools and copy-engine slots.  A process ``yield``s :meth:`Resource.acquire`
  and later calls :meth:`Resource.release`.

* :class:`Pipe` — an analytic FIFO bandwidth channel, used for NVLink
  egress/ingress, HBM and NIC links.  A transfer of *n* bytes reserves the
  pipe for ``n / bandwidth`` seconds starting when the pipe frees up;
  serialization under contention conserves aggregate throughput, which is
  the property the overlap experiments depend on.  Joint reservations across
  two pipes (source egress + destination ingress) are computed atomically at
  request time by :func:`reserve_transfer`.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Awaitable, Process, Simulator, Timeout


class _Acquire(Awaitable):
    __slots__ = ("resource", "amount")

    def __init__(self, resource: "Resource", amount: int):
        self.resource = resource
        self.amount = amount

    def arm(self, sim: Simulator, proc: Process) -> None:
        self.resource._arm(sim, proc, self.amount)


class Resource:
    """FIFO counting semaphore (SM pool, copy-engine slots, ...)."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource {name!r} needs capacity >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[tuple[Process, int]] = deque()

    def acquire(self, amount: int = 1) -> Awaitable:
        """Awaitable that resumes once ``amount`` units are held."""
        if amount < 1 or amount > self.capacity:
            raise SimulationError(
                f"cannot acquire {amount} units of {self.name!r} "
                f"(capacity {self.capacity})"
            )
        return _Acquire(self, amount)

    def _arm(self, sim: Simulator, proc: Process, amount: int) -> None:
        # FIFO: a request only proceeds immediately if nothing queues ahead.
        if not self._queue and self.in_use + amount <= self.capacity:
            self.in_use += amount
            sim.schedule(0.0, proc, None)
        else:
            self._queue.append((proc, amount))

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units and wake queued requesters in order."""
        if amount < 1 or amount > self.in_use:
            raise SimulationError(
                f"bad release({amount}) on {self.name!r} with in_use={self.in_use}"
            )
        self.in_use -= amount
        while self._queue:
            proc, want = self._queue[0]
            if self.in_use + want > self.capacity:
                break
            self._queue.popleft()
            self.in_use += want
            self.sim.schedule(0.0, proc, None)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queued(self) -> int:
        return len(self._queue)


class Pipe:
    """Analytic FIFO bandwidth channel.

    Rather than simulating byte streams, the pipe keeps a single
    ``free_at`` watermark: a transfer requested at time *t* starts at
    ``max(t, free_at)``, occupies the pipe for ``bytes / bandwidth``
    seconds, and delivers ``latency`` seconds after occupancy ends.
    """

    def __init__(self, sim: Simulator, bandwidth: float, latency: float = 0.0,
                 name: str = "pipe"):
        if bandwidth <= 0:
            raise SimulationError(f"pipe {name!r} needs positive bandwidth")
        if latency < 0:
            raise SimulationError(f"pipe {name!r} needs non-negative latency")
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self.free_at = 0.0
        #: Total bytes ever pushed through (for utilization accounting).
        self.total_bytes = 0.0
        #: Total seconds of occupancy (for utilization accounting).
        self.busy_time = 0.0

    def reserve(self, nbytes: float) -> tuple[float, float]:
        """Reserve the pipe for ``nbytes``; returns ``(start, arrival)``.

        ``arrival`` is the absolute simulated time at which the data is
        visible at the far end.  The caller is expected to ``yield`` a
        :class:`Timeout` until arrival (see :meth:`transfer`).
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        start = max(self.sim.now, self.free_at)
        occupancy = nbytes / self.bandwidth
        self.free_at = start + occupancy
        self.total_bytes += nbytes
        self.busy_time += occupancy
        return start, self.free_at + self.latency

    def transfer(self, nbytes: float) -> Awaitable:
        """Awaitable completing when ``nbytes`` have traversed the pipe."""
        _start, arrival = self.reserve(nbytes)
        return Timeout(max(0.0, arrival - self.sim.now))

    @property
    def utilization(self) -> float:
        """Fraction of elapsed simulated time the pipe has been busy."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.sim.now)


def reserve_transfer(pipes: list[Pipe], nbytes: float) -> tuple[float, float]:
    """Jointly reserve several pipes for one transfer.

    The transfer starts when *all* pipes are free, proceeds at the slowest
    pipe's bandwidth, and each pipe is marked busy for the full duration.
    Returns ``(start, arrival)`` where arrival includes the largest latency.
    """
    if not pipes:
        raise SimulationError("reserve_transfer needs at least one pipe")
    if nbytes < 0:
        raise SimulationError("negative transfer size")
    sim = pipes[0].sim
    start = max([sim.now] + [p.free_at for p in pipes])
    bandwidth = min(p.bandwidth for p in pipes)
    occupancy = nbytes / bandwidth
    latency = max(p.latency for p in pipes)
    for p in pipes:
        p.free_at = start + occupancy
        p.total_bytes += nbytes
        p.busy_time += occupancy
    return start, start + occupancy + latency


def transfer_through(pipes: list[Pipe], nbytes: float) -> Awaitable:
    """Awaitable for a joint multi-pipe transfer (see reserve_transfer)."""
    sim = pipes[0].sim
    _start, arrival = reserve_transfer(pipes, nbytes)
    return Timeout(max(0.0, arrival - sim.now))
