"""CUDA-like streams on the simulated devices.

A stream serializes the work enqueued on it; different streams run
concurrently.  The decomposition baselines (Async-TP style) live and die by
stream semantics: chunked copies and GEMMs are enqueued on separate streams
with host-driven events between them, and the per-event host overhead is
exactly the cost the paper identifies.

Implementation: each enqueue spawns a wrapper process that first joins the
stream's current tail, then runs the payload generator; the wrapper becomes
the new tail.
"""

from __future__ import annotations

from repro.sim.engine import Join, Process, ProcessGen, Simulator, Timeout


class Stream:
    """An in-order execution queue bound to one device/rank."""

    def __init__(self, sim: Simulator, rank: int, name: str = "stream"):
        self.sim = sim
        self.rank = rank
        self.name = name
        self._tail: Process | None = None
        self._count = 0

    def enqueue(self, gen: ProcessGen, name: str | None = None,
                start_delay: float = 0.0) -> Process:
        """Enqueue work; it starts once all prior stream work finished.

        ``start_delay`` models time before the work may begin (e.g. kernel
        launch overhead paid on the device side).
        """
        self._count += 1
        label = name or f"{self.name}.op{self._count}"
        prev = self._tail

        def runner() -> ProcessGen:
            if prev is not None and not prev.done:
                yield Join(prev)
            if start_delay > 0:
                yield Timeout(start_delay)
            result = yield from gen
            return result

        proc = self.sim.spawn(runner(), name=label)
        self._tail = proc
        return proc

    def wait_for(self, other: Process) -> Process:
        """Insert a dependency: later work waits until ``other`` completes.

        Mirrors ``cudaStreamWaitEvent`` — device-side, no host overhead.
        """
        def waiter() -> ProcessGen:
            if not other.done:
                yield Join(other)
            return None

        return self.enqueue(waiter(), name=f"{self.name}.wait")

    @property
    def tail(self) -> Process | None:
        """The most recently enqueued operation (None if never used)."""
        return self._tail

    def drained(self) -> bool:
        return self._tail is None or self._tail.done
