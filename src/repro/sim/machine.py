"""The simulated node: devices + interconnect + cost model + trace.

:class:`Machine` is the top-level substrate object.  One machine = one
simulation run.  The runtime (:mod:`repro.runtime`) launches SPMD kernels on
it; the benchmark harness constructs a fresh machine per measurement so
pipe watermarks and traces never leak across runs.
"""

from __future__ import annotations

from typing import Any

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.sim.costmodel import CostModel
from repro.sim.device import Device
from repro.sim.engine import Process, ProcessGen, Simulator
from repro.sim.host import Host
from repro.sim.interconnect import Interconnect
from repro.sim.stream import Stream
from repro.sim.trace import Trace


class Machine:
    """A freshly-booted simulated multi-GPU node."""

    def __init__(self, config: SimConfig):
        self.config = config
        self.sim = Simulator()
        self.cost = CostModel(config.spec)
        self.trace = Trace(enabled=config.trace)
        self.devices = [
            Device(self.sim, rank, config.spec) for rank in range(config.world_size)
        ]
        self.interconnect = Interconnect(self.sim, config)
        self.hosts = [
            Host(self.sim, rank, self.cost, self.trace if config.trace else None)
            for rank in range(config.world_size)
        ]
        self._streams: dict[tuple[int, str], Stream] = {}
        self._finished = False

    # -- structure -------------------------------------------------------------

    @property
    def world_size(self) -> int:
        return self.config.world_size

    def device(self, rank: int) -> Device:
        if not 0 <= rank < self.world_size:
            raise SimulationError(f"rank {rank} out of range")
        return self.devices[rank]

    def stream(self, rank: int, name: str = "default") -> Stream:
        """Get-or-create a named stream on a rank (like CUDA stream pools)."""
        key = (rank, name)
        if key not in self._streams:
            self._streams[key] = Stream(self.sim, rank, name=f"{name}[{rank}]")
        return self._streams[key]

    # -- execution ---------------------------------------------------------------

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        return self.sim.spawn(gen, name=name)

    def spawn_per_rank(self, factory: Any, name: str = "rank") -> list[Process]:
        """Spawn one process per rank from ``factory(rank) -> generator``."""
        return [
            self.sim.spawn(factory(rank), name=f"{name}[{rank}]")
            for rank in range(self.world_size)
        ]

    def run(self, until: float | None = None) -> float:
        """Drain the event loop; returns the total simulated time (seconds)."""
        if self._finished and until is None:
            raise SimulationError(
                "machine already ran to completion; build a fresh Machine per run"
            )
        t = self.sim.run(until=until)
        if until is None:
            self._finished = True
        return t

    @property
    def now(self) -> float:
        return self.sim.now

    # -- convenience -----------------------------------------------------------

    def record(self, rank: int, category: str, label: str,
               start: float, end: float) -> None:
        self.trace.record(rank, category, label, start, end)
