"""Discrete-event simulated multi-GPU substrate.

This package is the hardware the reproduction "runs on": a discrete-event
engine (:mod:`repro.sim.engine`), counting/bandwidth resources
(:mod:`repro.sim.resources`), a GPU device model with SM pools and copy
engines (:mod:`repro.sim.device`), an NVLink/NVSwitch + inter-node
interconnect (:mod:`repro.sim.interconnect`), CUDA-like streams and host
launch semantics (:mod:`repro.sim.stream`, :mod:`repro.sim.host`), the
calibrated cost model (:mod:`repro.sim.costmodel`) and timeline tracing
(:mod:`repro.sim.trace`).
"""

from repro.sim.engine import AllOf, Join, Process, Simulator, Timeout
from repro.sim.resources import Pipe, Resource
from repro.sim.costmodel import CostModel
from repro.sim.device import Device
from repro.sim.interconnect import Interconnect
from repro.sim.machine import Machine
from repro.sim.stream import Stream
from repro.sim.trace import Trace, TraceInterval

__all__ = [
    "AllOf",
    "CostModel",
    "Device",
    "Interconnect",
    "Join",
    "Machine",
    "Pipe",
    "Process",
    "Resource",
    "Simulator",
    "Stream",
    "Timeout",
    "Trace",
    "TraceInterval",
]
