"""Minimal discrete-event simulation engine.

The engine is deliberately small and tailored (rather than depending on
simpy): processes are Python generators that ``yield`` *awaitables* and are
resumed by the event loop.  Sub-routines compose with ``yield from``.

Awaitables implement :meth:`Awaitable.arm`, which registers the suspended
process wherever it will later be resumed (the time heap for
:class:`Timeout`, a waiter list for signals/resources, a completion list for
:class:`Join`).

Determinism: events at equal timestamps fire in FIFO order of scheduling
(a monotonically increasing sequence number breaks ties), so simulations are
fully reproducible.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable

from repro.errors import DeadlockError, SimulationError

#: Type of the generators the engine runs.
ProcessGen = Generator["Awaitable", Any, Any]


class Awaitable:
    """Base class for everything a process can ``yield``."""

    def arm(self, sim: "Simulator", proc: "Process") -> None:  # pragma: no cover
        raise NotImplementedError


class Timeout(Awaitable):
    """Suspend the process for ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def arm(self, sim: "Simulator", proc: "Process") -> None:
        sim.schedule(self.delay, proc, self.value)


class Join(Awaitable):
    """Suspend until another process finishes; resumes with its result."""

    __slots__ = ("proc",)

    def __init__(self, proc: "Process"):
        self.proc = proc

    def arm(self, sim: "Simulator", proc: "Process") -> None:
        if self.proc.done:
            sim.schedule(0.0, proc, self.proc.result)
        else:
            self.proc._joiners.append(proc)


class AllOf(Awaitable):
    """Suspend until all of the given processes finish.

    Resumes with the list of their results in the given order.
    """

    __slots__ = ("procs",)

    def __init__(self, procs: list["Process"]):
        self.procs = list(procs)

    def arm(self, sim: "Simulator", proc: "Process") -> None:
        pending = [p for p in self.procs if not p.done]
        if not pending:
            sim.schedule(0.0, proc, [p.result for p in self.procs])
            return
        remaining = len(pending)

        def on_done(_result: Any) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                sim.schedule(0.0, proc, [p.result for p in self.procs])

        for p in pending:
            p._callbacks.append(on_done)


class Process:
    """A running simulation process wrapping a generator.

    Do not instantiate directly — use :meth:`Simulator.spawn`.
    """

    __slots__ = ("sim", "gen", "name", "done", "result", "_joiners", "_callbacks")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self._joiners: list[Process] = []
        self._callbacks: list[Callable[[Any], None]] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "live"
        return f"<Process {self.name} {state}>"

    def _step(self, value: Any) -> None:
        """Advance the generator by one yield, arming the next awaitable."""
        try:
            awaited = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        if not isinstance(awaited, Awaitable):
            raise SimulationError(
                f"process {self.name!r} yielded {type(awaited).__name__}, "
                "expected an Awaitable (Timeout, Join, resource/signal wait)"
            )
        awaited.arm(self.sim, self)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self.sim._live -= 1
        for joiner in self._joiners:
            self.sim.schedule(0.0, joiner, result)
        self._joiners.clear()
        for cb in self._callbacks:
            cb(result)
        self._callbacks.clear()

    def throw(self, exc: BaseException) -> None:
        """Inject an exception into the process (failure injection hooks)."""
        try:
            self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except type(exc):
            self._finish(None)
            return
        raise SimulationError(
            f"process {self.name!r} swallowed injected {type(exc).__name__} "
            "and kept yielding; processes must re-raise or return"
        )


class Simulator:
    """The event loop: a time-ordered heap of process resumptions."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Process, Any]] = []
        self._seq = 0
        self._live = 0
        self._procs: list[Process] = []

    # -- process management -------------------------------------------------

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Create a process from a generator and schedule its first step."""
        proc = Process(self, gen, name)
        self._live += 1
        self._procs.append(proc)
        self.schedule(0.0, proc, None)
        return proc

    def schedule(self, delay: float, proc: Process, value: Any = None) -> None:
        """Resume ``proc`` with ``value`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, proc, value))

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run a plain callback after ``delay`` seconds.

        Used for fire-and-forget effects that no process blocks on: posted
        signal increments (release semantics — the SM does not wait for the
        remote atomic to land) and data-arrival application in numeric mode.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, None, fn))

    # -- main loop -----------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; return the final simulated time.

        Raises :class:`DeadlockError` if live processes remain blocked when
        the queue drains — the signature of a lost notify in a fused kernel.
        """
        while self._heap:
            t, _seq, proc, value = heapq.heappop(self._heap)
            if until is not None and t > until:
                # push back and stop at the horizon
                heapq.heappush(self._heap, (t, _seq, proc, value))
                self.now = until
                return self.now
            if t < self.now - 1e-18:
                raise SimulationError("time went backwards")
            self.now = t
            if proc is None:
                value()  # plain callback from call_later
                continue
            if proc.done:
                continue
            proc._step(value)
        if self._live > 0 and until is None:
            blocked = [p.name for p in self._procs if not p.done]
            raise DeadlockError(
                f"simulation deadlocked: {self._live} process(es) still blocked "
                f"with an empty event queue: {blocked[:16]}",
                blocked=blocked,
            )
        return self.now

    @property
    def live_processes(self) -> int:
        """Number of spawned processes that have not finished."""
        return self._live
