"""Calibrated cost model for the simulated H800-class device.

Every timed instruction the compiler emits asks this model for a duration.
The model is intentionally simple — a handful of roofline-style formulas —
because the paper's phenomena (overlap, wave quantization, host overhead,
memory-bound epilogues, link contention) come from *scheduling*, which the
discrete-event simulator handles; the cost model only has to price one tile
of work at a time.

Conventions: sizes in elements, ``dtype_bytes`` in bytes/element, results in
seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import HardwareSpec


@dataclass(frozen=True)
class GemmTileCost:
    """Breakdown of a single output-tile cost (for tests/ablations)."""

    compute: float
    prologue: float
    epilogue_bytes: float

    @property
    def total(self) -> float:
        return self.compute + self.prologue


class CostModel:
    """Prices tile-granular work items on one device of ``spec``."""

    #: Fixed per-tile pipeline fill/drain overhead of an MMA main loop.
    MMA_PROLOGUE = 1.8e-6
    #: Fraction of raw operand bytes that miss L2 and reach HBM for GEMM.
    GEMM_DRAM_REUSE_DISCOUNT = 0.22
    #: Minimum tensor-core utilisation for degenerate (tiny) tiles.
    MIN_TILE_EFFICIENCY = 0.08

    def __init__(self, spec: HardwareSpec):
        self.spec = spec

    # -- basic rates ---------------------------------------------------------

    @property
    def per_sm_tensor_flops(self) -> float:
        """Sustained tensor-core FLOP/s of one SM."""
        return self.spec.tensor_flops * self.spec.tensor_efficiency / self.spec.n_sms

    @property
    def per_sm_vector_flops(self) -> float:
        return self.spec.vector_flops / self.spec.n_sms

    @property
    def hbm_effective_bandwidth(self) -> float:
        return self.spec.hbm_bandwidth * self.spec.hbm_efficiency

    # -- GEMM ------------------------------------------------------------------

    def tile_efficiency(self, bm: int, bn: int, bk: int) -> float:
        """Tensor-core utilisation of a (bm, bn, bk) MMA tile on one SM.

        Full efficiency needs a 128x128 (or larger) tile with bk >= 32;
        narrow or shallow tiles underfeed the tensor cores.  This is the
        mechanism behind the paper's "resource quantization inefficiency"
        of decomposed/small GEMMs.
        """
        narrow = min(1.0, (min(bm, bn) / 128.0) ** 0.5)
        shallow = min(1.0, (bk / 32.0) ** 0.5)
        area = min(1.0, (bm * bn) / (128.0 * 128.0)) ** 0.25
        return max(self.MIN_TILE_EFFICIENCY, narrow * shallow * area)

    def gemm_tile_time(self, bm: int, bn: int, k: int, bk: int = 64,
                       dtype_bytes: int = 2) -> GemmTileCost:
        """Time for one SM to produce one (bm x bn) output tile over depth k.

        Returns the compute duration plus the number of bytes the epilogue
        store (and the L2-missing fraction of operand loads) will push
        through the device HBM pipe — the caller charges those to the pipe
        so memory-bound kernels contend realistically.
        """
        if bm <= 0 or bn <= 0 or k <= 0 or bk <= 0:
            raise ValueError("gemm tile dims must be positive")
        flops = 2.0 * bm * bn * k
        eff = self.tile_efficiency(bm, bn, min(bk, k))
        compute = flops / (self.per_sm_tensor_flops * eff)
        # operand DRAM traffic after L2 reuse + full epilogue store
        operand_bytes = (bm + bn) * k * dtype_bytes * self.GEMM_DRAM_REUSE_DISCOUNT
        store_bytes = bm * bn * dtype_bytes
        return GemmTileCost(
            compute=compute,
            prologue=self.MMA_PROLOGUE,
            epilogue_bytes=operand_bytes + store_bytes,
        )

    def gemm_time_monolithic(self, m: int, n: int, k: int, dtype_bytes: int = 2,
                             n_sms: int | None = None,
                             bm: int = 128, bn: int = 128,
                             bk: int = 64) -> float:
        """Analytic makespan of a dense GEMM using ``n_sms`` SMs.

        Used by closed-form baselines (cuBLAS-style) and as the tuner
        pruner's compute floor; the fused kernels get the same number from
        the DES by actually scheduling tiles.
        """
        sms = n_sms if n_sms is not None else self.spec.n_sms
        if sms <= 0:
            raise ValueError("need at least one SM")
        tiles_m = math.ceil(m / bm)
        tiles_n = math.ceil(n / bn)
        n_tiles = tiles_m * tiles_n
        waves = math.ceil(n_tiles / sms)
        cost = self.gemm_tile_time(bm, bn, k, bk=bk, dtype_bytes=dtype_bytes)
        hbm_floor = (n_tiles * cost.epilogue_bytes) / self.hbm_effective_bandwidth
        return max(waves * cost.total, hbm_floor)

    # -- memory-bound / vector kernels -----------------------------------------

    def memory_tile_time(self, nbytes: float, n_sms_active: int | None = None) -> float:
        """Streaming time for ``nbytes`` given a fair HBM share.

        Device-level contention is modelled by the HBM :class:`Pipe`; this
        per-tile figure is the *issue* cost on the SM side, which matters
        when few SMs try to saturate the memory system.
        """
        sms = n_sms_active if n_sms_active is not None else self.spec.n_sms
        per_sm_bw = self.hbm_effective_bandwidth / self.spec.n_sms
        # One SM can't exceed a small multiple of its fair share.
        per_sm_cap = min(4.0 * per_sm_bw, self.hbm_effective_bandwidth / max(1, sms))
        return nbytes / max(per_sm_bw, per_sm_cap)

    def vector_tile_time(self, n_elements: int, flops_per_element: float,
                         bytes_per_element: float) -> float:
        """Elementwise/reduction tile cost on one SM (softmax, SiLU, topk)."""
        compute = n_elements * flops_per_element / self.per_sm_vector_flops
        memory = self.memory_tile_time(n_elements * bytes_per_element)
        return max(compute, memory)

    # -- attention --------------------------------------------------------------

    def flash_step_time(self, bq: int, bkv: int, head_dim: int,
                        dtype_bytes: int = 2) -> float:
        """One flash-attention inner step (q-tile x kv-tile) on one SM.

        Two MMAs (QK^T and PV) plus the online-softmax vector work.
        """
        mma_flops = 4.0 * bq * bkv * head_dim
        eff = self.tile_efficiency(bq, bkv, head_dim)
        mma = mma_flops / (self.per_sm_tensor_flops * eff)
        softmax = self.vector_tile_time(bq * bkv, flops_per_element=6.0,
                                        bytes_per_element=0.0)
        kv_load = self.memory_tile_time(2 * bkv * head_dim * dtype_bytes)
        return max(mma + softmax, kv_load)

    # -- synchronization --------------------------------------------------------

    def atomic_latency(self, remote: bool) -> float:
        return (self.spec.remote_atomic_latency if remote
                else self.spec.local_atomic_latency)

    def spin_wait_quantum(self) -> float:
        return self.spec.spin_poll_interval

    # -- host ---------------------------------------------------------------------

    def launch_overhead(self) -> float:
        return self.spec.kernel_launch_overhead

    def host_sync_overhead(self) -> float:
        return self.spec.host_sync_overhead
