"""Interconnect model: NVLink/NVSwitch inside a node, NIC links across nodes.

Topology follows the paper's testbed: every device has full-duplex NVLink
through an NVSwitch, so the binding constraints are each device's egress and
ingress bandwidth (H800: ~200 GB/s per direction).  Cross-node traffic goes
through per-GPU NICs with far lower bandwidth and higher latency.

Transfers carry a *protocol*: ``"p2p"`` (copy-engine / NVSHMEM bulk puts,
high efficiency) or ``"nccl"`` (collective protocol with packetization
overhead, lower efficiency).  Protocol efficiency scales the effective
bandwidth, matching how NCCL achieves only a fraction of link peak.
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.sim.engine import Awaitable, Simulator, Timeout
from repro.sim.resources import Pipe

PROTOCOLS = ("p2p", "nccl", "nccl_rs")


class Interconnect:
    """Per-device egress/ingress pipes plus inter-node NIC pipes."""

    def __init__(self, sim: Simulator, config: SimConfig):
        self.sim = sim
        self.config = config
        spec = config.spec
        self.egress = [
            Pipe(sim, spec.nvlink_egress, spec.nvlink_latency, f"nvlink.egress[{r}]")
            for r in range(config.world_size)
        ]
        self.ingress = [
            Pipe(sim, spec.nvlink_ingress, spec.nvlink_latency, f"nvlink.ingress[{r}]")
            for r in range(config.world_size)
        ]
        # One NIC per device for cross-node traffic (GPUDirect RDMA style).
        self.nic_out = [
            Pipe(sim, spec.inter_node_bandwidth, spec.inter_node_latency, f"nic.out[{r}]")
            for r in range(config.world_size)
        ]
        self.nic_in = [
            Pipe(sim, spec.inter_node_bandwidth, spec.inter_node_latency, f"nic.in[{r}]")
            for r in range(config.world_size)
        ]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.config.world_size:
            raise SimulationError(f"rank {rank} out of range")

    def pipes(self, src: int, dst: int) -> list[Pipe]:
        """The pipe chain a ``src -> dst`` transfer must traverse."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return []
        if self.config.same_node(src, dst):
            return [self.egress[src], self.ingress[dst]]
        return [self.nic_out[src], self.nic_in[dst]]

    def protocol_efficiency(self, protocol: str) -> float:
        if protocol == "p2p":
            return self.config.spec.p2p_protocol_efficiency
        if protocol == "nccl":
            return self.config.spec.nccl_protocol_efficiency
        if protocol == "nccl_rs":
            return self.config.spec.nccl_rs_protocol_efficiency
        raise SimulationError(f"unknown protocol {protocol!r}; use one of {PROTOCOLS}")

    def reserve(self, src: int, dst: int, nbytes: float,
                protocol: str = "p2p") -> tuple[float, float]:
        """Jointly reserve the path; returns (start, arrival) times.

        Local (src == dst) transfers complete instantly at the link level —
        the HBM cost of a local copy is charged by the device model instead.
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        if src == dst:
            return self.sim.now, self.sim.now
        eff = self.protocol_efficiency(protocol)
        chain = self.pipes(src, dst)
        bandwidth = min(p.bandwidth for p in chain) * eff
        occupancy = nbytes / bandwidth
        latency = max(p.latency for p in chain)
        # pipes are reserved independently (links multiplex transfers, so a
        # slot on the egress side need not align with the ingress slot);
        # the data has arrived once it cleared every pipe on the path
        start = self.sim.now
        arrival = self.sim.now
        for p in chain:
            p_start = max(self.sim.now, p.free_at)
            p.free_at = p_start + occupancy
            p.total_bytes += nbytes
            p.busy_time += occupancy
            start = max(start, p_start)
            arrival = max(arrival, p.free_at)
        return start, arrival + latency

    def transfer(self, src: int, dst: int, nbytes: float,
                 protocol: str = "p2p") -> Awaitable:
        """Awaitable that completes when the bytes land at ``dst``."""
        _start, arrival = self.reserve(src, dst, nbytes, protocol)
        return Timeout(max(0.0, arrival - self.sim.now))

    def min_transfer_time(self, src: int, dst: int, nbytes: float,
                          protocol: str = "p2p") -> float:
        """Contention-free lower bound for a transfer (analytic helpers)."""
        if src == dst:
            return 0.0
        chain = self.pipes(src, dst)
        eff = self.protocol_efficiency(protocol)
        bandwidth = min(p.bandwidth for p in chain) * eff
        return nbytes / bandwidth + max(p.latency for p in chain)
