"""Timeline tracing: per-resource busy intervals for overlap analysis.

The profiler uses traces to answer the question behind Figure 10's overlap
ratio: *how much of the communication time is hidden under computation?*
Intervals are tagged with a category (``"compute"``, ``"comm"``, ``"host"``,
``"sync"``) and the rank they belong to.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

CATEGORIES = ("compute", "comm", "host", "sync", "memory")


@dataclass(frozen=True)
class TraceInterval:
    """One busy interval on one resource of one rank."""

    rank: int
    category: str
    label: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


def merge_intervals(spans: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping spans as a sorted disjoint list."""
    ordered = sorted((s, e) for s, e in spans if e > s)
    merged: list[tuple[float, float]] = []
    for s, e in ordered:
        if merged and s <= merged[-1][1]:
            last_s, last_e = merged[-1]
            merged[-1] = (last_s, max(last_e, e))
        else:
            merged.append((s, e))
    return merged


def total_time(spans: Iterable[tuple[float, float]]) -> float:
    """Total covered time of the union of spans."""
    return sum(e - s for s, e in merge_intervals(spans))


def intersect_time(
    a: Iterable[tuple[float, float]], b: Iterable[tuple[float, float]]
) -> float:
    """Total time covered by both span sets simultaneously."""
    ma, mb = merge_intervals(a), merge_intervals(b)
    i = j = 0
    out = 0.0
    while i < len(ma) and j < len(mb):
        s = max(ma[i][0], mb[j][0])
        e = min(ma[i][1], mb[j][1])
        if e > s:
            out += e - s
        if ma[i][1] < mb[j][1]:
            i += 1
        else:
            j += 1
    return out


class Trace:
    """Collects :class:`TraceInterval` records during a simulation run."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.intervals: list[TraceInterval] = []

    def record(self, rank: int, category: str, label: str, start: float, end: float) -> None:
        if not self.enabled:
            return
        if category not in CATEGORIES:
            raise ValueError(f"unknown trace category {category!r}")
        self.intervals.append(TraceInterval(rank, category, label, start, end))

    # -- analysis ------------------------------------------------------------

    def spans(self, category: str | None = None, rank: int | None = None
              ) -> list[tuple[float, float]]:
        return [
            (iv.start, iv.end)
            for iv in self.intervals
            if (category is None or iv.category == category)
            and (rank is None or iv.rank == rank)
        ]

    def busy_time(self, category: str, rank: int | None = None) -> float:
        """Union time the given category was active (per rank or global)."""
        return total_time(self.spans(category, rank))

    def overlap_time(self, cat_a: str, cat_b: str, rank: int | None = None) -> float:
        """Time during which both categories were simultaneously active."""
        return intersect_time(self.spans(cat_a, rank), self.spans(cat_b, rank))

    def makespan(self) -> float:
        if not self.intervals:
            return 0.0
        return max(iv.end for iv in self.intervals) - min(iv.start for iv in self.intervals)

    def render(self, width: int = 80, rank: int | None = None) -> str:
        """Tiny ASCII timeline, one row per (rank, category)."""
        ivs = [iv for iv in self.intervals if rank is None or iv.rank == rank]
        if not ivs:
            return "(empty trace)"
        t0 = min(iv.start for iv in ivs)
        t1 = max(iv.end for iv in ivs)
        span = max(t1 - t0, 1e-12)
        keys = sorted({(iv.rank, iv.category) for iv in ivs})
        rows = []
        for r, cat in keys:
            cells = [" "] * width
            for iv in ivs:
                if iv.rank != r or iv.category != cat:
                    continue
                lo = int((iv.start - t0) / span * (width - 1))
                hi = max(lo, int((iv.end - t0) / span * (width - 1)))
                for x in range(lo, hi + 1):
                    cells[x] = cat[0].upper()
            rows.append(f"rank{r}/{cat:<7} |{''.join(cells)}|")
        return "\n".join(rows)
