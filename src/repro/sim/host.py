"""Host-side orchestration: kernel launches, stream syncs, DMA triggers.

One :class:`Host` models the CPU thread driving a rank.  The orchestration
code *is* a simulation process; host actions are ``yield from``-style
sub-routines so host serialization falls out naturally — a host that
launches 16 chunked kernels pays 16 launch overheads back-to-back, which is
the decomposition-baseline cost the paper measures (§2.4, Table 2).
"""

from __future__ import annotations

from repro.sim.costmodel import CostModel
from repro.sim.engine import Join, Process, ProcessGen, Simulator, Timeout
from repro.sim.stream import Stream
from repro.sim.trace import Trace


class Host:
    """CPU-side driver for one rank."""

    def __init__(self, sim: Simulator, rank: int, cost: CostModel,
                 trace: Trace | None = None):
        self.sim = sim
        self.rank = rank
        self.cost = cost
        self.trace = trace

    def _record(self, label: str, start: float, end: float) -> None:
        if self.trace is not None:
            self.trace.record(self.rank, "host", label, start, end)

    def launch(self, stream: Stream, gen: ProcessGen,
               name: str = "kernel") -> ProcessGen:
        """Launch a kernel onto a stream; costs host launch overhead.

        Usage (inside an orchestration process)::

            proc = yield from host.launch(stream, kernel_gen(), "gemm")

        Returns the enqueued :class:`Process` so the caller can later join
        or synchronize on it.
        """
        start = self.sim.now
        yield Timeout(self.cost.launch_overhead())
        self._record(f"launch:{name}", start, self.sim.now)
        proc = stream.enqueue(gen, name=name)
        return proc

    def sync(self, target: Stream | Process) -> ProcessGen:
        """Block the host until a stream drains / a process completes.

        Costs the host-sync overhead on top of the wait itself — this is the
        "host intervention" penalty of operator decomposition.
        """
        start = self.sim.now
        proc = target.tail if isinstance(target, Stream) else target
        if proc is not None and not proc.done:
            yield Join(proc)
        yield Timeout(self.cost.host_sync_overhead())
        self._record("sync", start, self.sim.now)
        return None

    def sleep(self, seconds: float) -> ProcessGen:
        """Host-side delay (e.g. CPU-side routing/bookkeeping work)."""
        start = self.sim.now
        yield Timeout(seconds)
        self._record("work", start, self.sim.now)
        return None
