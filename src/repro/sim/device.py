"""Simulated GPU device: SM pool, copy engines, HBM pipe.

A :class:`Device` owns the contended resources of one rank.  Kernels
scheduled by the runtime acquire SMs from :attr:`Device.sms` (persistent
blocks hold one SM for their lifetime, mirroring how FLUX/TileLink kernels
partition SMs between compute and communication — Figure 4, line 1 of the
paper).  DMA transfers occupy a copy-engine slot.  Memory-bound work charges
the shared :attr:`Device.hbm` pipe so concurrent kernels contend for DRAM
bandwidth realistically.
"""

from __future__ import annotations

from repro.config import HardwareSpec
from repro.errors import SimulationError
from repro.sim.engine import Awaitable, Simulator, Timeout
from repro.sim.resources import Pipe, Resource


class Device:
    """One simulated GPU (rank) of the node."""

    def __init__(self, sim: Simulator, rank: int, spec: HardwareSpec):
        self.sim = sim
        self.rank = rank
        self.spec = spec
        #: Streaming multiprocessors; persistent blocks hold one slot each.
        self.sms = Resource(sim, spec.n_sms, name=f"sms[{rank}]")
        #: DMA copy-engine slots.
        self.copy_engines = Resource(sim, spec.n_copy_engines,
                                     name=f"copy_engines[{rank}]")
        #: Shared HBM bandwidth pipe (effective bandwidth after efficiency).
        self.hbm = Pipe(sim, spec.hbm_bandwidth * spec.hbm_efficiency,
                        latency=0.0, name=f"hbm[{rank}]")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Device rank={self.rank} sms={self.sms.available}/{self.spec.n_sms}>"

    # -- timed work -----------------------------------------------------------

    def compute(self, seconds: float) -> Awaitable:
        """Pure compute occupancy on the calling block's SM."""
        if seconds < 0:
            raise SimulationError("negative compute time")
        return Timeout(seconds)

    def hbm_traffic(self, nbytes: float) -> Awaitable:
        """Charge ``nbytes`` of DRAM traffic to the shared HBM pipe."""
        return self.hbm.transfer(nbytes)

    def reserve_hbm(self, nbytes: float) -> float:
        """Reserve HBM traffic and return the arrival time (non-blocking)."""
        _start, arrival = self.hbm.reserve(nbytes)
        return arrival

    def sm_copy_time(self, nbytes: float) -> float:
        """Time one SM needs to drive an ld/st copy of ``nbytes``."""
        return nbytes / self.spec.sm_copy_bandwidth
