"""Vendor-library-style single-device ops on the simulated node.

These model cuBLAS / CUTLASS / torch kernels: closed-form timing (wave
quantization, launch overhead, memory-bound passes) with numpy effects.
The TileLink kernel zoo (:mod:`repro.kernels`) instead builds its compute
from the tile DSL; both run on the same cost model so comparisons are
apples-to-apples.
"""

from repro.ops.gemm import gemm_op, gemm_ref
from repro.ops.group_gemm import (
    fused_group_gemm_op,
    group_gemm_ref,
    per_expert_gemm_op,
)
from repro.ops.attention import (
    attention_ref,
    flash_attention_op,
    naive_attention_op,
)
from repro.ops.activation import silu_mul_op, silu_mul_ref
from repro.ops.topk import topk_reduce_op, topk_route

__all__ = [
    "attention_ref",
    "flash_attention_op",
    "fused_group_gemm_op",
    "gemm_op",
    "gemm_ref",
    "group_gemm_ref",
    "naive_attention_op",
    "per_expert_gemm_op",
    "silu_mul_op",
    "silu_mul_ref",
    "topk_reduce_op",
    "topk_route",
]
