"""cuBLAS-style dense GEMM as a simulated library kernel.

One launch occupies a requested share of the SM pool for the analytic
makespan from :meth:`repro.sim.costmodel.CostModel.gemm_time_monolithic`
(wave quantization included) and applies the numpy matmul at completion.
This is the compute half of every non-overlap baseline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.memory.tensor import SimTensor
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen, Timeout


def gemm_ref(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Gold-standard numpy GEMM with fp32 accumulation."""
    return (a.astype(np.float32) @ b.astype(np.float32))


def gemm_kernel_gen(ctx: DistContext, rank: int, a: SimTensor, b: SimTensor,
                    c: SimTensor, n_sms: int | None = None,
                    accumulate: bool = False) -> ProcessGen:
    """Generator form (for composition inside other orchestration code)."""
    machine = ctx.machine
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"gemm: {a.shape} x {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    if c.shape != (m, n):
        raise ShapeError(f"gemm: output {c.shape} != ({m}, {n})")
    device = machine.device(rank)
    want = min(n_sms or device.sms.capacity, device.sms.capacity)
    yield device.sms.acquire(want)
    try:
        t0 = machine.now
        duration = machine.cost.gemm_time_monolithic(
            m, n, k, dtype_bytes=a.itemsize, n_sms=want)
        yield Timeout(duration)
        if machine.config.execute_numerics:
            result = gemm_ref(a.numpy(), b.numpy())
            if accumulate:
                c.accumulate_tile(((0, m), (0, n)), result)
            else:
                c.write_tile(((0, m), (0, n)), result)
        if machine.config.trace:
            machine.record(rank, "compute", "gemm", t0, machine.now)
    finally:
        device.sms.release(want)
    return None


def gemm_op(ctx: DistContext, rank: int, a: SimTensor, b: SimTensor,
            c: SimTensor, stream_name: str = "default",
            n_sms: int | None = None, accumulate: bool = False) -> Process:
    """Enqueue a library GEMM on a rank's stream (with launch overhead)."""
    stream = ctx.machine.stream(rank, stream_name)
    return stream.enqueue(
        gemm_kernel_gen(ctx, rank, a, b, c, n_sms, accumulate),
        name=f"gemm[{rank}]",
        start_delay=ctx.machine.cost.launch_overhead(),
    )
