"""Grouped (MoE expert) GEMM library kernels.

Two execution strategies, matching the Figure 9 baselines:

* :func:`per_expert_gemm_op` — the cuBLAS/CUTLASS+NCCL way: one GEMM launch
  per expert.  Small per-expert token counts mean tiny grids (resource
  quantization inefficiency) and E kernel-launch overheads; with E=32 this
  is what vLLM's fusion beats by ~10x in the paper.
* :func:`fused_group_gemm_op` — the vLLM-style fused kernel: a single
  launch whose grid covers every expert's (padded) token tiles, with the
  token gather fused into the main loop.

Both produce ``out[i] = tokens[sorted_token_ids[i]] @ W[expert_of(i)]`` for
the expert-grouped row layout produced by
:func:`repro.mapping.dynamic.build_moe_consumer_mapping`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ShapeError
from repro.memory.tensor import SimTensor
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen, Timeout


def group_gemm_ref(tokens: np.ndarray, weights: np.ndarray,
                   sorted_token_ids: np.ndarray,
                   expert_of_row: np.ndarray) -> np.ndarray:
    """Gold-standard grouped GEMM: per-row expert weight matmul."""
    if sorted_token_ids.shape != expert_of_row.shape:
        raise ShapeError("sorted ids / expert ids length mismatch")
    gathered = tokens[sorted_token_ids].astype(np.float32)
    out = np.empty((len(sorted_token_ids), weights.shape[2]), dtype=np.float32)
    for e in range(weights.shape[0]):
        mask = expert_of_row == e
        if mask.any():
            out[mask] = gathered[mask] @ weights[e].astype(np.float32)
    return out


def _apply_numeric(ctx: DistContext, tokens: SimTensor, weights: SimTensor,
                   out: SimTensor, sorted_token_ids: np.ndarray,
                   expert_of_row: np.ndarray) -> None:
    if not ctx.machine.config.execute_numerics:
        return
    result = group_gemm_ref(tokens.numpy(), weights.numpy(),
                            sorted_token_ids, expert_of_row)
    out.write_tile(((0, len(sorted_token_ids)), (0, result.shape[1])),
                   result)


def per_expert_gemm_op(
    ctx: DistContext, rank: int, tokens: SimTensor, weights: SimTensor,
    out: SimTensor, sorted_token_ids: np.ndarray, expert_of_row: np.ndarray,
    stream_name: str = "default", n_sms: int | None = None,
    gather_fused: bool = False, host_synced: bool = True,
) -> Process:
    """E separate GEMM launches (+ standalone gather/scatter passes).

    Without ``gather_fused`` the tokens are first gathered into a staging
    buffer (a full memory-bound pass) and results scattered back — the
    extra passes the paper's cuBLAS baseline pays.  ``host_synced`` adds
    the per-expert CPU coordination real variable-group cuBLAS loops need
    (pointer setup + sync before each launch).
    """
    machine = ctx.machine
    cost = machine.cost
    n_experts, hidden, inter = weights.shape
    counts = np.bincount(expert_of_row, minlength=n_experts)

    def gen() -> ProcessGen:
        device = machine.device(rank)
        want = min(n_sms or device.sms.capacity, device.sms.capacity)
        yield device.sms.acquire(want)
        try:
            t0 = machine.now
            total = 0.0
            hbm_bw = cost.hbm_effective_bandwidth
            per_op = cost.launch_overhead() + (
                cost.host_sync_overhead() if host_synced else 0.0)
            for e in range(n_experts):
                rows = int(counts[e])
                if rows == 0:
                    continue
                if not gather_fused:
                    # per-expert index_select into a contiguous staging
                    # buffer (the unfused-gather bottleneck of Figure 9)
                    gather_bytes = 2.0 * rows * hidden * tokens.itemsize
                    total += per_op + gather_bytes / hbm_bw
                total += per_op  # the expert's GEMM launch (+ sync)
                total += cost.gemm_time_monolithic(
                    rows, inter, hidden, dtype_bytes=tokens.itemsize,
                    n_sms=want)
                if not gather_fused:
                    # per-expert index_copy of the expert's output rows
                    scatter_bytes = 2.0 * rows * inter * out.itemsize
                    total += per_op + scatter_bytes / hbm_bw
            if not gather_fused:
                arrival = device.reserve_hbm(
                    2.0 * len(sorted_token_ids)
                    * (hidden * tokens.itemsize + inter * out.itemsize))
                total = max(total, arrival - machine.now)
            yield Timeout(total)
            _apply_numeric(ctx, tokens, weights, out, sorted_token_ids,
                           expert_of_row)
            if machine.config.trace:
                machine.record(rank, "compute", "group_gemm.per_expert",
                               t0, machine.now)
        finally:
            device.sms.release(want)
        return None

    return machine.stream(rank, stream_name).enqueue(
        gen(), name=f"group_gemm.per_expert[{rank}]",
        start_delay=cost.launch_overhead())


def fused_group_gemm_op(
    ctx: DistContext, rank: int, tokens: SimTensor, weights: SimTensor,
    out: SimTensor, sorted_token_ids: np.ndarray, expert_of_row: np.ndarray,
    stream_name: str = "default", n_sms: int | None = None,
    block_m: int = 128, block_n: int = 128,
) -> Process:
    """vLLM-style fused grouped GEMM: one launch, gather in the main loop."""
    machine = ctx.machine
    cost = machine.cost
    n_experts, hidden, inter = weights.shape
    counts = np.bincount(expert_of_row, minlength=n_experts)

    def gen() -> ProcessGen:
        device = machine.device(rank)
        want = min(n_sms or device.sms.capacity, device.sms.capacity)
        yield device.sms.acquire(want)
        try:
            t0 = machine.now
            tiles_m = int(sum(math.ceil(int(c) / block_m) for c in counts if c))
            tiles_n = math.ceil(inter / block_n)
            n_tiles = tiles_m * tiles_n
            waves = math.ceil(max(1, n_tiles) / want)
            tile = cost.gemm_tile_time(block_m, block_n, hidden,
                                       dtype_bytes=tokens.itemsize)
            # fused gather rides the main-loop loads: ~1.2x A-operand traffic
            duration = waves * (tile.total * 1.08)
            hbm_bytes = n_tiles * tile.epilogue_bytes
            arrival = device.reserve_hbm(hbm_bytes)
            yield Timeout(max(duration, arrival - machine.now))
            _apply_numeric(ctx, tokens, weights, out, sorted_token_ids,
                           expert_of_row)
            if machine.config.trace:
                machine.record(rank, "compute", "group_gemm.fused",
                               t0, machine.now)
        finally:
            device.sms.release(want)
        return None

    return machine.stream(rank, stream_name).enqueue(
        gen(), name=f"group_gemm.fused[{rank}]",
        start_delay=cost.launch_overhead())
