"""MoE routing: top-k expert selection and the Topk-Reduce epilogue.

:func:`topk_route` is the host/CPU-side routing used to fill the dynamic
mapping tables (paper §4.1's "dynamic logics"); :func:`topk_reduce_op` is
the weighted combine of per-(token, expert) outputs back to token rows —
the epilogue the second MoE part fuses ahead of its ReduceScatter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.memory.tensor import SimTensor
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen, Timeout


def topk_route(logits: np.ndarray, topk: int,
               normalize: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Select top-k experts per token; returns (topk_ids, topk_weights).

    Deterministic: stable ordering on ties (descending logit, ascending id).
    """
    if logits.ndim != 2:
        raise ShapeError("router logits must be (tokens, experts)")
    n_tokens, n_experts = logits.shape
    if not 1 <= topk <= n_experts:
        raise ShapeError(f"topk {topk} out of range (E={n_experts})")
    order = np.argsort(-logits, axis=1, kind="stable")
    ids = order[:, :topk].astype(np.int64)
    picked = np.take_along_axis(logits, ids, axis=1).astype(np.float32)
    e = np.exp(picked - picked.max(axis=1, keepdims=True))
    weights = e / e.sum(axis=1, keepdims=True) if normalize \
        else np.ones_like(e) / topk
    return ids, weights


def topk_reduce_ref(grouped_out: np.ndarray, sorted_token_ids: np.ndarray,
                    row_weights: np.ndarray, n_tokens: int) -> np.ndarray:
    """Gold standard: scatter-add weighted expert outputs to token rows."""
    out = np.zeros((n_tokens, grouped_out.shape[1]), dtype=np.float32)
    np.add.at(out, sorted_token_ids,
              grouped_out.astype(np.float32) * row_weights[:, None])
    return out


def topk_reduce_op(ctx: DistContext, rank: int, grouped_out: SimTensor,
                   out: SimTensor, sorted_token_ids: np.ndarray,
                   row_weights: np.ndarray,
                   stream_name: str = "default",
                   n_sms: int | None = None) -> Process:
    """Scatter + weighted top-k reduction (memory-bound pass)."""
    machine = ctx.machine
    cost = machine.cost
    rows = len(sorted_token_ids)
    n_tokens, width = out.shape

    def gen() -> ProcessGen:
        device = machine.device(rank)
        want = min(n_sms or device.sms.capacity, device.sms.capacity)
        yield device.sms.acquire(want)
        try:
            t0 = machine.now
            # read grouped rows + atomic read-modify-write on token rows
            nbytes = rows * width * grouped_out.itemsize \
                + 2.0 * rows * width * out.itemsize
            arrival = device.reserve_hbm(nbytes)
            duration = max(nbytes / cost.hbm_effective_bandwidth,
                           arrival - machine.now)
            yield Timeout(duration)
            if machine.config.execute_numerics:
                result = topk_reduce_ref(
                    grouped_out.numpy()[:rows], sorted_token_ids,
                    row_weights, n_tokens)
                out.write_tile(((0, n_tokens), (0, width)), result)
            if machine.config.trace:
                machine.record(rank, "compute", "topk_reduce", t0, machine.now)
        finally:
            device.sms.release(want)
        return None

    return machine.stream(rank, stream_name).enqueue(
        gen(), name=f"topk_reduce[{rank}]",
        start_delay=cost.launch_overhead())
