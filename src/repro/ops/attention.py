"""Attention library kernels: flash (fused) and naive (unfused).

The naive variant materializes the score matrix in HBM and re-reads it for
softmax and the PV matmul — three memory-bound passes over an
O(S_q x S_kv) buffer.  That traffic is why the paper's ``Torch`` baseline
loses ~5x to the overlapped flash kernel at long sequence lengths.

Layouts: device tensors are 2-d row-major sequences — Q is
``(S_q, heads*dim)``, K/V are ``(S_kv, heads*dim)`` — the layout the
sequence-parallel AllGather moves.  Numerics reshape to (H, S, D)
internally.  ``causal`` masks with the *global* query offset so shards
mask correctly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ShapeError
from repro.memory.tensor import SimTensor
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen, Timeout


def attention_ref(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                  causal: bool = False, q_offset: int = 0) -> np.ndarray:
    """Gold-standard softmax attention (fp32), shapes (H, S, D)."""
    if q.ndim != 3 or k.ndim != 3 or v.ndim != 3:
        raise ShapeError("attention_ref expects (H, S, D) arrays")
    qf = q.astype(np.float32)
    kf = k.astype(np.float32)
    vf = v.astype(np.float32)
    scale = 1.0 / math.sqrt(q.shape[-1])
    scores = np.einsum("hqd,hkd->hqk", qf, kf) * scale
    if causal:
        sq, skv = scores.shape[1], scores.shape[2]
        qpos = np.arange(sq)[:, None] + q_offset
        kpos = np.arange(skv)[None, :]
        scores = np.where(kpos <= qpos, scores, -np.inf)
    scores = scores - scores.max(axis=-1, keepdims=True)
    p = np.exp(scores)
    denom = p.sum(axis=-1, keepdims=True)
    denom = np.where(denom == 0, 1.0, denom)  # fully-masked rows
    p = p / denom
    return np.einsum("hqk,hkd->hqd", p, vf)


def seq_to_heads(x: np.ndarray, heads: int, dim: int) -> np.ndarray:
    """(S, heads*dim) row layout -> (heads, S, dim)."""
    if x.ndim != 2 or x.shape[1] != heads * dim:
        raise ShapeError(f"bad sequence layout {x.shape} for H={heads} D={dim}")
    return np.ascontiguousarray(x.reshape(x.shape[0], heads, dim)
                                .transpose(1, 0, 2))


def heads_to_seq(x: np.ndarray) -> np.ndarray:
    """(heads, S, dim) -> (S, heads*dim) row layout."""
    h, s, d = x.shape
    return np.ascontiguousarray(x.transpose(1, 0, 2).reshape(s, h * d))


def flash_segment_time(ctx: DistContext, heads: int, sq: int, skv: int,
                       dim: int, n_sms: int, frac: float = 1.0,
                       bq: int = 128, bkv: int = 128) -> float:
    """Makespan of flash attention over one KV segment.

    ``frac`` scales the inner-step count (0.5 for the triangular diagonal
    segment under causal masking).
    """
    cost = ctx.machine.cost
    blocks = heads * math.ceil(sq / bq)
    waves = math.ceil(blocks / max(1, n_sms))
    steps = max(1, math.ceil(math.ceil(skv / bkv) * frac))
    step_t = cost.flash_step_time(bq, bkv, dim)
    return waves * (cost.MMA_PROLOGUE + steps * step_t)


def flash_attention_op(ctx: DistContext, rank: int, q: SimTensor,
                       k: SimTensor, v: SimTensor, o: SimTensor,
                       heads: int, dim: int,
                       causal: bool = False, q_offset: int = 0,
                       stream_name: str = "default",
                       n_sms: int | None = None) -> Process:
    """Fused flash-attention launch over 2-d sequence-layout tensors."""
    machine = ctx.machine
    sq = q.shape[0]
    skv = k.shape[0]

    def gen() -> ProcessGen:
        device = machine.device(rank)
        want = min(n_sms or device.sms.capacity, device.sms.capacity)
        yield device.sms.acquire(want)
        try:
            t0 = machine.now
            frac = 1.0
            if causal:
                # queries at offset see ~(offset + sq/2) of skv keys
                frac = min(1.0, (q_offset + sq / 2) / max(1, skv))
            duration = flash_segment_time(ctx, heads, sq, skv, dim, want,
                                          frac)
            kv_bytes = 2.0 * skv * heads * dim * k.itemsize
            arrival = device.reserve_hbm(kv_bytes)
            yield Timeout(max(duration, arrival - machine.now))
            if machine.config.execute_numerics:
                out = attention_ref(seq_to_heads(q.numpy(), heads, dim),
                                    seq_to_heads(k.numpy(), heads, dim),
                                    seq_to_heads(v.numpy(), heads, dim),
                                    causal, q_offset)
                o.write_tile(((0, sq), (0, heads * dim)), heads_to_seq(out))
            if machine.config.trace:
                machine.record(rank, "compute", "flash_attn", t0, machine.now)
        finally:
            device.sms.release(want)
        return None

    return machine.stream(rank, stream_name).enqueue(
        gen(), name=f"flash_attn[{rank}]",
        start_delay=machine.cost.launch_overhead())


def naive_attention_op(ctx: DistContext, rank: int, q: SimTensor,
                       k: SimTensor, v: SimTensor, o: SimTensor,
                       heads: int, dim: int,
                       causal: bool = False, q_offset: int = 0,
                       stream_name: str = "default",
                       n_sms: int | None = None) -> Process:
    """Unfused attention: QK^T -> HBM, softmax pass, PV — the Torch baseline."""
    machine = ctx.machine
    cost = machine.cost
    sq = q.shape[0]
    skv = k.shape[0]

    def gen() -> ProcessGen:
        device = machine.device(rank)
        want = min(n_sms or device.sms.capacity, device.sms.capacity)
        yield device.sms.acquire(want)
        try:
            t0 = machine.now
            score_bytes = float(heads) * sq * skv * 2  # fp16 scores
            gemm1 = _batched_gemm_time(cost, heads, sq, skv, dim, want)
            gemm2 = _batched_gemm_time(cost, heads, sq, dim, skv, want)
            # eager pipeline: scores written, masked_fill read+write,
            # softmax read+write, PV read — six passes over the matrix
            total_hbm = 6.0 * score_bytes
            arrival = device.reserve_hbm(total_hbm)
            hbm_time = total_hbm / cost.hbm_effective_bandwidth
            duration = (gemm1 + gemm2 + 2 * cost.launch_overhead()
                        + max(hbm_time, arrival - machine.now))
            yield Timeout(duration)
            if machine.config.execute_numerics:
                out = attention_ref(seq_to_heads(q.numpy(), heads, dim),
                                    seq_to_heads(k.numpy(), heads, dim),
                                    seq_to_heads(v.numpy(), heads, dim),
                                    causal, q_offset)
                o.write_tile(((0, sq), (0, heads * dim)), heads_to_seq(out))
            if machine.config.trace:
                machine.record(rank, "compute", "naive_attn", t0, machine.now)
        finally:
            device.sms.release(want)
        return None

    return machine.stream(rank, stream_name).enqueue(
        gen(), name=f"naive_attn[{rank}]",
        start_delay=machine.cost.launch_overhead())


def _batched_gemm_time(cost, batch: int, m: int, n: int, k: int,
                       n_sms: int) -> float:
    """Batched GEMM: grid covers batch x tile grid (wave accounting)."""
    bm = min(128, m)
    bn = min(128, n)
    tiles = batch * math.ceil(m / bm) * math.ceil(n / bn)
    waves = math.ceil(tiles / max(1, n_sms))
    tile = cost.gemm_tile_time(bm, bn, k)
    return waves * tile.total
