"""Activation epilogues: the SiLUMul / GeLUMul between the two MLP GEMMs.

Memory-bound elementwise kernels: read two operands, write one result.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.memory.tensor import SimTensor
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen, Timeout


def silu_mul_ref(gate: np.ndarray, up: np.ndarray) -> np.ndarray:
    """Gold-standard SiLU(gate) * up in fp32."""
    g = gate.astype(np.float32)
    return (g / (1.0 + np.exp(-g))) * up.astype(np.float32)


def _elementwise_gen(ctx: DistContext, rank: int, inputs: list[SimTensor],
                     out: SimTensor, apply, label: str,
                     flops_per_element: float) -> ProcessGen:
    machine = ctx.machine
    cost = machine.cost
    device = machine.device(rank)
    nbytes = sum(t.nbytes for t in inputs) + out.nbytes
    n_elems = out.size
    t0 = machine.now
    arrival = device.reserve_hbm(nbytes)
    compute = n_elems * flops_per_element / cost.spec.vector_flops
    duration = max(nbytes / cost.hbm_effective_bandwidth,
                   arrival - machine.now, compute)
    yield Timeout(duration)
    if machine.config.execute_numerics:
        result = apply(*[t.numpy() for t in inputs])
        out.write_tile(tuple((0, s) for s in out.shape), result)
    if machine.config.trace:
        machine.record(rank, "compute", label, t0, machine.now)
    return None


def silu_mul_op(ctx: DistContext, rank: int, gate: SimTensor, up: SimTensor,
                out: SimTensor, stream_name: str = "default") -> Process:
    """SwiGLU epilogue: ``out = silu(gate) * up``."""
    if gate.shape != up.shape or gate.shape != out.shape:
        raise ShapeError(
            f"silu_mul shapes differ: {gate.shape}, {up.shape}, {out.shape}")
    return ctx.machine.stream(rank, stream_name).enqueue(
        _elementwise_gen(ctx, rank, [gate, up], out, silu_mul_ref,
                         "silu_mul", flops_per_element=14.0),
        name=f"silu_mul[{rank}]",
        start_delay=ctx.machine.cost.launch_overhead())


def silu_ref(x: np.ndarray) -> np.ndarray:
    """Gold-standard SiLU in fp32."""
    xf = x.astype(np.float32)
    return xf / (1.0 + np.exp(-xf))


def silu_op(ctx: DistContext, rank: int, x: SimTensor, out: SimTensor,
            stream_name: str = "default") -> Process:
    """Single-input SiLU (the paper's inter-GEMM activation layer)."""
    if x.shape != out.shape:
        raise ShapeError(f"silu shapes differ: {x.shape}, {out.shape}")
    return ctx.machine.stream(rank, stream_name).enqueue(
        _elementwise_gen(ctx, rank, [x], out, silu_ref, "silu",
                         flops_per_element=12.0),
        name=f"silu[{rank}]",
        start_delay=ctx.machine.cost.launch_overhead())
