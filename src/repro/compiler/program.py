"""Kernel compilation driver: frontend IR + passes -> CompiledProgram.

Specializations are cached per (constexpr binding, options) on the
:class:`repro.lang.dsl.KernelDef`, mirroring Triton's JIT cache.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

from repro.errors import CompileError
from repro.lang.dsl import KernelDef
from repro.lang.ir import KernelIR
from repro.compiler.passes import (
    annotate_loops,
    enforce_consistency,
    pipeline_loops,
    verify_consistency,
)


@dataclass(frozen=True)
class CompileOptions:
    """Backend knobs (ablation switches of the A3 experiment).

    Parameters
    ----------
    num_stages:
        Software-pipeline depth; < 2 disables pipelining (and with it the
        load/compute overlap inside tile loops).
    enforce_consistency:
        Run the §4.2 memory-consistency pass.  Disabling it lets the
        pipeliner hoist loads above wait primitives — observable as wrong
        numerics in numeric mode.
    validate:
        Run the consistency checker after passes (raises
        :class:`repro.errors.ConsistencyError` on a bad schedule) and the
        structural half of the static synchronization analyzer (raises
        :class:`repro.errors.AnalysisError` on primitive misuse or a
        divergent ``barrier_all``).
    """

    num_stages: int = 3
    enforce_consistency: bool = True
    validate: bool = True


@dataclass
class CompiledProgram:
    """An annotated, specialization-bound kernel ready for launch."""

    name: str
    ir: KernelIR
    constexprs: dict[str, Any]
    options: CompileOptions

    @property
    def tensor_params(self) -> list[str]:
        skip = set(self.ir.constexpr_params)
        if self.ir.channel_param:
            skip.add(self.ir.channel_param)
        return [p for p in self.ir.params if p not in skip]


def compile_kernel(kdef: KernelDef, constexprs: dict[str, Any],
                   options: CompileOptions | None = None) -> CompiledProgram:
    """Run the backend passes for one specialization (cached)."""
    options = options or CompileOptions()
    key = (kdef.specialization_key(constexprs), options)
    cached = kdef._programs.get(key)
    if cached is not None:
        return cached

    ir = copy.deepcopy(kdef.ir)
    for p, v in constexprs.items():
        if p not in ir.constexpr_params:
            raise CompileError(
                f"{kdef.name}: {p!r} is not a constexpr parameter")
    annotate_loops(ir)
    pipeline_loops(ir, num_stages=options.num_stages)
    if options.enforce_consistency:
        enforce_consistency(ir)
        if options.validate:
            verify_consistency(ir)
    if options.validate:
        # lazy import: the analyzer sits above the compiler in the layer
        # stack (it also drives whole launch plans)
        from repro.analyze.registry import check_compiled_ir

        check_compiled_ir(ir)
    program = CompiledProgram(
        name=kdef.name,
        ir=ir,
        constexprs={p: constexprs[p] for p in ir.constexpr_params},
        options=options,
    )
    kdef._programs[key] = program
    return program
