"""Runtime tile values for the backend interpreter.

A :class:`TileVal` carries shape/dtype always and data only in numeric
mode, so the same instruction stream runs in both modes.  Elementwise
helpers implement the numpy semantics of each ``tl`` op once, shared by the
interpreter and (indirectly, through tests) by the reference kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class TileVal:
    """A register tile: shape + dtype (+ data in numeric mode)."""

    __slots__ = ("shape", "dtype", "data")

    def __init__(self, shape: tuple[int, ...], dtype: np.dtype,
                 data: np.ndarray | None):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        if data is not None and tuple(data.shape) != self.shape:
            raise ShapeError(f"TileVal data shape {data.shape} != {self.shape}")
        self.data = data

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "numeric" if self.data is not None else "stub"
        return f"<TileVal {self.shape} {self.dtype} {mode}>"

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "TileVal":
        return cls(tuple(arr.shape), arr.dtype, arr)

    @classmethod
    def stub(cls, shape: tuple[int, ...], dtype) -> "TileVal":
        return cls(shape, np.dtype(dtype), None)


def padded_to(arr: np.ndarray | None, shape: tuple[int, ...],
              dtype: np.dtype) -> np.ndarray | None:
    """Zero-pad a (possibly clamped) region up to the full tile shape.

    Mirrors Triton's masked loads: edge tiles read as zero outside bounds.
    """
    if arr is None:
        return None
    arr = np.asarray(arr, dtype=dtype)
    if tuple(arr.shape) == tuple(shape):
        return arr
    if len(arr.shape) != len(shape):
        raise ShapeError(f"cannot pad {arr.shape} to {shape}")
    out = np.zeros(shape, dtype=dtype)
    region = tuple(slice(0, min(a, b)) for a, b in zip(arr.shape, shape))
    out[region] = arr[region]
    return out


def broadcast_shapes(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """Numpy-style broadcast of two shapes (raises ShapeError on mismatch)."""
    try:
        return tuple(np.broadcast_shapes(a, b))
    except ValueError as exc:
        raise ShapeError(f"cannot broadcast {a} with {b}") from exc


_UNARY = {
    "exp": lambda x: np.exp(x, dtype=np.float32),
    "log": lambda x: np.log(x, dtype=np.float32),
    "relu": lambda x: np.maximum(x, 0),
    "neg": lambda x: -x,
    "silu": lambda x: (x.astype(np.float32)
                       / (1.0 + np.exp(-x.astype(np.float32)))),
    "gelu": lambda x: 0.5 * x.astype(np.float32) * (1.0 + np.tanh(
        0.7978845608028654 * (x.astype(np.float32)
                              + 0.044715 * x.astype(np.float32) ** 3))),
}

_BINARY = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "maximum_tile": np.maximum,
    "minimum_tile": np.minimum,
}

#: approximate per-element FLOP cost of the vector ops (for the cost model)
ELEMENTWISE_FLOPS = {
    "exp": 8.0, "log": 8.0, "relu": 1.0, "neg": 1.0, "silu": 12.0,
    "gelu": 16.0, "add": 1.0, "sub": 1.0, "mul": 1.0, "div": 4.0,
    "maximum_tile": 1.0, "minimum_tile": 1.0, "cast": 1.0, "copy": 0.5,
    "expand_dims": 0.0, "row_max": 2.0, "row_sum": 2.0,
}


def apply_unary(op: str, x: TileVal) -> TileVal:
    fn = _UNARY[op]
    data = fn(x.data) if x.data is not None else None
    dtype = np.float32 if op in ("exp", "log", "silu", "gelu") else x.dtype
    if data is not None:
        data = data.astype(dtype, copy=False)
    return TileVal(x.shape, dtype, data)


def apply_binary(op: str, a: TileVal | float, b: TileVal | float) -> TileVal:
    fn = _BINARY[op]
    av = a if isinstance(a, TileVal) else None
    bv = b if isinstance(b, TileVal) else None
    if av is None and bv is None:
        raise ShapeError("elementwise op needs at least one tile operand")
    shape = broadcast_shapes(
        av.shape if av else (), bv.shape if bv else ())
    dtype = np.result_type(
        av.dtype if av else np.float32, bv.dtype if bv else np.float32)
    numeric = all(v is None or v.data is not None for v in (av, bv))
    if numeric:
        lhs = av.data if av else a
        rhs = bv.data if bv else b
        data = fn(lhs, rhs).astype(dtype, copy=False)
        return TileVal(shape, dtype, data)
    return TileVal.stub(shape, dtype)
