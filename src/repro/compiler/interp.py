"""Backend interpreter: executes a CompiledProgram block on the simulator.

One invocation of :func:`run_block` is one block (CTA) of the launch grid:
a simulation process that walks the annotated IR, advancing simulated time
per tile operation (cost model), applying numpy effects in numeric mode,
and interacting with signal banks / the interconnect for TileLink
primitives.

Scheduling semantics implemented here (see compiler/passes.py for how the
annotations are produced):

* **aggregable loops** are priced analytically: the first iteration is
  cost-probed, then one timed event covers all iterations (pipelined loops
  price ``max(load, compute)`` per iteration, otherwise the sum).  In
  numeric mode every iteration's numpy effect still runs.
* **pipelined non-aggregable loops** prefetch their ``prefetchable`` loads
  at iteration start — address computation replayed from the body's scalar
  statements, value snapshotted *before* any wait primitive runs.  Loads
  pinned by the consistency pass execute in place, after their guards.
* **signal primitives** lower to release-semantics posts (fire and forget)
  and acquire-semantics waits on :class:`repro.memory.signals.SignalArray`.
* **data primitives and remote loads** reserve interconnect pipes; payloads
  land at arrival time, so unguarded remote reads observe stale data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import LoweringError, RuntimeLaunchError, ShapeError, SimulationError
from repro.lang.block_channel import BlockChannel
from repro.lang.ir import (
    AssignScalar,
    BinOp,
    ChannelField,
    Const,
    Expr,
    For,
    If,
    Name,
    Primitive,
    Return,
    Stmt,
    TensorRef,
    TileOp,
    UnaryOp,
)
from repro.compiler.program import CompiledProgram
from repro.compiler.values import (
    ELEMENTWISE_FLOPS,
    TileVal,
    apply_binary,
    apply_unary,
    padded_to,
)
from repro.memory.tensor import SimTensor, resolve_dtype
from repro.sim.engine import Timeout
from repro.sim.machine import Machine


class _ReturnSignal(Exception):
    """Internal: a Return statement unwound the block."""


@dataclass
class CostRec:
    """Per-op cost: SM compute time, SM load time, HBM bytes to charge."""

    compute: float = 0.0
    load: float = 0.0
    hbm_bytes: float = 0.0

    def add(self, other: "CostRec") -> None:
        self.compute += other.compute
        self.load += other.load
        self.hbm_bytes += other.hbm_bytes


class BlockInterp:
    """Interpreter state for one block of one rank's launch."""

    #: fraction of aggregable-loop load bytes that miss L2 and hit HBM
    AGG_DRAM_DISCOUNT = 0.22

    def __init__(self, program: CompiledProgram, machine: Machine, rank: int,
                 block_id: int, n_blocks: int, bindings: dict[str, Any],
                 label: str = ""):
        self.program = program
        self.machine = machine
        self.rank = rank
        self.device = machine.device(rank)
        self.cost = machine.cost
        self.bindings = bindings
        self.execute = machine.config.execute_numerics
        self.label = label or program.name
        self.channel: BlockChannel | None = None
        if program.ir.channel_param is not None:
            ch = bindings.get(program.ir.channel_param)
            if not isinstance(ch, BlockChannel):
                raise RuntimeLaunchError(
                    f"kernel {program.name!r} expects a BlockChannel for "
                    f"parameter {program.ir.channel_param!r}")
            self.channel = ch
        self.scalars: dict[str, Any] = {"$bid": block_id, "$nblocks": n_blocks}
        self.scalars.update(program.constexprs)
        for p in program.tensor_params:
            if p not in bindings:
                raise RuntimeLaunchError(
                    f"kernel {program.name!r} missing argument {p!r}")
            v = bindings[p]
            if isinstance(v, (int, float)):
                self.scalars[p] = v
        self.tiles: dict[str, TileVal] = {}

    # ------------------------------------------------------------------ utils

    def _trace(self, category: str, start: float, end: float) -> None:
        if self.machine.config.trace and end > start:
            self.machine.record(self.rank, category, self.label, start, end)

    def _charge(self, rec: CostRec, category: str = "compute"):
        """Generator: advance simulated time for a cost record."""
        t0 = self.machine.now
        arrival = t0
        if rec.hbm_bytes > 0:
            arrival = self.device.reserve_hbm(rec.hbm_bytes)
        dur = max(rec.compute + rec.load, arrival - t0)
        if dur > 0:
            yield Timeout(dur)
        self._trace(category, t0, self.machine.now)

    def require_channel(self) -> BlockChannel:
        if self.channel is None:
            raise LoweringError(
                f"kernel {self.program.name!r} uses primitives but has no "
                "BlockChannel parameter")
        return self.channel

    # -------------------------------------------------------------- expressions

    def eval(self, e: Expr, env: dict[str, Any] | None = None) -> Any:
        scope = env if env is not None else self.scalars
        if isinstance(e, Const):
            return e.value
        if isinstance(e, Name):
            if e.id in scope:
                return scope[e.id]
            if e.id in self.scalars:
                return self.scalars[e.id]
            raise LoweringError(
                f"{self.program.name}: undefined scalar {e.id!r}")
        if isinstance(e, ChannelField):
            return self.require_channel().scalar_field(e.field_name)
        if isinstance(e, UnaryOp):
            v = self.eval(e.operand, env)
            return -v if e.op == "-" else (not v)
        if isinstance(e, BinOp):
            op = e.op
            if op == "and":
                return self.eval(e.left, env) and self.eval(e.right, env)
            if op == "or":
                return self.eval(e.left, env) or self.eval(e.right, env)
            a = self.eval(e.left, env)
            b = self.eval(e.right, env)
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "//":
                return a // b
            if op == "/":
                return a / b
            if op == "%":
                return a % b
            if op == "**":
                return a ** b
            if op == "cdiv":
                return -(-a // b)
            if op == "min":
                return min(a, b)
            if op == "max":
                return max(a, b)
            if op == "<":
                return a < b
            if op == "<=":
                return a <= b
            if op == ">":
                return a > b
            if op == ">=":
                return a >= b
            if op == "==":
                return a == b
            if op == "!=":
                return a != b
            raise LoweringError(f"unknown scalar op {op!r}")
        raise LoweringError(f"cannot evaluate expression {e!r}")

    def _range_pair(self, arg: Any, env: dict[str, Any] | None) -> tuple[int, int]:
        if not (isinstance(arg, tuple) and len(arg) == 2):
            raise LoweringError(f"expected (lo, hi) range, got {arg!r}")
        return int(self.eval(arg[0], env)), int(self.eval(arg[1], env))

    def _operand(self, arg: Any, env: dict[str, Any] | None) -> Any:
        """A TileOp operand: tile name -> TileVal, Expr -> scalar."""
        if isinstance(arg, str):
            if arg in self.tiles:
                return self.tiles[arg]
            raise LoweringError(f"undefined tile {arg!r}")
        if isinstance(arg, Expr):
            return self.eval(arg, env)
        raise LoweringError(f"bad tile operand {arg!r}")

    def resolve_tensor(self, ref: TensorRef,
                       env: dict[str, Any] | None) -> tuple[SimTensor, int]:
        """Bind a TensorRef to a concrete instance; returns (tensor, rank)."""
        bound = self.bindings.get(ref.name)
        if bound is None:
            raise RuntimeLaunchError(
                f"kernel {self.program.name!r}: no binding for tensor "
                f"{ref.name!r}")
        if isinstance(bound, list):
            rank = self.rank if ref.rank is None else int(self.eval(ref.rank, env))
            if not 0 <= rank < len(bound):
                raise RuntimeLaunchError(
                    f"tensor {ref.name!r} indexed with rank {rank} out of "
                    f"range [0, {len(bound)})")
            return bound[rank], rank
        if isinstance(bound, SimTensor):
            if ref.rank is not None:
                rank = int(self.eval(ref.rank, env))
                if rank != bound.rank:
                    raise RuntimeLaunchError(
                        f"tensor {ref.name!r} is not symmetric; cannot index "
                        f"rank {rank}")
            return bound, bound.rank
        raise RuntimeLaunchError(
            f"binding for {ref.name!r} must be SimTensor or list, got "
            f"{type(bound).__name__}")

    # ------------------------------------------------------------- tile ops

    def eval_tile_op(self, s: TileOp, env: dict[str, Any] | None,
                     snapshot: bool = True
                     ) -> tuple[TileVal | None, CostRec, Any]:
        """Evaluate one tile op: (value, cost, deferred_effect).

        ``deferred_effect`` is a zero-arg callable applying the numpy write
        (store/atomic ops), or None.  ``snapshot=False`` skips numeric data
        (pure cost probe).
        """
        op = s.op
        numeric = self.execute and snapshot
        spec = self.cost.spec
        feed = spec.smem_bandwidth_per_sm

        if op in ("zeros", "full"):
            shape = tuple(int(self.eval(x, env)) for x in s.args[0]) \
                if isinstance(s.args[0], tuple) else (int(self.eval(s.args[0], env)),)
            if op == "zeros":
                dtype = resolve_dtype(s.args[1] if len(s.args) > 1 else "float32")
                data = np.zeros(shape, dtype) if numeric else None
            else:
                value = self.eval(s.args[1], env)
                dtype = resolve_dtype(s.args[2] if len(s.args) > 2 else "float32")
                data = np.full(shape, value, dtype) if numeric else None
            return TileVal(shape, dtype, data), CostRec(), None

        if op == "copy":
            src = self._operand(s.args[0], env)
            data = None
            if numeric and src.data is not None:
                data = src.data.copy()
            return TileVal(src.shape, src.dtype, data), CostRec(), None

        if op in ("load", "load_vec"):
            ref = s.args[0]
            tensor, owner = self.resolve_tensor(ref, env)
            if op == "load":
                rows = self._range_pair(s.args[1], env)
                cols = self._range_pair(s.args[2], env)
                shape = (rows[1] - rows[0], cols[1] - cols[0])
                ranges = (rows, cols)
            else:
                span = self._range_pair(s.args[1], env)
                shape = (span[1] - span[0],)
                ranges = (span,)
            if any(d < 0 for d in shape):
                raise ShapeError(f"negative load extent {shape}")
            nbytes = int(np.prod(shape)) * tensor.itemsize
            data = None
            if numeric:
                data = padded_to(tensor.read_tile(ranges), shape, tensor.dtype)
            if owner != self.rank:
                # remote read over the interconnect (pull)
                _st, arrival = self.machine.interconnect.reserve(
                    owner, self.rank, nbytes, "p2p")
                rec = CostRec(load=max(0.0, arrival - self.machine.now))
                return TileVal(shape, tensor.dtype, data), rec, None
            rec = CostRec(load=nbytes / feed, hbm_bytes=nbytes)
            return TileVal(shape, tensor.dtype, data), rec, None

        if op == "gather_rows":
            ref = s.args[0]
            tensor, owner = self.resolve_tensor(ref, env)
            if owner != self.rank:
                raise LoweringError("gather_rows requires a local tensor")
            idx = self._operand(s.args[1], env)
            cols = self._range_pair(s.args[2], env)
            n_rows = idx.shape[0]
            shape = (n_rows, cols[1] - cols[0])
            nbytes = int(np.prod(shape)) * tensor.itemsize
            data = None
            if numeric:
                if idx.data is None:
                    raise ShapeError("gather_rows index tile has no data")
                ids = np.clip(idx.data.astype(np.int64), 0, tensor.shape[0] - 1)
                data = tensor.data[ids, cols[0]:cols[1]].astype(tensor.dtype)
                data = padded_to(data, shape, tensor.dtype)
            # random-access gather: 1.5x streaming cost
            rec = CostRec(load=1.5 * nbytes / feed, hbm_bytes=1.5 * nbytes)
            return TileVal(shape, tensor.dtype, data), rec, None

        if op in ("store", "store_vec", "atomic_add"):
            ref = s.args[0]
            tensor, owner = self.resolve_tensor(ref, env)
            if owner != self.rank:
                raise LoweringError(
                    f"{op} targets a remote tensor; use tl.tile_push_data")
            if op == "store_vec":
                ranges = (self._range_pair(s.args[1], env),)
                val = self._operand(s.args[2], env)
            else:
                ranges = (self._range_pair(s.args[1], env),
                          self._range_pair(s.args[2], env))
                val = self._operand(s.args[3], env)
            if not isinstance(val, TileVal):
                raise LoweringError(f"{op} value must be a tile")
            nbytes = val.nbytes
            factor = 2.0 if op == "atomic_add" else 1.0
            rec = CostRec(load=factor * nbytes / feed,
                          hbm_bytes=factor * nbytes)
            effect = None
            if numeric:
                data = val.data

                def effect(t=tensor, r=ranges, d=data, acc=(op == "atomic_add")):
                    if acc:
                        t.accumulate_tile(r, d)
                    else:
                        t.write_tile(r, d)
            return None, rec, effect

        if op == "load_scalar":
            ref = s.args[0]
            tensor, owner = self.resolve_tensor(ref, env)
            if owner != self.rank:
                raise LoweringError("load_scalar requires a local tensor")
            idx = int(self.eval(s.args[1], env))
            value = 0
            if numeric and tensor.data is not None:
                flat = tensor.data.reshape(-1)
                if not 0 <= idx < flat.shape[0]:
                    raise ShapeError(
                        f"load_scalar index {idx} out of range "
                        f"({tensor.name}, {tensor.size} elements)")
                value = int(flat[idx])
            return value, CostRec(load=tensor.itemsize / feed,
                                  hbm_bytes=tensor.itemsize), None

        if op == "scatter_add_rows":
            ref = s.args[0]
            tensor, owner = self.resolve_tensor(ref, env)
            if owner != self.rank:
                raise LoweringError("scatter_add_rows requires a local tensor")
            idx = self._operand(s.args[1], env)
            cols = self._range_pair(s.args[2], env)
            val = self._operand(s.args[3], env)
            if not isinstance(val, TileVal):
                raise LoweringError("scatter_add_rows value must be a tile")
            nbytes = val.nbytes
            rec = CostRec(load=2.5 * nbytes / feed, hbm_bytes=2.5 * nbytes)
            effect = None
            if numeric:
                if idx.data is None or val.data is None:
                    raise ShapeError("scatter_add_rows needs numeric operands")
                ids = idx.data.astype(np.int64)
                data = val.data

                def effect(t=tensor, i=ids, c=cols, d=data):
                    if i.max(initial=-1) >= t.shape[0] or i.min(initial=0) < 0:
                        raise ShapeError(
                            f"scatter_add_rows index out of range on {t.name}")
                    region = t.data[:, c[0]:c[1]]
                    np.add.at(region, i[:d.shape[0]],
                              d[:len(i)].astype(t.dtype))
            return None, rec, effect

        if op == "dot":
            a = self._operand(s.args[0], env)
            b = self._operand(s.args[1], env)
            acc = s.kwargs.get("acc")
            acc_val = self._operand(acc, env) if acc is not None else None
            if len(a.shape) != 2 or len(b.shape) != 2 or a.shape[1] != b.shape[0]:
                raise ShapeError(f"dot shape mismatch {a.shape} x {b.shape}")
            m, k = a.shape
            n = b.shape[1]
            eff = self.cost.tile_efficiency(m, n, k)
            compute = 2.0 * m * n * k / (self.cost.per_sm_tensor_flops * eff)
            data = None
            if numeric:
                lhs = a.data.astype(np.float32)
                rhs = b.data.astype(np.float32)
                data = lhs @ rhs
                if acc_val is not None and acc_val.data is not None:
                    data = data + acc_val.data.astype(np.float32)
            return TileVal((m, n), np.dtype(np.float32), data), \
                CostRec(compute=compute), None

        if op in ("exp", "log", "relu", "neg", "silu", "gelu"):
            x = self._operand(s.args[0], env)
            out = apply_unary(op, x) if numeric else \
                TileVal.stub(x.shape, np.float32 if op in
                             ("exp", "log", "silu", "gelu") else x.dtype)
            compute = self.cost.vector_tile_time(
                x.size, ELEMENTWISE_FLOPS[op], 0.0)
            return out, CostRec(compute=compute), None

        if op in ("add", "sub", "mul", "div", "maximum_tile", "minimum_tile"):
            a = self._operand(s.args[0], env)
            b = self._operand(s.args[1], env)
            if numeric:
                out = apply_binary(op, a, b)
            else:
                sa = a.shape if isinstance(a, TileVal) else ()
                sb = b.shape if isinstance(b, TileVal) else ()
                da = a.dtype if isinstance(a, TileVal) else np.dtype(np.float32)
                db = b.dtype if isinstance(b, TileVal) else np.dtype(np.float32)
                out = TileVal.stub(tuple(np.broadcast_shapes(sa, sb)),
                                   np.result_type(da, db))
            compute = self.cost.vector_tile_time(
                out.size, ELEMENTWISE_FLOPS[op], 0.0)
            return out, CostRec(compute=compute), None

        if op == "cast":
            x = self._operand(s.args[0], env)
            dtype = resolve_dtype(s.args[1])
            data = x.data.astype(dtype) if (numeric and x.data is not None) else None
            return TileVal(x.shape, dtype, data), \
                CostRec(compute=self.cost.vector_tile_time(x.size, 1.0, 0.0)), None

        if op == "expand_dims":
            x = self._operand(s.args[0], env)
            shape = (*x.shape, 1)
            data = x.data.reshape(shape) if (numeric and x.data is not None) else None
            return TileVal(shape, x.dtype, data), CostRec(), None

        if op in ("row_max", "row_sum"):
            x = self._operand(s.args[0], env)
            if len(x.shape) != 2:
                raise ShapeError(f"{op} expects a 2-d tile, got {x.shape}")
            shape = (x.shape[0],)
            data = None
            if numeric and x.data is not None:
                fn = np.max if op == "row_max" else np.sum
                data = fn(x.data.astype(np.float32), axis=1)
            compute = self.cost.vector_tile_time(x.size,
                                                 ELEMENTWISE_FLOPS[op], 0.0)
            return TileVal(shape, np.dtype(np.float32), data), \
                CostRec(compute=compute), None

        raise LoweringError(f"unknown tile op {op!r}")

    # ------------------------------------------------------------ primitives

    def exec_primitive(self, s: Primitive, env: dict[str, Any] | None):
        """Generator executing one TileLink primitive."""
        ch = self.require_channel()
        name = s.name

        if name == "producer_tile_notify":
            tid = int(self.eval(s.args[0], env))
            mode = s.args[1] if len(s.args) > 1 else s.kwargs.get("mode", "p2p")
            if ch.notify_counts is not None and mode == "broadcast":
                # dynamic fan-out: one tile feeds several local channels
                for channel_idx, amount in enumerate(ch.notify_counts[tid]):
                    if amount > 0:
                        ch.barriers.post_add(int(channel_idx), int(amount),
                                             from_rank=self.rank)
                return
            channel_idx = ch.producer_channel(tid)
            if mode == "p2p":
                target = s.kwargs.get("to")
                if target is not None:
                    dst = int(self.eval(target, env))
                elif getattr(ch, "notify_target", "local") == "mapped":
                    dst = ch.producer_rank(tid)
                else:
                    dst = self.rank
                ch.all_barriers[dst].post_add(channel_idx, 1, from_rank=self.rank)
            elif mode == "broadcast":
                for dst in range(ch.num_ranks):
                    ch.all_barriers[dst].post_add(channel_idx, 1,
                                                  from_rank=self.rank)
            else:
                raise LoweringError(f"unknown notify mode {mode!r}")
            return

        if name == "consumer_tile_wait":
            tid = int(self.eval(s.args[0], env))
            t0 = self.machine.now
            for channel_idx, threshold in ch.consumer_wait_list(tid):
                yield ch.barriers.wait_geq(channel_idx, threshold)
            self._trace("sync", t0, self.machine.now)
            return

        if name == "peer_tile_notify":
            cell = int(self.eval(s.args[0], env))
            dst = int(self.eval(s.args[1], env))
            if not ch.all_peer_barriers:
                raise LoweringError("BlockChannel has no peer barriers")
            ch.all_peer_barriers[dst].post_add(cell, 1, from_rank=self.rank)
            return

        if name == "peer_tile_wait":
            cell = int(self.eval(s.args[0], env))
            rank = int(self.eval(s.args[1], env))
            count = int(self.eval(s.kwargs["count"], env)) \
                if "count" in s.kwargs else 1
            if not ch.all_peer_barriers:
                raise LoweringError("BlockChannel has no peer barriers")
            t0 = self.machine.now
            yield ch.all_peer_barriers[rank].wait_geq(cell, count)
            self._trace("sync", t0, self.machine.now)
            return

        if name == "tile_push_data":
            ref = s.args[0]
            if not isinstance(ref, TensorRef):
                raise LoweringError("tile_push_data needs a tensor argument")
            tid_m = int(self.eval(s.args[1], env))
            tid_n = int(self.eval(s.args[2], env))
            val = self._operand(s.args[3], env)
            if ch.comm_grid is None:
                raise LoweringError("tile_push_data needs a comm grid")
            dst_tensor, dst_rank = self.resolve_tensor(ref, env)
            ranges = ch.comm_grid.ranges(ch.comm_grid.tile_id(tid_m, tid_n))
            t0 = self.machine.now
            if dst_rank == self.rank:
                rec = CostRec(load=val.nbytes / self.cost.spec.smem_bandwidth_per_sm,
                              hbm_bytes=val.nbytes)
                yield from self._charge(rec, category="comm")
                if self.execute:
                    dst_tensor.write_tile(ranges, val.data)
            else:
                _st, arrival = self.machine.interconnect.reserve(
                    self.rank, dst_rank, val.nbytes, "p2p")
                delay = max(0.0, arrival - self.machine.now)
                if self.execute:
                    data = val.data

                    def apply(t=dst_tensor, r=ranges, d=data):
                        t.write_tile(r, d)
                    self.machine.sim.call_later(delay, apply)
                if delay > 0:
                    yield Timeout(delay)
                self._trace("comm", t0, self.machine.now)
            return

        raise LoweringError(f"unsupported primitive {name!r}")

    def eval_pull(self, s: Primitive, env: dict[str, Any] | None
                  ) -> tuple[TileVal, float]:
        """tile_pull_data: returns (value, arrival_delay).

        The payload is snapshotted at issue time on the source rank —
        matching NVSHMEM get semantics.
        """
        ch = self.require_channel()
        ref = s.args[0]
        if not isinstance(ref, TensorRef):
            raise LoweringError("tile_pull_data needs a tensor argument")
        tid_m = int(self.eval(s.args[1], env))
        tid_n = int(self.eval(s.args[2], env)) if len(s.args) > 2 else 0
        if ch.comm_grid is None:
            raise LoweringError("tile_pull_data needs a comm grid")
        mapping = ch.require_mapping()
        src_rank = mapping.rank_of(tid_m)
        (r0, r1), (c0, c1) = ch.comm_grid.ranges(
            ch.comm_grid.tile_id(tid_m, tid_n))
        bound = self.bindings.get(ref.name)
        if not isinstance(bound, list):
            raise LoweringError("tile_pull_data source must be symmetric")
        src = bound[src_rank]
        per_rank = mapping.per_rank if hasattr(mapping, "per_rank") else \
            src.shape[0]
        lo_local = r0 - src_rank * per_rank
        hi_local = r1 - src_rank * per_rank
        if lo_local < 0 or hi_local > src.shape[0]:
            raise LoweringError(
                f"tile_pull_data tile {tid_m} rows [{r0},{r1}) fall outside "
                f"rank {src_rank}'s shard")
        shape = (r1 - r0, c1 - c0)
        nbytes = int(np.prod(shape)) * src.itemsize
        data = None
        if self.execute:
            data = padded_to(src.read_tile(((lo_local, hi_local), (c0, c1))),
                             shape, src.dtype)
        if src_rank == self.rank:
            delay = nbytes / self.cost.spec.smem_bandwidth_per_sm
        else:
            _st, arrival = self.machine.interconnect.reserve(
                src_rank, self.rank, nbytes, "p2p")
            delay = max(0.0, arrival - self.machine.now)
        return TileVal(shape, src.dtype, data), delay

    # -------------------------------------------------------------- statements

    def exec_body(self, body: list[Stmt], env: dict[str, Any] | None = None):
        for s in body:
            yield from self.exec_stmt(s, env)

    def exec_stmt(self, s: Stmt, env: dict[str, Any] | None = None):
        if isinstance(s, AssignScalar):
            self.scalars[s.target] = self.eval(s.value, env)
            return
        if isinstance(s, TileOp):
            # prefetched value available? (pipelined loop hoisting)
            cached = self.tiles.pop(f"$prefetch:{id(s)}", None)
            if cached is not None:
                if s.target is not None:
                    self.tiles[s.target] = cached
                return
            val, rec, effect = self.eval_tile_op(s, env)
            category = "compute"
            yield from self._charge(rec, category=category)
            if effect is not None:
                effect()
            if s.target is not None:
                if s.op == "load_scalar":
                    self.scalars[s.target] = val
                else:
                    assert val is not None
                    self.tiles[s.target] = val
            return
        if isinstance(s, Primitive):
            if s.name == "tile_pull_data":
                t0 = self.machine.now
                val, delay = self.eval_pull(s, env)
                if delay > 0:
                    yield Timeout(delay)
                self._trace("comm", t0, self.machine.now)
                if s.target is not None:
                    self.tiles[s.target] = val
                return
            yield from self.exec_primitive(s, env)
            return
        if isinstance(s, If):
            branch = s.then if self.eval(s.cond, env) else s.orelse
            yield from self.exec_body(branch, env)
            return
        if isinstance(s, For):
            yield from self.exec_for(s, env)
            return
        if isinstance(s, Return):
            raise _ReturnSignal()
        raise LoweringError(f"unknown statement {type(s).__name__}")

    # ------------------------------------------------------------------- loops

    def _iter_bounds(self, s: For, env: dict[str, Any] | None
                     ) -> tuple[int, int, int]:
        start = int(self.eval(s.start, env))
        stop = int(self.eval(s.stop, env))
        step = int(self.eval(s.step, env))
        if step == 0:
            raise SimulationError("loop step of 0")
        return start, stop, step

    def exec_for(self, s: For, env: dict[str, Any] | None):
        start, stop, step = self._iter_bounds(s, env)
        trips = max(0, -(-(stop - start) // step)) if step > 0 else \
            max(0, -((stop - start) // -step))
        if trips == 0:
            return
        if s.aggregable and trips > 1:
            yield from self._exec_aggregable(s, start, stop, step, trips, env)
            return
        # ordinary (or single-trip) loop: step iterations
        for i in range(trips):
            self.scalars[s.var] = start + i * step
            if s.pipelined:
                self._prefetch(s, env)
            yield from self.exec_body(s.body, env)

    def _exec_aggregable(self, s: For, start: int, stop: int, step: int,
                         trips: int, env: dict[str, Any] | None):
        """Analytic pricing of a primitive-free loop (+ full numeric effects)."""
        # cost probe on the first iteration
        self.scalars[s.var] = start
        probe = CostRec()
        self._probe_body(s.body, env, probe)
        if s.pipelined:
            per_iter = max(probe.load, probe.compute)
        else:
            per_iter = probe.load + probe.compute
        total = self.cost.MMA_PROLOGUE + trips * per_iter
        hbm = trips * probe.hbm_bytes * self.AGG_DRAM_DISCOUNT
        t0 = self.machine.now
        arrival = self.device.reserve_hbm(hbm) if hbm > 0 else t0
        dur = max(total, arrival - t0)
        yield Timeout(dur)
        self._trace("compute", t0, self.machine.now)
        if self.execute:
            for i in range(trips):
                self.scalars[s.var] = start + i * step
                self._exec_numeric_body(s.body, env)

    def _probe_body(self, body: list[Stmt], env: dict[str, Any] | None,
                    acc: CostRec) -> None:
        """Accumulate one iteration's cost without effects or yields."""
        for s in body:
            if isinstance(s, AssignScalar):
                self.scalars[s.target] = self.eval(s.value, env)
            elif isinstance(s, TileOp):
                val, rec, _ = self.eval_tile_op(s, env, snapshot=False)
                acc.add(rec)
                if s.target is not None:
                    if s.op == "load_scalar":
                        self.scalars[s.target] = val
                    elif val is not None:
                        self.tiles[s.target] = val
            elif isinstance(s, If):
                branch = s.then if self.eval(s.cond, env) else s.orelse
                self._probe_body(branch, env, acc)
            elif isinstance(s, For):
                st, sp, stp = self._iter_bounds(s, env)
                inner_trips = max(0, -(-(sp - st) // stp)) if stp > 0 else 0
                if inner_trips == 0:
                    continue
                self.scalars[s.var] = st
                inner = CostRec()
                self._probe_body(s.body, env, inner)
                factor = inner_trips
                if s.pipelined:
                    acc.compute += factor * max(inner.load, inner.compute)
                else:
                    acc.compute += factor * (inner.load + inner.compute)
                acc.hbm_bytes += factor * inner.hbm_bytes
            elif isinstance(s, Return):
                raise _ReturnSignal()
            elif isinstance(s, Primitive):
                raise LoweringError("primitive inside aggregable loop")

    def _exec_numeric_body(self, body: list[Stmt],
                           env: dict[str, Any] | None) -> None:
        """Apply one iteration's numpy effects (no time advanced)."""
        for s in body:
            if isinstance(s, AssignScalar):
                self.scalars[s.target] = self.eval(s.value, env)
            elif isinstance(s, TileOp):
                val, _rec, effect = self.eval_tile_op(s, env)
                if effect is not None:
                    effect()
                if s.target is not None:
                    if s.op == "load_scalar":
                        self.scalars[s.target] = val
                    elif val is not None:
                        self.tiles[s.target] = val
            elif isinstance(s, If):
                branch = s.then if self.eval(s.cond, env) else s.orelse
                self._exec_numeric_body(branch, env)
            elif isinstance(s, For):
                st, sp, stp = self._iter_bounds(s, env)
                i = st
                while (stp > 0 and i < sp) or (stp < 0 and i > sp):
                    self.scalars[s.var] = i
                    self._exec_numeric_body(s.body, env)
                    i += stp
            elif isinstance(s, Return):
                raise _ReturnSignal()
            else:
                raise LoweringError("primitive inside aggregable loop")

    def _prefetch(self, s: For, env: dict[str, Any] | None) -> None:
        """Hoist prefetchable loads to iteration start (pipeliner model).

        Scalar statements are replayed to materialize addresses; values are
        snapshotted *now*, i.e. potentially before the body's waits run —
        which is safe only for loads the consistency pass left unpinned.
        The prefetched value costs nothing at its use point (it overlapped
        with the previous iteration).
        """
        saved: dict[str, Any] = {}
        replayed: list[str] = []
        for t in s.body:
            if isinstance(t, AssignScalar):
                if t.target in self.scalars and t.target not in saved:
                    saved[t.target] = self.scalars[t.target]
                replayed.append(t.target)
                try:
                    self.scalars[t.target] = self.eval(t.value, env)
                except LoweringError:
                    break  # address depends on a tile/wait result; stop
            elif isinstance(t, TileOp) and t.prefetchable and t.op in (
                    "load", "load_vec"):
                try:
                    val, _rec, _eff = self.eval_tile_op(t, env)
                except (LoweringError, ShapeError):
                    continue
                self.tiles[f"$prefetch:{id(t)}"] = val
        for name in replayed:
            if name in saved:
                self.scalars[name] = saved[name]
            else:
                self.scalars.pop(name, None)

    # --------------------------------------------------------------------- top

    def run(self):
        """The block's simulation process."""
        try:
            yield from self.exec_body(self.program.ir.body)
        except _ReturnSignal:
            pass
        return None


def run_block(program: CompiledProgram, machine: Machine, rank: int,
              block_id: int, n_blocks: int, bindings: dict[str, Any],
              label: str = ""):
    """Build the simulation-process generator for one block."""
    interp = BlockInterp(program, machine, rank, block_id, n_blocks,
                         bindings, label=label)
    return interp.run()
