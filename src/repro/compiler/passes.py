"""Compiler passes over the tile IR.

Three passes run between the frontend and the backend interpreter:

1. :func:`annotate_loops` — marks loops *aggregable* when their bodies
   contain no primitives or nested control flow with primitives.  The
   backend prices an aggregable loop analytically (trip count x body cost)
   instead of stepping every iteration — this is what makes paper-scale
   benchmark runs tractable, and it is faithful: such loops have no
   externally visible scheduling events.

2. :func:`pipeline_loops` — Triton-style software pipelining (paper §4.3).
   Aggregable loops become multi-stage pipelines (load/compute overlap: the
   per-iteration cost is ``max(load, compute)`` instead of their sum).
   Non-aggregable loops get their loads marked ``prefetchable``: the backend
   hoists them to the top of the iteration, overlapping them with the
   previous iteration — **including across TileLink wait primitives**,
   which is exactly the reordering hazard §4.2 describes.

3. :func:`enforce_consistency` — the memory-consistency pass (paper §4.2).
   Any load that follows a wait primitive inside the same loop body is
   *pinned* (``prefetchable=False``) and records its guards, so the
   pipeliner cannot hoist it above the acquire.  Disabling this pass (the
   A3 ablation) makes pipelined consumers read stale remote data — tests
   demonstrate the resulting wrong numerics.
"""

from __future__ import annotations

from repro.errors import ConsistencyError
from repro.lang.ir import (
    For,
    If,
    KernelIR,
    Primitive,
    Stmt,
    TileOp,
    walk_block,
)

#: TileOps that read memory and are candidates for pipelining prefetch.
LOAD_OPS = {"load", "load_vec", "gather_rows"}


def annotate_loops(ir: KernelIR) -> None:
    """Mark ``For.aggregable`` bottom-up: no primitives, no nested control
    flow that itself fails aggregation."""

    def block_aggregable(body: list[Stmt]) -> bool:
        for s in body:
            if isinstance(s, Primitive):
                return False
            if isinstance(s, TileOp) and _is_remote(s):
                return False  # interconnect traffic must be scheduled per-op
            if isinstance(s, For):
                if not block_aggregable(s.body):
                    return False
            if isinstance(s, If):
                # branch conditions may depend on loop vars; keep simple
                # branches aggregable only when primitive-free
                if not (block_aggregable(s.then) and block_aggregable(s.orelse)):
                    return False
        return True

    def _is_remote(op: TileOp) -> bool:
        from repro.lang.ir import TensorRef

        return any(
            isinstance(a, TensorRef) and a.rank is not None
            for a in (*op.args, *op.kwargs.values())
        )

    def visit(body: list[Stmt]) -> None:
        for s in body:
            if isinstance(s, For):
                s.aggregable = block_aggregable(s.body)
                visit(s.body)
            elif isinstance(s, If):
                visit(s.then)
                visit(s.orelse)

    visit(ir.body)


def pipeline_loops(ir: KernelIR, num_stages: int = 3) -> None:
    """Mark loops pipelined and flag prefetchable loads.

    ``num_stages < 2`` disables pipelining entirely (ablation knob).
    """
    if num_stages < 2:
        return

    def visit(body: list[Stmt]) -> None:
        for s in body:
            if isinstance(s, For):
                has_load = any(
                    isinstance(t, TileOp) and t.op in LOAD_OPS
                    for t in walk_block(s.body)
                )
                if has_load:
                    s.pipelined = True
                    # only top-level loads participate in cross-iteration
                    # prefetch; nested ones are handled by their own loop
                    for t in s.body:
                        if isinstance(t, TileOp) and t.op in LOAD_OPS:
                            t.prefetchable = True
                visit(s.body)
            elif isinstance(s, If):
                visit(s.then)
                visit(s.orelse)

    visit(ir.body)


def enforce_consistency(ir: KernelIR) -> None:
    """Pin loads that follow wait primitives (acquire semantics, §4.2).

    Within each loop body, walk statements in order; once a wait primitive
    has been seen, every subsequent load in that body (including inside
    nested blocks) is pinned and records the guarding waits.
    """

    def visit(body: list[Stmt]) -> None:
        for s in body:
            if isinstance(s, For):
                _pin_guarded(s.body, guards=[])
                visit(s.body)
            elif isinstance(s, If):
                visit(s.then)
                visit(s.orelse)

    def _pin_guarded(body: list[Stmt],
                     guards: list[Primitive]) -> list[Primitive]:
        """Pin loads after waits; return the waits discovered in ``body``.

        Waits found inside an ``If`` branch or a nested ``For`` body
        conservatively guard everything after the join point too: the
        branch may be taken (the loop may iterate), so hoisting a later
        load above that wait is unsafe.
        """
        local_guards = list(guards)
        for s in body:
            if isinstance(s, Primitive) and s.is_wait:
                local_guards.append(s)
            elif isinstance(s, TileOp) and s.op in LOAD_OPS:
                if local_guards:
                    s.prefetchable = False
                    s.guards = list(local_guards)
            elif isinstance(s, If):
                branch_waits = _pin_guarded(s.then, local_guards)
                branch_waits += _pin_guarded(s.orelse, local_guards)
                for g in branch_waits:
                    if g not in local_guards:
                        local_guards.append(g)
            elif isinstance(s, For):
                # a wait before a nested loop guards its loads too, and a
                # wait inside the loop guards statements after the loop
                inner_waits = _pin_guarded(s.body, local_guards)
                for g in inner_waits:
                    if g not in local_guards:
                        local_guards.append(g)
        return [g for g in local_guards if g not in guards]

    visit(ir.body)


def verify_consistency(ir: KernelIR) -> None:
    """Checker: raise if any wait-guarded load is still prefetchable.

    Used by tests and by ``CompileOptions(validate=True)`` builds.
    """
    def check(body: list[Stmt], seen_wait: bool) -> bool:
        local = seen_wait
        for s in body:
            if isinstance(s, Primitive) and s.is_wait:
                local = True
            elif isinstance(s, TileOp) and s.op in LOAD_OPS:
                if local and s.prefetchable:
                    raise ConsistencyError(
                        f"load at line {s.lineno} may be hoisted above a "
                        "wait primitive (memory-consistency violation); run "
                        "enforce_consistency before pipelining executes"
                    )
            elif isinstance(s, If):
                # waits in either branch guard the join conservatively
                in_then = check(s.then, local)
                in_else = check(s.orelse, local)
                local = local or in_then or in_else
            elif isinstance(s, For):
                local = check(s.body, local) or local
        return local

    for s in ir.body:
        if isinstance(s, For):
            check(s.body, False)
        elif isinstance(s, If):
            for blk in s.children():
                for t in blk:
                    if isinstance(t, For):
                        check(t.body, False)
