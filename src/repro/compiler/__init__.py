"""TileLink compiler backend.

Pipeline (paper §4, Figure 7)::

    KernelIR (frontend)
      -> analysis: mark aggregable loops              (passes.annotate_loops)
      -> pipelining: mark pipelined loops/prefetch    (passes.pipeline_loops)
      -> memory consistency: pin guarded loads        (passes.enforce_consistency)
      -> CompiledProgram                              (program.compile_kernel)
      -> per-block interpretation on the simulator    (interp.run_block)

Primitive lowering to "device instructions" happens inside the interpreter
against the BlockChannel's tile-centric mapping: signal primitives become
release-semantics atomic posts / acquire-semantics spin waits on
:class:`repro.memory.signals.SignalArray`, data primitives become
interconnect reservations with arrival-time data application.
"""

from repro.compiler.program import CompiledProgram, CompileOptions, compile_kernel

__all__ = ["CompiledProgram", "CompileOptions", "compile_kernel"]
