"""Overlapped AllGather + MoE GroupGEMM (Figure 5, dynamic mapping).

The token AllGather runs on the copy engine (DMA), publishing per-shard
arrival signals.  The consumer is a fused grouped GEMM over the
expert-grouped padded row layout: each grouped tile

1. waits on the dynamic mapping's wait set — the channels of every source
   rank whose tokens appear in the tile (``consumer_tile_wait`` with
   ``table`` semantics);
2. gathers its token rows from the gathered buffer with the fused index
   load (``tl.gather_rows`` — vLLM-style gather-in-GEMM);
3. multiplies by its expert's weight shard (expert id from the lookup
   table via ``tl.load_scalar``).

This is the kernel the cuBLAS/CUTLASS/vLLM baselines of Figure 9 (left)
are compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.collectives.copy_engine import dma_all_gather
from repro.compiler.program import CompileOptions
from repro.config import H800, HardwareSpec
from repro.errors import RuntimeLaunchError, ShapeError
from repro.kernels.moe_common import MoeRouting, routing_memo
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping
from repro.registry import register_family
from repro.runtime.context import DistContext
from repro.runtime.launcher import launch_spmd
from repro.sim.engine import Process
from repro.tuner.costprune import ag_moe_lower_bound
from repro.tuner.space import Axis, SearchSpace, divisors_of, register_space

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuner.cache import TuneCache
    from repro.tuner.search import TuneResult


@kernel
def _ag_moe_group_gemm(gathered, weights2d, ids, expert_of_tile, grouped_out,
                       channel: tl.BlockChannel,
                       NT: tl.constexpr, H: tl.constexpr, D: tl.constexpr,
                       BM: tl.constexpr, BN: tl.constexpr, BK: tl.constexpr):
    """Fused grouped GEMM consumer over NT expert-aligned tiles."""
    bid = tl.block_id()
    nb = tl.num_blocks()
    tiles_n = tl.cdiv(D, BN)
    total = NT * tiles_n
    for i in range(bid, total, nb):
        t = i // tiles_n
        tid_n = i % tiles_n
        tl.consumer_tile_wait(t)
        e = tl.load_scalar(expert_of_tile, t)
        idx = tl.load_vec(ids, (t * BM, t * BM + BM))
        acc = tl.zeros((BM, BN), "float32")
        for k in range(0, H, BK):
            a = tl.gather_rows(gathered, idx, (k, k + BK))
            b = tl.load(weights2d, (e * H + k, e * H + k + BK),
                        (tid_n * BN, tid_n * BN + BN))
            acc += tl.dot(a, b)
        c = tl.cast(acc, "float16")
        tl.store(grouped_out, (t * BM, t * BM + BM),
                 (tid_n * BN, tid_n * BN + BN), c)


# analyzer annotations (repro.analyze); grouped_out rows are the padded
# expert-grouped layout, fully covered by the NT consumer tiles
_ag_moe_group_gemm.meta.update(role="consumer", comm_axis="m",
                               outputs=("grouped_out",))


@dataclass(frozen=True)
class AgMoeConfig:
    """Shapes for AG + MoE part 1: gathered tokens (m x h) through expert
    shards (e x h x d_shard)."""

    m: int             # gathered tokens
    h: int             # hidden size (GEMM depth)
    d: int             # per-rank expert intermediate shard width
    n_experts: int
    topk: int
    block_m: int = 128
    block_n: int = 128
    block_k: int = 64

    def validate(self, world: int) -> None:
        if self.m % world != 0:
            raise ShapeError(f"M={self.m} not divisible by world={world}")
        if (self.m // world) % self.block_m != 0:
            raise ShapeError("per-rank tokens must align to block_m")

    def tune_candidate(self) -> dict:
        """This config as a tuner candidate dict (the searched axes)."""
        return dict(block_m=self.block_m, block_n=self.block_n,
                    block_k=self.block_k)

    @classmethod
    def autotune(cls, m: int, h: int, d: int, n_experts: int, topk: int, *,
                 world: int = 8, spec: HardwareSpec = H800,
                 strategy: str = "exhaustive",
                 cache: "TuneCache | None" = None, preset: str = "small",
                 space: SearchSpace | None = None,
                 max_trials: int | None = None, seed: int = 0,
                 slack: float = 0.0, router_seed: int = 17,
                 full_result: bool = False) -> "AgMoeConfig | TuneResult":
        """Search the routing-aware design space for this MoE shape; return
        the winning config (or the full :class:`~repro.tuner.TuneResult`
        when ``full_result`` is set)."""
        from repro.tuner.search import tune

        task = ag_moe_tune_task(m, h, d, n_experts, topk, world=world,
                                spec=spec, space=space, preset=preset,
                                router_seed=router_seed)
        result = tune(task, world=world, spec=spec, strategy=strategy,
                      cache=cache, max_trials=max_trials, seed=seed,
                      slack=slack)
        return result if full_result else result.best_config


# ---------------------------------------------------------------------------
# Tuner integration: the AG+MoE slice of the decoupled design space
# ---------------------------------------------------------------------------

def ag_moe_search_space(m: int, h: int, d: int, world: int,
                        preset: str = "default") -> SearchSpace:
    """The routing-aware design space of AG+MoE part 1 for one shape.

    ``block_m`` is both the grouped-GEMM row tile and the routing/AG
    granularity (the dynamic mapping pads every expert group to it), so it
    must divide the per-rank token count; ``block_n``/``block_k`` tile the
    expert shard width and the GEMM depth.  The AllGather itself rides the
    copy engine, so there is no mode or ``comm_blocks`` axis here.
    """
    per_rank = m // world
    if preset == "small":
        axes = (
            Axis("block_m", divisors_of(per_rank, (128, 256))),
            Axis("block_n", (128,)),
            Axis("block_k", (64,)),
        )
    elif preset == "default":
        axes = (
            Axis("block_m", divisors_of(per_rank, (64, 128, 256))),
            Axis("block_n", (64, 128, 256)),
            Axis("block_k", (32, 64, 128)),
        )
    else:
        raise RuntimeLaunchError(f"unknown AG+MoE space preset {preset!r}")
    return SearchSpace(axes=axes)


register_space("ag_moe", ag_moe_search_space)


def ag_moe_tune_task(m: int, h: int, d: int, n_experts: int, topk: int, *,
                     world: int = 8, spec: HardwareSpec = H800,
                     space: SearchSpace | None = None, preset: str = "small",
                     router_seed: int = 17):
    """Build the :class:`~repro.tuner.TuneTask` tuning AG+MoE on a shape.

    Routing is block_m-dependent (the grouped layout pads per expert to
    the row tile), so the task rebuilds — and memoises — one
    :class:`MoeRouting` per (token count, ``block_m``) from seeded router
    logits; the seed is part of the shape key so differently-routed
    problems never alias in the cache.
    """
    from repro.tuner.search import TuneTask

    space = space or ag_moe_search_space(m, h, d, world, preset=preset)
    routing_for = routing_memo(n_experts, topk, world, router_seed)

    def make_builder(cand: dict, scale: float = 1.0):
        align = world * int(cand["block_m"])
        m_s = m if scale >= 1.0 else max(align, int(m * scale) // align * align)
        routing = routing_for(m_s, int(cand["block_m"]))
        cfg = AgMoeConfig(m=m_s, h=h, d=d, n_experts=n_experts, topk=topk,
                          **cand)

        def build(ctx: DistContext) -> None:
            ctx.alloc("x", (m_s // world, h), "float16", fill=None)
            ctx.alloc("w1", (n_experts * h, d), "float16", fill=None)
            ctx.alloc("g", (routing.padded_rows, d), "float16", fill=None)
            ag_moe_overlapped(ctx, cfg, routing, "x", "w1", "g")

        return build

    def bound(cand: dict) -> float:
        rows = routing_for(m, int(cand["block_m"])).padded_rows
        return ag_moe_lower_bound(cand, m=m, h=h, d=d, world=world,
                                  spec=spec, topk=topk, grouped_rows=rows)

    return TuneTask(
        kernel="ag_moe",
        shape_key=f"m{m}h{h}d{d}e{n_experts}t{topk}r{router_seed}",
        space=space,
        default=AgMoeConfig(m=m, h=h, d=d, n_experts=n_experts,
                            topk=topk).tune_candidate(),
        make_builder=make_builder,
        bound=bound,
        finalize=lambda c: AgMoeConfig(m=m, h=h, d=d, n_experts=n_experts,
                                       topk=topk, **c),
    )


def ag_moe_overlapped(
    ctx: DistContext,
    cfg: AgMoeConfig,
    routing: MoeRouting,
    shards_name: str,
    weights_name: str,
    grouped_out_name: str,
    gathered_name: str | None = None,
    grid: int | None = None,
    options: CompileOptions | None = None,
    tag: str = "ag_moe",
) -> list[Process]:
    """Launch the overlapped AG + MoE GroupGEMM on every rank.

    ``weights_name`` must be bound as a 2-d (E*H x D) symmetric tensor (the
    flattened (E, H, D) expert stack).  ``grouped_out_name`` receives the
    padded grouped rows (routing.padded_rows x D).
    """
    machine = ctx.machine
    world = machine.world_size
    cfg.validate(world)
    if routing.block_m != cfg.block_m:
        raise ShapeError("routing block_m must match kernel block_m")
    grid = grid or machine.config.spec.n_sms

    gathered_name = gathered_name or f"{tag}.gathered"
    ctx.alloc(gathered_name, (cfg.m, cfg.h), "float16", fill=None)
    ids_name = f"{tag}.ids"
    ctx.bind(ids_name, [routing.padded_token_ids.copy()
                        for _ in range(world)])
    etile_name = f"{tag}.etile"
    ctx.bind(etile_name, [routing.expert_of_tile.copy()
                          for _ in range(world)])

    # producer side: static AG mapping over the gathered token rows
    ag_mapping = AffineTileMapping(cfg.m, cfg.block_m, world)
    comm_grid = TileGrid(cfg.m, cfg.h, cfg.block_m, cfg.h)
    consumer_grid = TileGrid(routing.padded_rows, cfg.d,
                             cfg.block_m, cfg.block_n)
    channels = ctx.make_block_channels(
        tag, mapping=ag_mapping, comm_grid=comm_grid,
        consumer_grid=consumer_grid, consumer_mapping=routing.mapping)

    banks = [ch.barriers for ch in channels]
    dma_all_gather(ctx, shards_name, gathered_name, banks,
                   stream_name="comm",
                   segment_notifies=ag_mapping.tiles_per_channel)

    return launch_spmd(machine, _ag_moe_group_gemm, grid, dict(
        gathered=ctx.heap.tensors(gathered_name),
        weights2d=ctx.heap.tensors(weights_name),
        ids=ctx.heap.tensors(ids_name),
        expert_of_tile=ctx.heap.tensors(etile_name),
        grouped_out=ctx.heap.tensors(grouped_out_name),
        channel=channels,
        NT=routing.n_tiles, H=cfg.h, D=cfg.d,
        BM=cfg.block_m, BN=cfg.block_n, BK=cfg.block_k,
    ), options=options, label=f"{tag}.group_gemm")


# ---------------------------------------------------------------------------
# Registry: the declarative family record (repro.registry)
# ---------------------------------------------------------------------------

def _analyze_plans():
    from repro.analyze.registry import build_ag_moe_plan as p

    return [
        lambda: p(world=2),
        lambda: p(world=4),
    ]


def _bench_builders():
    from repro.bench.experiments import moe_part1_builders

    return moe_part1_builders


def _sweep_entries(shape, *, world: int, spec: HardwareSpec = H800,
                   preset: str = "small", router_seed: int = 17, **_kw):
    task = ag_moe_tune_task(shape.s, shape.h, shape.i // world, shape.e,
                            shape.topk, world=world, spec=spec,
                            preset=preset, router_seed=router_seed)
    return [(f"{shape.name}/ag_moe", task)]


def _warm_tasks(world: int, spec: HardwareSpec):
    from repro.models.configs import MOE_BENCHES

    tasks = []
    for shape in MOE_BENCHES:
        tasks.extend(_sweep_entries(shape, world=world, spec=spec))
    return tasks


def _shape_autotune(shape, world: int, **tune_kw):
    return AgMoeConfig.autotune(shape.s, shape.h, shape.i // world,
                                shape.e, shape.topk, world=world,
                                full_result=True, **tune_kw)


register_family(
    name="ag_moe",
    doc="AllGather + MoE GroupGEMM (expert-parallel MoE part 1)",
    config_cls=AgMoeConfig,
    kernels=(_ag_moe_group_gemm,),
    launch=ag_moe_overlapped,
    search_space=lambda: ag_moe_search_space(512, 128, 128, 2,
                                             preset="small"),
    tune_task=lambda: ag_moe_tune_task(512, 128, 128, 4, 2, world=2),
    analyze_plans=_analyze_plans,
    bench_builders=_bench_builders,
    worlds=(2, 4),
    sweep_category="moe",
    sweep_entries=_sweep_entries,
    warm_tasks=_warm_tasks,
    shape_autotune=_shape_autotune,
)
