"""Overlapped AllGather + GEMM (tensor-parallel MLP part 1).

Three resource mappings from the paper's decoupled design space (§3.1,
Figure 2c):

* ``"dma"`` — AllGather on the copy engine (host-driven ``rank_copy_data``
  publishing per-segment signals), GEMM on all SMs with
  ``consumer_tile_wait`` gating each tile.  This is the mapping the paper's
  generated kernel uses for AG+GEMM on H800.
* ``"pull"`` — one fused kernel: ``COMM_BLOCKS`` SM blocks pull peer shards
  tile-by-tile (``tile_pull_data``) and notify; the remaining blocks run
  the consumer GEMM (Figure 5's AllGather structure, static mapping).
* ``"push"`` — producer blocks push the *local* shard to every peer and
  notify remotely (push mode of Figure 3b).

The consumer GEMM traverses row tiles starting at its own rank's segment
(tile-order subspace): locally-resident data is consumed while remote
segments are still in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.collectives.copy_engine import dma_all_gather
from repro.compiler.program import CompileOptions
from repro.errors import RuntimeLaunchError, ShapeError
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping
from repro.config import H800, HardwareSpec
from repro.registry import register_family
from repro.runtime.context import DistContext
from repro.runtime.launcher import launch_spmd
from repro.sim.engine import Process
from repro.tuner.costprune import ag_gemm_lower_bound
from repro.tuner.space import Axis, SearchSpace, divisors_of, register_space

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuner.cache import TuneCache
    from repro.tuner.search import TuneResult


@kernel
def _ag_consumer_gemm(gathered, w, out, channel: tl.BlockChannel,
                      M: tl.constexpr, N: tl.constexpr, K: tl.constexpr,
                      BM: tl.constexpr, BN: tl.constexpr, BK: tl.constexpr,
                      COMM_BLOCKS: tl.constexpr):
    """Consumer GEMM: waits per row-tile on the AllGather's channels."""
    bid = tl.block_id()
    nb = tl.num_blocks()
    cid = bid - COMM_BLOCKS
    nconsumers = nb - COMM_BLOCKS
    if cid >= 0:
        tiles_m = tl.cdiv(M, BM)
        tiles_n = tl.cdiv(N, BN)
        total = tiles_m * tiles_n
        # start at the tile containing our own segment's first row (the
        # tile-order subspace).  Derive the row tile from the segment's
        # first *row*, not from tiles_m // num_ranks: when tiles_m is not
        # divisible by num_ranks the latter skews every rank off its own
        # segment, defeating the locally-resident-first traversal.
        m_per_rank = M // channel.num_ranks
        start = (channel.rank * m_per_rank // BM) * tiles_n
        for i in range(cid, total, nconsumers):
            t = (start + i) % total
            tid_m = t // tiles_n
            tid_n = t % tiles_n
            tl.consumer_tile_wait(tid_m)
            acc = tl.zeros((BM, BN), "float32")
            for k in range(0, K, BK):
                a = tl.load(gathered, (tid_m * BM, tid_m * BM + BM),
                            (k, k + BK))
                b = tl.load(w, (k, k + BK), (tid_n * BN, tid_n * BN + BN))
                acc += tl.dot(a, b)
            c = tl.cast(acc, "float16")
            tl.store(out, (tid_m * BM, tid_m * BM + BM),
                     (tid_n * BN, tid_n * BN + BN), c)


@kernel
def _ag_pull_producer(shards, gathered, channel: tl.BlockChannel,
                      M: tl.constexpr, K: tl.constexpr,
                      BMP: tl.constexpr, COMM_BLOCKS: tl.constexpr):
    """SM-mapped AllGather producer: pull peer tiles, store, notify (p2p)."""
    bid = tl.block_id()
    if bid < COMM_BLOCKS:
        n_tiles = tl.cdiv(M, BMP)
        world = channel.num_ranks
        tiles_per_rank = n_tiles // world
        for i in range(bid, n_tiles, COMM_BLOCKS):
            # interleave source ranks (own shard first): consecutive pulls
            # hit different peers so no egress link becomes a hotspot —
            # the tile-order subspace of Figure 2b
            src = (channel.rank + i % world) % world
            t = src * tiles_per_rank + i // world
            data = tl.tile_pull_data(shards, t, 0)
            tl.store(gathered, (t * BMP, t * BMP + BMP), (0, K), data)
            tl.producer_tile_notify(t, "p2p")


@kernel
def _ag_push_producer(shards, gathered, channel: tl.BlockChannel,
                      M: tl.constexpr, K: tl.constexpr,
                      BMP: tl.constexpr, COMM_BLOCKS: tl.constexpr,
                      WORLD: tl.constexpr):
    """Push-mode AllGather: send local shard tiles to every peer + notify."""
    bid = tl.block_id()
    if bid < COMM_BLOCKS:
        n_tiles = tl.cdiv(M, BMP)
        tiles_per_rank = n_tiles // WORLD
        m_per_rank = M // WORLD
        for i in range(bid, tiles_per_rank, COMM_BLOCKS):
            t = channel.rank * tiles_per_rank + i
            lo = channel.rank * m_per_rank + i * BMP
            data = tl.load(shards, (i * BMP, i * BMP + BMP), (0, K))
            tl.store(gathered, (lo, lo + BMP), (0, K), data)
            tl.producer_tile_notify(t, "p2p")
            for off in range(1, WORLD):
                peer = (channel.rank + off) % WORLD
                tl.tile_push_data(gathered[peer], t, 0, data)
                tl.producer_tile_notify(t, "p2p", to=peer)


# analyzer annotations (repro.analyze): role in the producer/consumer
# chain, the communicated axis, and which params must be fully covered
_ag_consumer_gemm.meta.update(role="consumer", comm_axis="m",
                              outputs=("out",))
_ag_pull_producer.meta.update(role="producer", comm_axis="m",
                              outputs=("gathered",))
_ag_push_producer.meta.update(role="producer", comm_axis="m",
                              outputs=("gathered",))


@dataclass(frozen=True)
class AgGemmConfig:
    """Shapes and tiling for an AG+GEMM launch.

    ``m`` is the *global* (gathered) token count; ``n`` the per-rank weight
    shard width; ``k`` the hidden size.  The communication tile (``block_mp``
    rows of the gathered tensor) and compute tile (``block_m x block_n``)
    are independent — the decoupled tile-size subspace.
    """

    m: int
    n: int
    k: int
    block_m: int = 128
    block_n: int = 128
    block_k: int = 64
    block_mp: int = 128
    comm_blocks: int = 20
    channels_per_rank: int = 1
    mode: str = "dma"  # dma | pull | push | auto (resolved by the tuner)

    def validate(self, world: int) -> None:
        if self.m % world != 0:
            raise ShapeError(f"M={self.m} not divisible by world={world}")
        if (self.m // world) % self.block_mp != 0:
            raise ShapeError("per-rank rows must align to the comm tile")
        if self.mode not in ("dma", "pull", "push", "auto"):
            raise RuntimeLaunchError(f"unknown AG+GEMM mode {self.mode!r}")

    def tune_candidate(self) -> dict:
        """This config as a tuner candidate dict (the searched axes)."""
        return dict(block_m=self.block_m, block_n=self.block_n,
                    block_k=self.block_k, block_mp=self.block_mp,
                    comm_blocks=self.comm_blocks, mode=self.mode)

    @classmethod
    def autotune(cls, m: int, n: int, k: int, *, world: int = 8,
                 spec: HardwareSpec = H800, strategy: str = "exhaustive",
                 cache: "TuneCache | None" = None, preset: str = "small",
                 space: SearchSpace | None = None,
                 max_trials: int | None = None, seed: int = 0,
                 slack: float = 0.0,
                 full_result: bool = False) -> "AgGemmConfig | TuneResult":
        """Search the decoupled design space for this shape; return the
        winning config (or the full :class:`~repro.tuner.TuneResult` when
        ``full_result`` is set)."""
        from repro.tuner.search import tune

        task = ag_gemm_tune_task(m, n, k, world=world, spec=spec,
                                 space=space, preset=preset)
        result = tune(task, world=world, spec=spec, strategy=strategy,
                      cache=cache, max_trials=max_trials, seed=seed,
                      slack=slack)
        return result if full_result else result.best_config


# ---------------------------------------------------------------------------
# Tuner integration: the AG+GEMM slice of the decoupled design space
# ---------------------------------------------------------------------------

#: ``comm_blocks`` value dma candidates are canonicalised to (the copy
#: engine ignores the axis; keeping one value avoids duplicate simulations).
_DMA_CANONICAL_COMM_BLOCKS = 20


def ag_gemm_search_space(m: int, n: int, k: int, world: int,
                         preset: str = "default") -> SearchSpace:
    """The §3.1 design space of AG+GEMM for one shape.

    Axes: compute tile (``block_m/n/k``), communication tile (``block_mp``),
    communication SM count (``comm_blocks``) and resource mapping ``mode``
    (``dma`` = copy-engine transport; ``pull``/``push`` = SM transport in
    either dataflow direction).  ``preset="small"`` is the compact space
    used by ``mode="auto"`` and quick tuning runs; ``"default"`` is the
    full sweep for offline searches.
    """
    per_rank = m // world
    if preset == "small":
        axes = (
            Axis("block_m", divisors_of(m, (128, 256))),
            Axis("block_n", (128,)),
            Axis("block_k", (64,)),
            Axis("block_mp", divisors_of(per_rank, (128, 256))),
            Axis("comm_blocks", (2, 4, 8, 20, 40)),
            Axis("mode", ("dma", "pull", "push")),
        )
    elif preset == "default":
        axes = (
            Axis("block_m", divisors_of(m, (64, 128, 256))),
            Axis("block_n", (64, 128, 256)),
            Axis("block_k", (32, 64, 128)),
            Axis("block_mp", divisors_of(per_rank, (64, 128, 256, 512))),
            Axis("comm_blocks", (4, 8, 16, 20, 32, 48)),
            Axis("mode", ("dma", "pull", "push")),
        )
    else:
        raise RuntimeLaunchError(f"unknown AG+GEMM space preset {preset!r}")

    def valid(cand: dict) -> bool:
        if cand["mode"] == "dma":
            return cand["comm_blocks"] == _DMA_CANONICAL_COMM_BLOCKS
        return True

    return SearchSpace(axes=axes, constraint=valid)


register_space("ag_gemm", ag_gemm_search_space)


def ag_gemm_tune_task(m: int, n: int, k: int, *, world: int = 8,
                      spec: HardwareSpec = H800,
                      space: SearchSpace | None = None,
                      preset: str = "small"):
    """Build the :class:`~repro.tuner.TuneTask` tuning AG+GEMM on a shape."""
    from repro.tuner.search import TuneTask

    space = space or ag_gemm_search_space(m, n, k, world, preset=preset)

    def make_builder(cand: dict, scale: float = 1.0):
        align = world * max(int(cand["block_mp"]), int(cand["block_m"]))
        m_s = m if scale >= 1.0 else max(align, int(m * scale) // align * align)
        cfg = AgGemmConfig(m=m_s, n=n, k=k, **cand)

        def build(ctx: DistContext) -> None:
            ctx.alloc("x", (m_s // world, k), "float16", fill=None)
            ctx.alloc("w", (k, n), "float16", fill=None)
            ctx.alloc("y", (m_s, n), "float16", fill=None)
            ag_gemm_overlapped(ctx, cfg, "x", "w", "y")

        return build

    return TuneTask(
        kernel="ag_gemm",
        shape_key=f"m{m}n{n}k{k}",
        space=space,
        default=AgGemmConfig(m=m, n=n, k=k).tune_candidate(),
        make_builder=make_builder,
        bound=lambda c: ag_gemm_lower_bound(c, m=m, n=n, k=k, world=world,
                                            spec=spec),
        finalize=lambda c: AgGemmConfig(m=m, n=n, k=k, **c),
    )


def ag_gemm_overlapped(
    ctx: DistContext,
    cfg: AgGemmConfig,
    shards_name: str,
    weight_name: str,
    out_name: str,
    gathered_name: str | None = None,
    grid: int | None = None,
    options: CompileOptions | None = None,
    tag: str = "ag_gemm",
) -> list[Process]:
    """Launch the overlapped AG+GEMM on every rank; returns GEMM processes.

    Allocates the gathered buffer and barrier channels internally; the
    caller provides the input shards (m/world x k), the weight shard
    (k x n) and the output (m x n).
    """
    machine = ctx.machine
    world = machine.world_size
    if cfg.mode == "auto":
        # Resolve through the tuner (persistent default cache makes this a
        # one-time cost per shape/spec/world); candidates all carry
        # concrete modes, so the nested launches cannot recurse.
        from repro.tuner.cache import TuneCache

        tuned = AgGemmConfig.autotune(cfg.m, cfg.n, cfg.k, world=world,
                                      spec=machine.config.spec,
                                      cache=TuneCache())
        cfg = replace(tuned, channels_per_rank=cfg.channels_per_rank)
    cfg.validate(world)
    spec = machine.config.spec
    grid = grid or spec.n_sms

    gathered_name = gathered_name or f"{tag}.gathered"
    ctx.alloc(gathered_name, (cfg.m, cfg.k), "float16", fill=None)

    mapping = AffineTileMapping(cfg.m, cfg.block_mp, world,
                                cfg.channels_per_rank)
    comm_grid = TileGrid(cfg.m, cfg.k, cfg.block_mp, cfg.k)
    consumer_grid = TileGrid(cfg.m, cfg.n, cfg.block_m, cfg.block_n)
    channels = ctx.make_block_channels(
        tag, mapping=mapping, comm_grid=comm_grid,
        consumer_grid=consumer_grid,
        notify_target="mapped" if cfg.mode == "push" else "local",
        comm_blocks=0 if cfg.mode == "dma" else cfg.comm_blocks,
    )

    comm_blocks = 0 if cfg.mode == "dma" else cfg.comm_blocks
    args_common = dict(
        M=cfg.m, N=cfg.n, K=cfg.k, BM=cfg.block_m, BN=cfg.block_n,
        BK=cfg.block_k, COMM_BLOCKS=comm_blocks,
        gathered=ctx.heap.tensors(gathered_name),
        w=ctx.heap.tensors(weight_name),
        out=ctx.heap.tensors(out_name),
        channel=channels,
    )

    if cfg.mode == "dma":
        banks = [ch.barriers for ch in channels]
        dma_all_gather(ctx, shards_name, gathered_name, banks,
                       stream_name="comm",
                       segment_notifies=mapping.tiles_per_channel)
    elif cfg.mode == "pull":
        launch_spmd(machine, _ag_pull_producer, grid, dict(
            shards=ctx.heap.tensors(shards_name),
            gathered=ctx.heap.tensors(gathered_name),
            channel=channels, M=cfg.m, K=cfg.k, BMP=cfg.block_mp,
            COMM_BLOCKS=cfg.comm_blocks,
        ), options=options, stream_name="comm", label=f"{tag}.pull")
    else:  # push
        launch_spmd(machine, _ag_push_producer, grid, dict(
            shards=ctx.heap.tensors(shards_name),
            gathered=ctx.heap.tensors(gathered_name),
            channel=channels, M=cfg.m, K=cfg.k, BMP=cfg.block_mp,
            COMM_BLOCKS=cfg.comm_blocks, WORLD=world,
        ), options=options, stream_name="comm", label=f"{tag}.push")

    return launch_spmd(machine, _ag_consumer_gemm, grid, args_common,
                       options=options, label=f"{tag}.gemm")


# ---------------------------------------------------------------------------
# Registry: the declarative family record (repro.registry)
# ---------------------------------------------------------------------------

def _analyze_plans():
    from repro.analyze.registry import build_ag_gemm_plan as p

    return [
        lambda: p(world=2, mode="dma"),
        lambda: p(world=4, mode="dma"),
        lambda: p(world=8, mode="dma"),
        # decoupled tile sizes: compute tile 2x the communication tile
        lambda: p(world=4, mode="dma", block_m=32,
                  name="ag_gemm/dma/w4/bm32"),
        lambda: p(world=2, mode="pull"),
        lambda: p(world=4, mode="pull"),
        lambda: p(world=2, mode="push"),
        lambda: p(world=8, mode="push"),
    ]


def _bench_builders():
    from repro.bench.experiments import ag_gemm_builders

    return ag_gemm_builders


def _sweep_entries(shape, *, world: int, spec: HardwareSpec = H800,
                   preset: str = "small", **_kw):
    task = ag_gemm_tune_task(shape.s, shape.i // world, shape.h,
                             world=world, spec=spec, preset=preset)
    return [(f"{shape.name}/ag_gemm", task)]


def _warm_tasks(world: int, spec: HardwareSpec):
    from repro.models.configs import MLP_BENCHES

    tasks = []
    for shape in MLP_BENCHES:
        tasks.extend(_sweep_entries(shape, world=world, spec=spec))
    return tasks


def _shape_autotune(shape, world: int, **tune_kw):
    return AgGemmConfig.autotune(shape.s, shape.i // world, shape.h,
                                 world=world, full_result=True, **tune_kw)


register_family(
    name="ag_gemm",
    doc="AllGather + GEMM (tensor-parallel MLP part 1)",
    config_cls=AgGemmConfig,
    kernels=(_ag_consumer_gemm, _ag_pull_producer, _ag_push_producer),
    launch=ag_gemm_overlapped,
    search_space=lambda: ag_gemm_search_space(512, 128, 128, 2,
                                              preset="small"),
    tune_task=lambda: ag_gemm_tune_task(512, 128, 128, world=2),
    analyze_plans=_analyze_plans,
    bench_builders=_bench_builders,
    worlds=(2, 4, 8),
    modes=("dma", "pull", "push"),
    sweep_category="mlp",
    sweep_entries=_sweep_entries,
    warm_tasks=_warm_tasks,
    shape_autotune=_shape_autotune,
)
