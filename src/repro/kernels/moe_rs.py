"""Overlapped GroupGEMM + Scatter + TopkReduce + ReduceScatter (MoE part 2).

The paper overlaps *three* stages with an extended producer-consumer chain
(§7.2): the second grouped GEMM produces expert outputs in the grouped row
layout; the Topk-Reduce scatters them (weighted) back to token rows; the
ReduceScatter ships each token segment to its owner rank and sums the
world partials.

Chain realized here:

1. **producer kernel** (SMs): per grouped tile — GEMM, multiply by the
   per-row router weight, ``tl.scatter_add_rows`` into the local token
   partial buffer, then a dynamic *broadcast* ``producer_tile_notify``
   whose per-channel amounts are the tile's row contributions to each
   token segment (``MoeRouting.segment_counts``).  A segment's channel
   reaches its threshold (``tokens_per_rank * topk``) exactly when every
   contribution to it has been scattered.
2. **host comm** (copy engine): ``rank_wait`` per segment, then DMA-push
   the partial segment to its owner's landing slab; arrival posts a peer
   signal.  TileLink's hybrid resource mapping — scatter on DMA, math on
   SMs.
3. **reduce kernel** (SMs): per own-segment tile, wait all world arrival
   signals and sum the partials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.compiler.program import CompileOptions
from repro.config import H800, HardwareSpec
from repro.errors import RuntimeLaunchError, ShapeError
from repro.kernels.moe_common import MoeRouting, routing_memo
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.mapping.dynamic import TableTileMapping
from repro.mapping.layout import TileGrid
from repro.registry import register_family
from repro.runtime.context import DistContext
from repro.runtime.launcher import launch_spmd
from repro.sim.engine import Process, ProcessGen
from repro.tuner.costprune import moe_rs_lower_bound
from repro.tuner.space import Axis, SearchSpace, divisors_of, register_space

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuner.cache import TuneCache
    from repro.tuner.search import TuneResult


@kernel
def _moe_rs_producer(grouped_in, weights2d, ids, expert_of_tile, row_weights,
                     partial, channel: tl.BlockChannel,
                     NT: tl.constexpr, D: tl.constexpr, H: tl.constexpr,
                     BM: tl.constexpr, BN: tl.constexpr, BK: tl.constexpr):
    """Grouped GEMM + weighted scatter-add (Topk Reduce) + dynamic notify."""
    bid = tl.block_id()
    nb = tl.num_blocks()
    tiles_n = tl.cdiv(H, BN)
    for t in range(bid, NT, nb):
        e = tl.load_scalar(expert_of_tile, t)
        idx = tl.load_vec(ids, (t * BM, t * BM + BM))
        wv = tl.load_vec(row_weights, (t * BM, t * BM + BM))
        wcol = tl.expand_dims(wv)
        for tid_n in range(0, tiles_n):
            acc = tl.zeros((BM, BN), "float32")
            for k in range(0, D, BK):
                a = tl.load(grouped_in, (t * BM, t * BM + BM), (k, k + BK))
                b = tl.load(weights2d, (e * D + k, e * D + k + BK),
                            (tid_n * BN, tid_n * BN + BN))
                acc += tl.dot(a, b)
            weighted = acc * wcol
            tl.scatter_add_rows(partial, idx, (tid_n * BN, tid_n * BN + BN),
                                weighted)
        tl.producer_tile_notify(t, "broadcast")


@kernel
def _moe_rs_reduce(landing, out, channel: tl.BlockChannel,
                   MP: tl.constexpr, H: tl.constexpr,
                   BMR: tl.constexpr, BNR: tl.constexpr,
                   WORLD: tl.constexpr):
    """Sum the world partial slabs of this rank's token segment."""
    bid = tl.block_id()
    nb = tl.num_blocks()
    rtiles_m = tl.cdiv(MP, BMR)
    rtiles_n = tl.cdiv(H, BNR)
    rtotal = rtiles_m * rtiles_n
    for t in range(bid, rtotal, nb):
        tid_m = t // rtiles_n
        tid_n = t % rtiles_n
        acc = tl.zeros((BMR, BNR), "float32")
        for q in range(0, WORLD):
            tl.peer_tile_wait(q, channel.rank)
            part = tl.load(landing, (q * MP + tid_m * BMR,
                                     q * MP + tid_m * BMR + BMR),
                           (tid_n * BNR, tid_n * BNR + BNR))
            acc += part
        tl.store(out, (tid_m * BMR, tid_m * BMR + BMR),
                 (tid_n * BNR, tid_n * BNR + BNR), acc)


# analyzer annotations (repro.analyze); the producer's scatter-add target
# is data-dependent (routing tables), so it declares no coverable output
_moe_rs_producer.meta.update(role="producer", comm_axis="m", outputs=())
_moe_rs_reduce.meta.update(role="consumer", comm_axis="m", outputs=("out",))


@dataclass(frozen=True)
class MoeRsConfig:
    """Shapes for MoE part 2: grouped rows (padded) x d_shard -> h, then
    token-segment ReduceScatter."""

    m: int             # gathered tokens
    h: int             # hidden size (output width)
    d: int             # per-rank expert intermediate shard width
    block_m: int = 128
    block_n: int = 128
    block_k: int = 64
    block_mr: int = 128
    block_nr: int = 256

    def validate(self, world: int) -> None:
        if self.m % world != 0:
            raise ShapeError(f"M={self.m} not divisible by world={world}")

    def tune_candidate(self) -> dict:
        """This config as a tuner candidate dict (the searched axes)."""
        return dict(block_m=self.block_m, block_n=self.block_n,
                    block_k=self.block_k, block_mr=self.block_mr,
                    block_nr=self.block_nr)

    @classmethod
    def autotune(cls, m: int, h: int, d: int, n_experts: int, topk: int, *,
                 world: int = 8, spec: HardwareSpec = H800,
                 strategy: str = "exhaustive",
                 cache: "TuneCache | None" = None, preset: str = "small",
                 space: SearchSpace | None = None,
                 max_trials: int | None = None, seed: int = 0,
                 slack: float = 0.0, router_seed: int = 17,
                 full_result: bool = False) -> "MoeRsConfig | TuneResult":
        """Search the routing-aware design space for this MoE shape; return
        the winning config (or the full :class:`~repro.tuner.TuneResult`
        when ``full_result`` is set)."""
        from repro.tuner.search import tune

        task = moe_rs_tune_task(m, h, d, n_experts, topk, world=world,
                                spec=spec, space=space, preset=preset,
                                router_seed=router_seed)
        result = tune(task, world=world, spec=spec, strategy=strategy,
                      cache=cache, max_trials=max_trials, seed=seed,
                      slack=slack)
        return result if full_result else result.best_config


# ---------------------------------------------------------------------------
# Tuner integration: the MoE+RS slice of the decoupled design space
# ---------------------------------------------------------------------------

def moe_rs_search_space(m: int, h: int, d: int, world: int,
                        preset: str = "default") -> SearchSpace:
    """The routing-aware design space of MoE part 2 for one shape.

    Decoupled compute tile (``block_m/n/k`` — ``block_m`` doubles as the
    routing granularity) and reduction/communication tile
    (``block_mr/nr``); the segment scatter is pinned to the copy engine
    (hybrid mapping), so no ``comm_blocks``/mode axis.
    """
    per_rank = m // world
    if preset == "small":
        axes = (
            Axis("block_m", divisors_of(per_rank, (128, 256))),
            Axis("block_n", (128,)),
            Axis("block_k", (64,)),
            Axis("block_mr", divisors_of(per_rank, (128, 256))),
            Axis("block_nr", (256,)),
        )
    elif preset == "default":
        axes = (
            Axis("block_m", divisors_of(per_rank, (64, 128, 256))),
            Axis("block_n", (64, 128, 256)),
            Axis("block_k", (32, 64, 128)),
            Axis("block_mr", divisors_of(per_rank, (64, 128, 256, 512))),
            Axis("block_nr", (128, 256, 512)),
        )
    else:
        raise RuntimeLaunchError(f"unknown MoE+RS space preset {preset!r}")
    return SearchSpace(axes=axes)


register_space("moe_rs", moe_rs_search_space)


def moe_rs_tune_task(m: int, h: int, d: int, n_experts: int, topk: int, *,
                     world: int = 8, spec: HardwareSpec = H800,
                     space: SearchSpace | None = None, preset: str = "small",
                     router_seed: int = 17):
    """Build the :class:`~repro.tuner.TuneTask` tuning MoE+RS on a shape.

    Like :func:`repro.kernels.ag_moe.ag_moe_tune_task`, routing is
    rebuilt (and memoised) per (token count, ``block_m``); the router seed
    joins the shape key.
    """
    from repro.tuner.search import TuneTask

    space = space or moe_rs_search_space(m, h, d, world, preset=preset)
    routing_for = routing_memo(n_experts, topk, world, router_seed)

    def make_builder(cand: dict, scale: float = 1.0):
        align = world * max(int(cand["block_m"]), int(cand["block_mr"]))
        m_s = m if scale >= 1.0 else max(align, int(m * scale) // align * align)
        routing = routing_for(m_s, int(cand["block_m"]))
        cfg = MoeRsConfig(m=m_s, h=h, d=d, **cand)

        def build(ctx: DistContext) -> None:
            ctx.alloc("g", (routing.padded_rows, d), "float16", fill=None)
            ctx.alloc("w2", (n_experts * d, h), "float16", fill=None)
            ctx.alloc("y", (m_s // world, h), "float32", fill=None)
            moe_rs_overlapped(ctx, cfg, routing, "g", "w2", "y")

        return build

    def bound(cand: dict) -> float:
        rows = routing_for(m, int(cand["block_m"])).padded_rows
        return moe_rs_lower_bound(cand, m=m, h=h, d=d, world=world,
                                  spec=spec, topk=topk, grouped_rows=rows)

    return TuneTask(
        kernel="moe_rs",
        shape_key=f"m{m}h{h}d{d}e{n_experts}t{topk}r{router_seed}",
        space=space,
        default=MoeRsConfig(m=m, h=h, d=d).tune_candidate(),
        make_builder=make_builder,
        bound=bound,
        finalize=lambda c: MoeRsConfig(m=m, h=h, d=d, **c),
    )


def moe_rs_overlapped(
    ctx: DistContext,
    cfg: MoeRsConfig,
    routing: MoeRouting,
    grouped_in_name: str,
    weights_name: str,
    out_name: str,
    grid: int | None = None,
    options: CompileOptions | None = None,
    tag: str = "moe_rs",
) -> list[Process]:
    """Launch the overlapped GroupGEMM+Scatter+TopkReduce+RS chain.

    ``weights_name`` binds the flattened (E*D x H) second-layer experts;
    ``out_name`` receives this rank's (m/world x h) reduced token rows.
    """
    machine = ctx.machine
    world = machine.world_size
    cfg.validate(world)
    grid = grid or machine.config.spec.n_sms
    m_per = cfg.m // world

    # +1 dump row swallows scatter contributions of padded rows
    partial = ctx.alloc(f"{tag}.partial", (cfg.m + 1, cfg.h), "float32")
    ctx.alloc(f"{tag}.landing", (cfg.m, cfg.h), "float32", fill=None)
    ids_name = f"{tag}.ids"
    ctx.bind(ids_name, [routing.padded_token_ids.copy() for _ in range(world)])
    etile_name = f"{tag}.etile"
    ctx.bind(etile_name, [routing.expert_of_tile.copy() for _ in range(world)])
    rw_name = f"{tag}.row_weights"
    ctx.bind(rw_name, [routing.padded_weights.copy() for _ in range(world)])

    # segment-level dynamic consumer mapping: channel s == token segment s
    seg_mapping = TableTileMapping(world, world, world)
    for s in range(world):
        seg_mapping.fill(s, s * m_per, (s + 1) * m_per, s, s)
    seg_mapping.channel_threshold[:] = routing.segment_thresholds

    reduce_grid = TileGrid(m_per, cfg.h, cfg.block_mr, cfg.block_nr)
    channels = ctx.make_block_channels(
        tag, mapping=seg_mapping, comm_grid=TileGrid(cfg.m, cfg.h, m_per, cfg.h),
        consumer_grid=reduce_grid, consumer_mapping=seg_mapping,
        peer_cells=world)
    for ch in channels:
        ch.notify_counts = routing.segment_counts

    launch_spmd(machine, _moe_rs_producer, grid, dict(
        grouped_in=ctx.heap.tensors(grouped_in_name),
        weights2d=ctx.heap.tensors(weights_name),
        ids=ctx.heap.tensors(ids_name),
        expert_of_tile=ctx.heap.tensors(etile_name),
        row_weights=ctx.heap.tensors(rw_name),
        partial=ctx.heap.tensors(f"{tag}.partial"),
        channel=channels,
        NT=routing.n_tiles, D=cfg.d, H=cfg.h,
        BM=cfg.block_m, BN=cfg.block_n, BK=cfg.block_k,
    ), options=options, label=f"{tag}.producer")

    def comm_proc(rank: int) -> ProcessGen:
        ch = channels[rank]
        for off in range(world):
            q = (rank + off) % world
            yield from ctx.rank_wait(
                ch.barriers, q, int(routing.segment_thresholds[q]))
            yield from ctx.rank_copy_data(
                f"{tag}.landing", src_rank=rank, dst_rank=q,
                src_ranges=((q * m_per, (q + 1) * m_per), (0, cfg.h)),
                dst_ranges=((rank * m_per, (rank + 1) * m_per), (0, cfg.h)),
                src_name=f"{tag}.partial")
            ch.all_peer_barriers[q].post_add(rank, 1, from_rank=rank)
        return None

    for rank in range(world):
        machine.stream(rank, "comm").enqueue(
            comm_proc(rank), name=f"{tag}.scatter[{rank}]")

    return launch_spmd(machine, _moe_rs_reduce, grid, dict(
        landing=ctx.heap.tensors(f"{tag}.landing"),
        out=ctx.heap.tensors(out_name), channel=channels,
        MP=m_per, H=cfg.h, BMR=cfg.block_mr, BNR=cfg.block_nr, WORLD=world,
    ), options=options, label=f"{tag}.reduce")


# ---------------------------------------------------------------------------
# Registry: the declarative family record (repro.registry)
# ---------------------------------------------------------------------------

def _analyze_plans():
    from repro.analyze.registry import build_moe_rs_plan as p

    return [
        lambda: p(world=2),
        lambda: p(world=4),
    ]


def _bench_builders():
    from repro.bench.experiments import moe_part2_builders

    return moe_part2_builders


def _sweep_entries(shape, *, world: int, spec: HardwareSpec = H800,
                   preset: str = "small", router_seed: int = 17, **_kw):
    task = moe_rs_tune_task(shape.s, shape.h, shape.i // world, shape.e,
                            shape.topk, world=world, spec=spec,
                            preset=preset, router_seed=router_seed)
    return [(f"{shape.name}/moe_rs", task)]


def _warm_tasks(world: int, spec: HardwareSpec):
    from repro.models.configs import MOE_BENCHES

    tasks = []
    for shape in MOE_BENCHES:
        tasks.extend(_sweep_entries(shape, world=world, spec=spec))
    return tasks


def _shape_autotune(shape, world: int, **tune_kw):
    return MoeRsConfig.autotune(shape.s, shape.h, shape.i // world,
                                shape.e, shape.topk, world=world,
                                full_result=True, **tune_kw)


register_family(
    name="moe_rs",
    doc="GroupGEMM + Scatter + TopkReduce + ReduceScatter (MoE part 2)",
    config_cls=MoeRsConfig,
    kernels=(_moe_rs_producer, _moe_rs_reduce),
    launch=moe_rs_overlapped,
    search_space=lambda: moe_rs_search_space(512, 128, 128, 2,
                                             preset="small"),
    tune_task=lambda: moe_rs_tune_task(512, 128, 128, 4, 2, world=2),
    analyze_plans=_analyze_plans,
    bench_builders=_bench_builders,
    worlds=(2, 4),
    sweep_category="moe",
    sweep_entries=_sweep_entries,
    warm_tasks=_warm_tasks,
    shape_autotune=_shape_autotune,
)
