"""TileLink overlapped kernel zoo.

Each module builds one of the paper's workloads from tile-centric
primitives:

* :mod:`repro.kernels.ag_gemm` — AllGather + GEMM (pull/push/DMA resource
  mappings; §5, Figure 8 left)
* :mod:`repro.kernels.gemm_rs` — GEMM + ReduceScatter (Figure 4's fused
  ring kernel and the hybrid DMA-scatter variant; Figure 8 middle)
* :mod:`repro.kernels.ag_moe` — AllGather + MoE GroupGEMM with dynamic
  mapping (Figure 5; Figure 9 left)
* :mod:`repro.kernels.moe_rs` — GroupGEMM + Scatter + TopkReduce + RS
  (Figure 9 middle)
* :mod:`repro.kernels.attention` — AllGather-KV + flash attention
  (Figure 6; Figure 10)
* :mod:`repro.kernels.ring_attention` — RingAttention baseline (Figure 10)
* :mod:`repro.kernels.mlp`, :mod:`repro.kernels.moe_layer` — full layers
"""

from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped
from repro.kernels.gemm_rs import GemmRsConfig, gemm_rs_overlapped
from repro.kernels.ag_moe import AgMoeConfig, ag_moe_overlapped
from repro.kernels.moe_common import MoeRouting, build_moe_routing, random_router_logits
from repro.kernels.moe_rs import MoeRsConfig, moe_rs_overlapped
from repro.kernels.attention import AgAttentionConfig, ag_attention_overlapped
from repro.kernels.ring_attention import ring_attention
from repro.kernels.mlp import MlpConfig, mlp_layer_tilelink
from repro.kernels.moe_layer import MoeConfig, moe_layer_tilelink

__all__ = [
    "AgAttentionConfig",
    "AgGemmConfig",
    "AgMoeConfig",
    "GemmRsConfig",
    "MlpConfig",
    "MoeConfig",
    "MoeRouting",
    "MoeRsConfig",
    "ag_attention_overlapped",
    "ag_gemm_overlapped",
    "ag_moe_overlapped",
    "build_moe_routing",
    "gemm_rs_overlapped",
    "mlp_layer_tilelink",
    "moe_layer_tilelink",
    "moe_rs_overlapped",
    "random_router_logits",
    "ring_attention",
]
