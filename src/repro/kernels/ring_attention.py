"""RingAttention baseline (Liu et al.) for Figure 10.

Blockwise attention with KV chunks rotating around the ring: at each step
every rank computes flash attention against its current chunk while the
chunk simultaneously travels to the next rank.  The known weaknesses the
paper's comparison exposes:

* **lockstep**: every step ends with a ring-wide wait for the slowest
  rank, so causal-masking load imbalance (later ranks attend to more
  keys) stalls the whole ring each step;
* **blocking hops**: a step's compute cannot start before the previous
  hop delivered, so link latency and protocol overhead serialize.

Numerics use the same online-softmax accumulation as the TileLink kernel.
"""

from __future__ import annotations

from repro.config import H800, HardwareSpec
from repro.kernels.attention import (
    AgAttentionConfig,
    _OnlineSoftmax,
    attention_search_space,
)
from repro.ops.attention import flash_segment_time, heads_to_seq, seq_to_heads
from repro.registry import register_family
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen, Timeout
from repro.tuner.costprune import ring_attention_lower_bound
from repro.tuner.space import SearchSpace, register_space

#: per-step host cost of the torch.distributed SendRecv pair
HOP_DISPATCH_OVERHEAD = 30e-6

#: analyzer annotation (repro.analyze): native simulated kernel, no tile IR
ANALYZE_META = dict(family="ring_attention", tile_ir=False,
                    detail="rotating-KV lockstep ring on host processes")

# The ring baseline shares the flash-tile axes with the AG kernel — the
# searched subspace is the same q/kv tiling; only the builder (and its
# lockstep cost structure) differs.
register_space("ring_attention", attention_search_space)


def ring_attention_tune_task(heads: int, head_dim: int, seq_len: int, *,
                             causal: bool = True, world: int = 8,
                             spec: HardwareSpec = H800,
                             space: SearchSpace | None = None,
                             preset: str = "small"):
    """Build the :class:`~repro.tuner.TuneTask` tuning RingAttention.

    Tuning the baseline keeps the Figure-10 comparison honest: TileLink's
    tuned kernel is measured against the ring's *best* tiling, not its
    default one.
    """
    from repro.tuner.search import TuneTask

    space = space or attention_search_space(heads, head_dim, seq_len, world,
                                            preset=preset)

    def make_builder(cand: dict, scale: float = 1.0):
        align = world * max(int(cand["block_q"]), int(cand["block_kv"]))
        s_s = seq_len if scale >= 1.0 else \
            max(align, int(seq_len * scale) // align * align)
        cfg = AgAttentionConfig(heads=heads, head_dim=head_dim, seq_len=s_s,
                                causal=causal, **cand)

        def build(ctx: DistContext) -> None:
            s_per = s_s // world
            for name in ("q", "k", "v"):
                ctx.alloc(name, (s_per, cfg.width), "float16", fill=None)
            ctx.alloc("o", (s_per, cfg.width), "float32", fill=None)
            ring_attention(ctx, cfg, "q", "k", "v", "o")

        return build

    return TuneTask(
        kernel="ring_attention",
        shape_key=f"h{heads}d{head_dim}s{seq_len}c{int(causal)}",
        space=space,
        default=AgAttentionConfig(heads=heads, head_dim=head_dim,
                                  seq_len=seq_len,
                                  causal=causal).tune_candidate(),
        make_builder=make_builder,
        bound=lambda c: ring_attention_lower_bound(
            c, heads=heads, head_dim=head_dim, seq_len=seq_len, world=world,
            spec=spec),
        finalize=lambda c: AgAttentionConfig(heads=heads, head_dim=head_dim,
                                             seq_len=seq_len, causal=causal,
                                             **c),
    )


def ring_attention(
    ctx: DistContext,
    cfg: AgAttentionConfig,
    q_name: str,
    k_shards_name: str,
    v_shards_name: str,
    out_name: str,
    tag: str = "ring_attn",
) -> list[Process]:
    """Launch ring attention on every rank (2-d sequence layouts)."""
    machine = ctx.machine
    world = machine.world_size
    cfg.validate(world)
    s_per = cfg.seq_len // world
    width = cfg.width
    kv_bytes = 2.0 * s_per * width * 2  # K and V fp16 chunks

    # step-completion signals: cell s on rank r == "rank r finished hop s"
    hop_done = ctx.heap.alloc_signals(f"{tag}.hop", world)

    def rank_proc(rank: int) -> ProcessGen:
        device = machine.device(rank)
        want = device.sms.capacity
        yield device.sms.acquire(want)
        try:
            t0 = machine.now
            q_t = ctx.heap.tensor(q_name, rank)
            state = None
            if machine.config.execute_numerics:
                state = _OnlineSoftmax(
                    seq_to_heads(q_t.numpy(), cfg.heads, cfg.head_dim),
                    cfg.causal, rank * s_per)
            nxt = (rank + 1) % world
            for step in range(world):
                seg = (rank - step) % world
                # every chunk is processed with the causal mask applied
                # *inside* the kernel — plain RingAttention neither skips
                # masked chunks nor rebalances the causal triangle, so each
                # lockstep slot costs a full chunk of compute
                duration = flash_segment_time(
                    ctx, cfg.heads, s_per, s_per, cfg.head_dim, want,
                    1.0, cfg.block_q, cfg.block_kv)
                arrival = device.reserve_hbm(kv_bytes)
                yield Timeout(max(duration, arrival - machine.now))
                if state is not None and (not cfg.causal or seg <= rank):
                    k_seg = ctx.heap.tensor(k_shards_name, seg).numpy()
                    v_seg = ctx.heap.tensor(v_shards_name, seg).numpy()
                    state.update(
                        seq_to_heads(k_seg, cfg.heads, cfg.head_dim),
                        seq_to_heads(v_seg, cfg.heads, cfg.head_dim),
                        kv_offset=seg * s_per)
                if step < world - 1:
                    # blocking SendRecv after the step's compute: host
                    # dispatch, the hop itself, then wait for the
                    # neighbour's hop — the ring-wide lockstep
                    yield Timeout(HOP_DISPATCH_OVERHEAD)
                    yield machine.interconnect.transfer(
                        rank, nxt, kv_bytes, "nccl")
                    hop_done[nxt].post_add(step, 1, from_rank=rank)
                    yield hop_done[rank].wait_geq(step, 1)
            if state is not None:
                ctx.heap.tensor(out_name, rank).write_tile(
                    ((0, s_per), (0, width)), heads_to_seq(state.output()))
            if machine.config.trace:
                machine.record(rank, "compute", tag, t0, machine.now)
        finally:
            device.sms.release(want)
        return None

    return [
        machine.stream(rank).enqueue(
            rank_proc(rank), name=f"{tag}[{rank}]",
            start_delay=machine.cost.launch_overhead())
        for rank in range(world)
    ]


# ---------------------------------------------------------------------------
# Registry: the declarative family record (repro.registry)
# ---------------------------------------------------------------------------

def _analyze_plans():
    from repro.analyze.registry import build_ring_attention_plan

    return [build_ring_attention_plan]


def _bench_builders():
    # the ring baseline appears as the "RingAttn" column of the shared
    # attention method grid
    from repro.bench.experiments import attention_builders

    return attention_builders


def _sweep_entries(shape, *, world: int, spec: HardwareSpec = H800,
                   preset: str = "small", causal: bool = True, **_kw):
    tasks = []
    for seq_len in shape.seq_lens:
        task = ring_attention_tune_task(shape.heads, shape.head_dim, seq_len,
                                        causal=causal, world=world,
                                        spec=spec, preset=preset)
        tasks.append((f"{shape.name}/s{seq_len}/ring_attention", task))
    return tasks


register_family(
    name="ring_attention",
    doc="RingAttention baseline (rotating-KV lockstep ring)",
    config_cls=AgAttentionConfig,
    launch=ring_attention,
    search_space=lambda: attention_search_space(4, 32, 512, 2,
                                                preset="small"),
    tune_task=lambda: ring_attention_tune_task(4, 32, 512, world=2),
    analyze_plans=_analyze_plans,
    bench_builders=_bench_builders,
    worlds=(1,),
    tile_ir=False,
    sweep_category="attention",
    sweep_entries=_sweep_entries,
)
