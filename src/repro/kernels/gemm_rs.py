"""Overlapped GEMM + ReduceScatter (tensor-parallel MLP part 2).

Two variants from the decoupled design space:

* ``"ring"`` — the paper's Figure 4 kernel, ported near-verbatim: one fused
  launch where most blocks run the producer GEMM (notifying per output
  tile) and ``COMM_BLOCKS`` blocks run a ring reduce — waiting on producer
  tiles (``consumer_tile_wait``), accumulating the peer partial
  (``peer_tile_wait`` + local load), and pushing downstream
  (``tile_push_data`` + ``peer_tile_notify``).  Communication and
  computation tile sizes are independent.

* ``"hybrid"`` — the mapping the paper reports as fastest on H800: scatter
  on the **DMA engine** (host waits per segment signal, then pushes the
  partial segment to its owner), reduction on **SMs** (a consumer kernel
  sums the world partials once they land).  Figure 2c's hybrid mapping.

The producer GEMM emits row segments in ring order starting at
``rank + 1`` so downstream consumers unblock earliest (tile-order
subspace).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.compiler.program import CompileOptions
from repro.errors import RuntimeLaunchError, ShapeError
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping
from repro.config import H800, HardwareSpec
from repro.registry import register_family
from repro.runtime.context import DistContext
from repro.runtime.launcher import launch_spmd
from repro.sim.engine import Process, ProcessGen
from repro.tuner.costprune import gemm_rs_lower_bound
from repro.tuner.space import Axis, SearchSpace, divisors_of, register_space

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuner.cache import TuneCache
    from repro.tuner.search import TuneResult


@kernel
def _gemm_rs_ring(tokens, weights, gemm_out, buffers, out,
                  channel: tl.BlockChannel,
                  M: tl.constexpr, N: tl.constexpr, K: tl.constexpr,
                  BM: tl.constexpr, BN: tl.constexpr, BK: tl.constexpr,
                  BMR: tl.constexpr, BNR: tl.constexpr,
                  COMM_BLOCKS: tl.constexpr):
    """Figure 4: fused producer GEMM + ring-reduce ReduceScatter."""
    bid = tl.block_id()
    nb = tl.num_blocks()
    world = channel.num_ranks
    if bid < nb - COMM_BLOCKS:
        # ---- producer GEMM over the full (M x N) output, ring-ordered ----
        tiles_m = tl.cdiv(M, BM)
        tiles_n = tl.cdiv(N, BN)
        total = tiles_m * tiles_n
        seg_tiles = (tiles_m // world) * tiles_n
        start = ((channel.rank + 1) % world) * seg_tiles
        nproducers = nb - COMM_BLOCKS
        for i in range(bid, total, nproducers):
            t = (start + i) % total
            tid_m = t // tiles_n
            tid_n = t % tiles_n
            acc = tl.zeros((BM, BN), "float32")
            for k in range(0, K, BK):
                a = tl.load(tokens, (tid_m * BM, tid_m * BM + BM), (k, k + BK))
                b = tl.load(weights, (k, k + BK), (tid_n * BN, tid_n * BN + BN))
                acc += tl.dot(a, b)
            c = tl.cast(acc, "float16")
            tl.store(gemm_out, (tid_m * BM, tid_m * BM + BM),
                     (tid_n * BN, tid_n * BN + BN), c)
            tl.producer_tile_notify(tid_m, "p2p")
    else:
        # ---- ring reduce on COMM_BLOCKS blocks (comm tile BMR x BNR) ----
        cid = bid - (nb - COMM_BLOCKS)
        to_rank = (channel.rank - 1 + world) % world
        m_per_rank = M // world
        rtiles_m = tl.cdiv(m_per_rank, BMR)
        rtiles_n = tl.cdiv(N, BNR)
        rtotal = rtiles_m * rtiles_n
        for t in range(cid, rtotal, COMM_BLOCKS):
            tid_m = t // rtiles_n
            tid_n = t % rtiles_n
            for stage in range(world):
                seg = (channel.rank + stage + 1) % world
                tid_m_global = tid_m + seg * rtiles_m
                tl.consumer_tile_wait(tid_m_global)
                data = tl.load(gemm_out,
                               (tid_m_global * BMR, tid_m_global * BMR + BMR),
                               (tid_n * BNR, tid_n * BNR + BNR))
                if stage != 0:
                    tl.peer_tile_wait(tid_m_global * rtiles_n + tid_n,
                                      channel.rank)
                    prev = tl.load(buffers,
                                   (tid_m_global * BMR, tid_m_global * BMR + BMR),
                                   (tid_n * BNR, tid_n * BNR + BNR))
                    data += prev
                if stage == world - 1:
                    tl.store(out, (tid_m * BMR, tid_m * BMR + BMR),
                             (tid_n * BNR, tid_n * BNR + BNR), data)
                else:
                    tl.tile_push_data(buffers[to_rank], tid_m_global, tid_n,
                                      data)
                    tl.peer_tile_notify(tid_m_global * rtiles_n + tid_n,
                                        to_rank)


@kernel
def _gemm_producer(tokens, weights, gemm_out, channel: tl.BlockChannel,
                   M: tl.constexpr, N: tl.constexpr, K: tl.constexpr,
                   BM: tl.constexpr, BN: tl.constexpr, BK: tl.constexpr):
    """Standalone producer GEMM (hybrid variant), ring-ordered, notifying."""
    bid = tl.block_id()
    nb = tl.num_blocks()
    world = channel.num_ranks
    tiles_m = tl.cdiv(M, BM)
    tiles_n = tl.cdiv(N, BN)
    total = tiles_m * tiles_n
    seg_tiles = (tiles_m // world) * tiles_n
    start = ((channel.rank + 1) % world) * seg_tiles
    for i in range(bid, total, nb):
        t = (start + i) % total
        tid_m = t // tiles_n
        tid_n = t % tiles_n
        acc = tl.zeros((BM, BN), "float32")
        for k in range(0, K, BK):
            a = tl.load(tokens, (tid_m * BM, tid_m * BM + BM), (k, k + BK))
            b = tl.load(weights, (k, k + BK), (tid_n * BN, tid_n * BN + BN))
            acc += tl.dot(a, b)
        c = tl.cast(acc, "float16")
        tl.store(gemm_out, (tid_m * BM, tid_m * BM + BM),
                 (tid_n * BN, tid_n * BN + BN), c)
        tl.producer_tile_notify(tid_m, "p2p")


@kernel
def _rs_reduce(landing, gemm_out, out, channel: tl.BlockChannel,
               M: tl.constexpr, N: tl.constexpr, BMR: tl.constexpr,
               BNR: tl.constexpr, WORLD: tl.constexpr):
    """Hybrid variant's SM reduction: sum world partials of own segment.

    ``landing`` holds one (M/world x N) partial slab per source rank
    (stacked rows); slot ``rank`` is unused (the local partial is read
    straight from gemm_out).  Arrival signals are peer barriers: cell q
    posted when rank q's DMA push landed.
    """
    bid = tl.block_id()
    nb = tl.num_blocks()
    m_per_rank = M // WORLD
    rtiles_m = tl.cdiv(m_per_rank, BMR)
    rtiles_n = tl.cdiv(N, BNR)
    rtotal = rtiles_m * rtiles_n
    for t in range(bid, rtotal, nb):
        tid_m = t // rtiles_n
        tid_n = t % rtiles_n
        tid_m_global = tid_m + channel.rank * rtiles_m
        # local partial for our own segment must be produced
        tl.consumer_tile_wait(tid_m_global)
        acc = tl.load(gemm_out, (tid_m_global * BMR, tid_m_global * BMR + BMR),
                      (tid_n * BNR, tid_n * BNR + BNR))
        for q in range(1, WORLD):
            src = (channel.rank + q) % WORLD
            tl.peer_tile_wait(src, channel.rank)
            part = tl.load(landing,
                           (src * m_per_rank + tid_m * BMR,
                            src * m_per_rank + tid_m * BMR + BMR),
                           (tid_n * BNR, tid_n * BNR + BNR))
            acc += part
        tl.store(out, (tid_m * BMR, tid_m * BMR + BMR),
                 (tid_n * BNR, tid_n * BNR + BNR), acc)


# analyzer annotations (repro.analyze)
_gemm_rs_ring.meta.update(role="fused", comm_axis="m",
                          outputs=("gemm_out", "out"))
_gemm_producer.meta.update(role="producer", comm_axis="m",
                           outputs=("gemm_out",))
_rs_reduce.meta.update(role="consumer", comm_axis="m", outputs=("out",))


@dataclass(frozen=True)
class GemmRsConfig:
    """Shapes/tiling for GEMM+RS.  ``m`` global rows, ``n`` full output
    width, ``k`` the per-rank shard depth."""

    m: int
    n: int
    k: int
    block_m: int = 128
    block_n: int = 128
    block_k: int = 64
    block_mr: int = 128   # comm tile rows (decoupled from block_m)
    block_nr: int = 256   # comm tile cols
    comm_blocks: int = 20
    channels_per_rank: int = 1
    mode: str = "hybrid"  # ring | hybrid | auto (resolved by the tuner)

    def validate(self, world: int) -> None:
        if self.m % world != 0:
            raise ShapeError(f"M={self.m} not divisible by world={world}")
        m_per = self.m // world
        if m_per % self.block_m != 0 or m_per % self.block_mr != 0:
            raise ShapeError("per-rank rows must align to both tile sizes")
        if self.mode not in ("ring", "hybrid", "auto"):
            raise RuntimeLaunchError(f"unknown GEMM+RS mode {self.mode!r}")

    def tune_candidate(self) -> dict:
        """This config as a tuner candidate dict (the searched axes)."""
        return dict(block_m=self.block_m, block_n=self.block_n,
                    block_k=self.block_k, block_mr=self.block_mr,
                    block_nr=self.block_nr, comm_blocks=self.comm_blocks,
                    mode=self.mode)

    @classmethod
    def autotune(cls, m: int, n: int, k: int, *, world: int = 8,
                 spec: HardwareSpec = H800, strategy: str = "exhaustive",
                 cache: "TuneCache | None" = None, preset: str = "small",
                 space: SearchSpace | None = None,
                 max_trials: int | None = None, seed: int = 0,
                 slack: float = 0.0,
                 full_result: bool = False) -> "GemmRsConfig | TuneResult":
        """Search the decoupled design space for this shape; return the
        winning config (or the full :class:`~repro.tuner.TuneResult` when
        ``full_result`` is set)."""
        from repro.tuner.search import tune

        task = gemm_rs_tune_task(m, n, k, world=world, spec=spec,
                                 space=space, preset=preset)
        result = tune(task, world=world, spec=spec, strategy=strategy,
                      cache=cache, max_trials=max_trials, seed=seed,
                      slack=slack)
        return result if full_result else result.best_config


# ---------------------------------------------------------------------------
# Tuner integration: the GEMM+RS slice of the decoupled design space
# ---------------------------------------------------------------------------

#: hybrid (copy-engine scatter) ignores ``comm_blocks``; canonicalise it.
_HYBRID_CANONICAL_COMM_BLOCKS = 20


def gemm_rs_search_space(m: int, n: int, k: int, world: int,
                         preset: str = "default") -> SearchSpace:
    """The §3.1 design space of GEMM+RS for one shape.

    Decoupled compute tile (``block_m/n/k``) and reduction/communication
    tile (``block_mr/nr``); ``mode`` picks the resource mapping — ``ring``
    reduces on ``comm_blocks`` SMs, ``hybrid`` scatters on the copy
    engine and reduces on all SMs.
    """
    per_rank = m // world
    if preset == "small":
        axes = (
            Axis("block_m", divisors_of(per_rank, (128, 256))),
            Axis("block_n", (128,)),
            Axis("block_k", (64,)),
            Axis("block_mr", divisors_of(per_rank, (128, 256))),
            Axis("block_nr", (256,)),
            Axis("comm_blocks", (4, 20, 40)),
            Axis("mode", ("hybrid", "ring")),
        )
    elif preset == "default":
        axes = (
            Axis("block_m", divisors_of(per_rank, (64, 128, 256))),
            Axis("block_n", (64, 128, 256)),
            Axis("block_k", (32, 64, 128)),
            Axis("block_mr", divisors_of(per_rank, (64, 128, 256, 512))),
            Axis("block_nr", (128, 256, 512)),
            Axis("comm_blocks", (4, 8, 16, 20, 32, 48)),
            Axis("mode", ("hybrid", "ring")),
        )
    else:
        raise RuntimeLaunchError(f"unknown GEMM+RS space preset {preset!r}")

    def valid(cand: dict) -> bool:
        if cand["mode"] == "hybrid":
            return cand["comm_blocks"] == _HYBRID_CANONICAL_COMM_BLOCKS
        return True

    return SearchSpace(axes=axes, constraint=valid)


register_space("gemm_rs", gemm_rs_search_space)


def gemm_rs_tune_task(m: int, n: int, k: int, *, world: int = 8,
                      spec: HardwareSpec = H800,
                      space: SearchSpace | None = None,
                      preset: str = "small"):
    """Build the :class:`~repro.tuner.TuneTask` tuning GEMM+RS on a shape."""
    from repro.tuner.search import TuneTask

    space = space or gemm_rs_search_space(m, n, k, world, preset=preset)

    def make_builder(cand: dict, scale: float = 1.0):
        align = world * max(int(cand["block_m"]), int(cand["block_mr"]))
        m_s = m if scale >= 1.0 else max(align, int(m * scale) // align * align)
        cfg = GemmRsConfig(m=m_s, n=n, k=k, **cand)

        def build(ctx: DistContext) -> None:
            ctx.alloc("x", (m_s, k), "float16", fill=None)
            ctx.alloc("w", (k, n), "float16", fill=None)
            ctx.alloc("y", (m_s // world, n), "float32", fill=None)
            gemm_rs_overlapped(ctx, cfg, "x", "w", "y")

        return build

    return TuneTask(
        kernel="gemm_rs",
        shape_key=f"m{m}n{n}k{k}",
        space=space,
        default=GemmRsConfig(m=m, n=n, k=k).tune_candidate(),
        make_builder=make_builder,
        bound=lambda c: gemm_rs_lower_bound(c, m=m, n=n, k=k, world=world,
                                            spec=spec),
        finalize=lambda c: GemmRsConfig(m=m, n=n, k=k, **c),
    )


def gemm_rs_overlapped(
    ctx: DistContext,
    cfg: GemmRsConfig,
    tokens_name: str,
    weight_name: str,
    out_name: str,
    grid: int | None = None,
    options: CompileOptions | None = None,
    tag: str = "gemm_rs",
) -> list[Process]:
    """Launch overlapped GEMM+RS; ``out`` receives (m/world x n) sums."""
    machine = ctx.machine
    world = machine.world_size
    if cfg.mode == "auto":
        from repro.tuner.cache import TuneCache

        tuned = GemmRsConfig.autotune(cfg.m, cfg.n, cfg.k, world=world,
                                      spec=machine.config.spec,
                                      cache=TuneCache())
        cfg = replace(tuned, channels_per_rank=cfg.channels_per_rank)
    cfg.validate(world)
    grid = grid or machine.config.spec.n_sms
    m_per = cfg.m // world

    gemm_out = ctx.alloc(f"{tag}.gemm_out", (cfg.m, cfg.n), "float16",
                         fill=None)
    mapping = AffineTileMapping(cfg.m, cfg.block_m, world,
                                cfg.channels_per_rank)
    gemm_grid = TileGrid(cfg.m, cfg.n, cfg.block_m, cfg.block_n)
    reduce_grid = TileGrid(cfg.m, cfg.n, cfg.block_mr, cfg.block_nr)

    if cfg.mode == "ring":
        ctx.alloc(f"{tag}.buffers", (cfg.m, cfg.n), "float16", fill=None)
        channels = ctx.make_block_channels(
            tag, mapping=mapping, comm_grid=reduce_grid,
            consumer_grid=reduce_grid, peer_cells=reduce_grid.n_tiles,
            threshold_scale=gemm_grid.tiles_n, comm_blocks=cfg.comm_blocks)
        return launch_spmd(machine, _gemm_rs_ring, grid, dict(
            tokens=ctx.heap.tensors(tokens_name),
            weights=ctx.heap.tensors(weight_name),
            gemm_out=ctx.heap.tensors(f"{tag}.gemm_out"),
            buffers=ctx.heap.tensors(f"{tag}.buffers"),
            out=ctx.heap.tensors(out_name), channel=channels,
            M=cfg.m, N=cfg.n, K=cfg.k, BM=cfg.block_m, BN=cfg.block_n,
            BK=cfg.block_k, BMR=cfg.block_mr, BNR=cfg.block_nr,
            COMM_BLOCKS=cfg.comm_blocks,
        ), options=options, label=f"{tag}.ring")

    # ---- hybrid: DMA scatter + SM reduce -------------------------------------
    ctx.alloc(f"{tag}.landing", (cfg.m, cfg.n), "float16", fill=None)
    channels = ctx.make_block_channels(
        tag, mapping=mapping, comm_grid=reduce_grid,
        consumer_grid=reduce_grid, peer_cells=world,
        threshold_scale=gemm_grid.tiles_n)

    launch_spmd(machine, _gemm_producer, grid, dict(
        tokens=ctx.heap.tensors(tokens_name),
        weights=ctx.heap.tensors(weight_name),
        gemm_out=ctx.heap.tensors(f"{tag}.gemm_out"), channel=channels,
        M=cfg.m, N=cfg.n, K=cfg.k, BM=cfg.block_m, BN=cfg.block_n,
        BK=cfg.block_k,
    ), options=options, label=f"{tag}.gemm")

    # host comm orchestrator per rank: wait for a remote segment's tiles,
    # DMA-push the partial to its owner, publish an arrival signal
    def comm_proc(rank: int) -> ProcessGen:
        ch = channels[rank]
        for off in range(1, world):
            q = (rank + off) % world
            # all producer tiles of segment q are done locally
            for c in range(cfg.channels_per_rank):
                channel_idx = q * cfg.channels_per_rank + c
                threshold = mapping.tiles_in_channel(channel_idx) \
                    * gemm_grid.tiles_n
                yield from ctx.rank_wait(ch.barriers, channel_idx, threshold)
            yield from ctx.rank_copy_data(
                f"{tag}.landing", src_rank=rank, dst_rank=q,
                src_ranges=((q * m_per, (q + 1) * m_per), (0, cfg.n)),
                dst_ranges=((rank * m_per, (rank + 1) * m_per), (0, cfg.n)),
                src_name=f"{tag}.gemm_out")
            ch.all_peer_barriers[q].post_add(rank, 1, from_rank=rank)
        return None

    for rank in range(world):
        machine.stream(rank, "comm").enqueue(
            comm_proc(rank), name=f"{tag}.scatter[{rank}]")

    return launch_spmd(machine, _rs_reduce, grid, dict(
        landing=ctx.heap.tensors(f"{tag}.landing"),
        gemm_out=ctx.heap.tensors(f"{tag}.gemm_out"),
        out=ctx.heap.tensors(out_name), channel=channels,
        M=cfg.m, N=cfg.n, BMR=cfg.block_mr, BNR=cfg.block_nr, WORLD=world,
    ), options=options, label=f"{tag}.reduce")


# ---------------------------------------------------------------------------
# Registry: the declarative family record (repro.registry)
# ---------------------------------------------------------------------------

def _analyze_plans():
    from repro.analyze.registry import build_gemm_rs_plan as p

    return [
        lambda: p(world=2, mode="ring"),
        lambda: p(world=4, mode="ring"),
        lambda: p(world=2, mode="hybrid"),
        lambda: p(world=4, mode="hybrid"),
    ]


def _bench_builders():
    from repro.bench.experiments import gemm_rs_builders

    return gemm_rs_builders


def _sweep_entries(shape, *, world: int, spec: HardwareSpec = H800,
                   preset: str = "small", **_kw):
    task = gemm_rs_tune_task(shape.s, shape.h, shape.i // world,
                             world=world, spec=spec, preset=preset)
    return [(f"{shape.name}/gemm_rs", task)]


def _warm_tasks(world: int, spec: HardwareSpec):
    from repro.models.configs import MLP_BENCHES

    tasks = []
    for shape in MLP_BENCHES:
        tasks.extend(_sweep_entries(shape, world=world, spec=spec))
    return tasks


def _shape_autotune(shape, world: int, **tune_kw):
    return GemmRsConfig.autotune(shape.s, shape.h, shape.i // world,
                                 world=world, full_result=True, **tune_kw)


register_family(
    name="gemm_rs",
    doc="GEMM + ReduceScatter (tensor-parallel MLP part 2)",
    config_cls=GemmRsConfig,
    kernels=(_gemm_rs_ring, _gemm_producer, _rs_reduce),
    launch=gemm_rs_overlapped,
    search_space=lambda: gemm_rs_search_space(512, 128, 128, 2,
                                              preset="small"),
    tune_task=lambda: gemm_rs_tune_task(512, 128, 128, world=2),
    analyze_plans=_analyze_plans,
    bench_builders=_bench_builders,
    worlds=(2, 4),
    modes=("ring", "hybrid"),
    sweep_category="mlp",
    sweep_entries=_sweep_entries,
    warm_tasks=_warm_tasks,
    shape_autotune=_shape_autotune,
)
