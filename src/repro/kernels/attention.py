"""Overlapped AllGather-KV + flash attention (Figure 6, sequence parallel).

Communication runs on the copy engine, driven by host primitives on a
dedicated comm stream (``rank_copy_data`` + ``rank_notify``); the
computation is a flash-attention kernel whose blocks
``consumer_tile_wait`` per KV segment.  The comm order adapts to causal
masking (needed segments first) — a tile-order-subspace choice the
operator-centric AllGather cannot express.

The compute kernel is a native simulated kernel (one process per rank,
per-segment aggregate costing) — the flash inner loop has no cross-block
scheduling events, so stepping it tile-by-tile would add events without
adding fidelity.  Numerics run the online-softmax accumulation per
segment, snapshotting gathered KV *at wait-satisfaction time*, so a
missing signal shows up as wrong output in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import H800, HardwareSpec
from repro.errors import RuntimeLaunchError, ShapeError
from repro.ops.attention import flash_segment_time, heads_to_seq, seq_to_heads
from repro.registry import register_family
from repro.runtime.context import DistContext
from repro.sim.engine import Process, ProcessGen, Timeout
from repro.tuner.costprune import ag_attention_lower_bound
from repro.tuner.space import Axis, SearchSpace, register_space

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuner.cache import TuneCache
    from repro.tuner.search import TuneResult

#: analyzer annotation (repro.analyze): this family has no tile IR — the
#: flash consumer is a native simulated kernel, so the static analyzer
#: records an informational plan instead of an event-trace analysis
ANALYZE_META = dict(family="ag_attention", tile_ir=False,
                    detail="KV AllGather on the copy engine + native "
                           "flash-attention consumer")


@dataclass(frozen=True)
class AgAttentionConfig:
    heads: int
    head_dim: int
    seq_len: int           # global KV sequence length S
    causal: bool = True
    block_q: int = 128
    block_kv: int = 128

    def validate(self, world: int) -> None:
        if self.seq_len % world != 0:
            raise ShapeError(
                f"S={self.seq_len} not divisible by world={world}")

    @property
    def width(self) -> int:
        return self.heads * self.head_dim

    def tune_candidate(self) -> dict:
        """This config as a tuner candidate dict (the searched axes)."""
        return dict(block_q=self.block_q, block_kv=self.block_kv)

    @classmethod
    def autotune(cls, heads: int, head_dim: int, seq_len: int, *,
                 causal: bool = True, kernel: str = "ag_attention",
                 world: int = 8, spec: HardwareSpec = H800,
                 strategy: str = "exhaustive",
                 cache: "TuneCache | None" = None, preset: str = "small",
                 space: SearchSpace | None = None,
                 max_trials: int | None = None, seed: int = 0,
                 slack: float = 0.0,
                 full_result: bool = False
                 ) -> "AgAttentionConfig | TuneResult":
        """Search the flash-tile design space for this shape; ``kernel``
        picks the overlapped AG kernel (``"ag_attention"``) or the
        RingAttention baseline (``"ring_attention"``).  Returns the winning
        config (or the full :class:`~repro.tuner.TuneResult` when
        ``full_result`` is set)."""
        from repro.tuner.search import tune

        if kernel == "ag_attention":
            task = ag_attention_tune_task(heads, head_dim, seq_len,
                                          causal=causal, world=world,
                                          spec=spec, space=space,
                                          preset=preset)
        elif kernel == "ring_attention":
            from repro.kernels.ring_attention import ring_attention_tune_task

            task = ring_attention_tune_task(heads, head_dim, seq_len,
                                            causal=causal, world=world,
                                            spec=spec, space=space,
                                            preset=preset)
        else:
            raise RuntimeLaunchError(
                f"unknown tunable attention kernel {kernel!r}")
        result = tune(task, world=world, spec=spec, strategy=strategy,
                      cache=cache, max_trials=max_trials, seed=seed,
                      slack=slack)
        return result if full_result else result.best_config


# ---------------------------------------------------------------------------
# Tuner integration: the attention slice of the design space
# ---------------------------------------------------------------------------

def attention_search_space(heads: int, head_dim: int, seq_len: int,
                           world: int,
                           preset: str = "default") -> SearchSpace:
    """The flash-tile design space shared by both attention kernels.

    Axes are the flash q/kv tile sizes; communication rides the copy
    engine (AG kernel) or NCCL hops (ring baseline), so there is no
    ``comm_blocks``/mode axis.  Tiles need not divide the per-rank
    sequence (the kernels ``cdiv``), so the axes are plain value lists.
    """
    if preset == "small":
        axes = (
            Axis("block_q", (128, 256)),
            Axis("block_kv", (128, 256)),
        )
    elif preset == "default":
        axes = (
            Axis("block_q", (64, 128, 256)),
            Axis("block_kv", (64, 128, 256, 512)),
        )
    else:
        raise RuntimeLaunchError(f"unknown attention space preset {preset!r}")
    return SearchSpace(axes=axes)


register_space("ag_attention", attention_search_space)


def ag_attention_tune_task(heads: int, head_dim: int, seq_len: int, *,
                           causal: bool = True, world: int = 8,
                           spec: HardwareSpec = H800,
                           space: SearchSpace | None = None,
                           preset: str = "small"):
    """Build the :class:`~repro.tuner.TuneTask` tuning AG+flash attention."""
    from repro.tuner.search import TuneTask

    space = space or attention_search_space(heads, head_dim, seq_len, world,
                                            preset=preset)

    def make_builder(cand: dict, scale: float = 1.0):
        align = world * max(int(cand["block_q"]), int(cand["block_kv"]))
        s_s = seq_len if scale >= 1.0 else \
            max(align, int(seq_len * scale) // align * align)
        cfg = AgAttentionConfig(heads=heads, head_dim=head_dim, seq_len=s_s,
                                causal=causal, **cand)

        def build(ctx: DistContext) -> None:
            s_per = s_s // world
            for name in ("q", "k", "v"):
                ctx.alloc(name, (s_per, cfg.width), "float16", fill=None)
            ctx.alloc("o", (s_per, cfg.width), "float32", fill=None)
            ag_attention_overlapped(ctx, cfg, "q", "k", "v", "o")

        return build

    return TuneTask(
        kernel="ag_attention",
        shape_key=f"h{heads}d{head_dim}s{seq_len}c{int(causal)}",
        space=space,
        default=AgAttentionConfig(heads=heads, head_dim=head_dim,
                                  seq_len=seq_len,
                                  causal=causal).tune_candidate(),
        make_builder=make_builder,
        bound=lambda c: ag_attention_lower_bound(
            c, heads=heads, head_dim=head_dim, seq_len=seq_len, world=world,
            spec=spec, causal=causal),
        finalize=lambda c: AgAttentionConfig(heads=heads, head_dim=head_dim,
                                             seq_len=seq_len, causal=causal,
                                             **c),
    )


class _OnlineSoftmax:
    """Per-rank numeric state for segment-streamed flash attention."""

    def __init__(self, q: np.ndarray, causal: bool, q_offset: int):
        self.q = q.astype(np.float32)  # (H, Sq, D)
        self.causal = causal
        self.q_offset = q_offset
        h, sq, d = q.shape
        self.m = np.full((h, sq, 1), -np.inf, dtype=np.float32)
        self.l = np.zeros((h, sq, 1), dtype=np.float32)
        self.acc = np.zeros((h, sq, d), dtype=np.float32)
        self.scale = 1.0 / math.sqrt(d)

    def update(self, k: np.ndarray, v: np.ndarray, kv_offset: int) -> None:
        scores = np.einsum("hqd,hkd->hqk", self.q,
                           k.astype(np.float32)) * self.scale
        if self.causal:
            qpos = np.arange(self.q.shape[1])[:, None] + self.q_offset
            kpos = np.arange(k.shape[1])[None, :] + kv_offset
            scores = np.where(kpos <= qpos, scores, -np.inf)
        m_new = np.maximum(self.m, scores.max(axis=-1, keepdims=True))
        m_safe = np.where(np.isinf(m_new), 0.0, m_new)
        p = np.exp(scores - m_safe)
        p = np.where(np.isinf(scores), 0.0, p)
        correction = np.exp(np.where(np.isinf(self.m), -np.inf,
                                     self.m - m_safe))
        correction = np.where(np.isinf(self.m), 0.0, correction)
        self.l = self.l * correction + p.sum(axis=-1, keepdims=True)
        self.acc = self.acc * correction + np.einsum(
            "hqk,hkd->hqd", p, v.astype(np.float32))
        self.m = m_new

    def output(self) -> np.ndarray:
        denom = np.where(self.l == 0, 1.0, self.l)
        return self.acc / denom


def ag_attention_overlapped(
    ctx: DistContext,
    cfg: AgAttentionConfig,
    q_name: str,
    k_shards_name: str,
    v_shards_name: str,
    out_name: str,
    gathered_k_name: str | None = None,
    gathered_v_name: str | None = None,
    comm_sms: int = 0,
    tag: str = "ag_attn",
) -> list[Process]:
    """Launch the overlapped AG-KV + flash attention on every rank.

    Inputs are 2-d sequence layouts: ``q`` (S/world x H*D) per rank, KV
    shards (S/world x H*D) per rank; output (S/world x H*D).
    """
    machine = ctx.machine
    world = machine.world_size
    cfg.validate(world)
    s_per = cfg.seq_len // world
    width = cfg.width

    gk = gathered_k_name or f"{tag}.K"
    gv = gathered_v_name or f"{tag}.V"
    ctx.alloc(gk, (cfg.seq_len, width), "float16", fill=None)
    ctx.alloc(gv, (cfg.seq_len, width), "float16", fill=None)
    banks = ctx.heap.alloc_signals(f"{tag}.seg", world)

    def comm_order(rank: int) -> list[int]:
        if cfg.causal:
            # needed segments first: own, then descending below the diagonal,
            # then the (masked-out) rest
            order = [rank] + [(rank - i) % world for i in range(1, world)]
        else:
            order = [rank] + [(rank + i) % world for i in range(1, world)]
        return order

    def comm_proc(rank: int) -> ProcessGen:
        for seg in comm_order(rank):
            for name, src in ((gk, k_shards_name), (gv, v_shards_name)):
                yield from ctx.rank_copy_data(
                    name, src_rank=seg, dst_rank=rank,
                    src_ranges=((0, s_per), (0, width)),
                    dst_ranges=((seg * s_per, (seg + 1) * s_per), (0, width)),
                    src_name=src)
            yield from ctx.rank_notify(banks, rank, seg, from_rank=rank)
        return None

    for rank in range(world):
        machine.stream(rank, "comm").enqueue(
            comm_proc(rank), name=f"{tag}.ag[{rank}]")

    def compute_proc(rank: int) -> ProcessGen:
        device = machine.device(rank)
        want = device.sms.capacity - comm_sms
        yield device.sms.acquire(want)
        try:
            t0 = machine.now
            q_t = ctx.heap.tensor(q_name, rank)
            state = None
            if machine.config.execute_numerics:
                state = _OnlineSoftmax(
                    seq_to_heads(q_t.numpy(), cfg.heads, cfg.head_dim),
                    cfg.causal, rank * s_per)
            segs = [s for s in comm_order(rank)
                    if not cfg.causal or s <= rank]
            for seg in segs:
                yield banks[rank].wait_geq(seg, 1)
                frac = 0.5 if (cfg.causal and seg == rank) else 1.0
                duration = flash_segment_time(
                    ctx, cfg.heads, s_per, s_per, cfg.head_dim, want, frac,
                    cfg.block_q, cfg.block_kv)
                kv_bytes = 2.0 * s_per * width * 2
                arrival = device.reserve_hbm(kv_bytes)
                yield Timeout(max(duration, arrival - machine.now))
                if state is not None:
                    k_seg = ctx.heap.tensor(gk, rank).read_tile(
                        ((seg * s_per, (seg + 1) * s_per), (0, width)))
                    v_seg = ctx.heap.tensor(gv, rank).read_tile(
                        ((seg * s_per, (seg + 1) * s_per), (0, width)))
                    state.update(
                        seq_to_heads(k_seg, cfg.heads, cfg.head_dim),
                        seq_to_heads(v_seg, cfg.heads, cfg.head_dim),
                        kv_offset=seg * s_per)
            if state is not None:
                ctx.heap.tensor(out_name, rank).write_tile(
                    ((0, s_per), (0, width)), heads_to_seq(state.output()))
            if machine.config.trace:
                machine.record(rank, "compute", f"{tag}.flash", t0,
                               machine.now)
        finally:
            device.sms.release(want)
        return None

    return [
        machine.stream(rank).enqueue(
            compute_proc(rank), name=f"{tag}.attn[{rank}]",
            start_delay=machine.cost.launch_overhead())
        for rank in range(world)
    ]


# ---------------------------------------------------------------------------
# Registry: the declarative family record (repro.registry)
# ---------------------------------------------------------------------------

def _analyze_plans():
    from repro.analyze.registry import build_ag_attention_plan

    return [build_ag_attention_plan]


def _bench_builders():
    from repro.bench.experiments import attention_builders

    return attention_builders


def _sweep_entries(shape, *, world: int, spec: HardwareSpec = H800,
                   preset: str = "small", causal: bool = True, **_kw):
    tasks = []
    for seq_len in shape.seq_lens:
        task = ag_attention_tune_task(shape.heads, shape.head_dim, seq_len,
                                      causal=causal, world=world, spec=spec,
                                      preset=preset)
        tasks.append((f"{shape.name}/s{seq_len}/ag_attention", task))
    return tasks


def _warm_tasks(world: int, spec: HardwareSpec):
    from repro.models.configs import ATTENTION_BENCHES

    tasks = []
    for shape in ATTENTION_BENCHES:
        tasks.extend(_sweep_entries(shape, world=world, spec=spec))
    return tasks


register_family(
    name="ag_attention",
    doc="KV AllGather + flash attention (sequence parallel)",
    config_cls=AgAttentionConfig,
    launch=ag_attention_overlapped,
    search_space=lambda: attention_search_space(4, 32, 512, 2,
                                                preset="small"),
    tune_task=lambda: ag_attention_tune_task(4, 32, 512, world=2),
    analyze_plans=_analyze_plans,
    bench_builders=_bench_builders,
    worlds=(1,),
    tile_ir=False,
    sweep_category="attention",
    sweep_entries=_sweep_entries,
    warm_tasks=_warm_tasks,
)
