"""Full tensor-parallel MoE layer with TileLink overlap (Figure 9 right).

AG + Gather + GroupGEMM  ->  SiLU  ->  GroupGEMM + Scatter + TopkReduce +
RS, sharing one :class:`repro.kernels.moe_common.MoeRouting` bundle so the
dynamic mapping is computed once per layer invocation (as the paper's
runtime does).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.program import CompileOptions
from repro.errors import ShapeError
from repro.kernels.ag_moe import AgMoeConfig, ag_moe_overlapped
from repro.kernels.moe_common import MoeRouting
from repro.kernels.moe_rs import MoeRsConfig, moe_rs_overlapped
from repro.ops.activation import silu_op
from repro.runtime.context import DistContext
from repro.sim.engine import Process


@dataclass(frozen=True)
class MoeConfig:
    """Paper Table 4 MoE shapes: S tokens, hidden H, intermediate I,
    E experts, top-k routing."""

    m: int
    h: int
    i: int
    n_experts: int
    topk: int
    block_m: int = 128
    block_n: int = 128
    block_k: int = 64
    block_mr: int = 128
    block_nr: int = 256

    def validate(self, world: int) -> None:
        if self.i % world != 0:
            raise ShapeError(f"I={self.i} not divisible by world={world}")

    def i_shard(self, world: int) -> int:
        return self.i // world


def moe_layer_tilelink(
    ctx: DistContext,
    cfg: MoeConfig,
    routing: MoeRouting,
    x_shards_name: str,
    w1_name: str,
    w2_name: str,
    out_name: str,
    options: CompileOptions | None = None,
    tag: str = "moe",
) -> list[Process]:
    """Launch the full overlapped MoE layer on every rank.

    ``w1`` binds the flattened (E*h x i/world) stack; ``w2`` the flattened
    (E*(i/world) x h) stack; ``out`` receives (m/world x h).
    """
    world = ctx.world_size
    cfg.validate(world)
    ishard = cfg.i_shard(world)

    grouped = ctx.alloc(f"{tag}.grouped", (routing.padded_rows, ishard),
                        "float16", fill=None)
    act = ctx.alloc(f"{tag}.act", (routing.padded_rows, ishard), "float16",
                    fill=None)

    p1 = AgMoeConfig(m=cfg.m, h=cfg.h, d=ishard, n_experts=cfg.n_experts,
                     topk=cfg.topk, block_m=cfg.block_m, block_n=cfg.block_n,
                     block_k=cfg.block_k)
    ag_moe_overlapped(ctx, p1, routing, x_shards_name, w1_name,
                      f"{tag}.grouped", options=options, tag=f"{tag}.p1")

    for rank in range(world):
        silu_op(ctx, rank, grouped[rank], act[rank])

    p2 = MoeRsConfig(m=cfg.m, h=cfg.h, d=ishard, block_m=cfg.block_m,
                     block_n=cfg.block_n, block_k=cfg.block_k,
                     block_mr=cfg.block_mr, block_nr=cfg.block_nr)
    return moe_rs_overlapped(ctx, p2, routing, f"{tag}.act", w2_name,
                             out_name, options=options, tag=f"{tag}.p2")
