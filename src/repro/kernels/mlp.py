"""Full tensor-parallel MLP layer with TileLink overlap (Figure 8 right).

Chains the two overlapped parts with the intermediate activation:
AG+GEMM  ->  SiLU  ->  GEMM+RS.  Per-rank stream ordering sequences the
stages; each stage's internal overlap comes from its own kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.program import CompileOptions
from repro.errors import ShapeError
from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped
from repro.kernels.gemm_rs import GemmRsConfig, gemm_rs_overlapped
from repro.ops.activation import silu_op
from repro.runtime.context import DistContext
from repro.sim.engine import Process


@dataclass(frozen=True)
class MlpConfig:
    """Paper Table 4 MLP shapes: S tokens, hidden H, intermediate I.

    ``m`` is the global token count (batch x sequence), sharded by rank;
    the first GEMM's weight shard is (h x i/world), the second's is
    (i/world x h).
    """

    m: int
    h: int
    i: int
    block_m: int = 128
    block_n: int = 128
    block_k: int = 64
    block_mr: int = 128
    block_nr: int = 256
    comm_blocks: int = 20
    ag_mode: str = "dma"
    rs_mode: str = "hybrid"

    def validate(self, world: int) -> None:
        if self.i % world != 0:
            raise ShapeError(f"I={self.i} not divisible by world={world}")

    def i_shard(self, world: int) -> int:
        return self.i // world


def mlp_layer_tilelink(
    ctx: DistContext,
    cfg: MlpConfig,
    x_shards_name: str,
    w1_name: str,
    w2_name: str,
    out_name: str,
    options: CompileOptions | None = None,
    tag: str = "mlp",
    ag_cfg: AgGemmConfig | None = None,
    rs_cfg: GemmRsConfig | None = None,
) -> list[Process]:
    """Launch the full overlapped MLP layer on every rank.

    ``x_shards`` are (m/world x h) per rank; ``w1`` (h x i/world); ``w2``
    (i/world x h); ``out`` receives (m/world x h).

    ``ag_cfg``/``rs_cfg`` optionally replace the per-half kernel configs
    derived from ``cfg`` — the two halves are tuned independently (their
    design spaces are separate), so a caller holding per-half winners
    (e.g. the warm-cache resolution behind ``method="tilelink-tuned"``)
    can inject them without collapsing both halves onto one tile set.
    Overrides must keep the layer's problem shape.
    """
    world = ctx.world_size
    cfg.validate(world)
    ishard = cfg.i_shard(world)
    if ag_cfg is not None and (ag_cfg.m, ag_cfg.n, ag_cfg.k) != \
            (cfg.m, ishard, cfg.h):
        raise ShapeError(
            f"ag_cfg shape ({ag_cfg.m}, {ag_cfg.n}, {ag_cfg.k}) does not "
            f"match the layer's ({cfg.m}, {ishard}, {cfg.h})")
    if rs_cfg is not None and (rs_cfg.m, rs_cfg.n, rs_cfg.k) != \
            (cfg.m, cfg.h, ishard):
        raise ShapeError(
            f"rs_cfg shape ({rs_cfg.m}, {rs_cfg.n}, {rs_cfg.k}) does not "
            f"match the layer's ({cfg.m}, {cfg.h}, {ishard})")

    inter = ctx.alloc(f"{tag}.inter", (cfg.m, ishard), "float16", fill=None)
    act = ctx.alloc(f"{tag}.act", (cfg.m, ishard), "float16", fill=None)

    if ag_cfg is None:
        ag_cfg = AgGemmConfig(
            m=cfg.m, n=ishard, k=cfg.h, block_m=cfg.block_m,
            block_n=cfg.block_n, block_k=cfg.block_k,
            comm_blocks=cfg.comm_blocks, mode=cfg.ag_mode,
            block_mp=cfg.block_m)
    ag_gemm_overlapped(ctx, ag_cfg, x_shards_name, w1_name,
                       f"{tag}.inter", options=options, tag=f"{tag}.p1")

    for rank in range(world):
        silu_op(ctx, rank, inter[rank], act[rank])

    if rs_cfg is None:
        rs_cfg = GemmRsConfig(
            m=cfg.m, n=cfg.h, k=ishard, block_m=cfg.block_m,
            block_n=cfg.block_n, block_k=cfg.block_k, block_mr=cfg.block_mr,
            block_nr=cfg.block_nr, comm_blocks=cfg.comm_blocks,
            mode=cfg.rs_mode)
    return gemm_rs_overlapped(ctx, rs_cfg, f"{tag}.act", w2_name, out_name,
                              options=options, tag=f"{tag}.p2")
