"""Shared MoE routing state: the runtime side of dynamic mapping (§4.1).

All MoE implementations (TileLink kernels and the cuBLAS/CUTLASS/vLLM
baselines) consume the same :class:`MoeRouting` bundle so they compute the
same problem: top-k ids, expert-grouped padded row layout, dynamic lookup
tables, per-tile segment contribution counts and the scatter metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.mapping.dynamic import TableTileMapping, build_moe_consumer_mapping
from repro.ops.topk import topk_route


@dataclass
class MoeRouting:
    """Routing outcome for one MoE layer invocation on one TP group."""

    n_tokens: int            # gathered tokens M
    tokens_per_rank: int
    world_size: int
    n_experts: int
    topk: int
    block_m: int
    topk_ids: np.ndarray     # (M, topk)
    topk_weights: np.ndarray  # (M, topk) fp32
    mapping: TableTileMapping  # consumer-side dynamic mapping (AG gating)
    sorted_token_ids: np.ndarray  # (slots,) compact grouped -> token id
    sorted_expert_of_row: np.ndarray  # (slots,) compact grouped -> expert
    sorted_weights: np.ndarray  # (slots,) compact grouped -> router weight
    expert_tile_offsets: np.ndarray  # (E+1,)
    n_tiles: int             # padded grouped tiles
    padded_rows: int         # n_tiles * block_m
    padded_token_ids: np.ndarray  # (padded_rows,) token id, dump_row for pads
    padded_expert_of_row: np.ndarray  # (padded_rows,)
    padded_weights: np.ndarray  # (padded_rows,) fp32, 0 for pads
    valid_mask: np.ndarray   # (padded_rows,) bool
    expert_of_tile: np.ndarray  # (n_tiles,)
    #: rows each grouped tile contributes to each token segment (n_tiles, R)
    segment_counts: np.ndarray
    #: total expected contributions per segment = tokens_per_rank * topk
    segment_thresholds: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def dump_row(self) -> int:
        """Scratch row index for padded scatter targets (== n_tokens)."""
        return self.n_tokens


def build_moe_routing(
    logits: np.ndarray,
    tokens_per_rank: int,
    world_size: int,
    topk: int,
    block_m: int = 128,
    channels_per_rank: int = 1,
) -> MoeRouting:
    """Route tokens and precompute every layout the MoE kernels need."""
    n_tokens, n_experts = logits.shape
    if n_tokens != tokens_per_rank * world_size:
        raise ShapeError(
            f"router logits rows {n_tokens} != tokens_per_rank * world "
            f"({tokens_per_rank * world_size})")
    topk_ids, topk_weights = topk_route(logits, topk)
    mapping, sorted_token_ids, expert_tile_offsets = \
        build_moe_consumer_mapping(topk_ids, n_experts, tokens_per_rank,
                                   world_size, block_m, channels_per_rank)
    n_tiles = int(expert_tile_offsets[-1])
    padded_rows = n_tiles * block_m

    counts = np.bincount(topk_ids.reshape(-1), minlength=n_experts)
    flat_experts = topk_ids.reshape(-1)
    # same (expert, source-rank) ordering as build_moe_consumer_mapping
    token_of_slot = np.arange(n_tokens).repeat(topk)
    src_of_slot = token_of_slot // max(1, tokens_per_rank)
    order = np.argsort(flat_experts * world_size + src_of_slot, kind="stable")
    slot_weights = topk_weights.reshape(-1)[order]

    padded_token_ids = np.full(padded_rows, n_tokens, dtype=np.int64)
    padded_expert = np.zeros(padded_rows, dtype=np.int64)
    padded_weights = np.zeros(padded_rows, dtype=np.float32)
    valid = np.zeros(padded_rows, dtype=bool)
    group_starts = np.zeros(n_experts + 1, dtype=np.int64)
    np.cumsum(counts, out=group_starts[1:])
    for e in range(n_experts):
        g0, g1 = int(group_starts[e]), int(group_starts[e + 1])
        p0 = int(expert_tile_offsets[e]) * block_m
        n = g1 - g0
        padded_token_ids[p0:p0 + n] = sorted_token_ids[g0:g1]
        padded_weights[p0:p0 + n] = slot_weights[g0:g1]
        valid[p0:p0 + n] = True
        t0, t1 = int(expert_tile_offsets[e]), int(expert_tile_offsets[e + 1])
        padded_expert[t0 * block_m: t1 * block_m] = e

    expert_of_tile = np.zeros(max(n_tiles, 1), dtype=np.int64)
    for e in range(n_experts):
        t0, t1 = int(expert_tile_offsets[e]), int(expert_tile_offsets[e + 1])
        expert_of_tile[t0:t1] = e

    # per-tile contributions to each token segment (for part-2 notifies)
    segment_counts = np.zeros((max(n_tiles, 1), world_size), dtype=np.int64)
    seg_of_row = np.where(valid, padded_token_ids // max(1, tokens_per_rank),
                          -1)
    for t in range(n_tiles):
        rows = seg_of_row[t * block_m: (t + 1) * block_m]
        rows = rows[rows >= 0]
        if len(rows):
            segment_counts[t] = np.bincount(rows, minlength=world_size)

    routing = MoeRouting(
        n_tokens=n_tokens,
        tokens_per_rank=tokens_per_rank,
        world_size=world_size,
        n_experts=n_experts,
        topk=topk,
        block_m=block_m,
        topk_ids=topk_ids,
        topk_weights=topk_weights,
        mapping=mapping,
        sorted_token_ids=sorted_token_ids,
        sorted_expert_of_row=flat_experts[order],
        sorted_weights=slot_weights,
        expert_tile_offsets=expert_tile_offsets,
        n_tiles=n_tiles,
        padded_rows=padded_rows,
        padded_token_ids=padded_token_ids,
        padded_expert_of_row=padded_expert,
        padded_weights=padded_weights,
        valid_mask=valid,
        expert_of_tile=expert_of_tile,
        segment_counts=segment_counts,
    )
    routing.segment_thresholds = np.full(
        world_size, tokens_per_rank * topk, dtype=np.int64)
    return routing


def random_router_logits(n_tokens: int, n_experts: int,
                         seed: int = 0) -> np.ndarray:
    """Synthetic router logits (the paper's workloads route real models'
    activations; a seeded Gaussian preserves the balanced-load regime)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n_tokens, n_experts)).astype(np.float32)


def routing_memo(n_experts: int, topk: int, world_size: int,
                 router_seed: int = 17):
    """Memoised ``(n_tokens, block_m) -> MoeRouting`` builder.

    The tuner needs routing rebuilt per candidate ``block_m`` (the grouped
    layout pads every expert group to the row tile) and per scaled token
    count (halving rungs), always from the *same* seeded logits so shapes
    stay comparable; this factory shares that memo between the MoE tune
    tasks.
    """
    routings: dict[tuple[int, int], MoeRouting] = {}

    def routing_for(n_tokens: int, block_m: int) -> MoeRouting:
        key = (n_tokens, block_m)
        if key not in routings:
            logits = random_router_logits(n_tokens, n_experts,
                                          seed=router_seed)
            routings[key] = build_moe_routing(
                logits, n_tokens // world_size, world_size, topk,
                block_m=block_m)
        return routings[key]

    return routing_for
