"""Chunk-centric GEMM + ReduceScatter (Syncopate-style variable chunks).

A third resource mapping for the GEMM+RS pattern, alongside the ring and
hybrid variants of :mod:`repro.kernels.gemm_rs`: the producer GEMM emits
its per-segment rows as **variable-size chunks** and the consumer reduces
each chunk as soon as it lands, instead of waiting for whole segments.

The chunk schedule is front-loaded ("half then even"): the first chunk
covers ~half of a segment's row tiles, the remainder is split evenly
across the other chunks.  A big head chunk amortizes per-chunk DMA and
signal overhead while it is the *only* thing the consumer can start on;
the smaller tail chunks keep the reduce busy at a finer grain exactly
when partials from several peers race to arrive.  Chunk geometry is a
tuned axis (``n_chunks``) of the search space.

Synchronization is fully tile-centric and statically analyzable:

* the producer notifies per output tile (``producer_tile_notify``), and a
  :class:`~repro.mapping.dynamic.TableTileMapping` routes each row tile to
  its ``(segment, chunk)`` channel with the chunk's full tile count baked
  into ``channel_threshold`` — so ``consumer_tile_wait`` gates a reduce
  tile on exactly its own chunk;
* the host DMA proc scatters chunk-by-chunk (smallest visible transfer =
  one chunk) and posts one peer-barrier cell per ``(source rank, chunk)``,
  which the consumer awaits with ``peer_tile_wait``;
* the in-kernel chunk id is pure constexpr arithmetic over ``HALF`` and
  ``PER`` — no lookup-table loads, so the static analyzer sees concrete
  wait arguments under ``--strict``.

This family is also the registry's proof artifact: it is registered *only*
from this module via :func:`repro.registry.register_family`, yet shows up
in ``repro.analyze --all``, the tuner sweeps, the bench tables and the
serving ``method`` axis ("tilelink-chunk") with zero edits elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.compiler.program import CompileOptions
from repro.errors import RuntimeLaunchError, ShapeError
from repro.kernels.gemm_rs import gemm_rs_overlapped  # noqa: F401  (bench)
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.mapping.dynamic import TableTileMapping
from repro.mapping.layout import TileGrid, ceil_div
from repro.config import H800, HardwareSpec
from repro.registry import ServeMethod, register_family
from repro.runtime.context import DistContext
from repro.runtime.launcher import launch_spmd
from repro.sim.engine import Process, ProcessGen
from repro.tuner.costprune import gemm_rs_lower_bound
from repro.tuner.space import Axis, SearchSpace, divisors_of, register_space

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuner.cache import TuneCache
    from repro.tuner.search import TuneResult


# ---------------------------------------------------------------------------
# Chunk geometry: the "half then even" schedule
# ---------------------------------------------------------------------------

def chunk_layout(seg_tiles: int, n_chunks: int) -> tuple[int, int, int]:
    """Resolve the chunk schedule of one segment: ``(nc, half, per)``.

    Chunk 0 holds the first ``half`` row tiles; every later chunk holds
    ``per`` tiles (the last may be short).  ``nc`` is the number of
    chunks actually realized — it can be below the requested ``n_chunks``
    when the segment is too small to split further.
    """
    if n_chunks <= 1 or seg_tiles < 2:
        return 1, seg_tiles, 1
    half = max(1, seg_tiles // 2)
    rest = seg_tiles - half
    per = max(1, ceil_div(rest, n_chunks - 1))
    return 1 + ceil_div(rest, per), half, per


def chunk_spans(seg_tiles: int, n_chunks: int) -> list[tuple[int, int]]:
    """Half-open local row-tile ranges of each chunk of one segment."""
    _, half, per = chunk_layout(seg_tiles, n_chunks)
    spans = [(0, half)]
    lo = half
    while lo < seg_tiles:
        hi = min(lo + per, seg_tiles)
        spans.append((lo, hi))
        lo = hi
    return spans


def build_chunk_mapping(m: int, block_m: int, world: int, n_chunks: int,
                        tiles_n: int) -> tuple[TableTileMapping,
                                               list[tuple[int, int]]]:
    """Tile-centric mapping routing row tiles to (segment, chunk) channels.

    Channel ``seg * nc + ci`` covers chunk ``ci`` of segment ``seg``; its
    threshold is the chunk's full producer-notify count (tiles in the
    chunk times the producer's column tiles), so both the consumer kernel
    and the host DMA proc wake exactly when a chunk is complete.
    """
    m_per = m // world
    seg_tiles = m_per // block_m
    spans = chunk_spans(seg_tiles, n_chunks)
    nc = len(spans)
    mapping = TableTileMapping(world * seg_tiles, world * nc, world)
    for seg in range(world):
        for ci, (lo, hi) in enumerate(spans):
            channel = seg * nc + ci
            mapping.channel_threshold[channel] = (hi - lo) * tiles_n
            for t in range(lo, hi):
                tile = seg * seg_tiles + t
                mapping.fill(tile, tile * block_m, (tile + 1) * block_m,
                             seg, channel)
    return mapping, spans


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------

@kernel
def _chunk_gemm_producer(tokens, weights, gemm_out, channel: tl.BlockChannel,
                         M: tl.constexpr, N: tl.constexpr, K: tl.constexpr,
                         BM: tl.constexpr, BN: tl.constexpr,
                         BK: tl.constexpr):
    """Producer GEMM, ring-ordered, notifying per output tile.

    The chunk structure lives entirely in the channel mapping: each
    ``producer_tile_notify(tid_m)`` lands in the (segment, chunk) channel
    the :func:`build_chunk_mapping` table routes that row tile to.
    """
    bid = tl.block_id()
    nb = tl.num_blocks()
    world = channel.num_ranks
    tiles_m = tl.cdiv(M, BM)
    tiles_n = tl.cdiv(N, BN)
    total = tiles_m * tiles_n
    seg_tiles = (tiles_m // world) * tiles_n
    start = ((channel.rank + 1) % world) * seg_tiles
    for i in range(bid, total, nb):
        t = (start + i) % total
        tid_m = t // tiles_n
        tid_n = t % tiles_n
        acc = tl.zeros((BM, BN), "float32")
        for k in range(0, K, BK):
            a = tl.load(tokens, (tid_m * BM, tid_m * BM + BM), (k, k + BK))
            b = tl.load(weights, (k, k + BK), (tid_n * BN, tid_n * BN + BN))
            acc += tl.dot(a, b)
        c = tl.cast(acc, "float16")
        tl.store(gemm_out, (tid_m * BM, tid_m * BM + BM),
                 (tid_n * BN, tid_n * BN + BN), c)
        tl.producer_tile_notify(tid_m, "p2p")


@kernel
def _chunk_rs_reduce(landing, gemm_out, out, channel: tl.BlockChannel,
                     M: tl.constexpr, N: tl.constexpr, BM: tl.constexpr,
                     BNR: tl.constexpr, NC: tl.constexpr,
                     HALF: tl.constexpr, PER: tl.constexpr,
                     WORLD: tl.constexpr):
    """Chunk-grain reduce: sum world partials of own segment, per chunk.

    A reduce tile derives its chunk id arithmetically from the schedule
    constants (chunk 0 = first ``HALF`` row tiles, then ``PER``-tile
    chunks) and waits per-(source, chunk): the first arrived chunk can be
    reduced while later chunks are still in flight or still being
    produced.
    """
    bid = tl.block_id()
    nb = tl.num_blocks()
    m_per_rank = M // WORLD
    rtiles_m = tl.cdiv(m_per_rank, BM)
    rtiles_n = tl.cdiv(N, BNR)
    rtotal = rtiles_m * rtiles_n
    for t in range(bid, rtotal, nb):
        tid_m = t // rtiles_n
        tid_n = t % rtiles_n
        tid_m_global = tid_m + channel.rank * rtiles_m
        if tid_m < HALF:
            c = 0
        else:
            c = 1 + (tid_m - HALF) // PER
        # local partial: our own segment's chunk must be fully produced
        tl.consumer_tile_wait(tid_m_global)
        acc = tl.load(gemm_out, (tid_m_global * BM, tid_m_global * BM + BM),
                      (tid_n * BNR, tid_n * BNR + BNR))
        for q in range(1, WORLD):
            src = (channel.rank + q) % WORLD
            tl.peer_tile_wait(src * NC + c, channel.rank)
            part = tl.load(landing,
                           (src * m_per_rank + tid_m * BM,
                            src * m_per_rank + tid_m * BM + BM),
                           (tid_n * BNR, tid_n * BNR + BNR))
            acc += part
        tl.store(out, (tid_m * BM, tid_m * BM + BM),
                 (tid_n * BNR, tid_n * BNR + BNR), acc)


# analyzer annotations (repro.analyze)
_chunk_gemm_producer.meta.update(role="producer", comm_axis="m",
                                 outputs=("gemm_out",))
_chunk_rs_reduce.meta.update(role="consumer", comm_axis="m",
                             outputs=("out",))


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChunkGemmRsConfig:
    """Shapes/tiling for chunked GEMM+RS.

    The reduce row tile equals ``block_m`` by construction: chunk
    boundaries are expressed in producer row tiles, and keeping the
    reduce rows on the same grid makes ``consumer_tile_wait`` line up
    with the producer's notify ids.
    """

    m: int
    n: int
    k: int
    block_m: int = 128
    block_n: int = 128
    block_k: int = 64
    block_nr: int = 256   # reduce column tile (decoupled from block_n)
    n_chunks: int = 2

    def validate(self, world: int) -> None:
        if self.m % world != 0:
            raise ShapeError(f"M={self.m} not divisible by world={world}")
        if (self.m // world) % self.block_m != 0:
            raise ShapeError(
                f"per-rank rows {self.m // world} must be a multiple of "
                f"block_m={self.block_m} (chunks are whole row tiles)")
        if self.n_chunks < 1:
            raise RuntimeLaunchError(
                f"n_chunks must be >= 1, got {self.n_chunks}")

    def tune_candidate(self) -> dict:
        """This config as a tuner candidate dict (the searched axes)."""
        return dict(block_m=self.block_m, block_n=self.block_n,
                    block_k=self.block_k, block_nr=self.block_nr,
                    n_chunks=self.n_chunks)

    @classmethod
    def autotune(cls, m: int, n: int, k: int, *, world: int = 8,
                 spec: HardwareSpec = H800, strategy: str = "exhaustive",
                 cache: "TuneCache | None" = None, preset: str = "small",
                 space: SearchSpace | None = None,
                 max_trials: int | None = None, seed: int = 0,
                 slack: float = 0.0, full_result: bool = False,
                 ) -> "ChunkGemmRsConfig | TuneResult":
        """Search tile sizes and chunk counts for this shape."""
        from repro.tuner.search import tune

        task = chunk_gemm_rs_tune_task(m, n, k, world=world, spec=spec,
                                       space=space, preset=preset)
        result = tune(task, world=world, spec=spec, strategy=strategy,
                      cache=cache, max_trials=max_trials, seed=seed,
                      slack=slack)
        return result if full_result else result.best_config


def _default_chunk_config(m: int, n: int, k: int,
                          world: int) -> ChunkGemmRsConfig:
    """Untuned default with ``block_m`` aligned to the per-rank rows."""
    per = max(1, m // world)
    block_m = 1
    for cand in (256, 128, 64, 32, 16, 8, 4, 2, 1):
        if cand <= per and per % cand == 0:
            block_m = cand
            break
    return ChunkGemmRsConfig(m=m, n=n, k=k, block_m=block_m)


# ---------------------------------------------------------------------------
# Tuner integration
# ---------------------------------------------------------------------------

def chunk_gemm_rs_search_space(m: int, n: int, k: int, world: int,
                               preset: str = "default") -> SearchSpace:
    """Design space of chunked GEMM+RS: tiles plus the chunk schedule."""
    per_rank = m // world
    if preset == "small":
        axes = (
            Axis("block_m", divisors_of(per_rank, (128, 256))),
            Axis("block_n", (128,)),
            Axis("block_k", (64,)),
            Axis("block_nr", (256,)),
            Axis("n_chunks", (1, 2, 4)),
        )
    elif preset == "default":
        axes = (
            Axis("block_m", divisors_of(per_rank, (64, 128, 256))),
            Axis("block_n", (64, 128, 256)),
            Axis("block_k", (32, 64, 128)),
            Axis("block_nr", (128, 256, 512)),
            Axis("n_chunks", (1, 2, 4, 8)),
        )
    else:
        raise RuntimeLaunchError(
            f"unknown chunk GEMM+RS space preset {preset!r}")
    return SearchSpace(axes=axes)


register_space("chunk_gemm_rs", chunk_gemm_rs_search_space)


def chunk_gemm_rs_tune_task(m: int, n: int, k: int, *, world: int = 8,
                            spec: HardwareSpec = H800,
                            space: SearchSpace | None = None,
                            preset: str = "small"):
    """Build the :class:`~repro.tuner.TuneTask` tuning chunked GEMM+RS."""
    from repro.tuner.search import TuneTask

    space = space or chunk_gemm_rs_search_space(m, n, k, world, preset=preset)

    def make_builder(cand: dict, scale: float = 1.0):
        align = world * int(cand["block_m"])
        m_s = m if scale >= 1.0 else max(align, int(m * scale) // align * align)
        cfg = ChunkGemmRsConfig(m=m_s, n=n, k=k, **cand)

        def build(ctx: DistContext) -> None:
            ctx.alloc("x", (m_s, k), "float16", fill=None)
            ctx.alloc("w", (k, n), "float16", fill=None)
            ctx.alloc("y", (m_s // world, n), "float32", fill=None)
            chunk_gemm_rs_overlapped(ctx, cfg, "x", "w", "y")

        return build

    # the GEMM+RS floor is chunk-agnostic: same producer flops, same
    # scattered bytes — chunking only reshapes *when* they move
    return TuneTask(
        kernel="chunk_gemm_rs",
        shape_key=f"m{m}n{n}k{k}",
        space=space,
        default=_default_chunk_config(m, n, k, world).tune_candidate(),
        make_builder=make_builder,
        bound=lambda c: gemm_rs_lower_bound(c, m=m, n=n, k=k, world=world,
                                            spec=spec),
        finalize=lambda c: ChunkGemmRsConfig(m=m, n=n, k=k, **c),
    )


# ---------------------------------------------------------------------------
# Launcher
# ---------------------------------------------------------------------------

def chunk_gemm_rs_overlapped(
    ctx: DistContext,
    cfg: ChunkGemmRsConfig,
    tokens_name: str,
    weight_name: str,
    out_name: str,
    grid: int | None = None,
    options: CompileOptions | None = None,
    tag: str = "chunk_rs",
) -> list[Process]:
    """Launch chunked GEMM+RS; ``out`` receives (m/world x n) sums."""
    machine = ctx.machine
    world = machine.world_size
    cfg.validate(world)
    grid = grid or machine.config.spec.n_sms
    m_per = cfg.m // world

    ctx.alloc(f"{tag}.gemm_out", (cfg.m, cfg.n), "float16", fill=None)
    ctx.alloc(f"{tag}.landing", (cfg.m, cfg.n), "float16", fill=None)

    gemm_grid = TileGrid(cfg.m, cfg.n, cfg.block_m, cfg.block_n)
    reduce_grid = TileGrid(cfg.m, cfg.n, cfg.block_m, cfg.block_nr)
    mapping, spans = build_chunk_mapping(cfg.m, cfg.block_m, world,
                                         cfg.n_chunks, gemm_grid.tiles_n)
    nc = len(spans)
    half = spans[0][1]
    per = (spans[1][1] - spans[1][0]) if nc > 1 else 1

    channels = ctx.make_block_channels(
        tag, mapping=mapping, comm_grid=reduce_grid,
        consumer_grid=reduce_grid, peer_cells=world * nc)

    launch_spmd(machine, _chunk_gemm_producer, grid, dict(
        tokens=ctx.heap.tensors(tokens_name),
        weights=ctx.heap.tensors(weight_name),
        gemm_out=ctx.heap.tensors(f"{tag}.gemm_out"), channel=channels,
        M=cfg.m, N=cfg.n, K=cfg.k, BM=cfg.block_m, BN=cfg.block_n,
        BK=cfg.block_k,
    ), options=options, label=f"{tag}.gemm")

    # host DMA orchestrator per rank: as each chunk of a remote segment
    # completes locally, push that chunk alone to its owner and post the
    # (source, chunk) arrival cell
    def comm_proc(rank: int) -> ProcessGen:
        ch = channels[rank]
        for off in range(1, world):
            q = (rank + off) % world
            for ci, (lo, hi) in enumerate(spans):
                yield from ctx.rank_wait(ch.barriers, q * nc + ci,
                                         (hi - lo) * gemm_grid.tiles_n)
                yield from ctx.rank_copy_data(
                    f"{tag}.landing", src_rank=rank, dst_rank=q,
                    src_ranges=((q * m_per + lo * cfg.block_m,
                                 q * m_per + hi * cfg.block_m), (0, cfg.n)),
                    dst_ranges=((rank * m_per + lo * cfg.block_m,
                                 rank * m_per + hi * cfg.block_m),
                                (0, cfg.n)),
                    src_name=f"{tag}.gemm_out")
                ch.all_peer_barriers[q].post_add(rank * nc + ci, 1,
                                                 from_rank=rank)
        return None

    for rank in range(world):
        machine.stream(rank, "comm").enqueue(
            comm_proc(rank), name=f"{tag}.scatter[{rank}]")

    return launch_spmd(machine, _chunk_rs_reduce, grid, dict(
        landing=ctx.heap.tensors(f"{tag}.landing"),
        gemm_out=ctx.heap.tensors(f"{tag}.gemm_out"),
        out=ctx.heap.tensors(out_name), channel=channels,
        M=cfg.m, N=cfg.n, BM=cfg.block_m, BNR=cfg.block_nr,
        NC=nc, HALF=half, PER=per, WORLD=world,
    ), options=options, label=f"{tag}.reduce")


# ---------------------------------------------------------------------------
# Analyzer plans (mirroring the launcher at small instantiations)
# ---------------------------------------------------------------------------

_PLAN_GRID = 4


def build_chunk_gemm_rs_plan(world: int = 2, n_chunks: int = 2, *,
                             block_m: int = 16,
                             ir_overrides: dict | None = None,
                             name: str | None = None):
    """Mirror of :func:`chunk_gemm_rs_overlapped` for the analyzer."""
    from repro.analyze.model import PlanBuilder

    m, n, k = world * 32, 32, 32
    bn = bk = 16
    bnr = 32
    m_per = m // world
    seg_tiles = m_per // block_m
    spans = chunk_spans(seg_tiles, n_chunks)
    nc = len(spans)
    half = spans[0][1]
    per = (spans[1][1] - spans[1][0]) if nc > 1 else 1

    b = PlanBuilder(name or f"chunk_gemm_rs/w{world}", "chunk_gemm_rs",
                    world)
    b.tensor("tokens", (m, k))
    b.tensor("weights", (k, n))
    b.tensor("gemm_out", (m, n))
    b.tensor("landing", (m, n))
    b.tensor("out", (m_per, n))

    gemm_grid = TileGrid(m, n, block_m, bn)
    reduce_grid = TileGrid(m, n, block_m, bnr)
    mapping, _ = build_chunk_mapping(m, block_m, world, n_chunks,
                                     gemm_grid.tiles_n)

    channels = b.make_block_channels(
        "chunk_rs", mapping=mapping, comm_grid=reduce_grid,
        consumer_grid=reduce_grid, peer_cells=world * nc)

    b.launch(_chunk_gemm_producer, _PLAN_GRID,
             dict(M=m, N=n, K=k, BM=block_m, BN=bn, BK=bk),
             dict(tokens="tokens", weights="weights", gemm_out="gemm_out"),
             channels,
             ir=(ir_overrides or {}).get(_chunk_gemm_producer.name))

    for rank in range(world):
        t = b.host(rank, "chunk_rs.scatter")
        ch = channels[rank]
        for off in range(1, world):
            q = (rank + off) % world
            for ci, (lo, hi) in enumerate(spans):
                t.wait(ch.barriers, q * nc + ci,
                       (hi - lo) * gemm_grid.tiles_n)
                t.read("gemm_out", rank, (q * m_per + lo * block_m,
                                          q * m_per + hi * block_m), (0, n))
                t.write("landing", q, (rank * m_per + lo * block_m,
                                       rank * m_per + hi * block_m), (0, n))
                t.notify(ch.all_peer_barriers[q], rank * nc + ci, 1)

    b.launch(_chunk_rs_reduce, _PLAN_GRID,
             dict(M=m, N=n, BM=block_m, BNR=bnr, NC=nc, HALF=half,
                  PER=per, WORLD=world),
             dict(landing="landing", gemm_out="gemm_out", out="out"),
             channels, ir=(ir_overrides or {}).get(_chunk_rs_reduce.name))
    return b.build()


# ---------------------------------------------------------------------------
# Bench builders (Figure-8-style method grid for the RS half)
# ---------------------------------------------------------------------------

def chunk_gemm_rs_builders(shape, world: int = 8, *,
                           tuned: bool | None = None,
                           tune_cache: "TuneCache | None" = None,
                           tune_preset: str = "small",
                           tune_max_trials: int | None = None):
    """Method grid comparing the chunked kernel against its siblings."""
    from repro.baselines import nonoverlap
    from repro.kernels.gemm_rs import GemmRsConfig

    m, n = shape.s, shape.h
    k = shape.i // world

    def _alloc(ctx: DistContext) -> None:
        ctx.alloc("x", (m, k), "float16", fill=None)
        ctx.alloc("w", (k, n), "float16", fill=None)
        ctx.alloc("y", (m // ctx.world_size, n), "float32", fill=None)

    def non(ctx: DistContext) -> None:
        _alloc(ctx)
        nonoverlap.gemm_rs_nonoverlap(ctx, m, n, k, "x", "w", "y")

    def tl_hybrid(ctx: DistContext) -> None:
        _alloc(ctx)
        cfg = GemmRsConfig(m=m, n=n, k=k, mode="hybrid")
        gemm_rs_overlapped(ctx, cfg, "x", "w", "y")

    def tl_chunk(ctx: DistContext) -> None:
        _alloc(ctx)
        cfg = _default_chunk_config(m, n, k, ctx.world_size)
        chunk_gemm_rs_overlapped(ctx, cfg, "x", "w", "y")

    out = {"cuBLAS+NCCL": non, "TileLink": tl_hybrid,
           "TileLink-chunk": tl_chunk}
    if tuned:
        def tl_chunk_tuned(ctx: DistContext) -> None:
            from repro.tuner.cache import TuneCache

            _alloc(ctx)
            cfg = ChunkGemmRsConfig.autotune(
                m, n, k, world=ctx.world_size,
                spec=ctx.machine.config.spec,
                cache=(tune_cache if tune_cache is not None else TuneCache()),
                preset=tune_preset, max_trials=tune_max_trials)
            chunk_gemm_rs_overlapped(ctx, cfg, "x", "w", "y")

        out["TileLink-chunk-tuned"] = tl_chunk_tuned
    return out


# ---------------------------------------------------------------------------
# Serving method: swap the RS op of the transformer layer for this kernel
# ---------------------------------------------------------------------------

def _serve_gemm_rs(ctx: DistContext, m: int, n: int, k: int, x_name: str,
                   w_name: str, out_name: str, *, tag: str,
                   warm=None) -> None:
    cfg = _default_chunk_config(m, n, k, ctx.world_size)
    chunk_gemm_rs_overlapped(ctx, cfg, x_name, w_name, out_name, tag=tag)


# ---------------------------------------------------------------------------
# Registry: the declarative family record (repro.registry)
# ---------------------------------------------------------------------------

def _analyze_plans():
    return [
        lambda: build_chunk_gemm_rs_plan(world=2, n_chunks=2),
        lambda: build_chunk_gemm_rs_plan(world=4, n_chunks=2),
        # variable-size chunks: a 2-tile head then two 1-tile tails
        lambda: build_chunk_gemm_rs_plan(world=2, n_chunks=3, block_m=8,
                                         name="chunk_gemm_rs/w2/nc3"),
    ]


def _sweep_entries(shape, *, world: int, spec: HardwareSpec = H800,
                   preset: str = "small", **_kw):
    task = chunk_gemm_rs_tune_task(shape.s, shape.h, shape.i // world,
                                   world=world, spec=spec, preset=preset)
    return [(f"{shape.name}/chunk_gemm_rs", task)]


def _shape_autotune(shape, world: int, **tune_kw):
    return ChunkGemmRsConfig.autotune(shape.s, shape.h, shape.i // world,
                                      world=world, full_result=True,
                                      **tune_kw)


register_family(
    name="chunk_gemm_rs",
    doc="chunk-centric GEMM + ReduceScatter (variable-size chunk overlap)",
    config_cls=ChunkGemmRsConfig,
    kernels=(_chunk_gemm_producer, _chunk_rs_reduce),
    launch=chunk_gemm_rs_overlapped,
    search_space=lambda: chunk_gemm_rs_search_space(512, 128, 128, 2,
                                                    preset="small"),
    tune_task=lambda: chunk_gemm_rs_tune_task(512, 128, 128, world=2),
    analyze_plans=_analyze_plans,
    bench_builders=lambda: chunk_gemm_rs_builders,
    worlds=(2, 4),
    modes=("chunk",),
    sweep_category="mlp",
    sweep_entries=_sweep_entries,
    shape_autotune=_shape_autotune,
    serve_method=ServeMethod(name="tilelink-chunk", base="tilelink",
                             op_overrides={"gemm_rs": _serve_gemm_rs}),
)
