"""Shim for legacy/offline editable installs (``--no-use-pep517``).

All metadata lives in pyproject.toml; modern ``pip install -e .`` uses it
directly.  This file only enables the setuptools legacy path in
environments without the ``wheel`` package or network access.
"""

from setuptools import setup

setup()
