"""Tests for the backend interpreter: numerics of every tile op + launch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.program import CompileOptions
from repro.errors import LoweringError, RuntimeLaunchError
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.runtime.launcher import launch_kernel, launch_spmd
from tests.conftest import make_ctx


def run1(kdef, grid, args, numerics=True, world=1, options=None):
    ctx = make_ctx(world=world, numerics=numerics)
    for name, arr in args.items():
        if isinstance(arr, np.ndarray):
            ctx.bind(name, [arr.copy() for _ in range(world)])
    bound = {k: (ctx.heap.tensors(k) if isinstance(v, np.ndarray) else v)
             for k, v in args.items()}
    launch_spmd(ctx.machine, kdef, grid, bound, options=options)
    t = ctx.run()
    return ctx, t


@kernel
def _elementwise(a, out, N: tl.constexpr):
    x = tl.load(a, (0, N), (0, N))
    y = tl.exp(x) + tl.silu(x) * 0.5 - tl.relu(x) / 2.0
    z = tl.cast(y, "float32")
    tl.store(out, (0, N), (0, N), z)


def test_elementwise_ops_match_numpy(rng):
    N = 8
    a = rng.standard_normal((N, N)).astype(np.float32)
    ctx, _ = run1(_elementwise, 1,
                  {"a": a, "out": np.zeros((N, N), np.float32), "N": N})
    got = ctx.heap.tensor("out", 0).numpy()
    x = a.astype(np.float32)
    ref = np.exp(x) + (x / (1 + np.exp(-x))) * 0.5 - np.maximum(x, 0) / 2
    assert np.allclose(got, ref, rtol=1e-3, atol=1e-3)


@kernel
def _rowops(a, mx, sm, N: tl.constexpr):
    x = tl.load(a, (0, N), (0, N))
    m = tl.row_max(x)
    s = tl.row_sum(x)
    tl.store_vec(mx, (0, N), m)
    tl.store_vec(sm, (0, N), s)


def test_row_reductions(rng):
    N = 6
    a = rng.standard_normal((N, N)).astype(np.float32)
    ctx, _ = run1(_rowops, 1, {"a": a, "mx": np.zeros(N, np.float32),
                               "sm": np.zeros(N, np.float32), "N": N})
    assert np.allclose(ctx.heap.tensor("mx", 0).numpy(), a.max(axis=1),
                       atol=1e-5)
    assert np.allclose(ctx.heap.tensor("sm", 0).numpy(), a.sum(axis=1),
                       atol=1e-4)


@kernel
def _broadcasting(a, v, out, N: tl.constexpr):
    x = tl.load(a, (0, N), (0, N))
    w = tl.load_vec(v, (0, N))
    col = tl.expand_dims(w)
    y = x * col
    tl.store(out, (0, N), (0, N), y)


def test_rowvector_broadcast(rng):
    N = 5
    a = rng.standard_normal((N, N)).astype(np.float32)
    v = rng.standard_normal(N).astype(np.float32)
    ctx, _ = run1(_broadcasting, 1, {"a": a, "v": v,
                                     "out": np.zeros((N, N), np.float32),
                                     "N": N})
    assert np.allclose(ctx.heap.tensor("out", 0).numpy(), a * v[:, None],
                       rtol=1e-4, atol=1e-5)


@kernel
def _edge_tiles(a, out, M: tl.constexpr, BM: tl.constexpr):
    nb = tl.num_blocks()
    bid = tl.block_id()
    tiles = tl.cdiv(M, BM)
    for t in range(bid, tiles, nb):
        x = tl.load(a, (t * BM, t * BM + BM), (0, BM))
        y = x + 1.0
        tl.store(out, (t * BM, t * BM + BM), (0, BM), y)


def test_ragged_edge_tiles(rng):
    M, BM = 10, 4   # last tile is ragged (2 rows)
    a = rng.standard_normal((M, BM)).astype(np.float32)
    ctx, _ = run1(_edge_tiles, 2, {"a": a, "out": np.zeros((M, BM), np.float32),
                                   "M": M, "BM": BM})
    assert np.allclose(ctx.heap.tensor("out", 0).numpy(), a + 1, atol=1e-5)


@kernel
def _atomics(out, N: tl.constexpr, REPS: tl.constexpr):
    ones = tl.full((N, N), 1.0, "float32")
    for _ in range(REPS):
        tl.atomic_add(out, (0, N), (0, N), ones)


def test_atomic_add_accumulates():
    ctx, _ = run1(_atomics, 3, {"out": np.zeros((4, 4), np.float32),
                                "N": 4, "REPS": 5})
    # 3 blocks x 5 reps each
    assert (ctx.heap.tensor("out", 0).numpy() == 15.0).all()


@kernel
def _gather_scatter(src, ids, out, N: tl.constexpr, W: tl.constexpr):
    idx = tl.load_vec(ids, (0, N))
    rows = tl.gather_rows(src, idx, (0, W))
    doubled = rows * 2.0
    tl.scatter_add_rows(out, idx, (0, W), doubled)


def test_gather_and_scatter_rows(rng):
    N, W = 6, 4
    src = rng.standard_normal((10, W)).astype(np.float32)
    ids = np.array([1, 3, 3, 0, 9, 1], dtype=np.int64)
    ctx, _ = run1(_gather_scatter, 1,
                  {"src": src, "ids": ids,
                   "out": np.zeros((10, W), np.float32), "N": N, "W": W})
    ref = np.zeros((10, W), np.float32)
    np.add.at(ref, ids, src[ids] * 2.0)
    assert np.allclose(ctx.heap.tensor("out", 0).numpy(), ref, atol=1e-4)


@kernel
def _scalar_table(table, out, IDX: tl.constexpr, N: tl.constexpr):
    e = tl.load_scalar(table, IDX)
    v = tl.full((N,), 1.0, "float32")
    w = v * (e + 1)
    tl.store_vec(out, (0, N), w)


def test_load_scalar_from_table():
    table = np.array([10, 20, 30], dtype=np.int64)
    ctx, _ = run1(_scalar_table, 1, {"table": table,
                                     "out": np.zeros(4, np.float32),
                                     "IDX": 2, "N": 4})
    assert (ctx.heap.tensor("out", 0).numpy() == 31.0).all()


def test_timing_mode_runs_same_program():
    """The identical kernel runs with data never materialized."""
    ctx, t = run1(_edge_tiles, 2,
                  {"a": np.zeros((64, 16), np.float32),
                   "out": np.zeros((64, 16), np.float32),
                   "M": 64, "BM": 16}, numerics=False)
    assert t > 0
    assert not ctx.heap.tensor("out", 0).materialized


def test_pipelined_loop_faster_than_unpipelined():
    @kernel
    def gemm(a, b, c, M: tl.constexpr, K: tl.constexpr, BK: tl.constexpr):
        acc = tl.zeros((M, M), "float32")
        for k in range(0, K, BK):
            x = tl.load(a, (0, M), (k, k + BK))
            y = tl.load(b, (k, k + BK), (0, M))
            acc += tl.dot(x, y)
        co = tl.cast(acc, "float16")
        tl.store(c, (0, M), (0, M), co)

    args = {"a": np.zeros((128, 2048), np.float16),
            "b": np.zeros((2048, 128), np.float16),
            "c": np.zeros((128, 128), np.float16),
            "M": 128, "K": 2048, "BK": 64}
    _, fast = run1(gemm, 1, dict(args), numerics=False)
    _, slow = run1(gemm, 1, dict(args), numerics=False,
                   options=CompileOptions(num_stages=1))
    assert fast < slow


def test_missing_tensor_binding_raises():
    ctx = make_ctx(world=1)
    with pytest.raises(RuntimeLaunchError, match="missing argument"):
        launch_kernel(ctx.machine, _elementwise, 1, 0, {"N": 4})


def test_undefined_scalar_raises():
    @kernel
    def bad(out, N: tl.constexpr):
        v = tl.full((N,), 1.0, "float32")
        tl.store_vec(out, (0, undefined_name), v)  # noqa: F821

    ctx = make_ctx(world=1)
    ctx.alloc("out", (4,), "float32")
    launch_kernel(ctx.machine, bad, 1, 0,
                  {"out": ctx.heap.tensors("out"), "N": 4})
    with pytest.raises(LoweringError, match="undefined scalar"):
        ctx.run()


def test_grid_must_be_positive():
    ctx = make_ctx(world=1)
    ctx.alloc("out", (4, 4), "float32")
    with pytest.raises(RuntimeLaunchError):
        launch_kernel(ctx.machine, _elementwise, 0, 0,
                      {"a": ctx.heap.tensors("out"),
                       "out": ctx.heap.tensors("out"), "N": 4})
