"""Cross-hardware checks: the same kernels run unmodified on other specs.

The paper's §7.4 notes TileLink's primitives and compilation are
target-independent (porting means swapping the low-level backend).  Here
the analog is the :class:`HardwareSpec`: every kernel runs unmodified on
the A100 spec, and the *physics* respond as expected — a fatter NVLink
(A100: 300 GB/s per direction vs H800's 200) shrinks the communication
share, while fewer/slower tensor cores stretch the compute share.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import A100, H800, SimConfig
from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped
from repro.runtime.context import DistContext


def _run(spec, numerics, m=8192, n=512, k=4096, world=8):
    cfg = SimConfig(world_size=world, execute_numerics=numerics, spec=spec,
                    seed=0)
    ctx = DistContext.create(cfg)
    rng = np.random.default_rng(0)
    if numerics:
        ctx.bind("x", [rng.standard_normal((m // world, k)).astype(np.float16)
                       for _ in range(world)])
        ctx.bind("w", [rng.standard_normal((k, n)).astype(np.float16)
                       for _ in range(world)])
    else:
        ctx.alloc("x", (m // world, k), "float16")
        ctx.alloc("w", (k, n), "float16")
    ctx.alloc("y", (m, n), "float16")
    kcfg = AgGemmConfig(m=m, n=n, k=k, mode="dma")
    ag_gemm_overlapped(ctx, kcfg, "x", "w", "y")
    total = ctx.run()
    return total, ctx


def test_kernels_run_unmodified_on_a100():
    total, ctx = _run(A100, numerics=True, m=1024, n=64, k=64, world=4)
    assert total > 0
    full = np.concatenate([ctx.heap.tensor("x", r).numpy()
                           for r in range(4)]).astype(np.float32)
    ref = full @ ctx.heap.tensor("w", 0).numpy().astype(np.float32)
    got = ctx.heap.tensor("y", 0).numpy().astype(np.float32)
    assert np.max(np.abs(got - ref)) < 0.5


def test_link_bandwidth_drives_comm_time():
    """A100's 1.5x fatter per-direction NVLink shortens the comm-bound
    AG+GEMM despite its ~3x weaker tensor cores."""
    t_h800, _ = _run(H800, numerics=False)
    t_a100, _ = _run(A100, numerics=False)
    # this shape is communication-bound: the faster link wins
    assert t_a100 < t_h800


def test_compute_bound_shape_favors_h800():
    # deep K, narrow comm: compute dominates, H800's tensor cores win
    t_h800, _ = _run(H800, numerics=False, m=1024, n=4096, k=8192, world=8)
    t_a100, _ = _run(A100, numerics=False, m=1024, n=4096, k=8192, world=8)
    assert t_h800 < t_a100


def test_spec_knob_sweeps_monotonically():
    """Shrinking NVLink bandwidth monotonically slows the comm-bound run."""
    times = []
    for egress in (300e9, 200e9, 100e9):
        spec = H800.scaled(nvlink_egress=egress, nvlink_ingress=egress)
        t, _ = _run(spec, numerics=False)
        times.append(t)
    assert times[0] < times[1] < times[2]
