"""Tests for the host-side primitives of Table 3 (DistContext methods)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import Join, Timeout
from tests.conftest import make_ctx


def test_rank_copy_data_moves_bytes(ctx2, rng):
    src = rng.standard_normal((8, 4)).astype(np.float32)
    ctx2.bind("a", [src, np.zeros((8, 4), np.float32)])
    ctx2.alloc("b", (8, 4), "float32")

    def orchestrate():
        yield from ctx2.rank_copy_data(
            "b", src_rank=0, dst_rank=1,
            src_ranges=((0, 8), (0, 4)), dst_ranges=((0, 8), (0, 4)),
            src_name="a")
        return ctx2.machine.now

    p = ctx2.machine.spawn(orchestrate())
    ctx2.run()
    assert np.allclose(ctx2.heap.tensor("b", 1).numpy(), src)
    # DMA cost: engine latency + transfer over the link
    assert p.result > ctx2.machine.config.spec.copy_engine_latency


def test_rank_copy_data_local_charges_hbm(ctx2, rng):
    src = rng.standard_normal((64, 64)).astype(np.float32)
    ctx2.bind("a", [src, src])
    ctx2.alloc("b", (64, 64), "float32")

    def orchestrate():
        yield from ctx2.rank_copy_data(
            "b", 0, 0, ((0, 64), (0, 64)), ((0, 64), (0, 64)), src_name="a")

    ctx2.machine.spawn(orchestrate())
    ctx2.run()
    assert ctx2.machine.device(0).hbm.total_bytes > 0
    assert np.allclose(ctx2.heap.tensor("b", 0).numpy(), src)


def test_rank_copy_data_occupies_copy_engine(ctx2):
    """Concurrent DMAs beyond the engine count serialize."""
    ctx2.alloc("a", (1024, 1024), "float16")
    ctx2.alloc("b", (1024, 1024), "float16")
    n_engines = ctx2.machine.config.spec.n_copy_engines

    def one_copy():
        yield from ctx2.rank_copy_data(
            "b", 0, 1, ((0, 1024), (0, 1024)), ((0, 1024), (0, 1024)),
            src_name="a")

    for _ in range(n_engines + 2):
        ctx2.machine.spawn(one_copy())
    ctx2.run(until=1e-9)
    engines = ctx2.machine.device(0).copy_engines
    assert engines.in_use == n_engines
    assert engines.queued == 2
    ctx2.run()


def test_rank_notify_and_wait(ctx2):
    banks = ctx2.heap.alloc_signals("s", 2)
    order = []

    def waiter():
        yield from ctx2.rank_wait(banks[1], 0, threshold=2)
        order.append(("woke", ctx2.machine.now))

    def notifier():
        yield Timeout(1e-6)
        yield from ctx2.rank_notify(banks, 1, 0, from_rank=0)
        yield Timeout(1e-6)
        yield from ctx2.rank_notify(banks, 1, 0, from_rank=0)

    ctx2.machine.spawn(waiter())
    ctx2.machine.spawn(notifier())
    ctx2.run()
    assert order and order[0][1] >= 2e-6
    assert banks[1].read(0) == 2


def test_rank_wait_host_synced_costs_more(ctx2):
    times = {}
    for synced in (False, True):
        ctx = make_ctx(2)
        banks = ctx.heap.alloc_signals("s", 1)
        banks[0].values[0] = 1

        def waiter(ctx=ctx, banks=banks, synced=synced):
            yield from ctx.rank_wait(banks[0], 0, 1, host_synced=synced)
            return ctx.machine.now

        p = ctx.machine.spawn(waiter())
        ctx.run()
        times[synced] = p.result
    assert times[True] > times[False]


def test_join_all_helper(ctx2):
    def work():
        yield Timeout(1e-6)

    procs = [ctx2.machine.spawn(work()) for _ in range(3)]

    def joiner():
        yield from ctx2.join_all(procs)
        return ctx2.machine.now

    p = ctx2.machine.spawn(joiner())
    ctx2.run()
    assert p.result == pytest.approx(1e-6)


def test_make_block_channels_unique_names(ctx2):
    from repro.mapping.layout import TileGrid
    from repro.mapping.static import AffineTileMapping

    m = AffineTileMapping(32, 16, 2)
    g = TileGrid(32, 16, 16, 16)
    a = ctx2.make_block_channels("same", mapping=m, comm_grid=g,
                                 consumer_grid=g)
    b = ctx2.make_block_channels("same", mapping=m, comm_grid=g,
                                 consumer_grid=g)
    assert a[0].barriers is not b[0].barriers   # no bank collision
