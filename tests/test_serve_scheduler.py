"""Tests for the continuous-batching scheduler (repro.serve.scheduler).

A stub latency table with a known affine step law (floor + per-token
cost) makes every timestamp exactly predictable, so the engine's
admission, phase and accounting logic can be checked to the bit.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.scheduler import ServerConfig, serve
from repro.serve.workload import Request, generate_requests

FLOOR = 1e-3
PER_TOKEN = 1e-5


class FakeTable:
    """Duck-typed StepLatencyTable: affine step law, no simulator.

    Ignores the context axis, so resident KV never changes a step's
    price here — timeline tests stay exactly predictable.  Context
    pricing itself is covered in test_serve_latency / test_serve_kv.
    """

    def interpolator(self, model, method, world=8, spec=None, seed=0):
        return lambda tokens, ctx=0: FLOOR + tokens * PER_TOKEN


MODEL = object()        # the stub never inspects it
TABLE = FakeTable()


def _req(rid, arrival, prompt, output):
    return Request(rid=rid, arrival_s=arrival, prompt_tokens=prompt,
                   output_tokens=output)


def _step(tokens):
    return FLOOR + tokens * PER_TOKEN


def test_single_request_timeline_is_exact():
    """prefill(P) -> TTFT; then output-1 decode steps of batch 1."""
    r = _req(0, 0.0, prompt=100, output=4)
    res = serve([r], MODEL, "tilelink", TABLE)
    log = res.logs[0]
    assert log.first_token_s == pytest.approx(_step(100))
    assert log.finish_s == pytest.approx(_step(100) + 3 * _step(1))
    assert log.ttft_s == pytest.approx(_step(100))
    assert log.tpot_s == pytest.approx(_step(1))
    assert res.n_prefill_steps == 1 and res.n_decode_steps == 3
    assert res.makespan_s == pytest.approx(log.finish_s)


def test_single_token_request_finishes_at_prefill():
    res = serve([_req(0, 0.0, 50, 1)], MODEL, "tilelink", TABLE)
    log = res.logs[0]
    assert log.finish_s == log.first_token_s
    assert log.tpot_s is None
    assert res.n_decode_steps == 0


def test_every_request_completes_and_logs_keep_arrival_order():
    reqs = generate_requests("chat", 400, seed=0)
    res = serve(reqs, MODEL, "tilelink", TABLE)
    assert len(res.logs) == 400
    assert all(l.finish_s is not None for l in res.logs)
    arrivals = [l.request.arrival_s for l in res.logs]
    assert arrivals == sorted(arrivals)
    for l in res.logs:
        assert l.first_token_s > l.request.arrival_s
        assert l.finish_s >= l.first_token_s


def test_batch_and_token_budgets_are_respected():
    reqs = [_req(i, 0.0, 300, 8) for i in range(20)]
    server = ServerConfig(max_batch=4, max_prefill_tokens=1000)
    res = serve(reqs, MODEL, "tilelink", TABLE, server)
    assert max(res.batch_size) <= server.max_batch
    # 300-token prompts under a 1000-token budget: <= 3 admitted per
    # prefill step, so at least ceil(20/3) prefill steps ran
    assert res.n_prefill_steps >= 7


def test_oversized_prompt_admits_alone():
    reqs = [_req(0, 0.0, 5000, 2), _req(1, 0.0, 10, 2)]
    server = ServerConfig(max_batch=8, max_prefill_tokens=1000)
    res = serve(reqs, MODEL, "tilelink", TABLE, server)
    # the oversized prompt ran in its own prefill step (5000 tokens),
    # the small one in another — never together
    assert res.n_prefill_steps == 2
    assert res.logs[0].first_token_s == pytest.approx(_step(5000))


def test_fcfs_serves_in_arrival_order():
    reqs = [_req(i, 0.0, 100, 2) for i in range(6)]
    server = ServerConfig(max_batch=2, max_prefill_tokens=100)
    res = serve(reqs, MODEL, "tilelink", TABLE, server)
    firsts = [l.first_token_s for l in res.logs]
    assert firsts == sorted(firsts)


def test_spf_lets_short_prompts_jump_the_queue():
    long_r = _req(0, 0.0, 4000, 2)
    short_r = _req(1, 0.0, 10, 2)
    server = ServerConfig(max_batch=1, max_prefill_tokens=8192,
                          policy="spf")
    res = serve([long_r, short_r], MODEL, "tilelink", TABLE, server)
    logs = {l.request.rid: l for l in res.logs}
    assert logs[1].first_token_s < logs[0].first_token_s
    # under FCFS the long prompt goes first instead
    res = serve([long_r, short_r], MODEL, "tilelink", TABLE,
                ServerConfig(max_batch=1, policy="fcfs"))
    logs = {l.request.rid: l for l in res.logs}
    assert logs[0].first_token_s < logs[1].first_token_s


def test_idle_engine_jumps_to_next_arrival():
    reqs = [_req(0, 0.0, 100, 2), _req(1, 1000.0, 100, 2)]
    res = serve(reqs, MODEL, "tilelink", TABLE)
    late = res.logs[1]
    # no queueing: its TTFT is exactly one prefill step
    assert late.ttft_s == pytest.approx(_step(100))
    assert res.makespan_s == pytest.approx(
        1000.0 + _step(100) + _step(1))


def test_decode_batches_share_steps():
    """Two concurrent requests decode together: same number of decode
    steps as one alone (batched), not double."""
    solo = serve([_req(0, 0.0, 100, 9)], MODEL, "tilelink", TABLE)
    duo = serve([_req(0, 0.0, 100, 9), _req(1, 0.0, 100, 9)],
                MODEL, "tilelink", TABLE,
                ServerConfig(max_batch=2, max_prefill_tokens=200))
    assert duo.n_decode_steps == solo.n_decode_steps


def test_decode_steps_price_the_batch_resident_context():
    """Even without a KV pool, decode steps pass the batch's total
    resident KV tokens to the latency table's context axis."""

    class CtxRecordingTable:
        def __init__(self):
            self.decode_calls = []

        def interpolator(self, model, method, world=8, spec=None, seed=0):
            def f(tokens, ctx=0):
                if ctx:
                    self.decode_calls.append((tokens, ctx))
                return FLOOR + tokens * PER_TOKEN
            return f

    table = CtxRecordingTable()
    reqs = [_req(0, 0.0, 100, 3), _req(1, 0.0, 100, 3)]
    res = serve(reqs, MODEL, "tilelink", table,
                ServerConfig(max_batch=2, max_prefill_tokens=200))
    # after the joint prefill both requests hold 100 resident tokens;
    # each decode step grows both by one
    assert table.decode_calls == [(2, 200), (2, 202)]
    assert res.peak_resident_tokens == 202


def test_result_is_deterministic():
    reqs = generate_requests("rag", 300, seed=5)
    a = serve(reqs, MODEL, "tilelink", TABLE)
    b = serve(reqs, MODEL, "tilelink", TABLE)
    assert [(l.first_token_s, l.finish_s) for l in a.logs] == \
        [(l.first_token_s, l.finish_s) for l in b.logs]
    assert (a.n_prefill_steps, a.n_decode_steps, a.queue_depth) == \
        (b.n_prefill_steps, b.n_decode_steps, b.queue_depth)


def test_bad_knobs_and_empty_workload_raise():
    with pytest.raises(ServeError, match="max_batch"):
        serve([_req(0, 0.0, 1, 1)], MODEL, "tilelink", TABLE,
              ServerConfig(max_batch=0))
    with pytest.raises(ServeError, match="max_prefill_tokens"):
        serve([_req(0, 0.0, 1, 1)], MODEL, "tilelink", TABLE,
              ServerConfig(max_prefill_tokens=0))
    with pytest.raises(ServeError, match="unknown policy"):
        serve([_req(0, 0.0, 1, 1)], MODEL, "tilelink", TABLE,
              ServerConfig(policy="lifo"))
    with pytest.raises(ServeError, match="at least one request"):
        serve([], MODEL, "tilelink", TABLE)
