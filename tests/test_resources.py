"""Unit tests for counting resources and bandwidth pipes."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Pipe, Resource, reserve_transfer, transfer_through


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def proc(i):
        yield res.acquire()
        order.append(i)
        yield Timeout(1.0)
        res.release()

    for i in range(4):
        sim.spawn(proc(i))
    sim.run()
    assert order == [0, 1, 2, 3]
    assert sim.now == pytest.approx(4.0)


def test_resource_multi_unit_acquire():
    sim = Simulator()
    res = Resource(sim, capacity=4)
    events = []

    def big():
        yield res.acquire(3)
        events.append(("big", sim.now))
        yield Timeout(2.0)
        res.release(3)

    def small():
        yield res.acquire(2)
        events.append(("small", sim.now))
        res.release(2)

    sim.spawn(big())
    sim.spawn(small())
    sim.run()
    # small (2 units) must wait for big (3 of 4) to release
    assert events == [("big", 0.0), ("small", pytest.approx(2.0))]


def test_resource_rejects_bad_amounts():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    with pytest.raises(SimulationError):
        res.acquire(0)
    with pytest.raises(SimulationError):
        res.acquire(3)
    with pytest.raises(SimulationError):
        res.release(1)  # nothing held
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_availability_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=5)

    def proc():
        yield res.acquire(2)
        assert res.available == 3
        assert res.in_use == 2
        res.release(2)

    sim.spawn(proc())
    sim.run()
    assert res.available == 5


def test_pipe_serializes_transfers():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=100.0, latency=0.0)
    done = []

    def proc(i):
        yield pipe.transfer(100.0)  # 1 second each
        done.append((i, sim.now))

    for i in range(3):
        sim.spawn(proc(i))
    sim.run()
    assert [t for _, t in done] == [pytest.approx(1.0), pytest.approx(2.0),
                                    pytest.approx(3.0)]


def test_pipe_latency_added_after_occupancy():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=10.0, latency=0.5)

    def proc():
        yield pipe.transfer(10.0)
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.result == pytest.approx(1.5)
    # pipe frees at occupancy end, not at arrival
    assert pipe.free_at == pytest.approx(1.0)


def test_pipe_rejects_bad_construction():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Pipe(sim, bandwidth=0.0)
    with pytest.raises(SimulationError):
        Pipe(sim, bandwidth=1.0, latency=-1.0)
    pipe = Pipe(sim, bandwidth=1.0)
    with pytest.raises(SimulationError):
        pipe.reserve(-5.0)


def test_pipe_utilization_and_totals():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=50.0)

    def proc():
        yield pipe.transfer(100.0)
        yield Timeout(2.0)  # idle time

    sim.spawn(proc())
    sim.run()
    assert pipe.total_bytes == pytest.approx(100.0)
    assert pipe.busy_time == pytest.approx(2.0)
    assert pipe.utilization == pytest.approx(0.5)


def test_reserve_transfer_joint_pipes():
    sim = Simulator()
    fast = Pipe(sim, bandwidth=100.0, latency=0.1)
    slow = Pipe(sim, bandwidth=10.0, latency=0.2)
    start, arrival = reserve_transfer([fast, slow], 10.0)
    assert start == pytest.approx(0.0)
    # slowest pipe's bandwidth + largest latency
    assert arrival == pytest.approx(1.0 + 0.2)
    assert fast.free_at == slow.free_at == pytest.approx(1.0)


def test_reserve_transfer_validations():
    sim = Simulator()
    with pytest.raises(SimulationError):
        reserve_transfer([], 1.0)
    pipe = Pipe(sim, bandwidth=1.0)
    with pytest.raises(SimulationError):
        reserve_transfer([pipe], -1.0)


def test_transfer_through_awaits_arrival():
    sim = Simulator()
    a = Pipe(sim, bandwidth=10.0)
    b = Pipe(sim, bandwidth=20.0)

    def proc():
        yield transfer_through([a, b], 10.0)
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.result == pytest.approx(1.0)


@given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                max_size=20))
def test_pipe_conserves_throughput(sizes):
    """Property: serialized transfers take exactly sum(bytes)/bw."""
    sim = Simulator()
    pipe = Pipe(sim, bandwidth=123.0)

    def proc(n):
        yield pipe.transfer(n)

    for n in sizes:
        sim.spawn(proc(n))
    total = sim.run()
    assert total == pytest.approx(sum(sizes) / 123.0)
    assert pipe.busy_time == pytest.approx(sum(sizes) / 123.0)
