"""Cross-cutting property tests over the whole stack.

These exercise randomized shapes/world sizes through the full pipeline
(routing, mapping, DSL compile, simulated execution) and assert the
invariants that must hold regardless of configuration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.ag_gemm import AgGemmConfig, ag_gemm_overlapped
from repro.kernels.gemm_rs import GemmRsConfig, gemm_rs_overlapped
from tests.conftest import make_ctx


@st.composite
def ag_cases(draw):
    world = draw(st.sampled_from([2, 4]))
    tiles_per_rank = draw(st.integers(1, 3))
    bm = draw(st.sampled_from([8, 16]))
    m = world * tiles_per_rank * bm
    n = draw(st.sampled_from([8, 24]))
    k = draw(st.sampled_from([16, 32]))
    mode = draw(st.sampled_from(["dma", "pull", "push"]))
    seed = draw(st.integers(0, 100))
    return world, m, n, k, bm, mode, seed


@given(ag_cases())
@settings(max_examples=15, deadline=None)
def test_ag_gemm_correct_for_random_configs(case):
    world, m, n, k, bm, mode, seed = case
    rng = np.random.default_rng(seed)
    ctx = make_ctx(world)
    shards = [rng.standard_normal((m // world, k)).astype(np.float16)
              for _ in range(world)]
    weights = [rng.standard_normal((k, n)).astype(np.float16)
               for _ in range(world)]
    ctx.bind("x", shards)
    ctx.bind("w", weights)
    ctx.alloc("y", (m, n), "float16")
    cfg = AgGemmConfig(m=m, n=n, k=k, block_m=bm, block_n=8, block_k=16,
                       block_mp=bm, comm_blocks=2, mode=mode)
    ag_gemm_overlapped(ctx, cfg, "x", "w", "y", grid=8)
    ctx.run()
    full = np.concatenate(shards).astype(np.float32)
    for r in range(world):
        got = ctx.heap.tensor("y", r).numpy().astype(np.float32)
        ref = full @ weights[r].astype(np.float32)
        assert np.max(np.abs(got - ref)) < 0.5


@st.composite
def rs_cases(draw):
    world = draw(st.sampled_from([2, 4]))
    bm = draw(st.sampled_from([8, 16]))
    m = world * bm * draw(st.integers(1, 2))
    n = draw(st.sampled_from([16, 32]))
    k = draw(st.sampled_from([16, 32]))
    mode = draw(st.sampled_from(["ring", "hybrid"]))
    seed = draw(st.integers(0, 100))
    return world, m, n, k, bm, mode, seed


@given(rs_cases())
@settings(max_examples=15, deadline=None)
def test_gemm_rs_correct_for_random_configs(case):
    world, m, n, k, bm, mode, seed = case
    rng = np.random.default_rng(seed)
    ctx = make_ctx(world)
    xs = [rng.standard_normal((m, k)).astype(np.float16)
          for _ in range(world)]
    ws = [rng.standard_normal((k, n)).astype(np.float16)
          for _ in range(world)]
    ctx.bind("x", xs)
    ctx.bind("w", ws)
    ctx.alloc("out", (m // world, n), "float32")
    cfg = GemmRsConfig(m=m, n=n, k=k, block_m=bm, block_n=16, block_k=16,
                       block_mr=bm, block_nr=16, comm_blocks=2, mode=mode)
    gemm_rs_overlapped(ctx, cfg, "x", "w", "out", grid=8)
    ctx.run()
    total = sum(x.astype(np.float32) @ w.astype(np.float32)
                for x, w in zip(xs, ws))
    for r in range(world):
        ref = total[r * (m // world):(r + 1) * (m // world)]
        got = ctx.heap.tensor("out", r).numpy()
        assert np.max(np.abs(got - ref)) < 0.6


def test_overlapped_time_bounded_by_parts():
    """max(comm, comp) <= overlapped <= comm + comp + eps (sanity of the
    simulator's concurrency accounting)."""
    from repro.collectives.copy_engine import dma_all_gather
    from repro.ops.gemm import gemm_op

    m, n, k, world = 4096, 512, 1024, 8

    def comm_only(ctx):
        ctx.alloc("x", (m // world, k), "float16")
        ctx.alloc("g", (m, k), "float16")
        dma_all_gather(ctx, "x", "g", None, stream_name="comm")

    def comp_only(ctx):
        ctx.alloc("g", (m, k), "float16")
        ctx.alloc("w", (k, n), "float16")
        ctx.alloc("y", (m, n), "float16")
        for r in range(world):
            gemm_op(ctx, r, ctx.heap.tensor("g", r), ctx.heap.tensor("w", r),
                    ctx.heap.tensor("y", r))

    def overlapped(ctx):
        ctx.alloc("x", (m // world, k), "float16")
        ctx.alloc("w", (k, n), "float16")
        ctx.alloc("y", (m, n), "float16")
        cfg = AgGemmConfig(m=m, n=n, k=k, mode="dma")
        ag_gemm_overlapped(ctx, cfg, "x", "w", "y")

    def run(builder):
        ctx = make_ctx(world, numerics=False)
        builder(ctx)
        return ctx.run()

    t_comm, t_comp, t_over = run(comm_only), run(comp_only), run(overlapped)
    assert t_over >= max(t_comm, t_comp) * 0.95
    assert t_over <= (t_comm + t_comp) * 1.10


def test_determinism_across_runs():
    """Identical configs simulate to identical times (seeded, FIFO)."""
    def build(ctx):
        ctx.alloc("x", (512, 256), "float16")
        ctx.alloc("w", (256, 128), "float16")
        ctx.alloc("y", (2048, 128), "float16")
        cfg = AgGemmConfig(m=2048, n=128, k=256, mode="pull")
        ag_gemm_overlapped(ctx, cfg, "x", "w", "y")

    times = set()
    for _ in range(3):
        ctx = make_ctx(4, numerics=False)
        build(ctx)
        times.add(round(ctx.run(), 15))
    assert len(times) == 1


def test_failure_injection_missing_notify_deadlocks():
    """Dropping the producer's notify surfaces as DeadlockError, not a
    silent hang or wrong result — the substrate's lost-signal story."""
    from repro.errors import DeadlockError
    from repro.mapping.layout import TileGrid
    from repro.mapping.static import AffineTileMapping
    from repro.lang import tl
    from repro.lang.dsl import kernel
    from repro.runtime.launcher import launch_kernel

    @kernel
    def consumer_only(data, out, channel: tl.BlockChannel,
                      N: tl.constexpr):
        tl.consumer_tile_wait(0)
        x = tl.load(data, (0, N), (0, N))
        tl.store(out, (0, N), (0, N), x)

    ctx = make_ctx(1)
    ctx.alloc("data", (8, 8), "float32")
    ctx.alloc("out", (8, 8), "float32")
    mapping = AffineTileMapping(8, 8, 1)
    grid = TileGrid(8, 8, 8, 8)
    channels = ctx.make_block_channels("x", mapping=mapping, comm_grid=grid,
                                       consumer_grid=grid)
    launch_kernel(ctx.machine, consumer_only, 1, 0, {
        "data": ctx.heap.tensors("data"), "out": ctx.heap.tensors("out"),
        "channel": channels, "N": 8})
    with pytest.raises(DeadlockError):
        ctx.run()
