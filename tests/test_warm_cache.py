"""Tests for the shipped warm cache and the tuned-by-default bench columns.

``benchmarks/warm_cache.json`` is a checked-in tuner cache covering the
Figure-8 MLP, Table-4 MoE and Figure-10 attention shape tables; when it
resolves, the ``*_builders`` in :mod:`repro.bench.experiments` grow a
TileLink-tuned column *by default* and every autotune lookup at bench
time is a warm hit — zero simulations.
``benchmarks/refresh_warm_cache.py --check`` is the CI staleness
tripwire; the tests here are its tier-1 shadow.
"""

from __future__ import annotations

import pytest

# importing the zoo registers every kernel's search space
import repro.kernels  # noqa: F401
from repro.bench.experiments import (
    ENV_WARM_CACHE,
    ag_gemm_builders,
    attention_builders,
    attention_sweep_tasks,
    mlp_sweep_tasks,
    moe_part2_builders,
    moe_sweep_tasks,
    resolve_warm_cache,
    warm_cache_path,
)
from repro.config import H800
from repro.kernels.ag_gemm import AgGemmConfig
from repro.models.configs import ATTENTION_BENCHES, MLP_BENCHES, MOE_BENCHES
from repro.tuner import task_cache_key

WORLD = 8


def test_warm_cache_ships_and_covers_the_paper_tables():
    """The checked-in cache must hold a current-fingerprint entry for
    every Figure-8 MLP, Table-4 MoE and Figure-10 attention tuning task
    (else it is stale — CI runs refresh_warm_cache.py --check for the
    same contract)."""
    cache = resolve_warm_cache()
    assert cache is not None, \
        f"{warm_cache_path()} must ship with the repo"
    assert cache.readonly
    tasks = (mlp_sweep_tasks(MLP_BENCHES, world=WORLD)
             + moe_sweep_tasks(MOE_BENCHES, world=WORLD)
             + attention_sweep_tasks(ATTENTION_BENCHES, world=WORLD))
    missing = [name for name, task in tasks
               if task_cache_key(task, world=WORLD, spec=H800) not in cache]
    assert not missing, f"warm cache is stale; missing: {missing}"


def test_warm_cache_resolution_performs_zero_simulations():
    shape = MLP_BENCHES[0]
    res = AgGemmConfig.autotune(shape.s, shape.i // WORLD, shape.h,
                                world=WORLD, cache=resolve_warm_cache(),
                                full_result=True)
    assert res.from_cache and res.n_simulated == 0
    assert res.best_time <= res.default_time


def test_builders_default_to_tuned_column_when_warm():
    for shape, builders_fn in ((MLP_BENCHES[0], ag_gemm_builders),
                               (MOE_BENCHES[0], moe_part2_builders)):
        builders = builders_fn(shape, WORLD)       # tuned=None -> auto
        assert "TileLink-tuned" in builders, builders_fn.__name__
    # explicit opt-out still wins
    assert "TileLink-tuned" not in ag_gemm_builders(MLP_BENCHES[0], WORLD,
                                                    tuned=False)


def test_tuned_column_resolves_without_simulating():
    """The auto-enabled column runs the tuned config straight from the
    warm cache: never slower than the paper-config TileLink column."""
    from repro.bench.harness import run_builder

    builders = moe_part2_builders(MOE_BENCHES[0], WORLD)
    t_paper = run_builder(builders["TileLink"], world=WORLD)
    t_tuned = run_builder(builders["TileLink-tuned"], world=WORLD)
    assert t_tuned <= t_paper * 1.001


def test_auto_tuned_column_never_simulates_on_runtime_mismatch(monkeypatch):
    """The auto probe keys on the builder world + H800, but the closure
    launches at ctx world/spec: on a runtime key miss it must fall back
    to the paper config, never tune inside the timed bench."""
    from repro.bench.harness import run_builder
    from repro.kernels import ag_gemm as ag_gemm_mod

    builders = ag_gemm_builders(MLP_BENCHES[0], WORLD)   # probed at world=8
    assert "TileLink-tuned" in builders

    def boom(*args, **kwargs):
        raise AssertionError("autotune ran on a warm-cache runtime miss")

    monkeypatch.setattr(ag_gemm_mod.AgGemmConfig, "autotune", boom)
    # world=4 has no warm entry: the tuned builder must still run (paper
    # config) without ever reaching autotune
    t_tuned = run_builder(builders["TileLink-tuned"], world=4)
    t_paper = run_builder(builders["TileLink"], world=4)
    assert t_tuned == pytest.approx(t_paper)


def test_missing_warm_cache_disables_auto_columns(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_WARM_CACHE, str(tmp_path / "nope.json"))
    assert resolve_warm_cache() is None
    builders = ag_gemm_builders(MLP_BENCHES[0], WORLD)
    assert "TileLink-tuned" not in builders


def test_foreign_shape_keeps_untuned_columns(monkeypatch):
    """A shape the warm cache does not cover must not enable the column
    (enabling it would simulate at bench time)."""
    from repro.models.configs import MlpShape

    odd = MlpShape("odd", 2048, 512, 2048, "not-in-the-tables")
    builders = ag_gemm_builders(odd, WORLD)
    assert "TileLink-tuned" not in builders


# ---------------------------------------------------------------------------
# Figure-10 attention: the same warm-cache contract as Figures 8/9
# ---------------------------------------------------------------------------

def test_attention_builders_default_to_tuned_column_when_warm():
    shape, seq_len = ATTENTION_BENCHES[0], ATTENTION_BENCHES[0].seq_lens[0]
    builders = attention_builders(shape, seq_len, WORLD)  # tuned=None
    assert "TileLink-tuned" in builders
    # explicit opt-out still wins
    assert "TileLink-tuned" not in attention_builders(shape, seq_len, WORLD,
                                                      tuned=False)


def test_attention_tuned_column_resolves_without_simulating(monkeypatch):
    """The auto-enabled Figure-10 column runs the tuned config straight
    from the warm cache — zero bench-time simulations (autotune must
    never be reached), never slower than the paper-config TileLink."""
    from repro.bench.harness import run_builder
    from repro.kernels import attention as attention_mod

    shape, seq_len = ATTENTION_BENCHES[0], ATTENTION_BENCHES[0].seq_lens[0]
    builders = attention_builders(shape, seq_len, WORLD)

    def boom(*args, **kwargs):
        raise AssertionError("autotune simulated inside the timed bench")

    monkeypatch.setattr(attention_mod.AgAttentionConfig, "autotune", boom)
    t_paper = run_builder(builders["TileLink"], world=WORLD)
    t_tuned = run_builder(builders["TileLink-tuned"], world=WORLD)
    assert t_tuned <= t_paper * 1.001


def test_attention_auto_column_never_simulates_on_runtime_mismatch(
        monkeypatch):
    """Runtime world/spec diverging from the build-time probe must fall
    back to the paper config, never tune inside the timed bench."""
    from repro.bench.harness import run_builder
    from repro.kernels import attention as attention_mod

    shape, seq_len = ATTENTION_BENCHES[0], ATTENTION_BENCHES[0].seq_lens[0]
    builders = attention_builders(shape, seq_len, WORLD)  # probed at world=8
    assert "TileLink-tuned" in builders

    def boom(*args, **kwargs):
        raise AssertionError("autotune ran on a warm-cache runtime miss")

    monkeypatch.setattr(attention_mod.AgAttentionConfig, "autotune", boom)
    # world=4 has no warm entry: still runs, on the paper config
    t_tuned = run_builder(builders["TileLink-tuned"], world=4)
    t_paper = run_builder(builders["TileLink"], world=4)
    assert t_tuned == pytest.approx(t_paper)


def test_foreign_seq_len_keeps_untuned_attention_columns():
    """A sequence length outside the Figure-10 sweep must not enable the
    column (enabling it would simulate at bench time)."""
    shape = ATTENTION_BENCHES[0]
    assert 8192 not in shape.seq_lens
    builders = attention_builders(shape, 8192, WORLD)
    assert "TileLink-tuned" not in builders


def test_missing_warm_cache_disables_attention_auto_column(tmp_path,
                                                           monkeypatch):
    monkeypatch.setenv(ENV_WARM_CACHE, str(tmp_path / "nope.json"))
    shape, seq_len = ATTENTION_BENCHES[0], ATTENTION_BENCHES[0].seq_lens[0]
    assert "TileLink-tuned" not in attention_builders(shape, seq_len, WORLD)


def test_warm_cache_file_is_never_written_by_benches():
    path = warm_cache_path()
    if not path.is_file():
        pytest.skip("warm cache not shipped in this checkout")
    before = path.read_bytes()
    cache = resolve_warm_cache()
    cache.put("scratch", {"block_m": 128}, 1.0)
    assert path.read_bytes() == before
