"""Integration tests: sequence-parallel attention kernels (Figure 6/10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels.attention import AgAttentionConfig, ag_attention_overlapped
from repro.kernels.ring_attention import ring_attention
from repro.baselines.nonoverlap import attention_nonoverlap
from repro.ops.attention import attention_ref, heads_to_seq, seq_to_heads
from tests.conftest import make_ctx

WORLD, HEADS, DIM, S = 4, 2, 16, 256
S_PER = S // WORLD
WIDTH = HEADS * DIM


def _setup(rng, fn, causal, **kw):
    ctx = make_ctx(WORLD)
    qs = [rng.standard_normal((S_PER, WIDTH)).astype(np.float16)
          for _ in range(WORLD)]
    ks = [rng.standard_normal((S_PER, WIDTH)).astype(np.float16)
          for _ in range(WORLD)]
    vs = [rng.standard_normal((S_PER, WIDTH)).astype(np.float16)
          for _ in range(WORLD)]
    ctx.bind("q", qs)
    ctx.bind("k", ks)
    ctx.bind("v", vs)
    ctx.alloc("o", (S_PER, WIDTH), "float32")
    cfg = AgAttentionConfig(heads=HEADS, head_dim=DIM, seq_len=S,
                            causal=causal, block_q=16, block_kv=16)
    fn(ctx, cfg, "q", "k", "v", "o", **kw)
    ctx.run()
    return ctx, qs, ks, vs


@pytest.mark.parametrize("causal", [True, False])
@pytest.mark.parametrize("fn", [ag_attention_overlapped, ring_attention,
                                attention_nonoverlap])
def test_attention_implementations_agree_with_reference(rng, fn, causal):
    ctx, qs, ks, vs = _setup(rng, fn, causal)
    k_full = np.concatenate(ks)
    v_full = np.concatenate(vs)
    for r in range(WORLD):
        ref = attention_ref(seq_to_heads(qs[r], HEADS, DIM),
                            seq_to_heads(k_full, HEADS, DIM),
                            seq_to_heads(v_full, HEADS, DIM),
                            causal=causal, q_offset=r * S_PER)
        got = ctx.heap.tensor("o", r).numpy()
        assert np.max(np.abs(got - heads_to_seq(ref))) < 0.05, (fn, r)


def test_config_validation():
    cfg = AgAttentionConfig(heads=2, head_dim=16, seq_len=100)
    with pytest.raises(ShapeError):
        cfg.validate(8)
    assert cfg.width == 32


def test_tilelink_attention_beats_baselines_at_scale():
    times = {}
    for name, fn in (("tilelink", ag_attention_overlapped),
                     ("ring", ring_attention),
                     ("torch", attention_nonoverlap)):
        ctx = make_ctx(8, numerics=False)
        seq = 16384
        cfg = AgAttentionConfig(heads=32, head_dim=128, seq_len=seq)
        s_per = seq // 8
        for n in ("q", "k", "v"):
            ctx.alloc(n, (s_per, cfg.width), "float16")
        ctx.alloc("o", (s_per, cfg.width), "float32")
        fn(ctx, cfg, "q", "k", "v", "o")
        times[name] = ctx.run()
    assert times["tilelink"] < times["ring"] < times["torch"]


def test_comm_order_adapts_to_causality():
    """Causal runs fetch needed (below-diagonal) segments first, so the
    overlapped kernel finishes sooner than with the non-causal ring order
    applied blindly — checked indirectly: causal is faster than non-causal
    (half the compute) and still correct (covered above)."""
    times = {}
    for causal in (True, False):
        ctx = make_ctx(8, numerics=False)
        cfg = AgAttentionConfig(heads=32, head_dim=128, seq_len=32768,
                                causal=causal)
        s_per = cfg.seq_len // 8
        for n in ("q", "k", "v"):
            ctx.alloc(n, (s_per, cfg.width), "float16")
        ctx.alloc("o", (s_per, cfg.width), "float32")
        ag_attention_overlapped(ctx, cfg, "q", "k", "v", "o")
        times[causal] = ctx.run()
    assert times[True] < times[False]


def test_overlap_ratio_positive():
    from repro.bench.experiments import attention_overlap_ratio
    from repro.models.configs import ATTENTION_BENCHES

    ratio = attention_overlap_ratio(ATTENTION_BENCHES[0], 16384)
    assert 0.0 < ratio <= 1.2
