"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import AllOf, Join, Simulator, Timeout


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield Timeout(1.5)
        log.append(sim.now)
        yield Timeout(0.5)
        log.append(sim.now)

    sim.spawn(proc())
    assert sim.run() == pytest.approx(2.0)
    assert log == [pytest.approx(1.5), pytest.approx(2.0)]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_fifo_ordering_at_equal_times():
    sim = Simulator()
    order = []

    def proc(i):
        yield Timeout(1.0)
        order.append(i)

    for i in range(10):
        sim.spawn(proc(i))
    sim.run()
    assert order == list(range(10))


def test_join_returns_result():
    sim = Simulator()

    def child():
        yield Timeout(2.0)
        return 42

    def parent():
        c = sim.spawn(child())
        result = yield Join(c)
        return (sim.now, result)

    p = sim.spawn(parent())
    sim.run()
    assert p.result == (pytest.approx(2.0), 42)


def test_join_already_done_process():
    sim = Simulator()

    def child():
        return 7
        yield  # pragma: no cover

    def parent(c):
        yield Timeout(5.0)
        result = yield Join(c)
        return result

    c = sim.spawn(child())
    p = sim.spawn(parent(c))
    sim.run()
    assert p.result == 7


def test_allof_collects_in_order():
    sim = Simulator()

    def child(delay, val):
        yield Timeout(delay)
        return val

    def parent():
        procs = [sim.spawn(child(3.0 - i, i)) for i in range(3)]
        results = yield AllOf(procs)
        return (sim.now, results)

    p = sim.spawn(parent())
    sim.run()
    assert p.result == (pytest.approx(3.0), [0, 1, 2])


def test_allof_empty_and_done():
    sim = Simulator()

    def quick():
        return "x"
        yield  # pragma: no cover

    def parent():
        done = sim.spawn(quick())
        yield Timeout(1.0)
        results = yield AllOf([done])
        return results

    p = sim.spawn(parent())
    sim.run()
    assert p.result == ["x"]


def test_deadlock_detection_names_blocked():
    sim = Simulator()

    def stuck():
        yield Join(other)  # never finishes

    def forever():
        yield Timeout(1.0)
        yield Join(stuck_proc)  # mutual wait

    other = sim.spawn(forever(), name="forever")
    stuck_proc = sim.spawn(stuck(), name="stuck")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "stuck" in exc.value.blocked or "forever" in exc.value.blocked


def test_run_until_horizon():
    sim = Simulator()

    def proc():
        yield Timeout(10.0)
        return "done"

    p = sim.spawn(proc())
    t = sim.run(until=3.0)
    assert t == pytest.approx(3.0)
    assert not p.done
    sim.run()
    assert p.done


def test_call_later_runs_callbacks_in_order():
    sim = Simulator()
    log = []
    sim.call_later(2.0, lambda: log.append("b"))
    sim.call_later(1.0, lambda: log.append("a"))

    def proc():
        yield Timeout(3.0)
        log.append("c")

    sim.spawn(proc())
    sim.run()
    assert log == ["a", "b", "c"]


def test_yield_non_awaitable_raises():
    sim = Simulator()

    def bad():
        yield 5

    sim.spawn(bad())
    with pytest.raises(SimulationError, match="expected an Awaitable"):
        sim.run()


def test_generator_delegation_composes():
    sim = Simulator()

    def inner():
        yield Timeout(1.0)
        return 10

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    p = sim.spawn(outer())
    sim.run()
    assert p.result == 20
    assert sim.now == pytest.approx(2.0)


def test_throw_injects_exception():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield Timeout(100.0)
        except RuntimeError as exc:
            caught.append(str(exc))
            return "recovered"

    p = sim.spawn(proc())
    sim.run(until=1.0)
    p.throw(RuntimeError("fault"))
    assert caught == ["fault"]
    assert p.done and p.result == "recovered"


@given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1,
                max_size=30))
def test_clock_monotonic_under_random_timeouts(delays):
    sim = Simulator()
    seen = []

    def proc(d):
        yield Timeout(d)
        seen.append(sim.now)

    for d in delays:
        sim.spawn(proc(d))
    total = sim.run()
    assert seen == sorted(seen)
    assert total == pytest.approx(max(delays))


def test_live_process_count():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)

    sim.spawn(proc())
    sim.spawn(proc())
    assert sim.live_processes == 2
    sim.run()
    assert sim.live_processes == 0
