"""Tests for serving metrics (repro.serve.metrics) and the serving JSON
row contract shared with ``validate_bench_json.py --schema serving``."""

from __future__ import annotations

import json

import pytest

from benchmarks.validate_bench_json import validate_serving_rows
from repro.errors import ServeError
from repro.serve.metrics import (
    ServingReport,
    SloSpec,
    format_reports,
    percentile,
    summarize,
)
from repro.serve.samples import StepStats
from repro.serve.scheduler import RequestLog, ServeResult
from repro.serve.workload import Request


def _result(specs):
    """ServeResult from (arrival, first, finish, out_tokens) tuples."""
    logs = []
    for i, (arr, first, fin, out) in enumerate(specs):
        logs.append(RequestLog(
            Request(rid=i, arrival_s=arr, prompt_tokens=10,
                    output_tokens=out),
            first_token_s=first, finish_s=fin))
    makespan = max(s[2] for s in specs) - min(s[0] for s in specs)
    return ServeResult(logs=logs, makespan_s=makespan,
                       queue_depth=StepStats.of([0, 2, 1]))


def test_percentile_interpolates_linearly():
    vals = list(range(1, 101))
    assert percentile(vals, 0) == 1.0
    assert percentile(vals, 100) == 100.0
    assert percentile(vals, 50) == 50.5
    assert percentile([4.0], 99) == 4.0
    assert percentile([1.0, 2.0], 50) == 1.5
    with pytest.raises(ServeError):
        percentile([], 50)
    with pytest.raises(ServeError):
        percentile([1.0], 101)


def test_empty_series_raise_named_serve_errors():
    """Every empty-series accessor raises ServeError — never a bare
    IndexError/KeyError from the internals.  The obs histograms
    (repro.obs.metrics) snapshot empty series routinely and must be
    able to catch these precisely."""
    empty = StepStats()
    with pytest.raises(ServeError, match="percentile of an empty"):
        empty.percentile(50)
    with pytest.raises(ServeError, match="max of an empty"):
        empty.max
    with pytest.raises(ServeError, match="empty"):
        percentile([], 50)
    # one sample makes every accessor whole again
    one = StepStats.of([3.0])
    assert one.percentile(50) == 3.0
    assert one.max == 3.0


def test_slo_spec_accounts_for_single_token_requests():
    slo = SloSpec(ttft_s=1.0, tpot_s=0.1)
    assert slo.met_by(0.5, 0.05)
    assert not slo.met_by(1.5, 0.05)        # TTFT blown
    assert not slo.met_by(0.5, 0.2)         # TPOT blown
    assert slo.met_by(0.5, None)            # no decode phase: TTFT decides
    assert not slo.met_by(1.5, None)


def test_summarize_computes_exact_numbers():
    # two requests: ttft 1s and 3s; one decodes 4 tokens over 3s (tpot
    # 1s), the other is single-token
    res = _result([(0.0, 1.0, 4.0, 4), (1.0, 4.0, 4.0, 1)])
    rep = summarize(res, "chat", "tilelink",
                    slo=SloSpec(ttft_s=2.0, tpot_s=1.5))
    assert rep.n_requests == 2
    assert rep.makespan_s == pytest.approx(4.0)
    assert rep.throughput_rps == pytest.approx(2 / 4.0)
    assert rep.output_tok_per_s == pytest.approx(5 / 4.0)
    assert rep.ttft_p50_s == pytest.approx(2.0)     # midpoint of 1 and 3
    assert rep.tpot_p50_s == pytest.approx(1.0)
    assert rep.queue_depth_max == 2
    # request 0 meets (ttft 1 <= 2, tpot 1 <= 1.5); request 1 blows TTFT
    assert rep.slo_attainment == pytest.approx(0.5)


def test_summarize_tpot_is_null_when_nothing_decodes():
    res = _result([(0.0, 1.0, 1.0, 1), (0.0, 1.5, 1.5, 1)])
    rep = summarize(res, "chat", "torch")
    assert rep.tpot_p50_s is None and rep.tpot_p99_s is None


def test_summarize_rejects_unfinished_requests():
    res = _result([(0.0, 1.0, 2.0, 2)])
    res.logs[0].finish_s = None
    with pytest.raises(ServeError, match="unfinished"):
        summarize(res, "chat", "torch")


def test_rows_satisfy_the_serving_schema():
    res = _result([(0.0, 1.0, 4.0, 4), (1.0, 4.0, 4.0, 1)])
    rows = [summarize(res, "chat", m).row()
            for m in ("torch", "tilelink")]
    # also the all-null-TPOT shape
    rows.append(summarize(_result([(0.0, 1.0, 1.0, 1)]), "rag",
                          "torch").row())
    assert validate_serving_rows(rows, min_rows=3) == []
    # strict JSON round trip (no NaN/Infinity can sneak in)
    assert json.loads(json.dumps(rows, allow_nan=False)) == rows


def test_schema_rejects_drifted_rows():
    res = _result([(0.0, 1.0, 4.0, 4)])
    good = summarize(res, "chat", "tilelink").row()
    bad_half_null = dict(good, tpot_p50_s=None)      # p99 stays numeric
    assert any("null together" in e
               for e in validate_serving_rows([bad_half_null]))
    assert any("slo_attainment" in e for e in validate_serving_rows(
        [dict(good, slo_attainment=1.5)]))
    assert any("positive" in e for e in validate_serving_rows(
        [dict(good, throughput_rps=0.0)]))
    assert any("unknown fields" in e for e in validate_serving_rows(
        [dict(good, surprise=1)]))
    # pool stats share TPOT's null-together discipline
    assert any("null together" in e for e in validate_serving_rows(
        [dict(good, pool_occupancy_p50=0.5, pool_occupancy_max=None)]))
    assert any("in [0, 1]" in e for e in validate_serving_rows(
        [dict(good, pool_occupancy_p50=1.2, pool_occupancy_max=1.2)]))
    assert any(">= 0" in e for e in validate_serving_rows(
        [dict(good, n_preemptions=-1)]))


def test_format_reports_renders_every_cell():
    res = _result([(0.0, 1.0, 4.0, 4)])
    reports = [summarize(res, "chat", m) for m in ("torch", "tilelink")]
    out = format_reports(reports, "unit test")
    assert "torch" in out and "tilelink" in out and "SLO %" in out


def test_reports_compare_by_value():
    res = _result([(0.0, 1.0, 4.0, 4)])
    assert summarize(res, "chat", "torch") == summarize(res, "chat", "torch")
    assert isinstance(summarize(res, "chat", "torch"), ServingReport)
