"""Tests for the serving workload generators (repro.serve.workload)."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.workload import (
    SCENARIOS,
    Scenario,
    generate_requests,
    replay_trace,
)


def _gaps(reqs):
    times = [r.arrival_s for r in reqs]
    return [b - a for a, b in zip(times, times[1:])]


def test_presets_cover_the_three_named_scenarios():
    assert {"chat", "rag", "batch-summarize"} <= set(SCENARIOS)
    assert SCENARIOS["chat"].arrival == "poisson"
    assert SCENARIOS["rag"].arrival == "bursty"
    assert SCENARIOS["batch-summarize"].arrival == "waves"


def test_same_seed_is_byte_identical():
    for name in SCENARIOS:
        assert generate_requests(name, 200, seed=7) == \
            generate_requests(name, 200, seed=7)


def test_different_seed_differs():
    assert generate_requests("chat", 200, seed=0) != \
        generate_requests("chat", 200, seed=1)


def test_requests_are_well_formed():
    for name, sc in SCENARIOS.items():
        reqs = generate_requests(name, 500, seed=0)
        assert [r.rid for r in reqs] == list(range(500))
        arrivals = [r.arrival_s for r in reqs]
        assert arrivals == sorted(arrivals)
        for r in reqs:
            assert 1 <= r.prompt_tokens <= sc.prompt_max
            assert 1 <= r.output_tokens <= sc.output_max


def test_poisson_hits_the_offered_rate():
    reqs = generate_requests("chat", 4000, seed=0)
    rate = len(reqs) / reqs[-1].arrival_s
    assert rate == pytest.approx(SCENARIOS["chat"].rate_rps, rel=0.1)


def test_rate_override_scales_arrivals():
    slow = generate_requests("chat", 2000, seed=0, rate_rps=2.0)
    fast = generate_requests("chat", 2000, seed=0, rate_rps=8.0)
    assert slow[-1].arrival_s == pytest.approx(4 * fast[-1].arrival_s,
                                               rel=0.15)


def test_bursty_is_burstier_than_poisson():
    """Coefficient of variation of inter-arrival gaps: ~1 for Poisson,
    strictly larger for the on/off modulated process."""
    import statistics

    def cv(reqs):
        g = _gaps(reqs)
        return statistics.pstdev(g) / statistics.mean(g)

    bursty = generate_requests("rag", 3000, seed=0)
    poisson = generate_requests(
        Scenario("flat", arrival="poisson",
                 rate_rps=SCENARIOS["rag"].rate_rps), 3000, seed=0)
    assert cv(bursty) > cv(poisson) * 1.2


def test_bursty_keeps_the_average_rate():
    reqs = generate_requests("rag", 4000, seed=0)
    rate = len(reqs) / reqs[-1].arrival_s
    assert rate == pytest.approx(SCENARIOS["rag"].rate_rps, rel=0.25)


def test_waves_arrive_in_deterministic_batches():
    sc = SCENARIOS["batch-summarize"]
    reqs = generate_requests("batch-summarize", 3 * sc.wave_size, seed=0)
    for r in reqs:
        assert r.arrival_s % sc.wave_gap_s == 0.0
        assert r.arrival_s == (r.rid // sc.wave_size) * sc.wave_gap_s


def test_lognormal_lengths_center_on_the_mean():
    reqs = generate_requests("chat", 5000, seed=0)
    sc = SCENARIOS["chat"]
    mean_prompt = sum(r.prompt_tokens for r in reqs) / len(reqs)
    # the clamp shaves the right tail, so the sample mean sits at or a
    # bit below the distribution mean
    assert 0.7 * sc.prompt_mean <= mean_prompt <= 1.1 * sc.prompt_mean


def test_replay_trace_passthrough_and_sorting():
    reqs = replay_trace([3.0, 1.0, 2.0], [10, 20, 30], [1, 2, 3])
    assert [r.arrival_s for r in reqs] == [1.0, 2.0, 3.0]
    assert [r.prompt_tokens for r in reqs] == [20, 30, 10]


def test_replay_trace_rejects_bad_input():
    with pytest.raises(ServeError, match="trace columns disagree"):
        replay_trace([0.0, 1.0], [10], [1, 1])
    with pytest.raises(ServeError, match="must be >= 1"):
        replay_trace([0.0], [0], [1])


def test_unknown_scenario_and_bad_params_raise():
    with pytest.raises(ServeError, match="unknown scenario"):
        generate_requests("tweets", 10)
    with pytest.raises(ServeError, match="unknown arrival"):
        generate_requests(Scenario("x", arrival="fractal"), 10)
    with pytest.raises(ServeError, match="must be positive"):
        generate_requests("chat", 0)
    with pytest.raises(ServeError, match="rate_rps"):
        generate_requests("chat", 10, rate_rps=0.0)
    with pytest.raises(ServeError, match="rate_rps"):
        generate_requests("rag", 10, rate_rps=-1.0)
