"""The §4.2 demonstration: pipelining vs memory consistency.

A consumer kernel loads data that a producer pushes remotely, guarded by
``consumer_tile_wait``.  With the consistency pass enabled the schedule is
correct; with it disabled, the pipeliner hoists the load above the wait
(prefetch one iteration early) and the consumer reads *stale* data —
observable as wrong numerics.  This is exactly the failure mode the paper's
pass exists to prevent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.program import CompileOptions
from repro.lang import tl
from repro.lang.dsl import kernel
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping
from repro.runtime.launcher import launch_kernel
from repro.sim.engine import Timeout
from tests.conftest import make_ctx

WORLD = 2
TILES = 4
BM = 8
N = 8


@kernel
def _consumer(data, out, channel: tl.BlockChannel, TILES: tl.constexpr,
              BM: tl.constexpr, N: tl.constexpr):
    for t in range(TILES):
        tl.consumer_tile_wait(t)
        x = tl.load(data, (t * BM, t * BM + BM), (0, N))
        y = x * 2.0
        tl.store(out, (t * BM, t * BM + BM), (0, N), y)


def _run(options: CompileOptions) -> np.ndarray:
    ctx = make_ctx(world=1, numerics=True)
    machine = ctx.machine
    # data starts as zeros; a "producer" process fills tile t at time t
    # and then notifies — tile values are (t + 1)
    ctx.alloc("data", (TILES * BM, N), "float32", fill=0.0)
    ctx.alloc("out", (TILES * BM, N), "float32", fill=0.0)
    mapping = AffineTileMapping(TILES * BM, BM, 1, channels_per_rank=TILES)
    grid = TileGrid(TILES * BM, N, BM, N)
    channels = ctx.make_block_channels("t", mapping=mapping, comm_grid=grid,
                                       consumer_grid=grid)

    def producer():
        data = ctx.heap.tensor("data", 0)
        for t in range(TILES):
            yield Timeout(50e-6)
            data.write_tile(((t * BM, (t + 1) * BM), (0, N)),
                            np.full((BM, N), float(t + 1), np.float32))
            channels[0].barriers.post_add(t, 1, from_rank=0)

    machine.spawn(producer(), name="producer")
    launch_kernel(machine, _consumer, 1, 0, {
        "data": ctx.heap.tensors("data"), "out": ctx.heap.tensors("out"),
        "channel": channels, "TILES": TILES, "BM": BM, "N": N,
    }, options=options)
    ctx.run()
    return ctx.heap.tensor("out", 0).numpy()


def expected() -> np.ndarray:
    ref = np.zeros((TILES * BM, N), np.float32)
    for t in range(TILES):
        ref[t * BM:(t + 1) * BM] = 2.0 * (t + 1)
    return ref


def test_with_consistency_pass_results_are_correct():
    out = _run(CompileOptions())
    assert np.array_equal(out, expected())


def test_without_consistency_pass_results_are_stale():
    out = _run(CompileOptions(enforce_consistency=False, validate=False))
    ref = expected()
    # the hoisted loads observe pre-notify (stale) data for at least one tile
    assert not np.array_equal(out, ref)
    # tile 0 is prefetched at loop entry, before the first notify: all-zero
    assert (out[:BM] == 0).all()


def test_disabling_pipelining_is_also_correct():
    out = _run(CompileOptions(num_stages=1))
    assert np.array_equal(out, expected())
