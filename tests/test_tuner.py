"""Tests for the repro.tuner subsystem (space / prune / search / cache).

Includes the PR's acceptance scenario: on the Figure-8 MLP-1 AG+GEMM
shape, ``tune()`` returns a config no slower than the hand-picked
``AgGemmConfig`` default, the cost-model pruner discards at least half of
the candidate space before any simulation, and a second call is served
from the persistent cache without re-simulating.
"""

from __future__ import annotations

import json

import pytest

from repro.config import H800
from repro.kernels.ag_gemm import (
    AgGemmConfig,
    ag_gemm_overlapped,
    ag_gemm_search_space,
    ag_gemm_tune_task,
)
from repro.kernels.gemm_rs import GemmRsConfig, gemm_rs_tune_task
from repro.models.configs import MLP_BENCHES
from repro.tuner import (
    Axis,
    SearchSpace,
    TuneCache,
    TunerError,
    divisors_of,
    get_space,
    prune,
    registered_kernels,
    tune,
)

# small shape used by most search tests (fast per-candidate simulation)
SMALL = dict(m=512, n=256, k=256)
SMALL_WORLD = 4


def small_task(**kw):
    return ag_gemm_tune_task(SMALL["m"], SMALL["n"], SMALL["k"],
                             world=SMALL_WORLD, **kw)


# ---------------------------------------------------------------------------
# space
# ---------------------------------------------------------------------------

def test_axis_validation():
    with pytest.raises(TunerError):
        Axis("empty", ())
    with pytest.raises(TunerError):
        Axis("dup", (1, 1))


def test_space_product_and_constraint():
    space = SearchSpace(
        axes=(Axis("a", (1, 2)), Axis("b", ("x", "y", "z"))),
        constraint=lambda c: not (c["a"] == 2 and c["b"] == "z"))
    cands = list(space.candidates())
    assert len(space) == 5 == len(cands)
    assert {"a": 1, "b": "x"} in cands
    assert {"a": 2, "b": "z"} not in cands


def test_space_duplicate_axis_names_rejected():
    with pytest.raises(TunerError):
        SearchSpace(axes=(Axis("a", (1,)), Axis("a", (2,))))


def test_space_fingerprint_tracks_axes():
    s1 = SearchSpace(axes=(Axis("a", (1, 2)),))
    s2 = SearchSpace(axes=(Axis("a", (1, 3)),))
    s3 = SearchSpace(axes=(Axis("b", (1, 2)),))
    assert s1.fingerprint() == SearchSpace(axes=(Axis("a", (1, 2)),)).fingerprint()
    assert len({s1.fingerprint(), s2.fingerprint(), s3.fingerprint()}) == 3


def test_divisors_of():
    assert divisors_of(1024, (64, 128, 300)) == (64, 128)
    with pytest.raises(TunerError):
        divisors_of(100, (33,))


def test_kernel_registry():
    assert {"ag_gemm", "gemm_rs"} <= set(registered_kernels())
    space = get_space("ag_gemm")(8192, 1376, 4096, 8, preset="small")
    assert set(space.axis_names) == {"block_m", "block_n", "block_k",
                                     "block_mp", "comm_blocks", "mode"}
    # dma ignores comm_blocks: exactly one canonical value survives
    dma = [c for c in space.candidates() if c["mode"] == "dma"]
    assert len({c["comm_blocks"] for c in dma}) == 1
    with pytest.raises(TunerError):
        get_space("nonexistent_kernel")


def test_default_config_is_in_its_space():
    for task in (small_task(),
                 gemm_rs_tune_task(1024, 512, 512, world=4)):
        assert task.default in list(task.space.candidates())


# ---------------------------------------------------------------------------
# costprune
# ---------------------------------------------------------------------------

def test_prune_static_filter_and_ordering():
    cands = [{"v": v} for v in (5, 1, 9, 3, 7)]
    res = prune(cands, lambda c: float(c["v"]), incumbent=5.0)
    assert res.n_total == 5
    assert res.n_pruned == 2                     # 9 and 7 exceed 5
    assert [c["v"] for c in res.survivors] == [1, 3, 5]
    assert res.bounds == (1.0, 3.0, 5.0)
    assert res.prune_fraction == pytest.approx(0.4)


def test_prune_slack_keeps_near_ties():
    cands = [{"v": v} for v in (10, 11, 20)]
    res = prune(cands, lambda c: float(c["v"]), incumbent=10.0, slack=0.15)
    assert [c["v"] for c in res.survivors] == [10, 11]
    with pytest.raises(ValueError):
        prune(cands, lambda c: 1.0, incumbent=0.0)


def test_bound_is_a_lower_bound_on_simulated_time():
    """The pruner is only sound if bound(c) <= simulated(c)."""
    from repro.bench.harness import run_builder

    task = small_task()
    for cand in [task.default,
                 dict(task.default, mode="pull", comm_blocks=8),
                 dict(task.default, block_m=256, mode="push",
                      comm_blocks=4)]:
        simulated = run_builder(task.make_builder(cand, 1.0),
                                world=SMALL_WORLD)
        assert task.bound(cand) <= simulated


# ---------------------------------------------------------------------------
# search strategies
# ---------------------------------------------------------------------------

def test_tune_exhaustive_beats_or_ties_default():
    res = tune(small_task(), world=SMALL_WORLD)
    assert res.best_time <= res.default_time
    assert res.n_simulated <= res.n_candidates
    assert not res.from_cache
    assert res.trials and res.trials[0][0] == small_task().default
    assert isinstance(res.best_config, AgGemmConfig)
    res.best_config.validate(SMALL_WORLD)


def test_tune_random_is_seeded_and_bounded():
    r1 = tune(small_task(), world=SMALL_WORLD, strategy="random",
              max_trials=3, seed=7)
    r2 = tune(small_task(), world=SMALL_WORLD, strategy="random",
              max_trials=3, seed=7)
    assert r1.n_simulated <= 4                    # default + 3 trials
    assert r1.best == r2.best
    assert r1.best_time == pytest.approx(r2.best_time)
    assert r1.best_time <= r1.default_time


def test_tune_halving_runs_low_fidelity_rungs():
    space = SearchSpace(
        axes=(Axis("block_m", (128,)), Axis("block_n", (128,)),
              Axis("block_k", (64,)), Axis("block_mp", (128, 256)),
              Axis("comm_blocks", (4, 8, 20)),
              Axis("mode", ("dma", "pull", "push"))),
        constraint=lambda c: c["mode"] != "dma" or c["comm_blocks"] == 20)
    task = ag_gemm_tune_task(2048, 256, 256, world=SMALL_WORLD, space=space)
    res = tune(task, world=SMALL_WORLD, strategy="halving",
               halving_scale=0.25, halving_eta=2)
    assert res.best_time <= res.default_time
    # every survivor got a scaled rung plus >= 1 full-fidelity finalist
    assert res.n_simulated > len(res.trials)


def test_tune_rejects_unknown_strategy():
    with pytest.raises(TunerError):
        tune(small_task(), world=SMALL_WORLD, strategy="simulated-annealing")


def test_halving_eta_below_two_rejected(tmp_path):
    """Regression: ``halving_eta=1`` used to be silently clamped to 2 at
    search time while ``search_signature`` recorded the unclamped value —
    an ``he1`` cache entry then described a search that never ran and
    duplicated the ``he2`` result under a second key."""
    from repro.tuner import search_signature

    cache = TuneCache(tmp_path / "cache.json")
    for bad_eta in (1, 0, -3):
        with pytest.raises(TunerError, match="halving_eta"):
            tune(small_task(), world=SMALL_WORLD, strategy="halving",
                 halving_eta=bad_eta, cache=cache)
    assert len(cache) == 0                        # nothing cached on reject
    # the signature a clamped eta would have duplicated is still distinct
    assert search_signature("halving", None, 0, halving_eta=1) != \
        search_signature("halving", None, 0, halving_eta=2)
    # the boundary value still runs (and really halves)
    res = tune(small_task(), world=SMALL_WORLD, strategy="halving",
               halving_eta=2, cache=cache)
    assert res.best_time <= res.default_time


def test_gemm_rs_autotune_small_shape():
    res = GemmRsConfig.autotune(1024, 512, 512, world=4, max_trials=3,
                                full_result=True)
    assert res.best_time <= res.default_time
    cfg = res.best_config
    assert isinstance(cfg, GemmRsConfig)
    cfg.validate(4)


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------

def test_cache_concurrent_writers_merge(tmp_path):
    """Two handles on one cache file (two processes tuning different
    kernels) must not drop each other's entries on flush."""
    path = tmp_path / "cache.json"
    a = TuneCache(path)
    b = TuneCache(path)
    # both have read (empty) state before either writes
    assert len(a) == 0 and len(b) == 0
    a.put("kernel-a|shape", {"block_m": 128}, 1.0)
    # b's blind read-modify-write used to clobber a's entry here
    b.put("kernel-b|shape", {"block_m": 256}, 2.0)
    fresh = TuneCache(path)
    assert "kernel-a|shape" in fresh and "kernel-b|shape" in fresh
    # the merging writer also refreshed its own in-memory view
    assert "kernel-a|shape" in b


def test_cache_concurrent_processes_do_not_drop_entries(tmp_path):
    """Real multi-process hammer: N workers each put a disjoint key into
    one cache file concurrently; every entry must survive (flock +
    merge-on-flush)."""
    import multiprocessing as mp

    path = tmp_path / "cache.json"
    n, per = 4, 5
    procs = [mp.Process(target=_cache_writer_proc, args=(str(path), w, per))
             for w in range(n)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    final = TuneCache(path)
    missing = [f"w{w}k{i}" for w in range(n) for i in range(per)
               if f"w{w}k{i}" not in final]
    assert not missing, f"lost entries: {missing}"


def _cache_writer_proc(path: str, worker: int, per: int) -> None:
    cache = TuneCache(path)
    for i in range(per):
        cache.put(f"w{worker}k{i}", {"block_m": 128}, float(worker + 1))


def test_cache_concurrent_writers_last_put_wins_conflicts(tmp_path):
    path = tmp_path / "cache.json"
    a = TuneCache(path)
    b = TuneCache(path)
    a.put("k", {"block_m": 128}, 1.0)
    b.put("k", {"block_m": 256}, 2.0)     # later write, same key
    assert TuneCache(path).get("k")["best"] == {"block_m": 256}


def test_cache_clear_does_not_resurrect_disk_entries(tmp_path):
    """clear() must really clear — the merge-on-flush is for puts only."""
    path = tmp_path / "cache.json"
    TuneCache(path).put("k", {"x": 1}, 1.0)
    wiper = TuneCache(path)
    wiper.clear()
    assert len(TuneCache(path)) == 0


def test_cache_version_mismatch_reads_as_empty_and_is_replaced(tmp_path):
    """A foreign/older on-disk version is ignored on read and not merged
    back on write (its keys may mean something else entirely)."""
    path = tmp_path / "cache.json"
    path.write_text(json.dumps({"version": 999, "entries": {"old": {}}}))
    cache = TuneCache(path)
    assert cache.get("old") is None
    cache.put("new", {"block_m": 64}, 3.0)
    raw = json.loads(path.read_text())
    assert raw["version"] == 1
    assert "new" in raw["entries"] and "old" not in raw["entries"]


def test_cache_roundtrip_and_corruption_tolerance(tmp_path):
    path = tmp_path / "cache.json"
    cache = TuneCache(path)
    assert cache.get("k") is None and len(cache) == 0
    cache.put("k", {"block_m": 128}, 1.5e-4, meta={"strategy": "exhaustive"})
    fresh = TuneCache(path)
    assert "k" in fresh
    entry = fresh.get("k")
    assert entry["best"] == {"block_m": 128}
    assert entry["time_s"] == pytest.approx(1.5e-4)
    # corrupt file reads as empty, not an exception
    path.write_text("{not json")
    assert TuneCache(path).get("k") is None
    # on-disk format is plain versioned JSON
    cache2 = TuneCache(tmp_path / "c2.json")
    cache2.put("a", {"x": 1}, 2.0)
    raw = json.loads((tmp_path / "c2.json").read_text())
    assert raw["version"] == 1 and "a" in raw["entries"]


def test_cache_merge_from_folds_entries_with_one_flush(tmp_path):
    """merge_from() is the parallel sweep's result funnel: worker files
    fold into the shared cache, source winning key conflicts."""
    shared = TuneCache(tmp_path / "shared.json")
    shared.put("keep", {"block_m": 128}, 1.0)
    shared.put("conflict", {"block_m": 128}, 1.0)
    worker = TuneCache(tmp_path / "worker.json")
    worker.put("new", {"block_m": 256}, 2.0)
    worker.put("conflict", {"block_m": 64}, 0.5)

    other = TuneCache(tmp_path / "other.json")
    other.put("more", {"block_m": 512}, 3.0)

    # variadic: the whole batch folds in with a single flush
    assert shared.merge_from(tmp_path / "worker.json", other) == 3
    fresh = TuneCache(tmp_path / "shared.json")
    assert set(fresh.keys()) == {"keep", "new", "conflict", "more"}
    assert fresh.get("conflict")["best"] == {"block_m": 64}
    # merging a missing/empty source is a no-op, not an error
    assert shared.merge_from(tmp_path / "nope.json") == 0
    assert shared.merge_from() == 0
    # re-merging identical entries counts (and rewrites) nothing
    assert shared.merge_from(other) == 0


def test_cache_readonly_never_writes(tmp_path):
    path = tmp_path / "shipped.json"
    TuneCache(path).put("k", {"block_m": 128}, 1.0)
    before = path.read_text()
    ro = TuneCache(path, readonly=True)
    assert ro.get("k") is not None
    ro.put("k2", {"block_m": 256}, 2.0)      # visible in memory only
    assert "k2" in ro
    assert path.read_text() == before        # file untouched
    assert "k2" not in TuneCache(path)


def test_cache_readonly_merge_and_clear_raise(tmp_path):
    """Regression: merge_from() on a readonly cache used to mutate the
    in-memory view and report a positive merged count while _flush was a
    silent no-op — callers believed the entries persisted.  clear() had
    the mirror-image bug (in-memory empty, file untouched)."""
    path = tmp_path / "shipped.json"
    TuneCache(path).put("k", {"block_m": 128}, 1.0)
    src = TuneCache(tmp_path / "src.json")
    src.put("new", {"block_m": 256}, 2.0)
    before = path.read_text()

    ro = TuneCache(path, readonly=True)
    with pytest.raises(TunerError, match="readonly"):
        ro.merge_from(src)
    with pytest.raises(TunerError, match="readonly"):
        ro.clear()
    # neither the file nor the in-memory view diverged
    assert path.read_text() == before
    assert "new" not in ro and "k" in ro
    # writable handles keep the full contract
    rw = TuneCache(path)
    assert rw.merge_from(src) == 1
    rw.clear()
    assert len(TuneCache(path)) == 0


def test_cache_hit_coerces_default_time_to_float(tmp_path):
    """Regression: a hand-edited/foreign cache file carrying
    ``meta.default_time`` as a JSON string used to flow straight into
    ``TuneResult.default_time`` (unlike ``time_s``), letting
    ``SweepReport.rows()`` emit a stringly-typed ``default_ms``."""
    from repro.tuner import task_cache_key
    from repro.tuner.sweep import sweep as sweep_fn

    task = small_task()
    cache = TuneCache(tmp_path / "cache.json")
    key = task_cache_key(task, world=SMALL_WORLD, spec=H800)
    cache.put(key, dict(task.default), 1.1e-5,
              meta={"default_time": "1.5e-5"})      # stringly, hand-edited

    res = tune(task, world=SMALL_WORLD, cache=cache)
    assert res.from_cache
    assert isinstance(res.default_time, float)
    assert res.default_time == pytest.approx(1.5e-5)
    row = sweep_fn([("hit", task)], world=SMALL_WORLD, cache=cache).rows()[0]
    assert isinstance(row["default_ms"], float)
    # absent stays None (the null contract), never float(None)
    cache.put(key, dict(task.default), 1.1e-5, meta={})
    res2 = tune(task, world=SMALL_WORLD, cache=TuneCache(tmp_path / "cache.json"))
    assert res2.from_cache and res2.default_time is None


def test_tune_cache_hit_skips_simulation(tmp_path):
    cache = TuneCache(tmp_path / "cache.json")
    first = tune(small_task(), world=SMALL_WORLD, cache=cache)
    assert not first.from_cache and first.n_simulated > 0
    second = tune(small_task(), world=SMALL_WORLD, cache=cache)
    assert second.from_cache
    assert second.n_simulated == 0
    assert second.best == first.best
    assert second.best_time == pytest.approx(first.best_time)
    assert isinstance(second.best_config, AgGemmConfig)


def test_capped_search_does_not_alias_full_search(tmp_path):
    """A weak (random/capped) search's winner must not be served to a
    later full exhaustive request on the same shape/spec/space."""
    cache = TuneCache(tmp_path / "cache.json")
    weak = tune(small_task(), world=SMALL_WORLD, strategy="random",
                max_trials=1, seed=3, cache=cache)
    full = tune(small_task(), world=SMALL_WORLD, cache=cache)
    assert not full.from_cache                    # really searched
    assert full.best_time <= weak.best_time
    # but an identical capped request does hit its own entry
    weak2 = tune(small_task(), world=SMALL_WORLD, strategy="random",
                 max_trials=1, seed=3, cache=cache)
    assert weak2.from_cache and weak2.best == weak.best


def test_search_signature_is_normalized():
    """The key suffix must not leak Python reprs: an uncapped restricted
    search renders ``mtall``, never ``mtNone``."""
    from repro.tuner import search_signature

    assert search_signature("exhaustive", None, 0) == ""
    assert search_signature("exhaustive", 5, 3) == "|exhaustive-mt5-s3"
    assert search_signature("random", None, 0) == "|random-mtall-s0"
    assert search_signature("random", 7, 1) == "|random-mt7-s1"
    for strategy in ("exhaustive", "random", "halving"):
        assert "None" not in search_signature(strategy, None, 0)


def test_search_signature_folds_all_result_changing_params():
    """slack loosens the prune, and the halving rung scale/eta pick the
    finalists — all three change the winner, so all three key."""
    from repro.tuner import search_signature

    # halving always carries its rung parameters (legacy keys never match)
    assert search_signature("halving", None, 2) == \
        "|halving-mtall-s2-hs0.25-he2"
    assert search_signature("halving", 4, 0, halving_scale=0.5,
                            halving_eta=3) == "|halving-mt4-s0-hs0.5-he3"
    # a slack-loosened prune never shares the strict run's key — not even
    # the canonical bare exhaustive one
    assert search_signature("exhaustive", None, 0, slack=0.1) == \
        "|exhaustive-mtall-s0-sl0.1"
    assert search_signature("random", 3, 1, slack=0.05) == \
        "|random-mt3-s1-sl0.05"
    # distinct parameter values produce distinct suffixes
    sigs = {search_signature("halving", None, 0, halving_scale=s)
            for s in (0.1, 0.25, 0.5)}
    assert len(sigs) == 3


def test_halving_scale_does_not_alias_other_searches(tmp_path):
    """Acceptance regression: a halving search with non-default
    ``halving_scale`` must not be served another run's winner — not the
    exhaustive entry, not a differently-scaled halving entry."""
    cache = TuneCache(tmp_path / "cache.json")
    full = tune(small_task(), world=SMALL_WORLD, cache=cache)
    aggressive = tune(small_task(), world=SMALL_WORLD, strategy="halving",
                      halving_scale=0.9, cache=cache)
    assert not aggressive.from_cache              # no alias of exhaustive
    default_scale = tune(small_task(), world=SMALL_WORLD, strategy="halving",
                         cache=cache)
    assert not default_scale.from_cache           # no alias of hs=0.9 either
    # the canonical exhaustive entry was never clobbered by the weaker runs
    rerun = tune(small_task(), world=SMALL_WORLD, cache=cache)
    assert rerun.from_cache and rerun.best == full.best
    # while an identical halving request does hit its own entry
    again = tune(small_task(), world=SMALL_WORLD, strategy="halving",
                 halving_scale=0.9, cache=cache)
    assert again.from_cache and again.best == aggressive.best


def test_legacy_halving_keys_are_not_served(tmp_path):
    """Migration safety (same stance as the ``mtNone`` cleanup): an entry
    stored under the pre-scale halving key format must not be served to
    the new scale-qualified key."""
    from repro.tuner import task_cache_key

    task = small_task()
    cache = TuneCache(tmp_path / "cache.json")
    new_key = task_cache_key(task, world=SMALL_WORLD, spec=H800,
                             strategy="halving", max_trials=2, seed=0)
    assert new_key.endswith("|halving-mt2-s0-hs0.25-he2")
    legacy_key = new_key[:new_key.index("-hs")]   # old format: no rung params
    cache.put(legacy_key, {"bogus": 1}, 1e-9)     # poisoned legacy entry

    res = tune(task, world=SMALL_WORLD, strategy="halving", max_trials=2,
               cache=cache)
    assert not res.from_cache                      # legacy entry ignored
    assert "bogus" not in res.best
    assert new_key in cache                        # qualified key written


def test_slack_does_not_alias_strict_prune(tmp_path):
    """A slack-loosened prune caches under its own key; the strict run
    re-searches instead of inheriting the loosened winner."""
    cache = TuneCache(tmp_path / "cache.json")
    loose = tune(small_task(), world=SMALL_WORLD, slack=0.25, cache=cache)
    strict = tune(small_task(), world=SMALL_WORLD, cache=cache)
    assert not strict.from_cache
    assert len(cache) == 2
    assert loose.best_time >= strict.best_time * (1 - 1e-12)


def test_legacy_mtnone_keys_are_not_served(tmp_path):
    """Migration safety: an entry stored under the old ``mtNone`` key
    format must not alias the normalized ``mtall`` key — the search
    re-runs and writes the normalized key."""
    from repro.tuner import task_cache_key
    from repro.config import H800

    task = small_task()
    cache = TuneCache(tmp_path / "cache.json")
    new_key = task_cache_key(task, world=SMALL_WORLD, spec=H800,
                             strategy="random", max_trials=None, seed=0)
    assert new_key.endswith("|random-mtall-s0")
    legacy_key = new_key.replace("mtall", "mtNone")
    cache.put(legacy_key, {"bogus": 1}, 1e-9)     # poisoned legacy entry

    res = tune(task, world=SMALL_WORLD, strategy="random", cache=cache)
    assert not res.from_cache                      # legacy entry ignored
    assert "bogus" not in res.best
    assert new_key in cache                        # normalized key written
    # and an identical rerun now hits the normalized entry
    rerun = tune(task, world=SMALL_WORLD, strategy="random", cache=cache)
    assert rerun.from_cache and rerun.best == res.best


def test_tune_start_tile_non_divisible_shape():
    """tiles_m % world != 0: the consumer start tile must round to the
    tile containing the rank's own segment (the old formula skewed every
    rank off its segment, defeating the tile-order optimization)."""
    import math

    # m=1536, world=4: per-rank rows 384.  The default tile (block_m=128)
    # stays valid, while every block_m=256 candidate hits tiles_m=6 with
    # 6 % 4 != 0 — the exact skew case the start-tile fix addresses.
    m, world = 1536, 4
    assert math.ceil(m / 256) % world != 0
    space = SearchSpace(
        axes=(Axis("block_m", (128, 256)), Axis("block_n", (128,)),
              Axis("block_k", (64,)), Axis("block_mp", (128,)),
              Axis("comm_blocks", (4, 20)),
              Axis("mode", ("dma", "pull", "push"))),
        constraint=lambda c: c["mode"] != "dma" or c["comm_blocks"] == 20)
    task = ag_gemm_tune_task(m, 256, 256, world=world, space=space)
    res = tune(task, world=world)
    # the non-divisible candidates really were simulated, not rejected
    assert any(c["block_m"] == 256 for c, _ in res.trials)
    assert res.best_time <= res.default_time
    res.best_config.validate(world)


def test_halving_respects_max_trials():
    task = small_task()
    res = tune(task, world=SMALL_WORLD, strategy="halving", max_trials=4)
    # default + <=4 scaled rung sims + <=2 finalists
    assert res.n_simulated <= 1 + 4 + 2
    assert res.best_time <= res.default_time


def test_cache_key_isolates_spec_and_space(tmp_path):
    """A different HardwareSpec must not alias a cached result."""
    cache = TuneCache(tmp_path / "cache.json")
    tune(small_task(), world=SMALL_WORLD, cache=cache)
    other_spec = H800.scaled(n_sms=64)
    res = tune(small_task(spec=other_spec), world=SMALL_WORLD,
               spec=other_spec, cache=cache)
    assert not res.from_cache                     # re-tuned, not aliased
    assert len(cache) == 2


# ---------------------------------------------------------------------------
# acceptance: Figure-8 MLP-1 AG+GEMM
# ---------------------------------------------------------------------------

def test_acceptance_mlp1_ag_gemm_tune(tmp_path):
    shape = MLP_BENCHES[0]
    world = 8
    m, k = shape.s, shape.h
    n = shape.i // world
    cache = TuneCache(tmp_path / "tune.json")

    res = AgGemmConfig.autotune(m, n, k, world=world, cache=cache,
                                max_trials=6, full_result=True)
    # tuned config is no slower than the paper's hand-picked default
    assert res.best_time <= res.default_time
    # the cost-model pruner discards >= 50% of candidates pre-simulation
    assert res.prune_fraction >= 0.5
    assert res.n_simulated < res.n_candidates
    res.best_config.validate(world)

    # second call: served from the persistent cache, zero simulations
    res2 = AgGemmConfig.autotune(m, n, k, world=world, cache=cache,
                                 max_trials=6, full_result=True)
    assert res2.from_cache and res2.n_simulated == 0
    assert res2.best == res.best


def test_mode_auto_resolves_through_tuner(tmp_path, monkeypatch):
    """mode='auto' consults the tuner (default cache honours the env
    override) and launches a concrete tuned config."""
    from repro.bench.harness import run_builder

    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "auto.json"))
    m, n, k = SMALL["m"], SMALL["n"], SMALL["k"]

    def build(ctx):
        ctx.alloc("x", (m // SMALL_WORLD, k), "float16", fill=None)
        ctx.alloc("w", (k, n), "float16", fill=None)
        ctx.alloc("y", (m, n), "float16", fill=None)
        cfg = AgGemmConfig(m=m, n=n, k=k, mode="auto")
        ag_gemm_overlapped(ctx, cfg, "x", "w", "y")

    t_auto = run_builder(build, world=SMALL_WORLD)
    t_default = tune(small_task(), world=SMALL_WORLD,
                     cache=TuneCache(tmp_path / "auto.json")).default_time
    assert t_auto <= t_default * 1.001
    assert (tmp_path / "auto.json").exists()      # cache was populated
