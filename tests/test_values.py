"""Tests for the interpreter's tile-value layer (compiler/values.py)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.values import (
    TileVal,
    apply_binary,
    apply_unary,
    broadcast_shapes,
    padded_to,
)
from repro.errors import ShapeError


def test_tileval_metadata():
    t = TileVal((4, 8), np.float16, None)
    assert t.size == 32 and t.nbytes == 64
    arr = np.ones((2, 2), np.float32)
    v = TileVal.from_array(arr)
    assert v.data is arr
    with pytest.raises(ShapeError):
        TileVal((3, 3), np.float32, arr)


def test_padded_to_mask_semantics(rng):
    region = rng.standard_normal((2, 3)).astype(np.float32)
    out = padded_to(region, (4, 4), np.float32)
    assert out.shape == (4, 4)
    assert np.array_equal(out[:2, :3], region)
    assert (out[2:] == 0).all() and (out[:, 3:] == 0).all()
    assert padded_to(None, (4, 4), np.float32) is None
    with pytest.raises(ShapeError):
        padded_to(region, (4,), np.float32)


def test_broadcast_shapes():
    assert broadcast_shapes((4, 1), (4, 8)) == (4, 8)
    assert broadcast_shapes((), (3, 3)) == (3, 3)
    with pytest.raises(ShapeError):
        broadcast_shapes((3, 2), (4, 2))


@given(st.sampled_from(["exp", "log", "relu", "neg", "silu", "gelu"]))
@settings(max_examples=20, deadline=None)
def test_unary_numeric_vs_stub_shapes(op):
    rng = np.random.default_rng(0)
    x = TileVal.from_array(np.abs(rng.standard_normal((3, 5))
                                  .astype(np.float32)) + 0.1)
    out = apply_unary(op, x)
    assert out.shape == (3, 5)
    stub = apply_unary(op, TileVal.stub((3, 5), np.float32))
    assert stub.data is None and stub.shape == out.shape
    assert stub.dtype == out.dtype


def test_unary_silu_matches_definition(rng):
    x = rng.standard_normal((4, 4)).astype(np.float32)
    out = apply_unary("silu", TileVal.from_array(x))
    assert np.allclose(out.data, x / (1 + np.exp(-x)), atol=1e-5)


@given(st.sampled_from(["add", "sub", "mul", "div", "maximum_tile"]))
@settings(max_examples=20, deadline=None)
def test_binary_matches_numpy(op):
    rng = np.random.default_rng(1)
    a = rng.standard_normal((3, 4)).astype(np.float32) + 3.0
    b = rng.standard_normal((3, 4)).astype(np.float32) + 3.0
    out = apply_binary(op, TileVal.from_array(a), TileVal.from_array(b))
    fn = {"add": np.add, "sub": np.subtract, "mul": np.multiply,
          "div": np.divide, "maximum_tile": np.maximum}[op]
    assert np.allclose(out.data, fn(a, b), rtol=1e-5)


def test_binary_tile_scalar_mix(rng):
    a = rng.standard_normal((2, 2)).astype(np.float32)
    out = apply_binary("mul", TileVal.from_array(a), 2.5)
    assert np.allclose(out.data, a * 2.5)
    with pytest.raises(ShapeError):
        apply_binary("add", 1.0, 2.0)


def test_binary_stub_propagates():
    out = apply_binary("add", TileVal.stub((4, 1), np.float16),
                       TileVal.stub((4, 8), np.float32))
    assert out.data is None
    assert out.shape == (4, 8)
    assert out.dtype == np.float32
