"""Tests for signal cells: acquire/release barrier semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.errors import DeadlockError, SimulationError
from repro.memory.signals import SignalArray
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator, Timeout


def make_bank(n=4, rank=0):
    sim = Simulator()
    cost = CostModel(SimConfig(world_size=2).spec)
    return sim, SignalArray(sim, cost, rank, n)


def test_post_applies_after_latency():
    sim, bank = make_bank()
    bank.post_add(0, 1, from_rank=0)
    assert bank.read(0) == 0          # not yet visible
    sim.run()
    assert bank.read(0) == 1
    assert sim.now == pytest.approx(
        CostModel(SimConfig(world_size=2).spec).atomic_latency(remote=False))


def test_remote_post_costs_more():
    sim, bank = make_bank(rank=0)
    bank.post_add(0, 1, from_rank=1)  # remote
    t = sim.run()
    spec = SimConfig(world_size=2).spec
    assert t == pytest.approx(spec.remote_atomic_latency)
    assert spec.remote_atomic_latency > spec.local_atomic_latency


def test_wait_blocks_until_threshold():
    sim, bank = make_bank()
    wake_times = []

    def waiter():
        yield bank.wait_geq(0, 2)
        wake_times.append(sim.now)

    def poster():
        yield Timeout(1.0)
        bank.post_add(0, 1, from_rank=0)
        yield Timeout(1.0)
        bank.post_add(0, 1, from_rank=0)

    sim.spawn(waiter())
    sim.spawn(poster())
    sim.run()
    assert len(wake_times) == 1
    assert wake_times[0] >= 2.0        # not before the second post


def test_satisfied_wait_costs_one_poll():
    sim, bank = make_bank()
    bank.values[0] = 5

    def waiter():
        yield bank.wait_geq(0, 3)
        return sim.now

    p = sim.spawn(waiter())
    sim.run()
    spec = SimConfig(world_size=2).spec
    assert p.result == pytest.approx(spec.spin_poll_interval)


def test_lost_notify_deadlocks():
    sim, bank = make_bank()

    def waiter():
        yield bank.wait_geq(0, 1)

    sim.spawn(waiter(), name="consumer")
    with pytest.raises(DeadlockError):
        sim.run()
    assert bank.blocked_waiters == 1


def test_post_set_is_monotonic_max():
    sim, bank = make_bank()
    bank.post_set(0, 5, from_rank=0)
    bank.post_set(0, 3, from_rank=0)
    sim.run()
    assert bank.read(0) == 5


def test_multiple_waiters_distinct_thresholds():
    sim, bank = make_bank()
    wakes = {}

    def waiter(name, thr):
        yield bank.wait_geq(0, thr)
        wakes[name] = sim.now

    def poster():
        for _ in range(3):
            yield Timeout(1.0)
            bank.post_add(0, 1, from_rank=0)

    sim.spawn(waiter("low", 1))
    sim.spawn(waiter("high", 3))
    sim.spawn(poster())
    sim.run()
    assert wakes["low"] < wakes["high"]


def test_reset_guards_blocked_waiters():
    sim, bank = make_bank()

    def waiter():
        yield bank.wait_geq(0, 1)

    sim.spawn(waiter())
    sim.run(until=1.0)
    with pytest.raises(SimulationError):
        bank.reset()
    bank.post_add(0, 1, from_rank=0)
    sim.run()
    bank.reset()
    assert bank.read(0) == 0


def test_validation():
    sim, bank = make_bank(n=2)
    with pytest.raises(SimulationError):
        bank.post_add(5, 1, from_rank=0)
    with pytest.raises(SimulationError):
        bank.post_add(0, 0, from_rank=0)
    with pytest.raises(SimulationError):
        SignalArray(sim, bank.cost, 0, 0)


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 4)),
                min_size=1, max_size=20),
       st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_waits_never_wake_early(posts, threshold):
    """Property: at wake time the observed value meets the threshold."""
    sim, bank = make_bank(n=4)
    results = []

    def waiter(idx):
        yield bank.wait_geq(idx, threshold)
        results.append((idx, bank.read(idx)))

    total = {i: 0 for i in range(4)}
    for idx, amt in posts:
        total[idx] += amt
    for idx in range(4):
        if total[idx] >= threshold:
            sim.spawn(waiter(idx))

    def poster():
        for idx, amt in posts:
            yield Timeout(0.5)
            bank.post_add(idx, amt, from_rank=0)

    sim.spawn(poster())
    sim.run()
    for idx, seen in results:
        assert seen >= threshold
