"""Integration tests: the dynamic-mapping MoE kernels (Figures 5, 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.ag_moe import AgMoeConfig, ag_moe_overlapped
from repro.kernels.moe_common import build_moe_routing, random_router_logits
from repro.kernels.moe_layer import MoeConfig, moe_layer_tilelink
from repro.kernels.moe_rs import MoeRsConfig, moe_rs_overlapped
from repro.ops.activation import silu_ref
from repro.ops.group_gemm import group_gemm_ref
from tests.conftest import make_ctx

WORLD, MPER, H, D, E, TOPK, BM = 4, 64, 64, 48, 4, 2, 16
M = MPER * WORLD


@pytest.fixture
def routing():
    logits = random_router_logits(M, E, seed=7)
    return build_moe_routing(logits, MPER, WORLD, TOPK, block_m=BM)


def test_ag_moe_numerics(rng, routing):
    ctx = make_ctx(WORLD)
    shards = [rng.standard_normal((MPER, H)).astype(np.float16)
              for _ in range(WORLD)]
    w1 = [rng.standard_normal((E * H, D)).astype(np.float16) * 0.1
          for _ in range(WORLD)]
    ctx.bind("x", shards)
    ctx.bind("w1", w1)
    ctx.alloc("g", (routing.padded_rows, D), "float16")
    cfg = AgMoeConfig(m=M, h=H, d=D, n_experts=E, topk=TOPK, block_m=BM,
                      block_n=16, block_k=16)
    ag_moe_overlapped(ctx, cfg, routing, "x", "w1", "g", grid=8)
    ctx.run()
    tokens = np.concatenate(shards)
    ids = np.clip(routing.padded_token_ids, 0, M - 1)
    mask = routing.valid_mask
    for r in range(WORLD):
        ref = group_gemm_ref(tokens, w1[r].reshape(E, H, D), ids,
                             routing.padded_expert_of_row)
        got = ctx.heap.tensor("g", r).numpy().astype(np.float32)
        assert np.max(np.abs(got[mask] - ref[mask])) < 0.5, r


def test_ag_moe_requires_matching_block(routing):
    ctx = make_ctx(WORLD)
    ctx.alloc("x", (MPER, H), "float16")
    ctx.alloc("w1", (E * H, D), "float16")
    ctx.alloc("g", (routing.padded_rows, D), "float16")
    cfg = AgMoeConfig(m=M, h=H, d=D, n_experts=E, topk=TOPK, block_m=32)
    with pytest.raises(Exception):
        ag_moe_overlapped(ctx, cfg, routing, "x", "w1", "g", grid=8)


def _moe_rs_reference(routing, grouped, w2):
    ref_total = np.zeros((M, H), np.float32)
    for r in range(WORLD):
        out_r = np.zeros((routing.padded_rows, H), np.float32)
        for e in range(E):
            t0 = int(routing.expert_tile_offsets[e]) * BM
            t1 = int(routing.expert_tile_offsets[e + 1]) * BM
            out_r[t0:t1] = grouped[r][t0:t1].astype(np.float32) @ \
                w2[r].reshape(E, D, H)[e].astype(np.float32)
        weighted = out_r * routing.padded_weights[:, None]
        valid = routing.valid_mask
        np.add.at(ref_total, routing.padded_token_ids[valid], weighted[valid])
    return ref_total


def test_moe_rs_numerics(rng, routing):
    ctx = make_ctx(WORLD)
    grouped = [rng.standard_normal((routing.padded_rows, D)).astype(np.float16)
               for _ in range(WORLD)]
    w2 = [rng.standard_normal((E * D, H)).astype(np.float16) * 0.1
          for _ in range(WORLD)]
    ctx.bind("g", grouped)
    ctx.bind("w2", w2)
    ctx.alloc("y", (MPER, H), "float32")
    cfg = MoeRsConfig(m=M, h=H, d=D, block_m=BM, block_n=16, block_k=16,
                      block_mr=16, block_nr=32)
    moe_rs_overlapped(ctx, cfg, routing, "g", "w2", "y", grid=8)
    ctx.run()
    ref_total = _moe_rs_reference(routing, grouped, w2)
    for r in range(WORLD):
        got = ctx.heap.tensor("y", r).numpy()
        ref = ref_total[r * MPER:(r + 1) * MPER]
        assert np.max(np.abs(got - ref)) < 0.5, r


def test_full_moe_layer_matches_baseline(rng, routing):
    """TileLink's overlapped MoE layer and the vLLM baseline solve the
    identical routed problem — their outputs must agree."""
    from repro.baselines.vllm_moe import moe_layer_baseline

    shards = [rng.standard_normal((MPER, H)).astype(np.float16) * 0.3
              for _ in range(WORLD)]
    w1 = [rng.standard_normal((E * H, D)).astype(np.float16) * 0.1
          for _ in range(WORLD)]
    w2 = [rng.standard_normal((E * D, H)).astype(np.float16) * 0.1
          for _ in range(WORLD)]
    cfg = MoeConfig(m=M, h=H, i=D * WORLD, n_experts=E, topk=TOPK,
                    block_m=BM, block_n=16, block_k=16, block_mr=16,
                    block_nr=32)

    # TileLink
    ctx_tl = make_ctx(WORLD)
    ctx_tl.bind("x", shards)
    ctx_tl.bind("w1", w1)
    ctx_tl.bind("w2", w2)
    ctx_tl.alloc("y", (MPER, H), "float32")
    moe_layer_tilelink(ctx_tl, cfg, routing, "x", "w1", "w2", "y")
    ctx_tl.run()

    # vLLM baseline takes 3-d expert stacks
    ctx_bl = make_ctx(WORLD)
    ctx_bl.bind("x", shards)
    ctx_bl.bind("w1", [w.reshape(E, H, D) for w in w1])
    ctx_bl.bind("w2", [w.reshape(E, D, H) for w in w2])
    ctx_bl.alloc("y", (MPER, H), "float32")
    moe_layer_baseline(ctx_bl, cfg, routing, "vllm", "x", "w1", "w2", "y")
    ctx_bl.run()

    for r in range(WORLD):
        tl = ctx_tl.heap.tensor("y", r).numpy()
        bl = ctx_bl.heap.tensor("y", r).numpy()
        assert np.max(np.abs(tl - bl)) < 0.5, r


def test_moe_layer_tilelink_overlaps():
    """The overlapped layer beats the cuBLAS baseline at paper-ish scale."""
    from repro.baselines.vllm_moe import moe_layer_baseline

    world, mper, h, d, e, topk, bm = 8, 512, 512, 192, 8, 2, 128
    m = mper * world
    logits = random_router_logits(m, e, seed=3)
    routing = build_moe_routing(logits, mper, world, topk, block_m=bm)
    cfg = MoeConfig(m=m, h=h, i=d * world, n_experts=e, topk=topk, block_m=bm)
    times = {}
    for impl in ("tilelink", "cublas"):
        ctx = make_ctx(world, numerics=False)
        ctx.alloc("x", (mper, h), "float16")
        ctx.alloc("y", (mper, h), "float32")
        if impl == "tilelink":
            ctx.alloc("w1", (e * h, d), "float16")
            ctx.alloc("w2", (e * d, h), "float16")
            moe_layer_tilelink(ctx, cfg, routing, "x", "w1", "w2", "y")
        else:
            ctx.alloc("w1", (e, h, d), "float16")
            ctx.alloc("w2", (e, d, h), "float16")
            moe_layer_baseline(ctx, cfg, routing, impl, "x", "w1", "w2", "y")
        times[impl] = ctx.run()
    assert times["tilelink"] < times["cublas"]
