"""Tests for the BlockChannel special argument (Figure 7)."""

from __future__ import annotations

import pytest

from repro.errors import LoweringError
from repro.lang.block_channel import BlockChannel
from repro.mapping.dynamic import TableTileMapping
from repro.mapping.layout import TileGrid
from repro.mapping.static import AffineTileMapping
from tests.conftest import make_ctx


def _channels(ctx, **kw):
    mapping = kw.pop("mapping", AffineTileMapping(64, 16, ctx.world_size))
    grid = TileGrid(64, 32, 16, 32)
    return ctx.make_block_channels("t", mapping=mapping, comm_grid=grid,
                                   consumer_grid=grid, **kw)


def test_scalar_fields(ctx2):
    ch = _channels(ctx2)[1]
    assert ch.scalar_field("rank") == 1
    assert ch.scalar_field("num_ranks") == 2
    assert ch.num_barriers == 2          # one channel per rank
    assert ch.num_producer_blocks == ch.num_consumer_blocks == 4
    with pytest.raises(LoweringError):
        ch.scalar_field("does_not_exist")
    with pytest.raises(LoweringError):
        ch.scalar_field("barriers")      # not a scalar


def test_consumer_wait_list_static(ctx2):
    ch = _channels(ctx2)[0]
    # row-tile 0 covers rows [0,16) -> channel 0, threshold = 2 tiles/channel
    assert ch.consumer_wait_list(0) == [(0, 2)]
    assert ch.consumer_wait_list(2) == [(1, 2)]


def test_threshold_scale(ctx2):
    ch = _channels(ctx2, threshold_scale=3)[0]
    assert ch.consumer_wait_list(0) == [(0, 6)]


def test_consumer_mapping_overrides_static(ctx2):
    dyn = TableTileMapping(4, 2, 2)
    dyn.channel_threshold[:] = 7
    for t in range(4):
        dyn.fill(t, t * 16, (t + 1) * 16, t % 2, t % 2)
    ch = _channels(ctx2, consumer_mapping=dyn)[0]
    assert ch.consumer_wait_list(1) == [(1, 7)]


def test_missing_mapping_raises(ctx2):
    ch = BlockChannel(rank=0, num_ranks=2, comm_blocks=0)
    with pytest.raises(LoweringError):
        ch.require_mapping()
    with pytest.raises(LoweringError):
        ch.consumer_wait_list(0)


def test_is_dynamic_flag(ctx2):
    static_ch = _channels(ctx2)[0]
    assert not static_ch.is_dynamic
    dyn = TableTileMapping(2, 2, 2)
    dyn_ch = BlockChannel(rank=0, num_ranks=2, comm_blocks=0,
                          producer_mapping=dyn)
    assert dyn_ch.is_dynamic


def test_producer_queries(ctx2):
    ch = _channels(ctx2)[0]
    assert ch.producer_range(0) == (0, 16)
    assert ch.producer_rank(3) == 1
    assert ch.producer_channel(3) == 1


def test_banks_are_shared_across_ranks(ctx2):
    channels = _channels(ctx2)
    # rank 0's view of rank 1's bank is the same object rank 1 waits on
    assert channels[0].all_barriers[1] is channels[1].barriers
