"""Tests for NCCL-style collectives and DMA copy-engine data movement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives.copy_engine import dma_all_gather, dma_scatter_segments
from repro.collectives.nccl import NcclCollectives
from repro.errors import ShapeError
from tests.conftest import make_ctx


def _per_rank(rng, world, shape, dtype=np.float32):
    return [rng.standard_normal(shape).astype(dtype) for _ in range(world)]


@pytest.mark.parametrize("world", [2, 4, 8])
def test_all_gather_numerics(world, rng):
    ctx = make_ctx(world)
    shards = _per_rank(rng, world, (4, 6))
    ctx.bind("x", shards)
    ctx.alloc("full", (4 * world, 6), "float32", fill=None)
    NcclCollectives(ctx).all_gather("x", "full")
    ctx.run()
    ref = np.concatenate(shards)
    for r in range(world):
        assert np.allclose(ctx.heap.tensor("full", r).numpy(), ref)


@pytest.mark.parametrize("world", [2, 4])
def test_reduce_scatter_numerics(world, rng):
    ctx = make_ctx(world)
    rows = 8 * world
    srcs = _per_rank(rng, world, (rows, 5))
    ctx.bind("x", srcs)
    ctx.alloc("y", (8, 5), "float32", fill=None)
    NcclCollectives(ctx).reduce_scatter("x", "y")
    ctx.run()
    total = sum(s.astype(np.float32) for s in srcs)
    for r in range(world):
        ref = total[r * 8:(r + 1) * 8]
        assert np.allclose(ctx.heap.tensor("y", r).numpy(), ref, atol=1e-4)


def test_all_reduce_numerics(rng):
    world = 4
    ctx = make_ctx(world)
    srcs = _per_rank(rng, world, (8, 4))
    ctx.bind("x", srcs)
    ctx.alloc("y", (8, 4), "float32", fill=None)
    NcclCollectives(ctx).all_reduce("x", "y")
    ctx.run()
    total = sum(s.astype(np.float32) for s in srcs)
    for r in range(world):
        assert np.allclose(ctx.heap.tensor("y", r).numpy(), total, atol=1e-4)


def test_all_to_all_numerics(rng):
    world = 4
    ctx = make_ctx(world)
    srcs = _per_rank(rng, world, (8, 3))
    ctx.bind("x", srcs)
    ctx.alloc("y", (8, 3), "float32", fill=None)
    NcclCollectives(ctx).all_to_all("x", "y")
    ctx.run()
    for r in range(world):
        got = ctx.heap.tensor("y", r).numpy()
        for q in range(world):
            assert np.allclose(got[q * 2:(q + 1) * 2],
                               srcs[q][r * 2:(r + 1) * 2])


def test_all_gather_timing_scales_with_world():
    t = {}
    for world in (2, 8):
        ctx = make_ctx(world, numerics=False)
        ctx.alloc("x", (1024, 1024), "float16")
        ctx.alloc("full", (1024 * world, 1024), "float16")
        NcclCollectives(ctx).all_gather("x", "full")
        t[world] = ctx.run()
    # ring AG moves (R-1) shards: 8 ranks move 7x of what 2 ranks move
    assert t[8] > t[2] * 3


def test_collective_shape_validation(rng):
    ctx = make_ctx(2)
    ctx.bind("x", _per_rank(rng, 2, (4, 4)))
    ctx.alloc("bad", (9, 4), "float32")
    with pytest.raises(ShapeError):
        NcclCollectives(ctx).all_gather("x", "bad")
    ctx.bind("odd", _per_rank(rng, 2, (5, 4)))
    ctx.alloc("y", (2, 4), "float32")
    with pytest.raises(ShapeError):
        NcclCollectives(ctx).reduce_scatter("odd", "y")


def test_dma_all_gather_posts_signals(rng):
    world = 4
    ctx = make_ctx(world)
    shards = _per_rank(rng, world, (4, 4), np.float16)
    ctx.bind("x", shards)
    ctx.alloc("full", (16, 4), "float16", fill=None)
    banks = ctx.heap.alloc_signals("seg", world)
    dma_all_gather(ctx, "x", "full", banks, segment_notifies=3)
    ctx.run()
    ref = np.concatenate(shards)
    for r in range(world):
        assert np.allclose(ctx.heap.tensor("full", r).numpy().astype(np.float32),
                           ref.astype(np.float32), atol=1e-2)
        for q in range(world):
            assert banks[r].read(q) == 3


def test_dma_scatter_segments(rng):
    world = 2
    ctx = make_ctx(world)
    srcs = _per_rank(rng, world, (8, 4), np.float16)
    ctx.bind("x", srcs)
    ctx.alloc("land", (8, 4), "float16", fill=None)
    banks = ctx.heap.alloc_signals("arr", world)
    dma_scatter_segments(ctx, "x", "land", banks)
    ctx.run()
    for q in range(world):
        got = ctx.heap.tensor("land", q).numpy()
        for r in range(world):
            ref = srcs[r][q * 4:(q + 1) * 4]
            assert np.allclose(got[r * 4:(r + 1) * 4], ref, atol=1e-2)
        assert all(banks[q].read(r) == 1 for r in range(world))


def test_dma_uses_copy_engines_not_sms():
    ctx = make_ctx(2, numerics=False)
    ctx.alloc("x", (256, 256), "float16")
    ctx.alloc("full", (512, 256), "float16")
    sms_before = ctx.machine.device(0).sms.available
    dma_all_gather(ctx, "x", "full", None)
    ctx.run(until=1e-6)
    assert ctx.machine.device(0).sms.available == sms_before
    ctx.run()
