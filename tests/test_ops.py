"""Tests for the library ops: GEMM, grouped GEMM, attention, activations,
routing — numerics against the gold-standard references."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.ops.activation import silu_mul_op, silu_mul_ref, silu_op, silu_ref
from repro.ops.attention import (
    attention_ref,
    flash_attention_op,
    heads_to_seq,
    naive_attention_op,
    seq_to_heads,
)
from repro.ops.gemm import gemm_op, gemm_ref
from repro.ops.group_gemm import (
    fused_group_gemm_op,
    group_gemm_ref,
    per_expert_gemm_op,
)
from repro.ops.topk import topk_reduce_op, topk_reduce_ref, topk_route
from tests.conftest import make_ctx


def test_gemm_op_matches_numpy(rng):
    ctx = make_ctx(1)
    a = rng.standard_normal((16, 12)).astype(np.float16)
    b = rng.standard_normal((12, 8)).astype(np.float16)
    ctx.bind("a", [a])
    ctx.bind("b", [b])
    ctx.alloc("c", (16, 8), "float32")
    gemm_op(ctx, 0, ctx.heap.tensor("a", 0), ctx.heap.tensor("b", 0),
            ctx.heap.tensor("c", 0))
    ctx.run()
    assert np.allclose(ctx.heap.tensor("c", 0).numpy(), gemm_ref(a, b),
                       atol=1e-2)


def test_gemm_op_accumulate(rng):
    ctx = make_ctx(1)
    a = rng.standard_normal((4, 4)).astype(np.float16)
    b = rng.standard_normal((4, 4)).astype(np.float16)
    ctx.bind("a", [a])
    ctx.bind("b", [b])
    ctx.alloc("c", (4, 4), "float32", fill=1.0)
    gemm_op(ctx, 0, ctx.heap.tensor("a", 0), ctx.heap.tensor("b", 0),
            ctx.heap.tensor("c", 0), accumulate=True)
    ctx.run()
    assert np.allclose(ctx.heap.tensor("c", 0).numpy(), gemm_ref(a, b) + 1,
                       atol=1e-2)


def test_gemm_op_shape_check(rng):
    ctx = make_ctx(1)
    ctx.alloc("a", (4, 4), "float16")
    ctx.alloc("b", (5, 4), "float16")
    ctx.alloc("c", (4, 4), "float32")
    with pytest.raises(ShapeError):
        gemm_op(ctx, 0, ctx.heap.tensor("a", 0), ctx.heap.tensor("b", 0),
                ctx.heap.tensor("c", 0))
        ctx.run()


def _routing_fixture(rng, tokens=32, experts=4, topk=2):
    logits = rng.standard_normal((tokens, experts)).astype(np.float32)
    ids, weights = topk_route(logits, topk)
    flat = ids.reshape(-1)
    order = np.argsort(flat, kind="stable")
    sorted_ids = np.arange(tokens).repeat(topk)[order]
    experts_of_row = flat[order]
    return sorted_ids, experts_of_row, weights.reshape(-1)[order]


@pytest.mark.parametrize("impl", ["per_expert", "fused"])
def test_group_gemm_ops_match_reference(rng, impl):
    tokens, experts, topk, H, D = 32, 4, 2, 8, 6
    sorted_ids, experts_of_row, _ = _routing_fixture(rng, tokens, experts, topk)
    tok = rng.standard_normal((tokens, H)).astype(np.float16)
    w = rng.standard_normal((experts, H, D)).astype(np.float16)
    ctx = make_ctx(1)
    ctx.bind("t", [tok])
    ctx.bind("w", [w])
    ctx.alloc("o", (len(sorted_ids), D), "float32")
    op = per_expert_gemm_op if impl == "per_expert" else fused_group_gemm_op
    kwargs = {} if impl == "per_expert" else {"block_m": 8}
    op(ctx, 0, ctx.heap.tensor("t", 0), ctx.heap.tensor("w", 0),
       ctx.heap.tensor("o", 0), sorted_ids, experts_of_row, **kwargs)
    ctx.run()
    ref = group_gemm_ref(tok, w, sorted_ids, experts_of_row)
    assert np.allclose(ctx.heap.tensor("o", 0).numpy(), ref, atol=1e-2)


def test_per_expert_slower_than_fused(rng):
    """The resource-quantization claim: E launches lose to one."""
    tokens, experts = 4096, 16
    sorted_ids = np.arange(tokens, dtype=np.int64)
    experts_of_row = np.repeat(np.arange(experts), tokens // experts)
    times = {}
    for impl, op in (("per_expert", per_expert_gemm_op),
                     ("fused", fused_group_gemm_op)):
        ctx = make_ctx(1, numerics=False)
        ctx.alloc("t", (tokens, 512), "float16")
        ctx.alloc("w", (experts, 512, 256), "float16")
        ctx.alloc("o", (tokens, 256), "float32")
        op(ctx, 0, ctx.heap.tensor("t", 0), ctx.heap.tensor("w", 0),
           ctx.heap.tensor("o", 0), sorted_ids, experts_of_row)
        times[impl] = ctx.run()
    assert times["per_expert"] > 2 * times["fused"]


def test_attention_ref_is_softmax_attention(rng):
    q = rng.standard_normal((2, 5, 4)).astype(np.float32)
    k = rng.standard_normal((2, 7, 4)).astype(np.float32)
    v = rng.standard_normal((2, 7, 4)).astype(np.float32)
    out = attention_ref(q, k, v)
    # direct computation
    s = np.einsum("hqd,hkd->hqk", q, k) / np.sqrt(4)
    p = np.exp(s - s.max(-1, keepdims=True))
    p /= p.sum(-1, keepdims=True)
    assert np.allclose(out, np.einsum("hqk,hkd->hqd", p, v), atol=1e-5)


def test_attention_ref_causal_offset(rng):
    q = rng.standard_normal((1, 4, 4)).astype(np.float32)
    k = rng.standard_normal((1, 8, 4)).astype(np.float32)
    v = rng.standard_normal((1, 8, 4)).astype(np.float32)
    # q_offset=4: row i attends keys [0, 4+i]
    out = attention_ref(q, k, v, causal=True, q_offset=4)
    full = attention_ref(q, k[:, :5], v[:, :5])
    assert np.allclose(out[0, 0], full[0, 0], atol=1e-5)


def test_seq_heads_roundtrip(rng):
    x = rng.standard_normal((10, 12)).astype(np.float16)
    assert np.array_equal(heads_to_seq(seq_to_heads(x, 3, 4)), x)
    with pytest.raises(ShapeError):
        seq_to_heads(x, 5, 4)


@pytest.mark.parametrize("op", [flash_attention_op, naive_attention_op])
def test_attention_ops_numerics(rng, op):
    heads, dim, sq, skv = 2, 4, 6, 8
    ctx = make_ctx(1)
    q = rng.standard_normal((sq, heads * dim)).astype(np.float16)
    k = rng.standard_normal((skv, heads * dim)).astype(np.float16)
    v = rng.standard_normal((skv, heads * dim)).astype(np.float16)
    ctx.bind("q", [q]); ctx.bind("k", [k]); ctx.bind("v", [v])
    ctx.alloc("o", (sq, heads * dim), "float32")
    op(ctx, 0, ctx.heap.tensor("q", 0), ctx.heap.tensor("k", 0),
       ctx.heap.tensor("v", 0), ctx.heap.tensor("o", 0), heads, dim,
       causal=True, q_offset=2)
    ctx.run()
    ref = attention_ref(seq_to_heads(q, heads, dim),
                        seq_to_heads(k, heads, dim),
                        seq_to_heads(v, heads, dim), causal=True, q_offset=2)
    assert np.allclose(ctx.heap.tensor("o", 0).numpy(), heads_to_seq(ref),
                       atol=1e-2)


def test_naive_attention_slower_than_flash():
    times = {}
    for name, op in (("flash", flash_attention_op),
                     ("naive", naive_attention_op)):
        ctx = make_ctx(1, numerics=False)
        ctx.alloc("q", (2048, 2048), "float16")
        ctx.alloc("k", (2048, 2048), "float16")
        ctx.alloc("o", (2048, 2048), "float32")
        op(ctx, 0, ctx.heap.tensor("q", 0), ctx.heap.tensor("k", 0),
           ctx.heap.tensor("k", 0), ctx.heap.tensor("o", 0), 16, 128)
        times[name] = ctx.run()
    assert times["naive"] > times["flash"]


def test_silu_ops(rng):
    ctx = make_ctx(1)
    g = rng.standard_normal((6, 6)).astype(np.float16)
    u = rng.standard_normal((6, 6)).astype(np.float16)
    ctx.bind("g", [g]); ctx.bind("u", [u])
    ctx.alloc("o1", (6, 6), "float32")
    ctx.alloc("o2", (6, 6), "float32")
    silu_mul_op(ctx, 0, ctx.heap.tensor("g", 0), ctx.heap.tensor("u", 0),
                ctx.heap.tensor("o1", 0))
    silu_op(ctx, 0, ctx.heap.tensor("g", 0), ctx.heap.tensor("o2", 0))
    ctx.run()
    assert np.allclose(ctx.heap.tensor("o1", 0).numpy(), silu_mul_ref(g, u),
                       atol=1e-2)
    assert np.allclose(ctx.heap.tensor("o2", 0).numpy(), silu_ref(g),
                       atol=1e-2)


@given(st.integers(2, 16), st.integers(1, 4), st.integers(0, 99))
@settings(max_examples=30, deadline=None)
def test_topk_route_properties(n_experts, topk, seed):
    if topk > n_experts:
        topk = n_experts
    rng = np.random.default_rng(seed)
    logits = rng.standard_normal((20, n_experts)).astype(np.float32)
    ids, weights = topk_route(logits, topk)
    assert ids.shape == (20, topk)
    assert (ids >= 0).all() and (ids < n_experts).all()
    # distinct experts per token
    for row in ids:
        assert len(set(row.tolist())) == topk
    # normalized weights
    assert np.allclose(weights.sum(axis=1), 1.0, atol=1e-5)
    # selected logits are >= any unselected logit
    for i in range(20):
        chosen = set(ids[i].tolist())
        mn = min(logits[i, j] for j in chosen)
        mx = max((logits[i, j] for j in range(n_experts)
                  if j not in chosen), default=-np.inf)
        assert mn >= mx


def test_topk_reduce_op_matches_reference(rng):
    tokens, topk, width = 16, 2, 6
    sorted_ids, _experts, slot_weights = _routing_fixture(
        rng, tokens, 4, topk)
    grouped = rng.standard_normal((len(sorted_ids), width)).astype(np.float32)
    ctx = make_ctx(1)
    ctx.bind("g", [grouped])
    ctx.alloc("o", (tokens, width), "float32")
    topk_reduce_op(ctx, 0, ctx.heap.tensor("g", 0), ctx.heap.tensor("o", 0),
                   sorted_ids, slot_weights)
    ctx.run()
    ref = topk_reduce_ref(grouped, sorted_ids, slot_weights, tokens)
    assert np.allclose(ctx.heap.tensor("o", 0).numpy(), ref, atol=1e-4)
