"""Tests for util helpers and the bench harness plumbing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bench.harness import make_ctx, run_builder, run_builder_traced
from repro.util.stats import geomean, mean, speedup_table
from repro.util.tables import (
    format_bytes,
    format_table,
    format_time,
    render_bar_chart,
)


def test_mean_and_geomean():
    assert mean([1.0, 3.0]) == 2.0
    assert geomean([1.0, 4.0]) == 2.0
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, -1.0])
    with pytest.raises(ValueError):
        mean([])


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                max_size=20))
def test_geomean_between_min_and_max(vals):
    g = geomean(vals)
    assert min(vals) - 1e-9 <= g <= max(vals) + 1e-9


def test_speedup_table():
    rel = speedup_table({"base": [2.0, 4.0], "fast": [1.0, 2.0]}, "base")
    assert rel["base"] == [1.0, 1.0]
    assert rel["fast"] == [2.0, 2.0]
    with pytest.raises(KeyError):
        speedup_table({"a": [1.0]}, "missing")
    with pytest.raises(ValueError):
        speedup_table({"base": [1.0], "b": [1.0, 2.0]}, "base")


def test_format_table_alignment():
    out = format_table(["name", "val"], [["a", 1.5], ["bb", 2.0]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "1.500" in out
    with pytest.raises(ValueError):
        format_table(["one"], [["a", "b"]])


def test_render_bar_chart():
    out = render_bar_chart({"m1": [1.0, 2.0], "m2": [0.5, 1.0]},
                           ["w1", "w2"], title="chart")
    assert "#" in out and "m1" in out


def test_format_bytes_and_time():
    assert format_bytes(512) == "512 B"
    assert format_bytes(2048) == "2.00 KiB"
    assert "MiB" in format_bytes(5 * 1024 * 1024)
    assert "us" in format_time(5e-6)
    assert "ms" in format_time(5e-3)
    assert format_time(2.0) == "2.0000 s"


def test_run_builder_fresh_state():
    """Each measurement boots a fresh node: no pipe-watermark leakage."""
    def build(ctx) -> None:
        ctx.alloc("x", (256, 256), "float16")
        ctx.alloc("y", (256 * ctx.world_size, 256), "float16")
        from repro.collectives.nccl import NcclCollectives
        NcclCollectives(ctx).all_gather("x", "y")

    t1 = run_builder(build, world=4)
    t2 = run_builder(build, world=4)
    assert t1 == pytest.approx(t2)   # deterministic and isolated


def test_run_builder_traced_returns_context():
    def build(ctx) -> None:
        ctx.alloc("x", (64, 64), "float16")
        ctx.alloc("y", (64 * ctx.world_size, 64), "float16")
        from repro.collectives.nccl import NcclCollectives
        NcclCollectives(ctx).all_gather("x", "y")

    total, ctx = run_builder_traced(build, world=2)
    assert total > 0
    assert ctx.machine.trace.busy_time("comm") > 0


def test_make_ctx_options():
    ctx = make_ctx(world=2, numerics=True, n_nodes=2)
    assert ctx.world_size == 2
    assert ctx.machine.config.n_nodes == 2


def test_env_flag_parses_case_insensitively(monkeypatch):
    """REPRO_FAST=False must *not* enable fast mode (the old exact-match
    parse only excluded lowercase "false")."""
    from repro.bench.harness import env_flag

    for off in ("0", "", "false", "False", "FALSE", " no ", "off", "OFF"):
        monkeypatch.setenv("REPRO_TEST_FLAG", off)
        assert not env_flag("REPRO_TEST_FLAG"), off
    for on in ("1", "true", "True", "YES", "on", "2"):
        monkeypatch.setenv("REPRO_TEST_FLAG", on)
        assert env_flag("REPRO_TEST_FLAG"), on
    monkeypatch.delenv("REPRO_TEST_FLAG")
    assert not env_flag("REPRO_TEST_FLAG")
    assert env_flag("REPRO_TEST_FLAG", default="1")
