"""Tests for the model-guided search strategy (``repro.tuner.model``).

Covers the PR's acceptance scenario: ``strategy="model"`` runs strictly
fewer full-fidelity simulations than ``strategy="exhaustive"`` on the
Figure-8 MLP shapes while ``best_time <= default_time`` holds on every
shape, and a model-search cache entry never aliases an exhaustive one
(the probe budget and stop optimism are folded into the search
signature).
"""

from __future__ import annotations

import math

import pytest

# importing the zoo registers every kernel's search space
import repro.kernels  # noqa: F401
from repro.bench.experiments import mlp_sweep_tasks
from repro.kernels.ag_gemm import ag_gemm_tune_task
from repro.models.configs import MLP_BENCHES
from repro.tuner import (
    ResidualModel,
    TuneCache,
    TunerError,
    search_signature,
    stratified_probe_indices,
    sweep,
    task_cache_key,
    tune,
)
from repro.config import H800

SMALL = dict(m=512, n=256, k=256)
SMALL_WORLD = 4


def small_task(**kw):
    return ag_gemm_tune_task(SMALL["m"], SMALL["n"], SMALL["k"],
                             world=SMALL_WORLD, **kw)


# ---------------------------------------------------------------------------
# ResidualModel
# ---------------------------------------------------------------------------

def test_residual_model_learns_per_axis_residuals():
    """Synthetic ground truth with exact per-axis multiplicative
    residuals: time = bound * f(mode) * g(block).  The fitted model must
    rank candidates correctly and predict within a few percent."""
    modes = {"dma": 1.1, "pull": 1.9}
    blocks = {64: 1.4, 128: 1.0}
    cands, bounds, times = [], [], []
    for mode, mf in modes.items():
        for block, bf in blocks.items():
            for rep in range(2):                   # a couple of shapes each
                bound = 1e-3 * (1 + rep)
                cands.append({"mode": mode, "block_m": block})
                bounds.append(bound)
                times.append(bound * mf * bf)
    model = ResidualModel(ridge=1e-3)
    assert not model.fitted
    model.fit(cands, bounds, times)
    assert model.fitted
    preds = {(c["mode"], c["block_m"]): model.predict(c, b)
             for c, b in zip(cands, bounds) if b == 1e-3}
    # ranking matches the ground-truth residual ordering
    ranked = sorted(preds, key=preds.get)
    assert ranked[0] == ("dma", 128)
    assert ranked[-1] == ("pull", 64)
    for (mode, block), pred in preds.items():
        truth = 1e-3 * modes[mode] * blocks[block]
        assert pred == pytest.approx(truth, rel=0.05)


def test_residual_model_never_predicts_below_the_bound():
    model = ResidualModel()
    cand = {"mode": "dma"}
    assert model.predict(cand, 2.5e-4) == 2.5e-4       # unfitted: the bound
    # train on times *equal* to the bound: log-residual 0, prediction
    # clamped at the bound even if ridge pulls weights slightly negative
    model.fit([cand] * 3, [1e-3] * 3, [1e-3] * 3)
    assert model.predict(cand, 1e-3) >= 1e-3
    # an unseen axis value degrades to the intercept, not an explosion
    pred = model.predict({"mode": "never-seen"}, 1e-3)
    assert 1e-3 <= pred < 1.0


def test_residual_model_input_validation():
    with pytest.raises(TunerError):
        ResidualModel(ridge=0.0)
    with pytest.raises(TunerError):
        ResidualModel().fit([{"a": 1}], [1.0], [1.0, 2.0])
    # empty fit resets to unfitted
    m = ResidualModel()
    m.fit([{"a": 1}], [1.0], [2.0])
    assert m.fitted
    m.fit([], [], [])
    assert not m.fitted


def test_stratified_probe_indices():
    assert stratified_probe_indices(0, 4) == []
    assert stratified_probe_indices(3, 8) == [0, 1, 2]
    assert stratified_probe_indices(10, 1) == [0]
    idx = stratified_probe_indices(10, 4)
    assert idx[0] == 0 and idx[-1] == 9 and len(idx) == 4
    assert idx == sorted(set(idx))


# ---------------------------------------------------------------------------
# strategy="model" through tune()
# ---------------------------------------------------------------------------

def test_model_strategy_never_worse_than_default():
    res = tune(small_task(), world=SMALL_WORLD, strategy="model")
    assert res.best_time <= res.default_time          # provable fallback
    assert res.strategy == "model"
    assert res.trials and res.trials[0][0] == small_task().default
    # the early stop really fired or everything was simulated — either
    # way the accounting adds up over the survivor set
    survivors = res.n_candidates - res.n_pruned - 1   # minus the default
    assert (res.n_simulated - 1) + res.n_pruned_dynamic \
        + res.n_model_skipped == survivors


def test_model_strategy_rejects_bad_parameters():
    with pytest.raises(TunerError):
        tune(small_task(), world=SMALL_WORLD, strategy="model",
             model_optimism=1.5)
    with pytest.raises(TunerError):
        tune(small_task(), world=SMALL_WORLD, strategy="model",
             model_probes=0)


def test_model_strategy_respects_max_trials():
    res = tune(small_task(), world=SMALL_WORLD, strategy="model",
               max_trials=3)
    assert res.n_simulated <= 1 + 3                   # default + capped set


def test_model_signature_and_cache_non_aliasing(tmp_path):
    """A model-search entry must never be served to an exhaustive request
    (or vice versa), while an identical model request hits its own key."""
    assert search_signature("model", None, 0) == "|model-mtall-s0-p4-o0.75"
    assert search_signature("model", 5, 2, model_probes=6,
                            model_optimism=0.5) == "|model-mt5-s2-p6-o0.5"
    # distinct budgets produce distinct keys
    sigs = {search_signature("model", None, 0, model_probes=p,
                             model_optimism=o)
            for p in (2, 4) for o in (0.5, 0.75)}
    assert len(sigs) == 4

    cache = TuneCache(tmp_path / "cache.json")
    mo = tune(small_task(), world=SMALL_WORLD, strategy="model", cache=cache)
    ex = tune(small_task(), world=SMALL_WORLD, cache=cache)
    assert not ex.from_cache                  # model entry not served
    assert ex.best_time <= mo.best_time       # exhaustive is the floor
    assert len(cache) == 2
    # an identical model request hits its own entry, zero simulations
    again = tune(small_task(), world=SMALL_WORLD, strategy="model",
                 cache=cache)
    assert again.from_cache and again.n_simulated == 0
    assert again.best == mo.best
    # a different optimism re-searches instead of aliasing
    other = tune(small_task(), world=SMALL_WORLD, strategy="model",
                 model_optimism=0.5, cache=cache)
    assert not other.from_cache
    assert task_cache_key(small_task(), world=SMALL_WORLD, spec=H800,
                          strategy="model", model_optimism=0.5) in cache


def test_model_optimism_zero_degrades_to_bound_pruning():
    """optimism=0 makes the optimistic prediction the analytic bound
    itself: the stop rule can only fire where bound-based dynamic
    re-pruning would have skipped anyway, so nothing that exhaustive
    simulates is skipped and the winner matches exhaustive's."""
    ex = tune(small_task(), world=SMALL_WORLD)
    mo = tune(small_task(), world=SMALL_WORLD, strategy="model",
              model_optimism=0.0)
    assert mo.best == ex.best
    assert mo.best_time == pytest.approx(ex.best_time)
    assert mo.n_simulated + mo.n_pruned_dynamic + mo.n_model_skipped \
        >= ex.n_simulated


# ---------------------------------------------------------------------------
# acceptance: Figure-8 MLP shapes
# ---------------------------------------------------------------------------

def test_acceptance_model_fewer_sims_than_exhaustive_fig8(tmp_path):
    """On a Figure-8 MLP shape (both kernels, paper scale, world=8) the
    model strategy must run strictly fewer full-fidelity simulations
    than exhaustive while best_time <= default_time on every shape."""
    tasks = mlp_sweep_tasks(MLP_BENCHES[:1], world=8)
    ex = sweep(tasks, world=8, cache=TuneCache(tmp_path / "ex.json"))
    mo = sweep(tasks, world=8, cache=TuneCache(tmp_path / "mo.json"),
               strategy="model")
    assert mo.n_simulated < ex.n_simulated
    assert sum(e.result.n_model_skipped for e in mo.entries) > 0
    for entry in mo.entries:
        assert entry.result.best_time <= entry.result.default_time
    # the model found genuinely competitive configs, not just cheap ones:
    # within a few percent of the exhaustive winner on every shape
    for e_ex, e_mo in zip(ex.entries, mo.entries):
        assert e_mo.result.best_time <= e_ex.result.best_time * 1.05
