"""Direct tests for the end-to-end runner (previously only exercised
through the Figure-11 bench): inter-node overhead scaling, layer-count
linearity, seed determinism and the ``tilelink-tuned`` method."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import SimConfig
from repro.models.configs import E2E_MODELS, ModelConfig
from repro.models.runner import (
    METHODS,
    e2e_model_time,
    inter_node_overhead,
    layer_time,
)

TINY = ModelConfig("tiny", n_layers=2, hidden=1024, heads=8, head_dim=128,
                   intermediate=4096, batch=1, seq_len=2048)
TINY_MOE = ModelConfig("tiny-moe", n_layers=2, hidden=1024, heads=8,
                       head_dim=128, intermediate=4096, moe=True,
                       n_experts=8, topk=2, batch=1, seq_len=2048)


def test_methods_roster():
    assert METHODS == ("torch", "tilelink", "tilelink-tuned")


def test_unknown_method_raises():
    with pytest.raises(ValueError, match="unknown method"):
        layer_time(TINY, "triton")


def test_with_tokens_reshapes_only_the_step():
    v = TINY.with_tokens(512)
    assert (v.batch, v.seq_len, v.tokens) == (1, 512, 512)
    assert (v.hidden, v.n_layers) == (TINY.hidden, TINY.n_layers)
    assert TINY.tokens == 2048          # original untouched (frozen)


def test_inter_node_overhead_matches_the_formula():
    spec = SimConfig().spec
    for model in (TINY, E2E_MODELS[0]):
        expected = 4 * spec.inter_node_latency + \
            (model.hidden * model.batch * 2.0 * 64) / \
            spec.inter_node_bandwidth
        assert inter_node_overhead(model) == pytest.approx(expected)


def test_inter_node_overhead_scales_with_activation_row():
    """The bandwidth term is linear in hidden x batch; the latency term
    is model-independent."""
    spec = SimConfig().spec
    lat = 4 * spec.inter_node_latency
    base = inter_node_overhead(TINY) - lat
    assert inter_node_overhead(replace(TINY, hidden=2 * TINY.hidden)) \
        - lat == pytest.approx(2 * base)
    assert inter_node_overhead(replace(TINY, batch=4 * TINY.batch)) \
        - lat == pytest.approx(4 * base)


def test_e2e_is_linear_in_layer_count():
    """Doubling n_layers exactly doubles the forward pass (per-layer
    homogeneity is the runner's core modelling assumption)."""
    short = e2e_model_time(replace(TINY, n_layers=2), "torch")
    long = e2e_model_time(replace(TINY, n_layers=4), "torch")
    assert long == pytest.approx(2 * short, rel=1e-12)


def test_layer_time_is_seed_deterministic():
    """Same seed -> bit-identical simulated time, including the MoE
    routing drawn from the seeded router logits."""
    for model in (TINY, TINY_MOE):
        a = layer_time(model, "tilelink", seed=3)
        b = layer_time(model, "tilelink", seed=3)
        assert a == b


def test_tilelink_tuned_without_cache_equals_tilelink(tmp_path, monkeypatch):
    """Every warm-key miss falls back to the paper config — with no
    cache file at all the two methods build identical layers."""
    monkeypatch.setenv("REPRO_WARM_CACHE", str(tmp_path / "absent.json"))
    assert layer_time(TINY, "tilelink-tuned") == layer_time(TINY, "tilelink")


def test_tilelink_tuned_resolves_shipped_winners():
    """At a step shape the shipped sweep covers (the MLP-1 table row:
    8192 tokens, LLaMA2-7B's FFN), the warm cache swaps in a strictly
    faster MLP config."""
    llama = next(m for m in E2E_MODELS if m.name == "LLaMA2-7B")
    step = llama.with_tokens(8192)
    tuned = layer_time(step, "tilelink-tuned")
    paper = layer_time(step, "tilelink")
    assert tuned < paper
