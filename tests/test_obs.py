"""Tests for the unified observability layer (repro.obs).

The load-bearing contract is *non-perturbation*: attaching a recorder
to the serving engine or the tuner must leave every output bit
unchanged — recording is read-only tuple appends.  The suite pins that
on seeded workloads (including a thrashing KV config that exercises
preemption, recompute and watermark crossings), then covers the
derived views (phase attribution, request timelines, slowest-K), the
metrics registry, the Perfetto exporter (validated by the same
``validate_bench_json`` schemas CI runs), the recording file format,
and the CLI end-to-end.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.validate_bench_json import (
    validate_obs_metrics,
    validate_obs_trace,
)
from repro.errors import ObsError, ServeError
from repro.models.configs import ModelConfig
from repro.obs import (
    EVENT_FIELDS,
    NULL_RECORDER,
    PHASES,
    Recorder,
    build_metrics,
    load,
    phase_attribution,
    request_timelines,
    save_sim_recording,
    sim_recording,
    slowest_requests,
    span_attribution,
    to_perfetto,
    write_trace,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.metrics import MetricsRegistry
from repro.serve.kv import KVCacheConfig
from repro.serve.samples import StepStats
from repro.serve.scheduler import ServerConfig, serve
from repro.serve.workload import generate_requests

TINY = ModelConfig("tiny", n_layers=4, hidden=512, heads=4, head_dim=128,
                   intermediate=2048, batch=1, seq_len=2048)


class FakeTable:
    def interpolator(self, model, method, world=8, spec=None, seed=0):
        return lambda tokens, ctx=0: 1e-3 + tokens * 1e-5


TABLE = FakeTable()

#: A thrashing config: small pool + naive admission, so the recording
#: covers preemption, recompute, re-admission and watermark crossings.
THRASH_KV = dict(block_tokens=16, pool_blocks=120, admission="naive",
                 victim="longest-context")


def _serve(reqs, *, kv=None, recorder=None, **server_kw):
    return serve(reqs, TINY, "tilelink", TABLE, ServerConfig(**server_kw),
                 kv=KVCacheConfig(**kv) if kv else None, recorder=recorder)


def _record(scenario="chat", n=300, seed=5, kv=THRASH_KV, **server_kw):
    server_kw.setdefault("max_batch", 32)
    reqs = generate_requests(scenario, n, seed=seed)
    recorder = Recorder()
    res = _serve(reqs, kv=kv, recorder=recorder, **server_kw)
    return res, recorder


def _result_tuple(res):
    return ([(l.request.rid, l.queue_wait_s, l.first_token_s, l.finish_s,
              l.n_preemptions, l.recompute_tokens, l.preempt_stall_s)
             for l in res.logs],
            res.makespan_s, res.n_prefill_steps, res.n_decode_steps,
            res.n_preemptions, res.recompute_tokens,
            res.queue_depth, res.batch_size, res.pool_occupancy)


# ------------------------------------------------------------ identity

@pytest.mark.parametrize("kv", [None, THRASH_KV],
                         ids=["no-pool", "thrashing-pool"])
def test_recorder_does_not_perturb_the_engine(kv):
    reqs = generate_requests("chat", 300, seed=5)
    plain = _serve(reqs, kv=kv, max_batch=32)
    recorder = Recorder()
    recorded = _serve(reqs, kv=kv, recorder=recorder, max_batch=32)
    assert _result_tuple(recorded) == _result_tuple(plain)
    assert recorded == plain
    assert len(recorder.events) > 2 * len(reqs)   # a real recording


def test_null_recorder_records_nothing():
    reqs = generate_requests("chat", 50, seed=0)
    res = _serve(reqs, recorder=NULL_RECORDER)
    assert not NULL_RECORDER.events
    assert not NULL_RECORDER.enabled
    with NULL_RECORDER.timed("x", "y"):
        pass
    NULL_RECORDER.span(0.0, 1.0, "x", "y")
    assert not NULL_RECORDER.events
    assert res.makespan_s > 0


def test_engine_refuses_a_reused_recorder():
    _, recorder = _record(n=20)
    with pytest.raises(ServeError, match="already holds events"):
        _serve(generate_requests("chat", 20, seed=5), recorder=recorder)


# ------------------------------------------------------- serve views

def test_phase_attribution_partitions_the_makespan():
    res, recorder = _record()
    attr = phase_attribution(recorder.recording())
    engine = attr["engine_s"]
    assert set(engine) == {"prefill", "decode", "idle"}
    # prefill+decode+idle partition the makespan by construction: the
    # engine clock only ever advances inside one of the three
    assert attr["coverage"] == pytest.approx(1.0, abs=1e-9)
    assert attr["makespan_s"] == pytest.approx(res.makespan_s)
    counts = attr["counts"]
    assert counts["requests"] == counts["finished"] == len(res.logs)
    assert counts["prefill_steps"] == res.n_prefill_steps
    assert counts["decode_steps"] == res.n_decode_steps
    assert counts["preemptions"] == res.n_preemptions > 0


def test_request_timelines_match_the_result_logs():
    res, recorder = _record()
    reqs = request_timelines(recorder.recording())
    assert len(reqs) == len(res.logs)
    for log in res.logs:
        r = reqs[log.request.rid]
        assert r["first_token"] == pytest.approx(
            log.request.arrival_s + log.ttft_s)
        assert r["finish"] == pytest.approx(log.finish_s)
        assert r["queue_wait"] == pytest.approx(log.queue_wait_s)
        assert r["n_preemptions"] == log.n_preemptions
        assert r["preempt_stall"] == pytest.approx(log.preempt_stall_s)
        # segments use the PHASES vocabulary (idle is engine-level),
        # are time-ordered and non-overlapping
        phases = [p for p, _, _ in r["segments"]]
        assert set(phases) <= set(PHASES) - {"idle"}
        bounds = [t for _, t0, t1 in r["segments"] for t in (t0, t1)]
        assert bounds == sorted(bounds)


def test_slowest_requests_orders_by_latency():
    _, recorder = _record(n=100)
    rows = slowest_requests(recorder.recording(), k=7)
    assert len(rows) == 7
    latencies = [r["latency"] for r in rows]
    assert latencies == sorted(latencies, reverse=True)
    with pytest.raises(ObsError):
        slowest_requests(recorder.recording(), k=0)


def test_serve_views_reject_wrong_kind():
    rec = sim_recording([(0, "compute", "gemm", 0.0, 1.0)])
    with pytest.raises(ObsError, match="needs a 'serve' recording"):
        phase_attribution(rec)
    with pytest.raises(ObsError, match="needs a 'spans' recording"):
        span_attribution(rec)


# ------------------------------------------------- recording file format

def test_save_load_roundtrip(tmp_path):
    _, recorder = _record(n=80)
    path = tmp_path / "run.json"
    recorder.save(path)
    rec = load(path)
    assert rec.kind == "serve"
    assert rec.events == recorder.recording().events
    assert rec.meta["model"] == "tiny"
    assert rec.meta["n_requests"] == 80


def test_load_rejects_malformed_recordings(tmp_path):
    path = tmp_path / "bad.json"

    def dump(payload):
        path.write_text(json.dumps(payload))
        return path

    with pytest.raises(ObsError, match="cannot read"):
        load(tmp_path / "missing.json")
    with pytest.raises(ObsError, match="format"):
        load(dump({"format": "repro-obs/999", "kind": "serve"}))
    with pytest.raises(ObsError, match="unknown kind"):
        load(dump({"format": "repro-obs/1", "kind": "metrics"}))
    with pytest.raises(ObsError, match="unknown event kind"):
        load(dump({"format": "repro-obs/1", "kind": "serve",
                   "events": [["teleport", 0.0]]}))
    with pytest.raises(ObsError, match="expected fields"):
        load(dump({"format": "repro-obs/1", "kind": "serve",
                   "events": [["finish", 1.0]]}))
    with pytest.raises(ObsError, match="finite number"):
        load(dump({"format": "repro-obs/1", "kind": "serve",
                   "events": [["finish", None, 3]]}))
    with pytest.raises(ObsError, match="non-finite"):
        path.write_text('{"format": "repro-obs/1", "kind": "serve", '
                        '"events": [["finish", NaN, 3]]}')
        load(path)
    with pytest.raises(ObsError, match="start <= end"):
        load(dump({"format": "repro-obs/1", "kind": "sim",
                   "intervals": [[0, "compute", "gemm", 2.0, 1.0]]}))


def test_event_fields_cover_every_emitted_kind():
    _, recorder = _record(n=60)
    for event in recorder.events:
        fields = EVENT_FIELDS[event[0]]
        assert len(event) == 1 + len(fields)


# ------------------------------------------------------------- metrics

def test_metrics_registry_get_or_create_and_conflicts():
    reg = MetricsRegistry()
    c = reg.counter("requests", scenario="chat")
    assert reg.counter("requests", scenario="chat") is c
    assert reg.counter("requests", scenario="rag") is not c
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ObsError, match="must be >= 0"):
        c.inc(-1)
    with pytest.raises(ObsError, match="already registered as a counter"):
        reg.gauge("requests", scenario="chat")
    with pytest.raises(ObsError, match="non-empty"):
        reg.counter("")


def test_histogram_snapshot_nulls_together():
    reg = MetricsRegistry()
    reg.histogram("empty")
    h = reg.histogram("full")
    h.observe(1.0)
    h.observe_repeat(3.0, 4)
    snap = reg.snapshot()
    assert validate_obs_metrics(snap) == []
    by_name = {m["name"]: m for m in snap["metrics"]}
    empty, full = by_name["empty"], by_name["full"]
    assert empty["count"] == 0
    assert (empty["max"], empty["p50"], empty["p90"], empty["p99"]) == \
        (None, None, None, None)
    assert full["count"] == 5
    assert full["max"] == 3.0


def test_histogram_adopts_stepstats_counts():
    stats = StepStats.of([2, 2, 7, 7, 7, 9])
    reg = MetricsRegistry()
    reg.histogram("adopted").merge_counts(stats.counts())
    snap = reg.snapshot()["metrics"][0]
    assert snap["count"] == 6
    assert snap["max"] == 9
    assert snap["p50"] == stats.percentile(50)   # bit-identical


def test_build_metrics_from_a_serving_recording():
    res, recorder = _record()
    snap = build_metrics(recorder.recording()).snapshot()
    assert validate_obs_metrics(snap) == []
    by = {(m["name"], tuple(sorted(m["labels"].items()))): m
          for m in snap["metrics"]}
    assert by[("requests_total", ())]["value"] == len(res.logs)
    assert by[("preemptions_total", ())]["value"] == res.n_preemptions
    assert by[("decode_steps_total", ())]["value"] == res.n_decode_steps
    assert by[("request_latency_s", ())]["count"] == len(res.logs)
    assert by[("makespan_s", ())]["value"] == pytest.approx(res.makespan_s)


# ------------------------------------------------------------- export

def test_serve_trace_validates_and_caps_tracks():
    _, recorder = _record(n=100)
    trace = to_perfetto(recorder)
    assert validate_obs_trace(trace) == []
    rids = {e["tid"] for e in trace["traceEvents"]
            if e.get("pid") == 2 and e["ph"] == "X"}
    assert len(rids) == 100
    capped = to_perfetto(recorder.recording(), max_request_tracks=10)
    assert validate_obs_trace(capped) == []
    kept = {e["tid"] for e in capped["traceEvents"]
            if e.get("pid") == 2 and e["ph"] == "X"}
    assert len(kept) == 10
    # the cap keeps the slowest requests
    slow = {r["rid"] for r in slowest_requests(recorder.recording(), k=10)}
    assert kept == slow
    # the thrashing pool produced counter samples and watermark instants
    phs = {e["ph"] for e in trace["traceEvents"]}
    assert {"M", "X", "C", "i"} <= phs


def test_sim_trace_roundtrip_and_export(tmp_path):
    intervals = [(0, "compute", "gemm", 0.0, 2.0),
                 (0, "comm", "ag", 0.5, 1.5),
                 (1, "compute", "gemm", 0.0, 1.0)]
    path = tmp_path / "sim.json"
    save_sim_recording(path, intervals, meta={"kernel": "toy"})
    rec = load(path)
    assert rec.kind == "sim"
    assert rec.intervals == [tuple(iv) for iv in intervals]
    trace = to_perfetto(rec)
    assert validate_obs_trace(trace) == []
    # one process per rank, one thread per category
    pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert pids == {1, 2}
    with pytest.raises(ObsError, match="at least one"):
        sim_recording([])


def test_span_trace_export(tmp_path):
    recorder = Recorder()
    with recorder.timed("simulate", "toy:default"):
        pass
    recorder.span(1.0, 2.0, "prune", "toy:3/10")
    trace = to_perfetto(recorder)
    assert validate_obs_trace(trace) == []
    attr = span_attribution(recorder.recording())
    assert attr["prune"]["total_s"] == pytest.approx(1.0)
    assert attr["simulate"]["count"] == 1
    snap = build_metrics(recorder.recording()).snapshot()
    assert validate_obs_metrics(snap) == []
    empty = Recorder()
    with pytest.raises(ObsError, match="no span events"):
        to_perfetto(empty)


def test_write_trace_is_strict_json(tmp_path):
    _, recorder = _record(n=40)
    path = tmp_path / "trace.json"
    write_trace(path, recorder)
    with open(path) as fh:
        trace = json.load(fh, parse_constant=lambda t: 1 / 0)
    assert validate_obs_trace(trace) == []


# -------------------------------------------------------- tuner spans

def test_tuner_sweep_records_spans_without_perturbing(tmp_path):
    from repro.kernels.ag_gemm import ag_gemm_tune_task
    from repro.tuner.cache import TuneCache
    from repro.tuner.sweep import sweep

    task = ag_gemm_tune_task(1024, 256, 512, world=4)

    def run(cache_path, recorder=None):
        cache = TuneCache(cache_path)
        return sweep([task, task], world=4, strategy="random", max_trials=3,
                     cache=cache, recorder=recorder)

    recorder = Recorder()
    plain = run(tmp_path / "plain.json")
    recorded = run(tmp_path / "recorded.json", recorder=recorder)
    assert recorded.rows() == plain.rows()

    attr = span_attribution(recorder.recording())
    # default + 3 random trials, each span-labelled by stage
    assert attr["simulate"]["count"] == recorded.n_simulated
    labels = attr["simulate"]["labels"]
    assert any(l.endswith(":default") for l in labels)
    assert attr["tune"]["count"] == 2 - recorded.n_deduped
    assert any(l.startswith("dedup:") for l in attr["cache"]["labels"])
    assert any(l.startswith("miss:") for l in attr["cache"]["labels"])
    assert validate_obs_trace(to_perfetto(recorder)) == []


# ------------------------------------------------------------- the CLI

def test_cli_end_to_end(tmp_path, capsys):
    run = tmp_path / "run.json"
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert obs_main(["record", "--out", str(run), "-n", "40"]) == 0
    assert obs_main(["summarize", str(run),
                     "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "attributed" in out and "decode" in out
    assert obs_main(["slowest", str(run), "-k", "3"]) == 0
    assert "latency" in capsys.readouterr().out
    assert obs_main(["export", str(run), "--out", str(trace)]) == 0
    with open(trace) as fh:
        assert validate_obs_trace(json.load(fh)) == []
    with open(metrics) as fh:
        assert validate_obs_metrics(json.load(fh)) == []


def test_cli_sim_record_and_export(tmp_path, capsys):
    run = tmp_path / "sim.json"
    trace = tmp_path / "trace.json"
    assert obs_main(["record", "--kind", "sim", "--out", str(run)]) == 0
    assert obs_main(["summarize", str(run)]) == 0
    assert "comm hidden under compute" in capsys.readouterr().out
    assert obs_main(["export", str(run), "--out", str(trace)]) == 0
    with open(trace) as fh:
        assert validate_obs_trace(json.load(fh)) == []


def test_cli_fails_cleanly_on_bad_input(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert obs_main(["summarize", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err
    assert obs_main(["record", "--out", str(tmp_path / "x.json"),
                     "--model", "no-such-model"]) == 1
    assert "unknown model" in capsys.readouterr().err
